//! Ensemble model serving (§5.4): every query is broadcast to all model replicas, each
//! replica classifies the batch, and the results are gathered for a majority vote.
//!
//! Run with: `cargo run --example model_serving`

use hoplite::apps::comm::CommSystem;
use hoplite::apps::workloads::serving_throughput;
use hoplite::baselines::Baseline;
use hoplite::core::prelude::*;
use hoplite::task::TaskSystem;

fn main() {
    // ---- Part 1: a real ensemble on the task framework ------------------------------
    let replicas = 4;
    let ts = TaskSystem::new(replicas, HopliteConfig::default());

    // Each "model" classifies by thresholding at a different value, so they disagree
    // and the majority vote matters.
    ts.register("classify", |args| {
        let threshold = args[0].to_f32s()[0];
        let pixels = args[1].to_f32s();
        let votes: Vec<f32> = pixels
            .chunks(64)
            .map(|img| {
                let mean = img.iter().sum::<f32>() / img.len() as f32;
                if mean > threshold {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        Payload::from_f32s(&votes)
    });

    // One query: a batch of 32 tiny "images".
    let query: Vec<f32> = (0..32 * 64).map(|i| (i % 97) as f32 / 97.0).collect();
    let query_ref = ts.put(Payload::from_f32s(&query)).expect("put query");

    let outputs: Vec<_> = (0..replicas)
        .map(|r| {
            let threshold = ts.put(Payload::from_f32s(&[0.3 + 0.1 * r as f32])).expect("put");
            ts.submit("classify", vec![threshold, query_ref]).expect("submit")
        })
        .collect();

    // Majority vote across the ensemble.
    let mut tallies = [0u32; 32];
    for out in &outputs {
        for (i, v) in ts.get(*out).expect("get votes").to_f32s().iter().enumerate() {
            if *v > 0.5 {
                tallies[i] += 1;
            }
        }
    }
    let positives = tallies.iter().filter(|&&t| t * 2 > replicas as u32).count();
    println!("ensemble of {replicas} models: {positives}/32 images classified positive");

    // ---- Part 2: the paper-scale throughput projection (Figure 11) ------------------
    for system in [CommSystem::Hoplite, CommSystem::Baseline(Baseline::RayLike)] {
        for nodes in [8usize, 16] {
            let p = serving_throughput(system, nodes);
            println!("{:<10} {:>2} replicas: {:6.2} queries/s", p.system, nodes, p.throughput);
        }
    }
}
