//! Asynchronous SGD with a parameter server on the mini task framework (§5.2 and
//! Figure 1 of the paper): workers produce gradients as futures, the driver reduces
//! whichever half finishes first with Hoplite's `Reduce`, applies the update, and
//! broadcasts the new policy implicitly by letting the next round of tasks `get` it.
//!
//! Run with: `cargo run --example async_sgd`

use hoplite::apps::comm::CommSystem;
use hoplite::apps::params::RESNET50;
use hoplite::apps::workloads::async_sgd_throughput;
use hoplite::core::prelude::*;
use hoplite::task::TaskSystem;

fn main() {
    // ---- Part 1: a small but real run on the task framework -------------------------
    let dim = 50_000usize;
    let workers = 4;
    let ts = TaskSystem::new(workers + 1, HopliteConfig::default());

    // A "rollout": compute a gradient from the current policy (here: policy * 0.1).
    ts.register("gradient", |args| {
        let policy = args[0].to_f32s();
        Payload::from_f32s(&policy.iter().map(|w| w * 0.1).collect::<Vec<_>>())
    });

    let mut policy: Vec<f32> = vec![1.0; dim];
    for round in 0..3 {
        let policy_ref = ts.put(Payload::from_f32s(&policy)).expect("put policy");
        let grads: Vec<_> = (0..workers)
            .map(|_| ts.submit("gradient", vec![policy_ref]).expect("submit"))
            .collect();
        // Reduce a *subset* (the first half to finish), exactly like Figure 1b.
        let reduced = ts.reduce(&grads, Some(workers / 2), ReduceSpec::sum_f32()).expect("reduce");
        let update = ts.get(reduced).expect("get reduced gradient").to_f32s();
        for (w, u) in policy.iter_mut().zip(update) {
            *w += u / (workers / 2) as f32;
        }
        println!("round {round}: policy[0] = {:.4}", policy[0]);
    }

    // ---- Part 2: the paper-scale throughput projection (Figure 9) -------------------
    for system in [CommSystem::Hoplite, CommSystem::Baseline(hoplite::baselines::Baseline::RayLike)]
    {
        let p = async_sgd_throughput(system, 16, RESNET50);
        println!("{:<10} 16 nodes, ResNet-50: {:8.1} samples/s", p.system, p.throughput);
    }
}
