//! Fault tolerance (§3.5, §5.5): kill a broadcast intermediate mid-transfer on the
//! simulated cluster and watch the remaining receivers fail over and finish, then print
//! the Figure-12 style latency timelines.
//!
//! Run with: `cargo run --example fault_tolerance`

use hoplite::apps::comm::CommSystem;
use hoplite::apps::fault::{
    broadcast_failover_demo, directory_failover_demo, rolling_restart_demo,
    serving_failure_timeline,
};
use hoplite::baselines::Baseline;

fn main() {
    let demo = broadcast_failover_demo(8, 256 * 1024 * 1024, 0.05);
    println!("256 MB broadcast to 7 receivers, first receiver killed 50 ms in:");
    println!("  latency without failure : {:.3} s", demo.baseline_s);
    println!("  latency with failure    : {:.3} s", demo.with_failure_s);
    println!("  surviving receivers done: {}", demo.completed_receivers);
    println!("  broadcast failovers     : {}", demo.failovers);
    println!();

    let dir = directory_failover_demo(8, 512 * 1024 * 1024, 0.05);
    println!("512 MB broadcast, the object's directory *primary* killed 50 ms in:");
    println!("  latency with failure    : {:.3} s", dir.with_failure_s);
    println!("  receivers completed     : {}", dir.completed_receivers);
    println!("  metadata intact         : {}", dir.metadata_intact);
    println!("  queries re-driven       : {}", dir.directory_failovers);
    println!();

    let roll = rolling_restart_demo(8, 64 * 1024 * 1024);
    println!("rolling restart: all 8 nodes killed + restarted in sequence, live traffic:");
    println!("  traffic completed       : {}", roll.all_traffic_completed);
    println!("  metadata intact         : {}", roll.metadata_intact);
    println!("  primaries restored      : {}/{}", roll.primaries_restored, roll.n);
    println!("  snapshot resyncs        : {}", roll.resyncs);
    println!();

    println!("model-serving latency per query around a failure (fail @20, rejoin @45):");
    for system in [CommSystem::Baseline(Baseline::RayLike), CommSystem::Hoplite] {
        let timeline = serving_failure_timeline(system, 8, 70, 20, 45);
        let spike = timeline[20].latency_s;
        let normal = timeline[5].latency_s;
        let degraded = timeline[30].latency_s;
        println!(
            "  {:<10} normal {:.3} s, failure spike {:.3} s, degraded {:.3} s",
            system.label(),
            normal,
            spike,
            degraded
        );
    }
}
