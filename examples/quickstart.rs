//! Quickstart: Put / Get / Reduce on a real (threaded) Hoplite cluster.
//!
//! Run with: `cargo run --example quickstart`

use hoplite::cluster::LocalCluster;
use hoplite::core::prelude::*;

fn main() {
    // Three Hoplite nodes in this process, moving real bytes over channels.
    let cluster = LocalCluster::new(3, HopliteConfig::default());

    // Node 0 creates an object; node 2 fetches it (an implicit broadcast path).
    let weights = ObjectId::from_name("weights-round-0");
    let values: Vec<f32> = (0..100_000).map(|i| i as f32 * 0.001).collect();
    cluster.client(0).put(weights, Payload::from_f32s(&values)).expect("put");
    let fetched = cluster.client(2).get(weights).expect("get");
    println!("node 2 fetched {} bytes of weights", fetched.len());

    // Every node contributes a gradient; node 0 reduces them and reads the sum.
    let gradients: Vec<ObjectId> =
        (0..3).map(|i| ObjectId::from_name(&format!("gradient-{i}"))).collect();
    for (i, &g) in gradients.iter().enumerate() {
        let grad = vec![(i + 1) as f32; 100_000];
        cluster.client(i).put(g, Payload::from_f32s(&grad)).expect("put gradient");
    }
    let summed = ObjectId::from_name("gradient-sum");
    cluster
        .client(0)
        .reduce(summed, gradients, None, ReduceSpec::sum_f32())
        .expect("reduce accepted");
    let result = cluster.client(0).get(summed).expect("reduce result");
    let first = result.to_f32s()[0];
    println!("sum of gradients[0] = {first} (expected 6)");
    assert!((first - 6.0).abs() < 1e-4);

    // Objects are immutable and pinned at their creator until deleted.
    cluster.client(0).delete(weights).expect("delete");
    println!("quickstart finished");
}
