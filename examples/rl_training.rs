//! Reinforcement-learning training throughput (§5.3, Figure 10): the IMPALA-style
//! samples-optimization loop broadcasts the policy to the workers that finished their
//! rollouts; the A3C-style gradients-optimization loop also reduces their gradients.
//!
//! Run with: `cargo run --example rl_training`

use hoplite::apps::comm::CommSystem;
use hoplite::apps::workloads::{rl_throughput, RlAlgorithm};
use hoplite::baselines::Baseline;
use hoplite::cluster::scenarios::{broadcast_latency, reduce_latency, ScenarioEnv};

fn main() {
    // The communication pattern behind one RL round, measured on the simulated
    // 16-node cluster: broadcast a 64 MB policy to the finished half of the workers,
    // then (for A3C) reduce their 64 MB gradients.
    let env = ScenarioEnv::paper_testbed();
    let policy = 64 * 1024 * 1024;
    let bcast = broadcast_latency(&env, 8, policy, 0.0);
    let reduce = reduce_latency(&env, 8, policy, None, 0.0);
    println!("one Hoplite round over 8 participants:");
    println!("  policy broadcast : {:.3} s", bcast.latency_s);
    println!("  gradient reduce  : {:.3} s", reduce.latency_s);

    println!();
    println!("projected training throughput (Figure 10):");
    for algo in [RlAlgorithm::Impala, RlAlgorithm::A3c] {
        for nodes in [8usize, 16] {
            let hoplite = rl_throughput(CommSystem::Hoplite, nodes, algo);
            let ray = rl_throughput(CommSystem::Baseline(Baseline::RayLike), nodes, algo);
            println!(
                "  {:<7} {:>2} nodes: Hoplite {:7.1} samples/s   Ray {:7.1} samples/s   ({:.1}x)",
                algo.label(),
                nodes,
                hoplite.throughput,
                ray.throughput,
                hoplite.throughput / ray.throughput
            );
        }
    }
}
