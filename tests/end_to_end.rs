//! End-to-end integration tests spanning the whole workspace: real data plane
//! (LocalCluster over channels and TCP), simulated cluster-scale behaviour
//! (SimCluster), fault tolerance, and paper-shape assertions.

use hoplite::apps::comm::CommSystem;
use hoplite::apps::fault::broadcast_failover_demo;
use hoplite::apps::workloads::{async_sgd_throughput, serving_throughput};
use hoplite::baselines::Baseline;
use hoplite::cluster::scenarios::{self, ScenarioEnv};
use hoplite::cluster::{LocalCluster, LocalFabric, SimCluster};
use hoplite::core::prelude::*;
use hoplite::simnet::SimTime;
use hoplite::task::TaskSystem;

const MB: u64 = 1024 * 1024;

#[test]
fn real_cluster_broadcast_delivers_identical_bytes_everywhere() {
    let cluster = LocalCluster::new(5, HopliteConfig::small_for_tests());
    let object = ObjectId::from_name("e2e-broadcast");
    let data: Vec<u8> = (0..200_000u32).map(|i| (i * 31 % 251) as u8).collect();
    cluster.client(0).put(object, Payload::from_vec(data.clone())).unwrap();
    let handles: Vec<std::thread::JoinHandle<Vec<u8>>> = (1..5)
        .map(|i| {
            let client = cluster.client(i);
            std::thread::spawn(move || client.get(object).unwrap().as_bytes().unwrap().to_vec())
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), data);
    }
}

#[test]
fn real_cluster_allreduce_matches_serial_computation() {
    let cluster = LocalCluster::new(4, HopliteConfig::small_for_tests());
    let dim = 2048usize;
    let sources: Vec<ObjectId> = (0..4).map(|i| ObjectId::from_name(&format!("ar-{i}"))).collect();
    let mut expected = vec![0f32; dim];
    for (i, &src) in sources.iter().enumerate() {
        let values: Vec<f32> = (0..dim).map(|j| (i * dim + j) as f32 * 1e-3).collect();
        for (e, v) in expected.iter_mut().zip(&values) {
            *e += *v;
        }
        cluster.client(i).put(src, Payload::from_f32s(&values)).unwrap();
    }
    let target = ObjectId::from_name("ar-sum");
    cluster.client(0).reduce(target, sources, None, ReduceSpec::sum_f32()).unwrap();
    // AllReduce = reduce + broadcast: every node fetches the result.
    for i in 0..4 {
        let got = cluster.client(i).get(target).unwrap().to_f32s();
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-3, "node {i}: {g} vs {e}");
        }
    }
}

#[test]
fn tcp_fabric_end_to_end_reduce() {
    let cluster = LocalCluster::with_fabric(3, HopliteConfig::small_for_tests(), LocalFabric::Tcp);
    let sources: Vec<ObjectId> =
        (0..3).map(|i| ObjectId::from_name(&format!("tcp-src-{i}"))).collect();
    for (i, &src) in sources.iter().enumerate() {
        cluster.client(i).put(src, Payload::from_f32s(&vec![1.0 + i as f32; 1000])).unwrap();
    }
    let target = ObjectId::from_name("tcp-sum");
    cluster.client(1).reduce(target, sources, None, ReduceSpec::sum_f32()).unwrap();
    let result = cluster.client(1).get(target).unwrap().to_f32s();
    for v in result {
        assert!((v - 6.0).abs() < 1e-4);
    }
}

#[test]
fn task_framework_runs_the_figure1_pattern() {
    // The paper's Figure 1b: reduce a subset of gradient futures, update the policy,
    // launch the next round.
    let ts = TaskSystem::new(4, HopliteConfig::small_for_tests());
    ts.register("rollout", |args| {
        let policy = args[0].to_f32s();
        Payload::from_f32s(&policy.iter().map(|w| w + 1.0).collect::<Vec<_>>())
    });
    let mut policy = vec![0.0f32; 512];
    for _round in 0..2 {
        let policy_ref = ts.put(Payload::from_f32s(&policy)).unwrap();
        let grads: Vec<_> =
            (0..4).map(|_| ts.submit("rollout", vec![policy_ref]).unwrap()).collect();
        let reduced = ts.reduce(&grads, Some(2), ReduceSpec::sum_f32()).unwrap();
        let update = ts.get(reduced).unwrap().to_f32s();
        for (p, u) in policy.iter_mut().zip(update) {
            *p += u / 2.0;
        }
    }
    // Two rounds of "+1 then average the sum of two copies" => policy grows by 1 + 2.
    assert!((policy[0] - 3.0).abs() < 1e-4, "policy[0] = {}", policy[0]);
}

#[test]
fn simulated_broadcast_beats_ray_baseline_by_paper_margin() {
    let env = ScenarioEnv::paper_testbed();
    let hoplite = scenarios::broadcast_latency(&env, 16, 1024 * MB, 0.0).latency_s;
    let model = hoplite::baselines::NetworkModel::from_network(&env.network);
    let ray = Baseline::RayLike.collective(
        &model,
        hoplite::baselines::CollectiveKind::Broadcast,
        16,
        1024 * MB,
    );
    assert!(
        ray / hoplite > 3.0,
        "expected >3x gap at 16 nodes x 1 GB, got hoplite {hoplite:.2}s ray {ray:.2}s"
    );
}

#[test]
fn simulated_failure_mid_broadcast_still_completes() {
    let result = broadcast_failover_demo(8, 128 * MB, 0.03);
    assert_eq!(result.completed_receivers, 6);
    assert!(result.failovers >= 1);
}

#[test]
fn simulated_reduce_subset_makes_progress_without_stragglers() {
    // Reduce 4 of 8 objects; the other 4 are never created. The reduce must still
    // complete (this is the asynchrony property of §3.4.2).
    let mut cluster = SimCluster::paper_testbed(8);
    let sources: Vec<ObjectId> = (0..8).map(|i| ObjectId::from_name(&format!("sub-{i}"))).collect();
    for (i, &source) in sources.iter().enumerate().take(4) {
        cluster.submit_at(
            SimTime::ZERO,
            i,
            ClientOp::Put { object: source, payload: Payload::synthetic(32 * MB) },
        );
    }
    let target = ObjectId::from_name("sub-sum");
    let start = SimTime::from_secs_f64(1.0);
    cluster.submit_at(
        start,
        0,
        ClientOp::Reduce {
            target,
            sources,
            num_objects: Some(4),
            spec: ReduceSpec::sum_f32(),
            degree: None,
        },
    );
    let get = cluster.submit_at(start, 0, ClientOp::Get { object: target });
    cluster.run();
    assert!(cluster.done_time(get).is_some(), "subset reduce completed");
}

#[test]
fn workload_projections_reproduce_headline_speedups() {
    // The abstract's headline numbers: up to 7.8x async SGD, 3.3x serving.
    let sgd_h = async_sgd_throughput(CommSystem::Hoplite, 16, hoplite::apps::params::ALEXNET);
    let sgd_r = async_sgd_throughput(
        CommSystem::Baseline(Baseline::RayLike),
        16,
        hoplite::apps::params::ALEXNET,
    );
    let speedup = sgd_h.throughput / sgd_r.throughput;
    assert!(speedup > 5.0, "async SGD speedup {speedup:.1} < 5");

    let srv_h = serving_throughput(CommSystem::Hoplite, 16);
    let srv_r = serving_throughput(CommSystem::Baseline(Baseline::RayLike), 16);
    let speedup = srv_h.throughput / srv_r.throughput;
    assert!(speedup > 1.8, "serving speedup {speedup:.1} < 1.8");
}

#[test]
fn degree_ablation_crossover_matches_appendix_b() {
    let env = ScenarioEnv::paper_testbed();
    // Small objects: star (d = n) wins; large objects: chain (d = 1) wins.
    let small_star = scenarios::reduce_latency(&env, 16, 4 * 1024, Some(0), 0.0).latency_s;
    let small_chain = scenarios::reduce_latency(&env, 16, 4 * 1024, Some(1), 0.0).latency_s;
    assert!(small_star < small_chain, "star {small_star} vs chain {small_chain} at 4 KB");
    let large_star = scenarios::reduce_latency(&env, 16, 32 * MB, Some(0), 0.0).latency_s;
    let large_chain = scenarios::reduce_latency(&env, 16, 32 * MB, Some(1), 0.0).latency_s;
    assert!(large_chain < large_star, "chain {large_chain} vs star {large_star} at 32 MB");
}
