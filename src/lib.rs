//! Umbrella crate for the Hoplite-RS workspace: re-exports the public APIs of every
//! member crate so the examples and integration tests can use a single dependency.
//!
//! See the individual crates for documentation:
//!
//! * [`hoplite_core`] — the sans-IO Hoplite protocol (object store, directory,
//!   receiver-driven broadcast, dynamic tree reduce, fault handling);
//! * [`hoplite_simnet`] — the discrete-event cluster network simulator;
//! * [`hoplite_transport`] — real in-process and TCP fabrics;
//! * [`hoplite_cluster`] — simulated (`SimCluster`) and real (`LocalCluster`) drivers
//!   plus the §5.1 measurement scenarios;
//! * [`hoplite_baselines`] — OpenMPI/Gloo/Ray/Dask comparator models;
//! * [`hoplite_task`] — the mini task-based framework (dynamic tasks, futures,
//!   lineage);
//! * [`hoplite_apps`] — the paper's application workloads (async SGD, RL, serving,
//!   synchronous training, failure drills).

pub use hoplite_apps as apps;
pub use hoplite_baselines as baselines;
pub use hoplite_cluster as cluster;
pub use hoplite_simnet as simnet;
pub use hoplite_task as task;
pub use hoplite_transport as transport;

/// Re-export of `hoplite-core` (named `core_api` to avoid clashing with `std::core`).
pub use hoplite_core as core_api;
/// Also available under its natural name for `hoplite::core::...` paths in examples.
pub use hoplite_core as core;

/// Re-export of the comparator enum used throughout the examples.
pub use hoplite_baselines::Baseline;
