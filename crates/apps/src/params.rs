//! Workload parameters taken from the paper's evaluation (§5.2–§5.6).

/// A neural-network model used by the training workloads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelSpec {
    /// Display name.
    pub name: &'static str,
    /// Model / gradient size in bytes.
    pub size_bytes: u64,
    /// Per-sample compute time (forward + backward) on one V100-class GPU, seconds.
    /// Calibrated so that the compute-bound throughput ceilings land in the same range
    /// as the paper's figures.
    pub compute_per_sample_s: f64,
}

/// AlexNet: 233 MB of parameters.
pub const ALEXNET: ModelSpec =
    ModelSpec { name: "AlexNet", size_bytes: 233 * 1024 * 1024, compute_per_sample_s: 0.0006 };

/// VGG-16: 528 MB of parameters.
pub const VGG16: ModelSpec =
    ModelSpec { name: "VGG-16", size_bytes: 528 * 1024 * 1024, compute_per_sample_s: 0.0040 };

/// ResNet-50: 97 MB of parameters.
pub const RESNET50: ModelSpec =
    ModelSpec { name: "ResNet-50", size_bytes: 97 * 1024 * 1024, compute_per_sample_s: 0.0030 };

/// The three models used by the (a)synchronous SGD experiments (Figures 9 and 13).
pub const SGD_MODELS: [ModelSpec; 3] = [ALEXNET, VGG16, RESNET50];

/// The two-layer feed-forward policy used by the RL experiments (Figure 10): 64 MB.
pub const RL_MODEL_BYTES: u64 = 64 * 1024 * 1024;

/// Per-rollout simulation time of one RL worker, seconds (samples-optimization class).
pub const RL_ROLLOUT_S: f64 = 0.4;

/// Samples produced by one rollout.
pub const RL_SAMPLES_PER_ROLLOUT: u64 = 10;

/// Per-gradient compute time of one A3C worker, seconds.
pub const RL_GRADIENT_S: f64 = 0.35;

/// Samples represented by one A3C gradient.
pub const RL_SAMPLES_PER_GRADIENT: u64 = 4;

/// Serving query: a batch of 64 images of 256×256, three half-precision channels
/// (Figure 11).
pub const SERVING_QUERY_BYTES: u64 = 64 * 256 * 256 * 3 * 2;

/// Per-query ensemble-member inference time, seconds.
pub const SERVING_INFERENCE_S: f64 = 0.080;

/// Per-query front-end overhead (deserialize, majority vote, HTTP), seconds.
pub const SERVING_OVERHEAD_S: f64 = 0.040;

/// Size of one model's classification result for a 64-image batch (negligible).
pub const SERVING_RESULT_BYTES: u64 = 64 * 1000 * 4;

/// Per-worker minibatch size used by the SGD workloads.
pub const SGD_BATCH_PER_WORKER: u64 = 32;

/// Failure-detection latency measured for plain Ray (§5.5).
pub const RAY_FAILURE_DETECTION_S: f64 = 0.58;

/// Failure-detection latency measured for Ray + Hoplite (§5.5): Hoplite detects via
/// socket liveness, which adds ~28%.
pub const HOPLITE_FAILURE_DETECTION_S: f64 = 0.74;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_sizes_match_paper() {
        assert_eq!(ALEXNET.size_bytes, 233 * 1024 * 1024);
        assert_eq!(VGG16.size_bytes, 528 * 1024 * 1024);
        assert_eq!(RESNET50.size_bytes, 97 * 1024 * 1024);
        assert_eq!(RL_MODEL_BYTES, 64 * 1024 * 1024);
    }

    #[test]
    fn detection_latency_relationship() {
        // Hoplite's socket-liveness detection is ~28% slower than Ray's process
        // monitoring, as reported in §5.5.
        let ratio = HOPLITE_FAILURE_DETECTION_S / RAY_FAILURE_DETECTION_S;
        assert!(ratio > 1.2 && ratio < 1.35);
    }
}
