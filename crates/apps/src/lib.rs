//! # hoplite-apps
//!
//! The application workloads of the Hoplite paper's evaluation (§5.2–§5.6), built on
//! top of the simulated Hoplite cluster and the baseline cost models:
//!
//! * asynchronous-SGD parameter server (Figure 9),
//! * reinforcement-learning training, samples- and gradients-optimization (Figure 10),
//! * ML-ensemble model serving (Figure 11),
//! * failure / rejoin drills (Figure 12), including a protocol-level broadcast
//!   failover experiment on the simulated cluster,
//! * synchronous data-parallel training (Figure 13).
//!
//! GPU compute (neural-network forward/backward passes, RL rollouts, inference) is
//! replaced by calibrated per-sample compute times (see [`params`]); Hoplite's benefit
//! comes from communication scheduling, so the workloads only need compute to occupy a
//! realistic share of each round.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod comm;
pub mod fault;
pub mod params;
pub mod workloads;

pub use comm::{CommProvider, CommSystem};
pub use fault::{broadcast_failover_demo, FailoverResult, TimelinePoint};
pub use params::ModelSpec;
pub use workloads::{RlAlgorithm, ThroughputPoint};
