//! Fault-tolerance experiments (§5.5, Figure 12).
//!
//! Three artifacts are produced:
//!
//! * [`broadcast_failover_demo`] — a *protocol-level* experiment on the simulated
//!   cluster: a broadcast intermediate is killed mid-transfer and the remaining
//!   receivers must still complete by failing over to other senders (§3.5.1). It
//!   returns the latency with and without the failure, demonstrating that the recovery
//!   cost is bounded by the failure-detection delay rather than a restart.
//! * [`directory_failover_demo`] — the metadata-plane counterpart: the *directory
//!   primary* of the broadcast object is killed mid-broadcast; the shard's backup is
//!   promoted and must hold every object-location record (the directory is
//!   replicated, §3.5), so the broadcast completes and nothing is forgotten.
//! * [`serving_failure_timeline`] / [`async_sgd_failure_timeline`] — per-query /
//!   per-iteration latency traces around a worker failure and rejoin, the format of
//!   Figure 12.

use hoplite_baselines::{Baseline, CollectiveKind};
use hoplite_cluster::scenarios::{
    directory_failover_broadcast, rolling_restart_collectives, ScenarioEnv,
};
use hoplite_cluster::sim_cluster::SimCluster;
use hoplite_core::prelude::*;
use hoplite_simnet::prelude::SimTime;

use crate::comm::{CommProvider, CommSystem};
use crate::params::*;

/// Result of the protocol-level broadcast failover experiment.
#[derive(Clone, Debug)]
pub struct FailoverResult {
    /// Broadcast latency with no failure, seconds.
    pub baseline_s: f64,
    /// Broadcast latency when one intermediate receiver fails mid-transfer, seconds.
    pub with_failure_s: f64,
    /// Number of receivers that completed despite the failure.
    pub completed_receivers: usize,
    /// Number of sender failovers performed by the surviving receivers.
    pub failovers: u64,
}

/// Kill one broadcast receiver mid-transfer and check that everyone else still gets the
/// object. `n` is the cluster size (sender + n-1 receivers), `size` the object size.
pub fn broadcast_failover_demo(n: usize, size: u64, fail_at_s: f64) -> FailoverResult {
    let run = |inject: bool| -> (f64, usize, u64) {
        let env = ScenarioEnv::paper_testbed();
        let mut cluster = SimCluster::new(n, env.hoplite.clone(), env.network.clone());
        let object = ObjectId::from_name("failover-model");
        cluster.submit_at(
            SimTime::ZERO,
            0,
            ClientOp::Put { object, payload: Payload::synthetic(size) },
        );
        let start = 1.0;
        let gets: Vec<_> = (1..n)
            .map(|node| {
                cluster.submit_at(SimTime::from_secs_f64(start), node, ClientOp::Get { object })
            })
            .collect();
        if inject {
            // Node 1 is the first receiver and therefore an intermediate sender for the
            // broadcast chain; killing it forces downstream receivers to fail over.
            cluster.fail_node_at(SimTime::from_secs_f64(start + fail_at_s), 1);
        }
        cluster.run();
        let survivors: Vec<_> = if inject { gets[1..].to_vec() } else { gets.clone() };
        let done: Vec<f64> = survivors
            .iter()
            .filter_map(|&h| cluster.done_time(h))
            .map(|t| t.as_secs_f64() - start)
            .collect();
        let failovers = cluster.total_metrics().broadcast_failovers;
        (done.iter().cloned().fold(0.0, f64::max), done.len(), failovers)
    };
    let (baseline_s, _, _) = run(false);
    let (with_failure_s, completed_receivers, failovers) = run(true);
    FailoverResult { baseline_s, with_failure_s, completed_receivers, failovers }
}

/// Result of the directory-primary failover experiment.
#[derive(Clone, Debug)]
pub struct DirectoryFailoverResult {
    /// Broadcast latency with the directory primary killed mid-broadcast, seconds.
    pub with_failure_s: f64,
    /// Receivers that completed despite the metadata-plane failure.
    pub completed_receivers: usize,
    /// `true` when the promoted backup holds a location record for the source and
    /// every receiver — i.e. zero object-location records were lost.
    pub metadata_intact: bool,
    /// Outstanding location queries re-issued at the promoted backup.
    pub directory_failovers: u64,
}

/// Kill the directory primary of the broadcast object mid-broadcast and check that
/// the replicated directory keeps both the data plane and the metadata intact. The
/// last node is dedicated to hosting the shard primary (no object data), so the kill
/// isolates the metadata plane.
pub fn directory_failover_demo(n: usize, size: u64, fail_at_s: f64) -> DirectoryFailoverResult {
    let env = ScenarioEnv::paper_testbed();
    let r = directory_failover_broadcast(&env, n, size, fail_at_s);
    // Expected holders: the source (node 0) plus the n-2 receivers (nodes 1..n-1).
    let metadata_intact =
        (0..(n - 1) as u32).all(|id| r.locations_at_new_primary.iter().any(|h| h.0 == id));
    DirectoryFailoverResult {
        with_failure_s: r.latency_s,
        completed_receivers: r.completed_receivers,
        metadata_intact,
        directory_failovers: r.directory_failovers,
    }
}

/// Result of the rolling-restart experiment.
#[derive(Clone, Debug)]
pub struct RollingRestartDemo {
    /// Cluster size.
    pub n: usize,
    /// Whether every live-traffic wave, re-fetch, and the mid-sequence reduce
    /// completed across the full kill/restart sweep.
    pub all_traffic_completed: bool,
    /// Whether the long-lived object's location records were all present at its
    /// shard's final primary (zero lost records).
    pub metadata_intact: bool,
    /// Shards led again by their original, killed-and-restarted owner at the end.
    pub primaries_restored: usize,
    /// Directory snapshots installed by restarted replicas across the run.
    pub resyncs: u64,
}

/// Kill and restart every node in sequence under live broadcast/reduce traffic: the
/// rolling-restart availability story (§3.5 completed with resync + acked-log). A
/// restarted node rejoins its directory replica sets via state transfer and serves
/// as a shard primary again once the interim primary retires.
pub fn rolling_restart_demo(n: usize, size: u64) -> RollingRestartDemo {
    let env = ScenarioEnv::paper_testbed();
    let r = rolling_restart_collectives(&env, n, size, 3.0);
    let expected: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    RollingRestartDemo {
        n,
        all_traffic_completed: r.waves_completed == r.waves_expected
            && r.refetches_completed == n
            && r.reduce_ok,
        metadata_intact: r.holders == expected,
        primaries_restored: r.primaries_restored,
        resyncs: r.resyncs,
    }
}

/// One point in a Figure-12 style latency timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct TimelinePoint {
    /// Query or iteration index.
    pub index: usize,
    /// Latency in seconds.
    pub latency_s: f64,
    /// Annotation: `"failure"`, `"rejoin"`, or empty.
    pub event: &'static str,
}

fn detection_delay(system: CommSystem) -> f64 {
    match system {
        CommSystem::Hoplite => HOPLITE_FAILURE_DETECTION_S,
        _ => RAY_FAILURE_DETECTION_S,
    }
}

/// Per-query serving latency around a worker failure and rejoin (Figure 12a): `queries`
/// requests against an `nodes`-replica ensemble; the replica fails at `fail_at` and
/// rejoins at `rejoin_at`.
pub fn serving_failure_timeline(
    system: CommSystem,
    nodes: usize,
    queries: usize,
    fail_at: usize,
    rejoin_at: usize,
) -> Vec<TimelinePoint> {
    let comm = CommProvider::new(system);
    let query_latency = |replicas: usize| {
        comm.broadcast(replicas, SERVING_QUERY_BYTES)
            + SERVING_INFERENCE_S
            + comm.gather(replicas, SERVING_RESULT_BYTES)
            + SERVING_OVERHEAD_S
    };
    let normal = query_latency(nodes);
    let degraded = query_latency(nodes - 1);
    (0..queries)
        .map(|i| {
            let (latency, event) = if i == fail_at {
                // The query that observes the failure pays the detection delay before
                // the schedule adapts.
                (normal + detection_delay(system), "failure")
            } else if i > fail_at && i < rejoin_at {
                (degraded, "")
            } else if i == rejoin_at {
                (normal, "rejoin")
            } else {
                (normal, "")
            };
            TimelinePoint { index: i, latency_s: latency, event }
        })
        .collect()
}

/// Per-iteration async-SGD latency around a worker failure and rejoin (Figure 12b).
pub fn async_sgd_failure_timeline(
    system: CommSystem,
    workers: usize,
    iterations: usize,
    fail_at: usize,
    rejoin_at: usize,
    model: ModelSpec,
) -> Vec<TimelinePoint> {
    let comm = CommProvider::new(system);
    // The parameter server still waits for the same half-batch of gradients each
    // iteration; with fewer live workers the same number of gradients takes
    // proportionally longer to produce, which is why iteration latency rises during
    // the recovery window (§5.5).
    let half = (workers / 2).max(1);
    let group = half + 1;
    let iteration_latency = |active_workers: usize| {
        let compute_stretch = workers as f64 / active_workers.max(1) as f64;
        SGD_BATCH_PER_WORKER as f64 * model.compute_per_sample_s * compute_stretch
            + comm.reduce(group, model.size_bytes)
            + comm.broadcast(group, model.size_bytes)
    };
    let normal = iteration_latency(workers);
    let degraded = iteration_latency(workers - 1);
    (0..iterations)
        .map(|i| {
            let (latency, event) = if i == fail_at {
                (normal + detection_delay(system), "failure")
            } else if i > fail_at && i < rejoin_at {
                (degraded, "")
            } else if i == rejoin_at {
                (normal, "rejoin")
            } else {
                (normal, "")
            };
            TimelinePoint { index: i, latency_s: latency, event }
        })
        .collect()
}

/// The comparison shown in Figure 12: Ray vs Ray+Hoplite.
pub fn figure12_systems() -> Vec<CommSystem> {
    vec![CommSystem::Baseline(Baseline::RayLike), CommSystem::Hoplite]
}

/// Convenience: the collectives exercised by the timelines (used in reports).
pub fn figure12_collectives() -> Vec<CollectiveKind> {
    vec![CollectiveKind::Broadcast, CollectiveKind::Reduce, CollectiveKind::Gather]
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn broadcast_failover_completes_for_survivors() {
        let r = broadcast_failover_demo(8, 256 * MB, 0.05);
        assert_eq!(r.completed_receivers, 6, "all surviving receivers finish");
        assert!(r.failovers >= 1, "at least one receiver had to fail over");
        assert!(r.with_failure_s > r.baseline_s, "failure costs something");
        // Recovery is bounded by the detection delay plus a re-fetch of the remaining
        // bytes — nowhere near a full restart of the broadcast.
        assert!(
            r.with_failure_s < r.baseline_s + 1.5,
            "failure overhead too large: {} vs {}",
            r.with_failure_s,
            r.baseline_s
        );
    }

    #[test]
    fn directory_failover_keeps_metadata_and_completions() {
        let r = directory_failover_demo(8, 512 * MB, 0.05);
        assert_eq!(r.completed_receivers, 6, "all receivers finish");
        assert!(r.metadata_intact, "promoted backup lost location records");
        assert!(r.directory_failovers >= 1, "the late receiver re-drove its query");
    }

    #[test]
    fn rolling_restart_demo_survives_the_full_sweep() {
        let r = rolling_restart_demo(6, 8 * MB);
        assert!(r.all_traffic_completed, "waves, re-fetches and the reduce all completed");
        assert!(r.metadata_intact, "zero lost location records");
        assert!(r.primaries_restored >= r.n - 1, "original owners lead their shards again");
        assert!(r.resyncs >= r.n as u64, "every restart went through snapshot resync");
    }

    #[test]
    fn serving_timeline_shows_spike_then_recovery() {
        let t = serving_failure_timeline(CommSystem::Hoplite, 8, 70, 20, 45);
        assert_eq!(t.len(), 70);
        let normal = t[5].latency_s;
        assert!(t[20].latency_s > normal + 0.5, "detection spike present");
        assert_eq!(t[20].event, "failure");
        assert_eq!(t[45].event, "rejoin");
        // Hoplite's degraded-mode latency is close to normal (efficient broadcast),
        // unlike Ray whose latency visibly drops because it fans out to one fewer
        // replica.
        assert!((t[30].latency_s - normal).abs() < 0.10 * normal);
        let ray = serving_failure_timeline(CommSystem::Baseline(Baseline::RayLike), 8, 70, 20, 45);
        assert!(ray[30].latency_s < ray[5].latency_s, "Ray latency drops with one fewer replica");
    }

    #[test]
    fn sgd_timeline_latency_rises_during_recovery_window() {
        let t = async_sgd_failure_timeline(CommSystem::Hoplite, 6, 30, 10, 20, RESNET50);
        let normal = t[5].latency_s;
        assert!(t[10].latency_s > normal + 0.5);
        assert!(t[15].latency_s > normal, "recovery window is slower");
        assert!((t[25].latency_s - normal).abs() < 1e-9, "back to normal after rejoin");
    }
}
