//! The application workloads of §5.2–§5.6: asynchronous SGD, reinforcement learning
//! (samples- and gradients-optimization), ML-ensemble model serving, and synchronous
//! data-parallel training.
//!
//! Each workload composes calibrated compute phases with communication phases obtained
//! from a [`CommProvider`] — the Hoplite provider runs the full protocol on the
//! simulated cluster, the baseline providers evaluate the comparator cost models — and
//! reports throughput in the same units as the paper's figures.

use hoplite_baselines::Baseline;

use crate::comm::{CommProvider, CommSystem};
use crate::params::*;

/// One (system, cluster-size) throughput measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct ThroughputPoint {
    /// System label ("Hoplite", "Ray-like", ...).
    pub system: String,
    /// Number of nodes in the cluster.
    pub nodes: usize,
    /// Workload label (model name or algorithm).
    pub workload: String,
    /// Throughput in the figure's units (samples/s or queries/s).
    pub throughput: f64,
}

fn provider(system: CommSystem) -> CommProvider {
    CommProvider::new(system)
}

/// Asynchronous-SGD parameter-server throughput (Figure 9).
///
/// One node is the parameter server; the rest are workers. Each round the server
/// reduces gradients from the first half of the workers that finish and broadcasts the
/// new weights back to them (exactly the policy described in §5.2).
pub fn async_sgd_throughput(system: CommSystem, nodes: usize, model: ModelSpec) -> ThroughputPoint {
    let comm = provider(system);
    let workers = nodes.saturating_sub(1).max(1);
    let half = (workers / 2).max(1);
    let compute = SGD_BATCH_PER_WORKER as f64 * model.compute_per_sample_s;
    // The reducing/broadcasting group is the parameter server plus the half batch.
    let group = half + 1;
    let round =
        compute + comm.reduce(group, model.size_bytes) + comm.broadcast(group, model.size_bytes);
    let throughput = workers as f64 * SGD_BATCH_PER_WORKER as f64 / round;
    ThroughputPoint { system: system.label(), nodes, workload: model.name.to_string(), throughput }
}

/// Which RL training architecture (Figure 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RlAlgorithm {
    /// Samples optimization: the trainer broadcasts the policy, workers return rollouts
    /// (IMPALA, APPO).
    Impala,
    /// Gradients optimization: workers return gradients, the trainer reduces them and
    /// broadcasts the updated policy (A3C).
    A3c,
}

impl RlAlgorithm {
    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            RlAlgorithm::Impala => "IMPALA",
            RlAlgorithm::A3c => "A3C",
        }
    }
}

/// RL training throughput in samples per second (Figure 10): 1 trainer + (n-1) workers,
/// the trainer synchronizes with the first half of the workers each round.
pub fn rl_throughput(system: CommSystem, nodes: usize, algo: RlAlgorithm) -> ThroughputPoint {
    let comm = provider(system);
    let workers = nodes.saturating_sub(1).max(1);
    let half = (workers / 2).max(1);
    let group = half + 1;
    let (round, samples_per_worker) = match algo {
        RlAlgorithm::Impala => {
            // Broadcast the policy to the finished half; rollouts returned to the
            // trainer are small compared to the 64 MB policy.
            let round = RL_ROLLOUT_S + comm.broadcast(group, RL_MODEL_BYTES);
            (round, RL_SAMPLES_PER_ROLLOUT as f64)
        }
        RlAlgorithm::A3c => {
            let round = RL_GRADIENT_S
                + comm.reduce(group, RL_MODEL_BYTES)
                + comm.broadcast(group, RL_MODEL_BYTES);
            (round, RL_SAMPLES_PER_GRADIENT as f64)
        }
    };
    ThroughputPoint {
        system: system.label(),
        nodes,
        workload: algo.label().to_string(),
        throughput: workers as f64 * samples_per_worker / round,
    }
}

/// Ensemble model-serving throughput in queries per second (Figure 11): every query is
/// broadcast to all replicas, each runs its model, results are gathered and voted on.
pub fn serving_throughput(system: CommSystem, nodes: usize) -> ThroughputPoint {
    let comm = provider(system);
    let round = comm.broadcast(nodes, SERVING_QUERY_BYTES)
        + SERVING_INFERENCE_S
        + comm.gather(nodes, SERVING_RESULT_BYTES)
        + SERVING_OVERHEAD_S;
    ThroughputPoint {
        system: system.label(),
        nodes,
        workload: "ensemble-serving".to_string(),
        throughput: 1.0 / round,
    }
}

/// Synchronous data-parallel training throughput (Figure 13): all `n` nodes compute on
/// their partition and allreduce the gradients every round.
pub fn sync_training_throughput(
    system: CommSystem,
    nodes: usize,
    model: ModelSpec,
) -> ThroughputPoint {
    let comm = provider(system);
    let compute = SGD_BATCH_PER_WORKER as f64 * model.compute_per_sample_s;
    let round = compute + comm.allreduce(nodes, model.size_bytes);
    ThroughputPoint {
        system: system.label(),
        nodes,
        workload: model.name.to_string(),
        throughput: nodes as f64 * SGD_BATCH_PER_WORKER as f64 / round,
    }
}

/// The systems compared in Figures 9–11 (task-system workloads): Hoplite vs plain Ray.
pub fn task_workload_systems() -> Vec<CommSystem> {
    vec![CommSystem::Hoplite, CommSystem::Baseline(Baseline::RayLike)]
}

/// The systems compared in Figure 13: Hoplite, OpenMPI, Gloo (ring-chunked), Ray.
pub fn sync_training_systems() -> Vec<CommSystem> {
    vec![
        CommSystem::Hoplite,
        CommSystem::Baseline(Baseline::MpiLike),
        CommSystem::Baseline(Baseline::GlooRingChunked),
        CommSystem::Baseline(Baseline::RayLike),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_shape_async_sgd_speedups() {
        // At 16 nodes Hoplite speeds up async SGD by roughly 5–8× depending on the
        // model (paper: 7.8× AlexNet, 7.0× VGG-16, 5.0× ResNet-50).
        for (model, lo, hi) in [(ALEXNET, 5.0, 11.0), (VGG16, 5.0, 10.0), (RESNET50, 3.0, 7.5)] {
            let h = async_sgd_throughput(CommSystem::Hoplite, 16, model).throughput;
            let r =
                async_sgd_throughput(CommSystem::Baseline(Baseline::RayLike), 16, model).throughput;
            let speedup = h / r;
            assert!(
                speedup > lo && speedup < hi,
                "{}: speedup {speedup:.2} outside [{lo}, {hi}]",
                model.name
            );
        }
    }

    #[test]
    fn figure10_shape_rl_speedups() {
        let h8 = rl_throughput(CommSystem::Hoplite, 8, RlAlgorithm::Impala).throughput;
        let r8 = rl_throughput(CommSystem::Baseline(Baseline::RayLike), 8, RlAlgorithm::Impala)
            .throughput;
        assert!(h8 / r8 > 1.3 && h8 / r8 < 2.8, "IMPALA 8-node speedup {:.2}", h8 / r8);

        let h16 = rl_throughput(CommSystem::Hoplite, 16, RlAlgorithm::A3c).throughput;
        let r16 =
            rl_throughput(CommSystem::Baseline(Baseline::RayLike), 16, RlAlgorithm::A3c).throughput;
        let h8a = rl_throughput(CommSystem::Hoplite, 8, RlAlgorithm::A3c).throughput;
        assert!(h16 / r16 > 2.0, "A3C 16-node speedup {:.2}", h16 / r16);
        // A3C with Hoplite scales close to linearly from 8 to 16 nodes (§5.3).
        assert!(h16 / h8a > 1.7, "A3C scaling {:.2}", h16 / h8a);
    }

    #[test]
    fn figure11_shape_serving_speedup_grows_with_cluster() {
        let h8 = serving_throughput(CommSystem::Hoplite, 8).throughput;
        let r8 = serving_throughput(CommSystem::Baseline(Baseline::RayLike), 8).throughput;
        let h16 = serving_throughput(CommSystem::Hoplite, 16).throughput;
        let r16 = serving_throughput(CommSystem::Baseline(Baseline::RayLike), 16).throughput;
        let s8 = h8 / r8;
        let s16 = h16 / r16;
        assert!(s8 > 1.5 && s8 < 3.5, "8-node serving speedup {s8:.2}");
        assert!(s16 > s8, "speedup grows with cluster size");
        assert!(s16 < 5.0, "16-node serving speedup {s16:.2}");
    }

    #[test]
    fn figure13_shape_sync_training_ordering() {
        // Gloo (ring-chunked) ≥ Hoplite, Hoplite ≈ OpenMPI, Ray far behind.
        let model = RESNET50;
        let h = sync_training_throughput(CommSystem::Hoplite, 16, model).throughput;
        let gloo =
            sync_training_throughput(CommSystem::Baseline(Baseline::GlooRingChunked), 16, model)
                .throughput;
        let mpi =
            sync_training_throughput(CommSystem::Baseline(Baseline::MpiLike), 16, model).throughput;
        let ray =
            sync_training_throughput(CommSystem::Baseline(Baseline::RayLike), 16, model).throughput;
        assert!(gloo >= h * 0.99, "gloo {gloo:.0} vs hoplite {h:.0}");
        // The paper reports Hoplite 12–24% behind Gloo; our chain-reduce + chain-
        // broadcast pays more per-hop pipeline latency on the simulated network, so we
        // only require the ordering and a bounded gap (see EXPERIMENTS.md).
        assert!(h / gloo > 0.45, "hoplite within ~2x of gloo, got {:.2}", h / gloo);
        assert!((h / mpi) > 0.45 && (h / mpi) < 1.4, "hoplite ~ OpenMPI, ratio {:.2}", h / mpi);
        assert!(h / ray > 3.0, "hoplite much faster than Ray, ratio {:.2}", h / ray);
    }
}
