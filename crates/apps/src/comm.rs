//! Communication-time providers for the application workloads.
//!
//! Application rounds are composed of compute phases (modelled from calibrated
//! per-sample costs) and communication phases. Communication times come from one of
//! two providers:
//!
//! * [`CommProvider::Hoplite`] — runs the *actual* Hoplite protocol on the simulated
//!   cluster (`hoplite_cluster::scenarios`) for the requested collective, and memoizes
//!   the result;
//! * [`CommProvider::Baseline`] — evaluates the corresponding comparator cost model
//!   from `hoplite-baselines` (Ray's object store for §5.2–§5.5, OpenMPI/Gloo for the
//!   synchronous-training comparison of §5.6).

use std::collections::HashMap;

use hoplite_baselines::{Baseline, CollectiveKind, NetworkModel};
use hoplite_cluster::scenarios::{self, ScenarioEnv};
use parking_lot::Mutex;

/// Where communication times come from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommSystem {
    /// Full-protocol Hoplite simulation.
    Hoplite,
    /// One of the comparator cost models.
    Baseline(Baseline),
}

impl CommSystem {
    /// Label used in experiment output.
    pub fn label(&self) -> String {
        match self {
            CommSystem::Hoplite => "Hoplite".to_string(),
            CommSystem::Baseline(b) => b.label().to_string(),
        }
    }
}

/// Memoizing provider of collective latencies.
pub struct CommProvider {
    system: CommSystem,
    env: ScenarioEnv,
    model: NetworkModel,
    cache: Mutex<HashMap<(CollectiveKind, usize, u64), f64>>,
}

impl CommProvider {
    /// Build a provider for the given system on the paper-testbed network.
    pub fn new(system: CommSystem) -> Self {
        let env = ScenarioEnv::paper_testbed();
        let model = NetworkModel::from_network(&env.network);
        CommProvider { system, env, model, cache: Mutex::new(HashMap::new()) }
    }

    /// The system this provider models.
    pub fn system(&self) -> CommSystem {
        self.system
    }

    /// Latency in seconds of one collective over `n` participants and `size`-byte
    /// objects.
    pub fn collective(&self, kind: CollectiveKind, n: usize, size: u64) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        if let Some(&hit) = self.cache.lock().get(&(kind, n, size)) {
            return hit;
        }
        let value = match self.system {
            CommSystem::Baseline(b) => b.collective(&self.model, kind, n, size),
            CommSystem::Hoplite => {
                let r = match kind {
                    CollectiveKind::Broadcast => {
                        scenarios::broadcast_latency(&self.env, n, size, 0.0)
                    }
                    CollectiveKind::Gather => scenarios::gather_latency(&self.env, n, size),
                    CollectiveKind::Reduce => {
                        scenarios::reduce_latency(&self.env, n, size, None, 0.0)
                    }
                    CollectiveKind::AllReduce => {
                        scenarios::allreduce_latency(&self.env, n, size, 0.0)
                    }
                };
                r.latency_s
            }
        };
        self.cache.lock().insert((kind, n, size), value);
        value
    }

    /// Broadcast latency.
    pub fn broadcast(&self, n: usize, size: u64) -> f64 {
        self.collective(CollectiveKind::Broadcast, n, size)
    }

    /// Reduce latency.
    pub fn reduce(&self, n: usize, size: u64) -> f64 {
        self.collective(CollectiveKind::Reduce, n, size)
    }

    /// Gather latency.
    pub fn gather(&self, n: usize, size: u64) -> f64 {
        self.collective(CollectiveKind::Gather, n, size)
    }

    /// AllReduce latency.
    pub fn allreduce(&self, n: usize, size: u64) -> f64 {
        self.collective(CollectiveKind::AllReduce, n, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn hoplite_provider_is_memoized_and_sane() {
        let p = CommProvider::new(CommSystem::Hoplite);
        let first = p.broadcast(8, 64 * MB);
        let second = p.broadcast(8, 64 * MB);
        assert_eq!(first, second);
        assert!(first > 0.0 && first < 2.0);
    }

    #[test]
    fn hoplite_beats_ray_baseline_on_broadcast() {
        let hoplite = CommProvider::new(CommSystem::Hoplite);
        let ray = CommProvider::new(CommSystem::Baseline(Baseline::RayLike));
        let h = hoplite.broadcast(16, 64 * MB);
        let r = ray.broadcast(16, 64 * MB);
        assert!(r > 2.0 * h, "hoplite {h:.4}s vs ray {r:.4}s");
    }

    #[test]
    fn degenerate_single_participant_costs_nothing() {
        let p = CommProvider::new(CommSystem::Baseline(Baseline::RayLike));
        assert_eq!(p.reduce(1, MB), 0.0);
    }
}
