//! Wire framing for the real transports.
//!
//! The paper's implementation splits traffic into a gRPC control plane and a raw-TCP
//! data plane (§4). We mirror that split inside a single framed stream: every message
//! is encoded with a compact fixed binary layout — one tag byte selecting the variant,
//! followed by the variant's fields in declaration order. Bulk messages (`PushBlock`,
//! `ReduceBlock`) keep their historical tags so the payload bytes sit at a fixed,
//! copy-friendly offset. Each frame is length-prefixed.
//!
//! Frame layout:
//!
//! ```text
//! +----------------+--------+----------------------------+
//! | length: u32 BE | tag u8 | body (length - 1 bytes)    |
//! +----------------+--------+----------------------------+
//! tag  1 = PushBlock        (bulk)
//! tag  2 = ReduceBlock      (bulk)
//! tag  3+ = control messages (one tag per variant, see `tags`)
//! ```
//!
//! Integers are big-endian. Variable-length fields (`Vec`, `String`, payloads) are
//! length-prefixed. The codec is hand-rolled and dependency-free; the decode side
//! bounds-checks every read and rejects trailing or truncated bytes.

use bytes::Bytes;
use hoplite_core::prelude::*;
use hoplite_core::protocol::ReduceParent;
use hoplite_core::reduce::{DType, ReduceOp};
// The core prelude exports its own single-parameter `Result` alias; framing uses the
// standard two-parameter form.
use std::result::Result;

/// Errors produced while encoding or decoding frames.
#[derive(Debug)]
pub enum FrameError {
    /// The frame is shorter than its header or otherwise malformed.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn malformed(what: &str) -> FrameError {
    FrameError::Malformed(what.to_string())
}

/// Message tags. Bulk tags 1/2 are stable; control tags follow.
mod tags {
    pub const PUSH_BLOCK: u8 = 1;
    pub const REDUCE_BLOCK: u8 = 2;
    pub const DIR_REGISTER: u8 = 3;
    pub const DIR_PUT_INLINE: u8 = 4;
    pub const DIR_UNREGISTER: u8 = 5;
    pub const DIR_QUERY: u8 = 6;
    pub const DIR_QUERY_REPLY: u8 = 7;
    pub const DIR_SUBSCRIBE: u8 = 8;
    pub const DIR_PUBLISH: u8 = 9;
    pub const DIR_TRANSFER_DONE: u8 = 10;
    pub const DIR_DELETE: u8 = 11;
    pub const STORE_RELEASE: u8 = 12;
    pub const PULL_REQUEST: u8 = 13;
    pub const PULL_CANCEL: u8 = 14;
    pub const PULL_ERROR: u8 = 15;
    pub const REDUCE_INSTRUCTION: u8 = 16;
    pub const REDUCE_DONE: u8 = 17;
    pub const DIR_UNSUBSCRIBE: u8 = 18;
    pub const DIR_REPLICATE: u8 = 19;
    pub const REDUCE_RELEASE: u8 = 20;
    pub const DIR_ACK: u8 = 21;
    pub const DIR_SNAPSHOT_REQUEST: u8 = 22;
    pub const DIR_SNAPSHOT: u8 = 23;
    pub const DIR_RESYNCED: u8 = 24;
    pub const DIR_CONFIRM: u8 = 25;
    pub const HELLO: u8 = 26;
    pub const DIR_SNAPSHOT_CHUNK: u8 = 27;
    pub const DIR_RESYNC_DELTA: u8 = 28;
    pub const PEER_FAILURE_NOTICE: u8 = 29;
    pub const MEMBERSHIP_DIGEST: u8 = 30;
    pub const PING: u8 = 31;
    pub const ACK: u8 = 32;
    pub const PING_REQ: u8 = 33;
}

/// Sub-tags selecting the [`ConfirmKind`] variant inside a `DirConfirm` frame.
mod confirm_tags {
    pub const LOCATION: u8 = 0;
    pub const INLINE: u8 = 1;
    pub const SUBSCRIPTION: u8 = 2;
}

/// Sub-tags selecting the [`DirOp`] variant inside a `DirReplicate` frame.
mod op_tags {
    pub const REGISTER: u8 = 0;
    pub const PUT_INLINE: u8 = 1;
    pub const UNREGISTER: u8 = 2;
    pub const QUERY: u8 = 3;
    pub const SUBSCRIBE: u8 = 4;
    pub const UNSUBSCRIBE: u8 = 5;
    pub const TRANSFER_DONE: u8 = 6;
    pub const DELETE: u8 = 7;
}

// ---------------------------------------------------------- scatter-gather frames --

/// Payload segments shorter than this are copied into the adjacent contiguous run
/// instead of being emitted as separate scatter-gather parts. This is the short-frame
/// coalesce threshold: control messages and tiny inline payloads stay one contiguous
/// part (one `write` syscall on the TCP fabric, no iovec bookkeeping), while bulk
/// blocks ride as shared segment references with zero payload memcpys. Tune it to the
/// crossover point where one extra iovec beats one memcpy on the target machine —
/// a few KiB on commodity Linux; raising it trades copies for fewer syscalls.
pub const GATHER_MIN_SEGMENT: usize = 4 * 1024;

/// A wire frame encoded as scatter-gather parts: the length-prefixed `header` holds
/// the tag and every fixed field, and `segments` holds the bulk payload as shared,
/// zero-copy references (for a forwarded block: the very [`Bytes`] views sitting in
/// the sender's `ProgressBuffer`, uncoalesced). Flattening `header ++ segments`
/// yields byte-for-byte the frame [`encode_frame`] produces.
#[derive(Clone, Debug)]
pub struct EncodedFrame {
    /// Length prefix, tag, and fixed fields (plus any payload bytes below the
    /// [`GATHER_MIN_SEGMENT`] coalesce threshold).
    pub header: Bytes,
    /// Bulk payload segments, in wire order, shared zero-copy with their producers.
    pub segments: Vec<Bytes>,
}

impl EncodedFrame {
    /// Total frame length in bytes (length prefix included).
    pub fn frame_len(&self) -> usize {
        self.header.len() + self.segments.iter().map(|s| s.len()).sum::<usize>()
    }

    /// All parts in wire order (header first).
    pub fn parts(&self) -> impl Iterator<Item = &Bytes> {
        std::iter::once(&self.header).chain(self.segments.iter())
    }

    /// Flatten into one contiguous frame (tests and diagnostics; the send path never
    /// needs this).
    pub fn to_contiguous(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.frame_len());
        for part in self.parts() {
            out.extend_from_slice(part);
        }
        out
    }
}

/// Internal encode sink: an ordered list of parts, either owned contiguous runs or
/// shared payload segments. With `gather` off every byte lands in one owned run (the
/// legacy contiguous encoding); with `gather` on, payload segments at or above
/// [`GATHER_MIN_SEGMENT`] are adopted by reference.
enum Part {
    Owned(Vec<u8>),
    Shared(Bytes),
}

struct FrameWriter {
    gather: bool,
    parts: Vec<Part>,
}

impl FrameWriter {
    fn new(gather: bool) -> FrameWriter {
        FrameWriter { gather, parts: vec![Part::Owned(Vec::new())] }
    }

    /// The current owned run, extended after any shared segment.
    fn run(&mut self) -> &mut Vec<u8> {
        if !matches!(self.parts.last(), Some(Part::Owned(_))) {
            self.parts.push(Part::Owned(Vec::new()));
        }
        match self.parts.last_mut() {
            Some(Part::Owned(v)) => v,
            _ => unreachable!("an owned run was just ensured"),
        }
    }

    fn put(&mut self, bytes: &[u8]) {
        self.run().extend_from_slice(bytes);
    }

    fn put_byte(&mut self, byte: u8) {
        self.run().push(byte);
    }

    /// Adopt a shared payload segment by reference, or copy it into the current run
    /// when gathering is off / the segment is under the coalesce threshold. The copy
    /// branch is the *only* place encode touches payload bytes, and it shows up in
    /// the debug copy tally.
    fn put_shared(&mut self, segment: &Bytes) {
        if self.gather && segment.len() >= GATHER_MIN_SEGMENT {
            self.parts.push(Part::Shared(segment.clone()));
        } else {
            hoplite_core::copytrace::record(segment.len());
            self.put(segment);
        }
    }

    fn body_len(&self) -> usize {
        self.parts
            .iter()
            .map(|p| match p {
                Part::Owned(v) => v.len(),
                Part::Shared(b) => b.len(),
            })
            .sum()
    }

    /// The contiguous body (gather must be off: everything is one owned run).
    fn into_contiguous(mut self) -> Vec<u8> {
        debug_assert!(!self.gather);
        debug_assert_eq!(self.parts.len(), 1);
        match self.parts.pop() {
            Some(Part::Owned(v)) => v,
            _ => unreachable!("contiguous writer holds exactly one owned run"),
        }
    }

    /// Assemble a length-prefixed scatter-gather frame.
    fn into_frame(self) -> Result<EncodedFrame, FrameError> {
        let body_len = self.body_len();
        let len32 =
            u32::try_from(body_len).map_err(|_| malformed("frame body exceeds u32 length"))?;
        let mut iter = self.parts.into_iter();
        let first = match iter.next() {
            Some(Part::Owned(v)) => v,
            _ => unreachable!("the writer is seeded with an owned run"),
        };
        let mut header = Vec::with_capacity(4 + first.len());
        header.extend_from_slice(&len32.to_be_bytes());
        header.extend_from_slice(&first);
        let segments = iter
            .map(|p| match p {
                Part::Owned(v) => Bytes::from(v),
                Part::Shared(b) => b,
            })
            .collect();
        Ok(EncodedFrame { header: Bytes::from(header), segments })
    }
}

// ------------------------------------------------------------------ write helpers --

fn put_opt_u64(out: &mut FrameWriter, v: Option<u64>) {
    match v {
        None => out.put_byte(0),
        Some(v) => {
            out.put_byte(1);
            out.put(&v.to_be_bytes());
        }
    }
}

fn put_opt_node(out: &mut FrameWriter, v: Option<NodeId>) {
    match v {
        None => out.put_byte(0),
        Some(n) => {
            out.put_byte(1);
            out.put(&n.0.to_be_bytes());
        }
    }
}

fn put_opt_object(out: &mut FrameWriter, v: Option<ObjectId>) {
    match v {
        None => out.put_byte(0),
        Some(o) => {
            out.put_byte(1);
            out.put(&o.0);
        }
    }
}

fn put_digest(out: &mut FrameWriter, entries: &[(NodeId, u64, bool)]) {
    put_u64(out, entries.len() as u64);
    for (node, incarnation, alive) in entries {
        put_node(out, *node);
        put_u64(out, *incarnation);
        put_bool(out, *alive);
    }
}

fn put_gossip(out: &mut FrameWriter, entries: &[GossipEntry]) {
    put_u64(out, entries.len() as u64);
    for (node, incarnation, state) in entries {
        put_node(out, *node);
        put_u64(out, *incarnation);
        put_u8(out, state.to_wire());
    }
}

fn put_snapshot(out: &mut FrameWriter, state: &ShardSnapshot) {
    put_u64(out, state.entries.len() as u64);
    for e in &state.entries {
        put_object(out, e.object);
        put_opt_u64(out, e.size);
        put_u64(out, e.locations.len() as u64);
        for (holder, status, leased_to) in &e.locations {
            put_node(out, *holder);
            put_status(out, *status);
            put_opt_node(out, *leased_to);
        }
        match &e.inline {
            None => put_u8(out, 0),
            Some(p) => {
                put_u8(out, 1);
                put_payload(out, p);
            }
        }
        put_u64(out, e.pending.len() as u64);
        for (requester, query_id, exclude) in &e.pending {
            put_node(out, *requester);
            put_u64(out, *query_id);
            put_nodes(out, exclude);
        }
        put_u64(out, e.inline_stamp);
        put_nodes(out, &e.subscribers);
        put_u64(out, e.pulls.len() as u64);
        for (receiver, sender) in &e.pulls {
            put_node(out, *receiver);
            put_node(out, *sender);
        }
        put_bool(out, e.deleted);
    }
}

fn put_u8(out: &mut FrameWriter, v: u8) {
    out.put_byte(v);
}

fn put_u32(out: &mut FrameWriter, v: u32) {
    out.put(&v.to_be_bytes());
}

fn put_u64(out: &mut FrameWriter, v: u64) {
    out.put(&v.to_be_bytes());
}

fn put_bool(out: &mut FrameWriter, v: bool) {
    out.put_byte(u8::from(v));
}

fn put_object(out: &mut FrameWriter, object: ObjectId) {
    out.put(&object.0);
}

fn put_node(out: &mut FrameWriter, node: NodeId) {
    put_u32(out, node.0);
}

fn put_status(out: &mut FrameWriter, status: ObjectStatus) {
    put_u8(
        out,
        match status {
            ObjectStatus::Partial => 0,
            ObjectStatus::Complete => 1,
        },
    );
}

fn put_spec(out: &mut FrameWriter, spec: ReduceSpec) {
    put_u8(
        out,
        match spec.op {
            ReduceOp::Sum => 0,
            ReduceOp::Min => 1,
            ReduceOp::Max => 2,
        },
    );
    put_u8(
        out,
        match spec.dtype {
            DType::F32 => 0,
            DType::F64 => 1,
            DType::I32 => 2,
            DType::I64 => 3,
        },
    );
}

fn put_string(out: &mut FrameWriter, s: &str) {
    put_u64(out, s.len() as u64);
    out.put(s.as_bytes());
}

fn put_nodes(out: &mut FrameWriter, nodes: &[NodeId]) {
    put_u64(out, nodes.len() as u64);
    for &n in nodes {
        put_node(out, n);
    }
}

/// Encode a payload: a kind byte, the total length, then the bytes. Real payloads —
/// contiguous or segmented — produce identical wire bytes; under a gathering writer
/// the segments ride as shared references instead of being copied, which is the whole
/// point of the scatter-gather send path.
fn put_payload(out: &mut FrameWriter, payload: &Payload) {
    if payload.is_synthetic() {
        put_u8(out, 1);
        put_u64(out, payload.len());
        return;
    }
    put_u8(out, 0);
    put_u64(out, payload.len());
    for segment in payload.segments() {
        out.put_shared(segment);
    }
}

fn put_dir_op(out: &mut FrameWriter, op: &DirOp) {
    match op {
        DirOp::Register { object, holder, status, size } => {
            put_u8(out, op_tags::REGISTER);
            put_object(out, *object);
            put_node(out, *holder);
            put_status(out, *status);
            put_u64(out, *size);
        }
        DirOp::PutInline { object, holder, payload } => {
            put_u8(out, op_tags::PUT_INLINE);
            put_object(out, *object);
            put_node(out, *holder);
            put_payload(out, payload);
        }
        DirOp::Unregister { object, holder } => {
            put_u8(out, op_tags::UNREGISTER);
            put_object(out, *object);
            put_node(out, *holder);
        }
        DirOp::Query { object, requester, query_id, exclude } => {
            put_u8(out, op_tags::QUERY);
            put_object(out, *object);
            put_node(out, *requester);
            put_u64(out, *query_id);
            put_nodes(out, exclude);
        }
        DirOp::Subscribe { object, subscriber } => {
            put_u8(out, op_tags::SUBSCRIBE);
            put_object(out, *object);
            put_node(out, *subscriber);
        }
        DirOp::Unsubscribe { object, subscriber } => {
            put_u8(out, op_tags::UNSUBSCRIBE);
            put_object(out, *object);
            put_node(out, *subscriber);
        }
        DirOp::TransferDone { object, receiver, sender } => {
            put_u8(out, op_tags::TRANSFER_DONE);
            put_object(out, *object);
            put_node(out, *receiver);
            put_node(out, *sender);
        }
        DirOp::Delete { object } => {
            put_u8(out, op_tags::DELETE);
            put_object(out, *object);
        }
    }
}

// ------------------------------------------------------------------- read helpers --

/// Bounds-checked cursor over a received frame body.
///
/// The cursor borrows the frame as a shared [`Bytes`] buffer so payload fields decode
/// as zero-copy sub-slices of the receive buffer instead of fresh allocations — the
/// difference between ~1 GiB/s and encode-parity decode throughput on 4 MiB blocks
/// (see `BENCH_NOTES.md`).
struct Reader<'a> {
    buf: &'a Bytes,
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a Bytes, at: usize) -> Reader<'a> {
        Reader { buf, at }
    }

    /// End offset of an `n`-byte read, or an error when it overflows or runs past the
    /// frame (a corrupt or hostile length field must surface as `Malformed`, never as
    /// an arithmetic panic — these bytes come straight off the network).
    fn end_of(&self, n: usize) -> Result<usize, FrameError> {
        match self.at.checked_add(n) {
            Some(end) if end <= self.buf.len() => Ok(end),
            _ => Err(malformed("truncated field")),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.end_of(n)?;
        let slice = &self.buf.as_slice()[self.at..end];
        self.at = end;
        Ok(slice)
    }

    /// Take `n` bytes as a shared sub-slice of the frame (no copy).
    fn take_shared(&mut self, n: usize) -> Result<Bytes, FrameError> {
        let end = self.end_of(n)?;
        let shared = self.buf.slice(self.at..end);
        self.at = end;
        Ok(shared)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn usize_checked(&mut self) -> Result<usize, FrameError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| malformed("length overflows usize"))
    }

    fn bool(&mut self) -> Result<bool, FrameError> {
        Ok(self.u8()? != 0)
    }

    fn object(&mut self) -> Result<ObjectId, FrameError> {
        Ok(ObjectId(self.take(16)?.try_into().expect("16 bytes")))
    }

    fn node(&mut self) -> Result<NodeId, FrameError> {
        Ok(NodeId(self.u32()?))
    }

    fn status(&mut self) -> Result<ObjectStatus, FrameError> {
        match self.u8()? {
            0 => Ok(ObjectStatus::Partial),
            1 => Ok(ObjectStatus::Complete),
            other => Err(malformed(&format!("unknown object status {other}"))),
        }
    }

    fn spec(&mut self) -> Result<ReduceSpec, FrameError> {
        let op = match self.u8()? {
            0 => ReduceOp::Sum,
            1 => ReduceOp::Min,
            2 => ReduceOp::Max,
            other => return Err(malformed(&format!("unknown reduce op {other}"))),
        };
        let dtype = match self.u8()? {
            0 => DType::F32,
            1 => DType::F64,
            2 => DType::I32,
            3 => DType::I64,
            other => return Err(malformed(&format!("unknown dtype {other}"))),
        };
        Ok(ReduceSpec { op, dtype })
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let len = self.usize_checked()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("invalid utf-8 string"))
    }

    fn nodes(&mut self) -> Result<Vec<NodeId>, FrameError> {
        let len = self.usize_checked()?;
        if len > self.buf.len() {
            return Err(malformed("node list longer than frame"));
        }
        (0..len).map(|_| self.node()).collect()
    }

    fn payload(&mut self) -> Result<Payload, FrameError> {
        match self.u8()? {
            0 => {
                let len = self.usize_checked()?;
                Ok(Payload::Bytes(self.take_shared(len)?))
            }
            1 => Ok(Payload::synthetic(self.u64()?)),
            other => Err(malformed(&format!("unknown payload kind {other}"))),
        }
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, FrameError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(malformed(&format!("unknown option flag {other}"))),
        }
    }

    fn opt_node(&mut self) -> Result<Option<NodeId>, FrameError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.node()?)),
            other => Err(malformed(&format!("unknown option flag {other}"))),
        }
    }

    fn opt_object(&mut self) -> Result<Option<ObjectId>, FrameError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.object()?)),
            other => Err(malformed(&format!("unknown option flag {other}"))),
        }
    }

    fn digest(&mut self) -> Result<Vec<(NodeId, u64, bool)>, FrameError> {
        // Minimum per entry: 4 node + 8 incarnation + 1 alive flag.
        let n = self.count(13)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push((self.node()?, self.u64()?, self.bool()?));
        }
        Ok(entries)
    }

    fn gossip(&mut self) -> Result<Vec<GossipEntry>, FrameError> {
        // Minimum per entry: 4 node + 8 incarnation + 1 state byte.
        let n = self.count(13)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let node = self.node()?;
            let incarnation = self.u64()?;
            let raw = self.u8()?;
            let state = GossipState::from_wire(raw)
                .ok_or_else(|| malformed(&format!("unknown gossip state {raw}")))?;
            entries.push((node, incarnation, state));
        }
        Ok(entries)
    }

    /// Bounds-check a count field against the *remaining* frame bytes, scaled by the
    /// minimum wire size of one element, before the caller reserves — so a corrupt
    /// or hostile count cannot drive a huge `Vec::with_capacity` (a count of `n`
    /// elements that each need at least `min_elem` encoded bytes cannot be honest
    /// unless `n * min_elem` bytes are actually left in the frame).
    fn count(&mut self, min_elem: usize) -> Result<usize, FrameError> {
        let n = self.usize_checked()?;
        let remaining = self.buf.len() - self.at;
        match n.checked_mul(min_elem.max(1)) {
            Some(needed) if needed <= remaining => Ok(n),
            _ => Err(malformed("list longer than frame")),
        }
    }

    fn snapshot(&mut self) -> Result<ShardSnapshot, FrameError> {
        // Minimum encoded sizes: entry = 16 object + 1 size flag + 3×8 counts +
        // 1 inline flag + 8 inline stamp + 1 deleted + 8 subscriber count;
        // location = 4 node + 1 status + 1 lease flag; pending = 4 node + 8 id +
        // 8 count; pull = 2×4.
        let num_entries = self.count(59)?;
        let mut entries = Vec::with_capacity(num_entries);
        for _ in 0..num_entries {
            let object = self.object()?;
            let size = self.opt_u64()?;
            let num_locations = self.count(6)?;
            let mut locations = Vec::with_capacity(num_locations);
            for _ in 0..num_locations {
                locations.push((self.node()?, self.status()?, self.opt_node()?));
            }
            let inline = match self.u8()? {
                0 => None,
                1 => Some(self.payload()?),
                other => return Err(malformed(&format!("unknown inline flag {other}"))),
            };
            let num_pending = self.count(20)?;
            let mut pending = Vec::with_capacity(num_pending);
            for _ in 0..num_pending {
                pending.push((self.node()?, self.u64()?, self.nodes()?));
            }
            let inline_stamp = self.u64()?;
            let subscribers = self.nodes()?;
            let num_pulls = self.count(8)?;
            let mut pulls = Vec::with_capacity(num_pulls);
            for _ in 0..num_pulls {
                pulls.push((self.node()?, self.node()?));
            }
            let deleted = self.bool()?;
            entries.push(SnapshotEntry {
                object,
                size,
                locations,
                inline,
                inline_stamp,
                pending,
                subscribers,
                pulls,
                deleted,
            });
        }
        Ok(ShardSnapshot { entries })
    }

    fn dir_op(&mut self) -> Result<DirOp, FrameError> {
        match self.u8()? {
            op_tags::REGISTER => Ok(DirOp::Register {
                object: self.object()?,
                holder: self.node()?,
                status: self.status()?,
                size: self.u64()?,
            }),
            op_tags::PUT_INLINE => Ok(DirOp::PutInline {
                object: self.object()?,
                holder: self.node()?,
                payload: self.payload()?,
            }),
            op_tags::UNREGISTER => {
                Ok(DirOp::Unregister { object: self.object()?, holder: self.node()? })
            }
            op_tags::QUERY => Ok(DirOp::Query {
                object: self.object()?,
                requester: self.node()?,
                query_id: self.u64()?,
                exclude: self.nodes()?,
            }),
            op_tags::SUBSCRIBE => {
                Ok(DirOp::Subscribe { object: self.object()?, subscriber: self.node()? })
            }
            op_tags::UNSUBSCRIBE => {
                Ok(DirOp::Unsubscribe { object: self.object()?, subscriber: self.node()? })
            }
            op_tags::TRANSFER_DONE => Ok(DirOp::TransferDone {
                object: self.object()?,
                receiver: self.node()?,
                sender: self.node()?,
            }),
            op_tags::DELETE => Ok(DirOp::Delete { object: self.object()? }),
            other => Err(malformed(&format!("unknown directory op tag {other}"))),
        }
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(malformed("trailing bytes after message"))
        }
    }
}

// ------------------------------------------------------------------------- encode --

/// Encode a message body (without the outer length prefix) as one contiguous buffer.
/// This is the legacy path — it memcpys bulk payloads into the result; the send path
/// uses [`encode_frame_vectored`], which does not.
pub fn encode_body(msg: &Message) -> Result<Vec<u8>, FrameError> {
    let mut w = FrameWriter::new(false);
    encode_message(msg, &mut w);
    Ok(w.into_contiguous())
}

/// Write one message into a frame writer (shared by the contiguous and the
/// scatter-gather entry points, so the two encodings agree byte for byte).
fn encode_message(msg: &Message, out: &mut FrameWriter) {
    match msg {
        Message::PushBlock { object, offset, total_size, payload, complete } => {
            put_u8(out, tags::PUSH_BLOCK);
            put_object(out, *object);
            put_u64(out, *offset);
            put_u64(out, *total_size);
            put_bool(out, *complete);
            put_payload(out, payload);
        }
        Message::ReduceBlock {
            target,
            to_slot,
            from_slot,
            parent_epoch,
            block_index,
            object_size,
            payload,
        } => {
            put_u8(out, tags::REDUCE_BLOCK);
            put_object(out, *target);
            put_u64(out, *to_slot as u64);
            put_u64(out, *from_slot as u64);
            put_u64(out, *parent_epoch);
            put_u64(out, *block_index);
            put_u64(out, *object_size);
            put_payload(out, payload);
        }
        Message::DirRegister { object, holder, status, size } => {
            put_u8(out, tags::DIR_REGISTER);
            put_object(out, *object);
            put_node(out, *holder);
            put_status(out, *status);
            put_u64(out, *size);
        }
        Message::DirPutInline { object, holder, payload } => {
            put_u8(out, tags::DIR_PUT_INLINE);
            put_object(out, *object);
            put_node(out, *holder);
            put_payload(out, payload);
        }
        Message::DirUnregister { object, holder } => {
            put_u8(out, tags::DIR_UNREGISTER);
            put_object(out, *object);
            put_node(out, *holder);
        }
        Message::DirQuery { object, requester, query_id, exclude } => {
            put_u8(out, tags::DIR_QUERY);
            put_object(out, *object);
            put_node(out, *requester);
            put_u64(out, *query_id);
            put_nodes(out, exclude);
        }
        Message::DirQueryReply { object, query_id, result } => {
            put_u8(out, tags::DIR_QUERY_REPLY);
            put_object(out, *object);
            put_u64(out, *query_id);
            match result {
                QueryResult::Inline { payload } => {
                    put_u8(out, 0);
                    put_payload(out, payload);
                }
                QueryResult::Location { node, status, size } => {
                    put_u8(out, 1);
                    put_node(out, *node);
                    put_status(out, *status);
                    put_u64(out, *size);
                }
                QueryResult::Deleted => put_u8(out, 2),
            }
        }
        Message::DirSubscribe { object, subscriber } => {
            put_u8(out, tags::DIR_SUBSCRIBE);
            put_object(out, *object);
            put_node(out, *subscriber);
        }
        Message::DirUnsubscribe { object, subscriber } => {
            put_u8(out, tags::DIR_UNSUBSCRIBE);
            put_object(out, *object);
            put_node(out, *subscriber);
        }
        Message::DirReplicate { shard, epoch, seq, op } => {
            put_u8(out, tags::DIR_REPLICATE);
            put_u64(out, *shard);
            put_u64(out, *epoch);
            put_u64(out, *seq);
            put_dir_op(out, op);
        }
        Message::DirAck { shard, epoch, seq } => {
            put_u8(out, tags::DIR_ACK);
            put_u64(out, *shard);
            put_u64(out, *epoch);
            put_u64(out, *seq);
        }
        Message::DirSnapshotRequest {
            shard,
            requester,
            restart,
            after,
            have_epoch,
            have_seq,
            digest,
        } => {
            put_u8(out, tags::DIR_SNAPSHOT_REQUEST);
            put_u64(out, *shard);
            put_node(out, *requester);
            put_bool(out, *restart);
            put_opt_object(out, *after);
            put_u64(out, *have_epoch);
            put_u64(out, *have_seq);
            put_digest(out, digest);
        }
        Message::DirSnapshot { shard, epoch, seq, rank, state } => {
            put_u8(out, tags::DIR_SNAPSHOT);
            put_u64(out, *shard);
            put_u64(out, *epoch);
            put_u64(out, *seq);
            put_u64(out, *rank);
            put_snapshot(out, state);
        }
        Message::DirSnapshotChunk { shard, epoch, seq, rank, done, state } => {
            put_u8(out, tags::DIR_SNAPSHOT_CHUNK);
            put_u64(out, *shard);
            put_u64(out, *epoch);
            put_u64(out, *seq);
            put_u64(out, *rank);
            put_bool(out, *done);
            put_snapshot(out, state);
        }
        Message::DirResyncDelta { shard, epoch, ops, done } => {
            put_u8(out, tags::DIR_RESYNC_DELTA);
            put_u64(out, *shard);
            put_u64(out, *epoch);
            put_u64(out, ops.len() as u64);
            for (seq, op) in ops {
                put_u64(out, *seq);
                put_dir_op(out, op);
            }
            put_bool(out, *done);
        }
        Message::DirResynced { node, incarnation } => {
            put_u8(out, tags::DIR_RESYNCED);
            put_node(out, *node);
            put_u64(out, *incarnation);
        }
        Message::DirConfirm { object, kind } => {
            put_u8(out, tags::DIR_CONFIRM);
            put_object(out, *object);
            match kind {
                ConfirmKind::Location { status } => {
                    put_u8(out, confirm_tags::LOCATION);
                    put_status(out, *status);
                }
                ConfirmKind::Inline => put_u8(out, confirm_tags::INLINE),
                ConfirmKind::Subscription => put_u8(out, confirm_tags::SUBSCRIPTION),
            }
        }
        Message::DirPublish { object, holder, status, size } => {
            put_u8(out, tags::DIR_PUBLISH);
            put_object(out, *object);
            put_node(out, *holder);
            put_status(out, *status);
            put_u64(out, *size);
        }
        Message::DirTransferDone { object, receiver, sender } => {
            put_u8(out, tags::DIR_TRANSFER_DONE);
            put_object(out, *object);
            put_node(out, *receiver);
            put_node(out, *sender);
        }
        Message::DirDelete { object } => {
            put_u8(out, tags::DIR_DELETE);
            put_object(out, *object);
        }
        Message::StoreRelease { object } => {
            put_u8(out, tags::STORE_RELEASE);
            put_object(out, *object);
        }
        Message::PullRequest { object, requester, offset } => {
            put_u8(out, tags::PULL_REQUEST);
            put_object(out, *object);
            put_node(out, *requester);
            put_u64(out, *offset);
        }
        Message::PullCancel { object, requester } => {
            put_u8(out, tags::PULL_CANCEL);
            put_object(out, *object);
            put_node(out, *requester);
        }
        Message::PullError { object, reason } => {
            put_u8(out, tags::PULL_ERROR);
            put_object(out, *object);
            put_string(out, reason);
        }
        Message::ReduceInstruction(instr) => {
            put_u8(out, tags::REDUCE_INSTRUCTION);
            put_object(out, instr.target);
            put_node(out, instr.coordinator);
            put_u64(out, instr.slot as u64);
            put_object(out, instr.own_object);
            put_spec(out, instr.spec);
            put_u64(out, instr.object_size);
            put_u64(out, instr.block_size);
            put_u64(out, instr.num_inputs as u64);
            put_u64(out, instr.epoch);
            match &instr.parent {
                None => put_u8(out, 0),
                Some(p) => {
                    put_u8(out, 1);
                    put_u64(out, p.slot as u64);
                    put_node(out, p.node);
                    put_u64(out, p.epoch);
                }
            }
            put_u64(out, instr.children.len() as u64);
            for (slot, node, object) in &instr.children {
                put_u64(out, *slot as u64);
                put_node(out, *node);
                put_object(out, *object);
            }
            put_bool(out, instr.is_root);
            put_u64(out, instr.total_slots as u64);
        }
        Message::ReduceDone { target, root } => {
            put_u8(out, tags::REDUCE_DONE);
            put_object(out, *target);
            put_node(out, *root);
        }
        Message::ReduceRelease { target } => {
            put_u8(out, tags::REDUCE_RELEASE);
            put_object(out, *target);
        }
        Message::PeerFailureNotice { node, incarnation } => {
            put_u8(out, tags::PEER_FAILURE_NOTICE);
            put_node(out, *node);
            put_u64(out, *incarnation);
        }
        Message::MembershipDigest { entries } => {
            put_u8(out, tags::MEMBERSHIP_DIGEST);
            put_digest(out, entries);
        }
        Message::Hello { node, incarnation } => {
            put_u8(out, tags::HELLO);
            put_node(out, *node);
            put_u64(out, *incarnation);
        }
        Message::Ping { origin, probe_id, gossip } => {
            put_u8(out, tags::PING);
            put_node(out, *origin);
            put_u64(out, *probe_id);
            put_gossip(out, gossip);
        }
        Message::Ack { probe_id, gossip } => {
            put_u8(out, tags::ACK);
            put_u64(out, *probe_id);
            put_gossip(out, gossip);
        }
        Message::PingReq { target, probe_id, gossip } => {
            put_u8(out, tags::PING_REQ);
            put_node(out, *target);
            put_u64(out, *probe_id);
            put_gossip(out, gossip);
        }
    }
}

// ------------------------------------------------------------------------- decode --

/// Decode a message body produced by [`encode_body`].
///
/// The body is taken as a shared [`Bytes`] buffer so bulk payloads (`PushBlock`,
/// `ReduceBlock`, inline objects) decode as zero-copy views into it; callers that own
/// a `Vec<u8>` convert with `Bytes::from(vec)` (free) rather than re-allocating.
pub fn decode_body(buf: &Bytes) -> Result<Message, FrameError> {
    let tag = *buf.first().ok_or_else(|| malformed("empty frame"))?;
    let mut r = Reader::new(buf, 1);
    let msg = match tag {
        tags::PUSH_BLOCK => Message::PushBlock {
            object: r.object()?,
            offset: r.u64()?,
            total_size: r.u64()?,
            complete: r.bool()?,
            payload: r.payload()?,
        },
        tags::REDUCE_BLOCK => Message::ReduceBlock {
            target: r.object()?,
            to_slot: r.usize_checked()?,
            from_slot: r.usize_checked()?,
            parent_epoch: r.u64()?,
            block_index: r.u64()?,
            object_size: r.u64()?,
            payload: r.payload()?,
        },
        tags::DIR_REGISTER => Message::DirRegister {
            object: r.object()?,
            holder: r.node()?,
            status: r.status()?,
            size: r.u64()?,
        },
        tags::DIR_PUT_INLINE => {
            Message::DirPutInline { object: r.object()?, holder: r.node()?, payload: r.payload()? }
        }
        tags::DIR_UNREGISTER => Message::DirUnregister { object: r.object()?, holder: r.node()? },
        tags::DIR_QUERY => Message::DirQuery {
            object: r.object()?,
            requester: r.node()?,
            query_id: r.u64()?,
            exclude: r.nodes()?,
        },
        tags::DIR_QUERY_REPLY => {
            let object = r.object()?;
            let query_id = r.u64()?;
            let result = match r.u8()? {
                0 => QueryResult::Inline { payload: r.payload()? },
                1 => QueryResult::Location { node: r.node()?, status: r.status()?, size: r.u64()? },
                2 => QueryResult::Deleted,
                other => return Err(malformed(&format!("unknown query result {other}"))),
            };
            Message::DirQueryReply { object, query_id, result }
        }
        tags::DIR_SUBSCRIBE => Message::DirSubscribe { object: r.object()?, subscriber: r.node()? },
        tags::DIR_UNSUBSCRIBE => {
            Message::DirUnsubscribe { object: r.object()?, subscriber: r.node()? }
        }
        tags::DIR_REPLICATE => Message::DirReplicate {
            shard: r.u64()?,
            epoch: r.u64()?,
            seq: r.u64()?,
            op: r.dir_op()?,
        },
        tags::DIR_ACK => Message::DirAck { shard: r.u64()?, epoch: r.u64()?, seq: r.u64()? },
        tags::DIR_SNAPSHOT_REQUEST => Message::DirSnapshotRequest {
            shard: r.u64()?,
            requester: r.node()?,
            restart: r.bool()?,
            after: r.opt_object()?,
            have_epoch: r.u64()?,
            have_seq: r.u64()?,
            digest: r.digest()?,
        },
        tags::DIR_SNAPSHOT => Message::DirSnapshot {
            shard: r.u64()?,
            epoch: r.u64()?,
            seq: r.u64()?,
            rank: r.u64()?,
            state: r.snapshot()?,
        },
        tags::DIR_SNAPSHOT_CHUNK => Message::DirSnapshotChunk {
            shard: r.u64()?,
            epoch: r.u64()?,
            seq: r.u64()?,
            rank: r.u64()?,
            done: r.bool()?,
            state: r.snapshot()?,
        },
        tags::DIR_RESYNC_DELTA => {
            let shard = r.u64()?;
            let epoch = r.u64()?;
            // Minimum per op: 8 seq + 1 op tag + 16 object.
            let num_ops = r.count(25)?;
            let mut ops = Vec::with_capacity(num_ops);
            for _ in 0..num_ops {
                ops.push((r.u64()?, r.dir_op()?));
            }
            Message::DirResyncDelta { shard, epoch, ops, done: r.bool()? }
        }
        tags::DIR_RESYNCED => Message::DirResynced { node: r.node()?, incarnation: r.u64()? },
        tags::DIR_CONFIRM => {
            let object = r.object()?;
            let kind = match r.u8()? {
                confirm_tags::LOCATION => ConfirmKind::Location { status: r.status()? },
                confirm_tags::INLINE => ConfirmKind::Inline,
                confirm_tags::SUBSCRIPTION => ConfirmKind::Subscription,
                other => return Err(malformed(&format!("unknown confirm kind {other}"))),
            };
            Message::DirConfirm { object, kind }
        }
        tags::DIR_PUBLISH => Message::DirPublish {
            object: r.object()?,
            holder: r.node()?,
            status: r.status()?,
            size: r.u64()?,
        },
        tags::DIR_TRANSFER_DONE => {
            Message::DirTransferDone { object: r.object()?, receiver: r.node()?, sender: r.node()? }
        }
        tags::DIR_DELETE => Message::DirDelete { object: r.object()? },
        tags::STORE_RELEASE => Message::StoreRelease { object: r.object()? },
        tags::PULL_REQUEST => {
            Message::PullRequest { object: r.object()?, requester: r.node()?, offset: r.u64()? }
        }
        tags::PULL_CANCEL => Message::PullCancel { object: r.object()?, requester: r.node()? },
        tags::PULL_ERROR => Message::PullError { object: r.object()?, reason: r.string()? },
        tags::REDUCE_INSTRUCTION => {
            let target = r.object()?;
            let coordinator = r.node()?;
            let slot = r.usize_checked()?;
            let own_object = r.object()?;
            let spec = r.spec()?;
            let object_size = r.u64()?;
            let block_size = r.u64()?;
            let num_inputs = r.usize_checked()?;
            let epoch = r.u64()?;
            let parent = match r.u8()? {
                0 => None,
                1 => Some(ReduceParent {
                    slot: r.usize_checked()?,
                    node: r.node()?,
                    epoch: r.u64()?,
                }),
                other => return Err(malformed(&format!("unknown parent flag {other}"))),
            };
            let num_children = r.usize_checked()?;
            if num_children > buf.len() {
                return Err(malformed("child list longer than frame"));
            }
            let mut children = Vec::with_capacity(num_children);
            for _ in 0..num_children {
                children.push((r.usize_checked()?, r.node()?, r.object()?));
            }
            Message::ReduceInstruction(ReduceInstruction {
                target,
                coordinator,
                slot,
                own_object,
                spec,
                object_size,
                block_size,
                num_inputs,
                epoch,
                parent,
                children,
                is_root: r.bool()?,
                total_slots: r.usize_checked()?,
            })
        }
        tags::REDUCE_DONE => Message::ReduceDone { target: r.object()?, root: r.node()? },
        tags::REDUCE_RELEASE => Message::ReduceRelease { target: r.object()? },
        tags::HELLO => Message::Hello { node: r.node()?, incarnation: r.u64()? },
        tags::PEER_FAILURE_NOTICE => {
            Message::PeerFailureNotice { node: r.node()?, incarnation: r.u64()? }
        }
        tags::MEMBERSHIP_DIGEST => Message::MembershipDigest { entries: r.digest()? },
        tags::PING => Message::Ping { origin: r.node()?, probe_id: r.u64()?, gossip: r.gossip()? },
        tags::ACK => Message::Ack { probe_id: r.u64()?, gossip: r.gossip()? },
        tags::PING_REQ => {
            Message::PingReq { target: r.node()?, probe_id: r.u64()?, gossip: r.gossip()? }
        }
        other => return Err(malformed(&format!("unknown frame tag {other}"))),
    };
    r.finish()?;
    Ok(msg)
}

/// Encode a whole frame contiguously: `u32` big-endian length followed by the body.
/// Legacy path — it copies the payload twice (once into the body, once into the
/// length-prefixed frame); the send path uses [`encode_frame_vectored`].
pub fn encode_frame(msg: &Message) -> Result<Vec<u8>, FrameError> {
    let body = encode_body(msg)?;
    u32::try_from(body.len()).map_err(|_| malformed("frame body exceeds u32 length"))?;
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    // The frame-assembly copy the scatter-gather path exists to avoid.
    hoplite_core::copytrace::record(body.len());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Encode a whole frame as scatter-gather parts: the header (length prefix + tag +
/// fixed fields) is built fresh, and bulk payload bytes are **referenced, not
/// copied** — encoding a 4 MiB `PushBlock` is header-only work. Flattening the result
/// equals [`encode_frame`]'s output byte for byte.
pub fn encode_frame_vectored(msg: &Message) -> Result<EncodedFrame, FrameError> {
    let mut w = FrameWriter::new(true);
    encode_message(msg, &mut w);
    w.into_frame()
}

/// Write a framed message to a writer as one contiguous buffer (legacy path).
pub fn write_frame<W: std::io::Write>(w: &mut W, msg: &Message) -> std::io::Result<()> {
    let frame = encode_frame(msg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    w.write_all(&frame)
}

/// Write a framed message with `write_vectored`, never copying bulk payload bytes.
///
/// Small frames — control messages, payloads under [`GATHER_MIN_SEGMENT`] — encode to
/// a single part and go out in one plain `write` syscall. Larger frames are written as
/// an iovec array of header + shared payload segments, resuming correctly across
/// short writes.
pub fn write_frame_vectored<W: std::io::Write>(w: &mut W, msg: &Message) -> std::io::Result<()> {
    let frame = encode_frame_vectored(msg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    if frame.segments.is_empty() {
        return w.write_all(&frame.header);
    }
    let parts: Vec<&[u8]> = frame.parts().map(|p| p.as_slice()).collect();
    write_all_vectored(w, &parts)
}

/// Read one framed message from a reader. The body buffer is handed to the decoder as
/// a shared `Bytes`, so the message's payload (if any) aliases it instead of copying.
pub fn read_frame<R: std::io::Read>(r: &mut R) -> std::io::Result<Message> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    decode_body(&Bytes::from(body))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

// --------------------------------------------------------------- pooled slab reader --

/// Default receive slab: one pipelining block plus slack for the frame header and a
/// trailing length prefix, so a full 4 MiB `PushBlock` frame always fits in one slab.
pub const DEFAULT_RECV_SLAB: usize = 4 * 1024 * 1024 + 4096;

/// How many idle slabs a pool retains for reuse. Beyond this, returned slabs are
/// dropped: a connection only needs enough slabs to cover the consumer's drain lag.
const MAX_RETAINED_SLABS: usize = 8;

/// A pool of reusable receive slabs ([`FrameReader`]'s allocator).
///
/// Slabs are `Arc<[u8]>` allocations. Frame bodies decoded out of a slab alias it as
/// [`Bytes`] views ([`Bytes::from_arc`]), so a slab stays pinned — `strong_count > 1`
/// — for exactly as long as any decoded payload is alive. Checkout simply scans the
/// retained list for a slab whose refcount has dropped back to one: no free-lists, no
/// drop hooks, the `Arc` refcount *is* the in-use bit.
pub struct RecvSlabPool {
    retained: Vec<std::sync::Arc<[u8]>>,
    slab_len: usize,
    reuses: u64,
}

impl RecvSlabPool {
    /// A pool handing out slabs of at least `slab_len` bytes.
    pub fn new(slab_len: usize) -> RecvSlabPool {
        RecvSlabPool { retained: Vec::new(), slab_len: slab_len.max(64), reuses: 0 }
    }

    /// Check a writable slab of at least `min_len` bytes out of the pool, reusing a
    /// retained allocation when one is free (refcount back to one) and large enough.
    pub fn checkout(&mut self, min_len: usize) -> std::sync::Arc<[u8]> {
        let want = min_len.max(self.slab_len);
        for i in 0..self.retained.len() {
            if std::sync::Arc::strong_count(&self.retained[i]) == 1
                && self.retained[i].len() >= min_len
            {
                self.reuses += 1;
                return self.retained.swap_remove(i);
            }
        }
        std::sync::Arc::from(vec![0u8; want])
    }

    /// Hand a slab back. It becomes reusable once every payload view into it drops.
    pub fn retain(&mut self, slab: std::sync::Arc<[u8]>) {
        if self.retained.len() < MAX_RETAINED_SLABS && slab.len() >= self.slab_len {
            self.retained.push(slab);
        }
    }

    /// Checkouts served from a retained slab instead of a fresh allocation, since the
    /// last call (drains the counter — feeds the `recv_slab_reuse` metric).
    pub fn take_reuses(&mut self) -> u64 {
        std::mem::take(&mut self.reuses)
    }
}

/// `true` when a frame with this tag can hold payload bytes that decode as shared
/// views into the receive buffer (`Reader::take_shared`), pinning the slab until the
/// consumer drops them. Every other tag decodes entirely into owned fields, so the
/// slab stays writable across it. Unknown tags are treated as pinning (conservative:
/// the frame will fail to decode anyway, but must not corrupt neighbours first).
fn tag_may_pin(tag: u8) -> bool {
    !matches!(
        tag,
        tags::DIR_REGISTER
            | tags::DIR_UNREGISTER
            | tags::DIR_QUERY
            | tags::DIR_SUBSCRIBE
            | tags::DIR_PUBLISH
            | tags::DIR_TRANSFER_DONE
            | tags::DIR_DELETE
            | tags::STORE_RELEASE
            | tags::PULL_REQUEST
            | tags::PULL_CANCEL
            | tags::PULL_ERROR
            | tags::REDUCE_INSTRUCTION
            | tags::REDUCE_DONE
            | tags::DIR_UNSUBSCRIBE
            | tags::REDUCE_RELEASE
            | tags::DIR_ACK
            | tags::DIR_SNAPSHOT_REQUEST
            | tags::DIR_RESYNCED
            | tags::DIR_CONFIRM
            | tags::HELLO
            | tags::PEER_FAILURE_NOTICE
            | tags::MEMBERSHIP_DIGEST
            | tags::PING
            | tags::ACK
            | tags::PING_REQ
    )
}

/// Zero-copy framed reader: the receive-side twin of [`write_frame_vectored`].
///
/// Where [`read_frame`] allocates a fresh `vec![0u8; len]` per frame (an allocation,
/// a page-fault walk, and a kernel→user copy into cold memory every time), a
/// `FrameReader` reads ahead into a pooled slab and decodes each frame **in place**:
/// the body handed to [`decode_body`] is a [`Bytes`] view of the slab, so a bulk
/// payload's bytes are written exactly once (by the kernel, into the slab) and then
/// adopted — `ProgressBuffer`/store append the very same view. Slabs return to the
/// pool when every view into them drops; a control-heavy stream reuses one warm slab
/// indefinitely, and bursts of small frames arriving together decode out of a single
/// `read` syscall.
///
/// Read-ahead is capped so a slab roll never has to move payload bytes: a fill stops
/// at the next length prefix unless the following frame both fits the current slab
/// and is known (by its buffered tag byte) not to pin the slab. The carry copied
/// across a roll is therefore at most 4 length-prefix bytes — header bookkeeping, not
/// payload, preserving the zero-payload-memcpy invariant end to end.
pub struct FrameReader<R> {
    inner: R,
    pool: RecvSlabPool,
    slab: std::sync::Arc<[u8]>,
    /// Start of the first unconsumed byte in `slab`.
    pos: usize,
    /// End of valid buffered bytes in `slab`.
    filled: usize,
}

impl<R: std::io::Read> FrameReader<R> {
    /// Wrap `inner` with the default (block-sized) slab pool.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader::with_slab_len(inner, DEFAULT_RECV_SLAB)
    }

    /// Wrap `inner` with slabs of at least `slab_len` bytes (tests use tiny slabs to
    /// force boundary straddles; oversized frames still get a dedicated allocation).
    pub fn with_slab_len(inner: R, slab_len: usize) -> FrameReader<R> {
        let mut pool = RecvSlabPool::new(slab_len);
        let slab = pool.checkout(slab_len);
        pool.take_reuses(); // the bootstrap checkout is not a reuse
        FrameReader { inner, pool, slab, pos: 0, filled: 0 }
    }

    /// Read and decode one framed message, zero-copy for bulk payloads.
    pub fn read_message(&mut self) -> std::io::Result<Message> {
        self.need(4)?;
        let len = u32::from_be_bytes(self.slab[self.pos..self.pos + 4].try_into().expect("4 bytes"))
            as usize;
        let total = 4usize.checked_add(len).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "frame length overflow")
        })?;
        self.need(total)?;
        let body = Bytes::from_arc(self.slab.clone(), self.pos + 4, self.pos + total);
        self.pos += total;
        decode_body(&body)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Slab checkouts served by reuse since the last call (→ `recv_slab_reuse`).
    pub fn take_slab_reuses(&mut self) -> u64 {
        self.pool.take_reuses()
    }

    /// Ensure the next `n` bytes of the stream are buffered contiguously at `pos`,
    /// rolling to a fresh slab when the current one is full or pinned by escaped
    /// payload views.
    fn need(&mut self, n: usize) -> std::io::Result<()> {
        loop {
            if self.filled - self.pos >= n {
                return Ok(());
            }
            if self.pos + n > self.slab.len() || std::sync::Arc::strong_count(&self.slab) > 1 {
                self.roll(n);
            }
            let limit = self.fill_limit();
            debug_assert!(limit > self.filled, "fill limit must admit progress");
            let buf = std::sync::Arc::get_mut(&mut self.slab)
                .expect("freshly rolled or unpinned slab is uniquely held");
            let got = self.inner.read(&mut buf[self.filled..limit])?;
            if got == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            self.filled += got;
        }
    }

    /// Swap in a slab with room for `n` bytes, carrying the unconsumed remainder
    /// across. The fill cap guarantees that remainder is at most 4 length-prefix
    /// bytes (never payload), so the carry is header bookkeeping, not a data copy.
    fn roll(&mut self, n: usize) {
        let carry = self.filled - self.pos;
        debug_assert!(carry <= 4, "roll carry must be at most a length prefix");
        let mut fresh = self.pool.checkout(n.max(carry));
        {
            let dst = std::sync::Arc::get_mut(&mut fresh).expect("pool slab is uniquely held");
            dst[..carry].copy_from_slice(&self.slab[self.pos..self.filled]);
        }
        let old = std::mem::replace(&mut self.slab, fresh);
        self.pool.retain(old);
        self.pos = 0;
        self.filled = carry;
    }

    /// Absolute offset a fill may read up to. Walks the buffered length prefixes from
    /// the current frame forward; stops after any frame that does not fit this slab
    /// or might pin it (so a roll never strands payload bytes behind the cursor).
    fn fill_limit(&self) -> usize {
        let slab_len = self.slab.len();
        let mut c = self.pos;
        let mut first = true;
        loop {
            if c + 4 > self.filled {
                // Header not fully buffered: allow completing it (plus nothing more).
                return (c + 4).min(slab_len);
            }
            let len = u32::from_be_bytes(self.slab[c..c + 4].try_into().expect("4 bytes")) as usize;
            let end = match c.checked_add(4).and_then(|h| h.checked_add(len)) {
                Some(end) if end <= slab_len => end,
                // Frame won't fit this slab (or length is hostile): stop at the
                // header so the roll carries only length-prefix bytes.
                _ => return (c + 4).min(slab_len),
            };
            if first {
                first = false;
                c = end;
                continue;
            }
            match (c + 5 <= self.filled).then(|| self.slab[c + 4]) {
                // A buffered, provably non-pinning frame: read through it and keep
                // walking — this is what batches control bursts into one syscall.
                Some(tag) if !tag_may_pin(tag) => c = end,
                // Possibly-pinning frame: buffer it fully plus the next length
                // prefix, but nothing past that (a pinned-slab roll then carries
                // only those prefix bytes).
                Some(_) => return (end + 4).min(slab_len),
                // Tag byte not buffered yet: stop at this header boundary.
                None => return (c + 4).min(slab_len),
            }
        }
    }
}

// -------------------------------------------------------------- control-frame cork --

/// Cap on frames held back by a [`Cork`] before an implicit flush.
const MAX_CORKED_FRAMES: usize = 64;

/// Cap on bytes held back by a [`Cork`] before an implicit flush.
const MAX_CORKED_BYTES: usize = 64 * 1024;

/// Batches bursts of small control frames to one peer into a single vectored write.
///
/// Directory chatter — registers, acks, publishes, confirms — arrives at a
/// connection's writer in bursts (fan-outs, drain-after-failover), each frame well
/// under [`GATHER_MIN_SEGMENT`]. Writing them one `write` syscall at a time wastes
/// most of the syscall budget on sub-100-byte payloads. A `Cork` holds encoded
/// control frames (frames with no bulk segments) and flushes them as one
/// `write_vectored`; bulk frames flush the cork first and are written immediately so
/// they are never delayed behind batching. Callers flush explicitly on queue drain.
pub struct Cork {
    pending: Vec<Bytes>,
    pending_bytes: usize,
    corked_frames: u64,
    corked_writes: u64,
}

impl Default for Cork {
    fn default() -> Cork {
        Cork::new()
    }
}

impl Cork {
    /// An empty cork.
    pub fn new() -> Cork {
        Cork { pending: Vec::new(), pending_bytes: 0, corked_frames: 0, corked_writes: 0 }
    }

    /// Encode and submit `msg`. Control frames are held for batching (up to the
    /// frame/byte caps); bulk frames flush anything pending and go out immediately
    /// through the zero-copy vectored path.
    pub fn write<W: std::io::Write>(&mut self, w: &mut W, msg: &Message) -> std::io::Result<()> {
        let frame = encode_frame_vectored(msg)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        if !frame.segments.is_empty() {
            self.flush(w)?;
            let parts: Vec<&[u8]> = frame.parts().map(|p| p.as_slice()).collect();
            return write_all_vectored(w, &parts);
        }
        self.pending_bytes += frame.header.len();
        self.pending.push(frame.header);
        if self.pending.len() >= MAX_CORKED_FRAMES || self.pending_bytes >= MAX_CORKED_BYTES {
            self.flush(w)?;
        }
        Ok(())
    }

    /// Write every held frame as one vectored write. Called implicitly on bulk frames
    /// and cap overflow, and explicitly by the owner when its send queue drains.
    pub fn flush<W: std::io::Write>(&mut self, w: &mut W) -> std::io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        if self.pending.len() >= 2 {
            self.corked_frames += self.pending.len() as u64;
            self.corked_writes += 1;
        }
        let parts: Vec<&[u8]> = self.pending.iter().map(|p| p.as_slice()).collect();
        let result = write_all_vectored(w, &parts);
        self.pending.clear();
        self.pending_bytes = 0;
        result
    }

    /// `true` when frames are being held back (the owner should flush before parking).
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Frames that went out batched with at least one other frame, since the last
    /// call (→ the `corked_frames_per_write` metric's numerator).
    pub fn take_corked_frames(&mut self) -> u64 {
        std::mem::take(&mut self.corked_frames)
    }

    /// Multi-frame vectored writes issued since the last call.
    pub fn take_corked_writes(&mut self) -> u64 {
        std::mem::take(&mut self.corked_writes)
    }
}

/// Write `parts` fully, resuming across short writes and `Interrupted` (the shared
/// backbone of [`write_frame_vectored`] and [`Cork::flush`]).
fn write_all_vectored<W: std::io::Write>(w: &mut W, parts: &[&[u8]]) -> std::io::Result<()> {
    let mut part = 0usize; // first part with unwritten bytes
    let mut offset = 0usize; // progress within that part
    while part < parts.len() {
        if parts[part].len() == offset {
            part += 1;
            offset = 0;
            continue;
        }
        let slices: Vec<std::io::IoSlice<'_>> = std::iter::once(&parts[part][offset..])
            .chain(parts[part + 1..].iter().copied())
            .map(std::io::IoSlice::new)
            .collect();
        let mut n = match w.write_vectored(&slices) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "failed to write whole frame",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        // Advance (part, offset) past the n bytes just written.
        while n > 0 {
            let remaining = parts[part].len() - offset;
            if n < remaining {
                offset += n;
                break;
            }
            n -= remaining;
            part += 1;
            offset = 0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_core::protocol::ReduceParent;
    use hoplite_core::reduce::ReduceSpec;

    fn roundtrip(msg: Message) {
        let body = Bytes::from(encode_body(&msg).unwrap());
        let decoded = decode_body(&body).unwrap();
        assert_eq!(decoded, msg);
        // The scatter-gather encoding must flatten to exactly the contiguous frame.
        let contiguous = encode_frame(&msg).unwrap();
        let vectored = encode_frame_vectored(&msg).unwrap();
        assert_eq!(vectored.frame_len(), contiguous.len());
        assert_eq!(vectored.to_contiguous(), contiguous);
    }

    #[test]
    fn push_block_roundtrip() {
        roundtrip(Message::PushBlock {
            object: ObjectId::from_name("x"),
            offset: 12345,
            total_size: 99999,
            payload: Payload::from_vec((0..255).collect()),
            complete: true,
        });
    }

    #[test]
    fn reduce_block_roundtrip() {
        roundtrip(Message::ReduceBlock {
            target: ObjectId::from_name("t"),
            to_slot: 3,
            from_slot: 9,
            parent_epoch: 2,
            block_index: 7,
            object_size: 4096,
            payload: Payload::from_f32s(&[1.0, -2.0, 3.5]),
        });
    }

    #[test]
    fn synthetic_payload_roundtrip() {
        roundtrip(Message::PushBlock {
            object: ObjectId::from_name("s"),
            offset: 0,
            total_size: 10,
            payload: Payload::synthetic(10),
            complete: false,
        });
    }

    #[test]
    fn every_control_message_roundtrips() {
        let obj = ObjectId::from_name("ctl");
        roundtrip(Message::DirRegister {
            object: obj,
            holder: NodeId(0),
            status: ObjectStatus::Partial,
            size: 123,
        });
        roundtrip(Message::DirPutInline {
            object: obj,
            holder: NodeId(3),
            payload: Payload::from_vec(vec![1, 2, 3]),
        });
        roundtrip(Message::DirUnregister { object: obj, holder: NodeId(1) });
        roundtrip(Message::DirQuery {
            object: obj,
            requester: NodeId(4),
            query_id: 77,
            exclude: vec![NodeId(1), NodeId(2)],
        });
        roundtrip(Message::DirQueryReply {
            object: obj,
            query_id: 9,
            result: QueryResult::Inline { payload: Payload::zeros(8) },
        });
        roundtrip(Message::DirQueryReply {
            object: obj,
            query_id: 10,
            result: QueryResult::Location {
                node: NodeId(5),
                status: ObjectStatus::Complete,
                size: 4096,
            },
        });
        roundtrip(Message::DirQueryReply {
            object: obj,
            query_id: 11,
            result: QueryResult::Deleted,
        });
        roundtrip(Message::DirSubscribe { object: obj, subscriber: NodeId(7) });
        roundtrip(Message::DirPublish {
            object: obj,
            holder: NodeId(2),
            status: ObjectStatus::Complete,
            size: 1 << 30,
        });
        roundtrip(Message::DirTransferDone { object: obj, receiver: NodeId(8), sender: NodeId(9) });
        roundtrip(Message::DirDelete { object: obj });
        roundtrip(Message::DirUnsubscribe { object: obj, subscriber: NodeId(7) });
        roundtrip(Message::StoreRelease { object: obj });
        roundtrip(Message::ReduceRelease { target: obj });
        roundtrip(Message::PullRequest { object: obj, requester: NodeId(1), offset: 512 });
        roundtrip(Message::PullCancel { object: obj, requester: NodeId(1) });
        roundtrip(Message::PullError { object: obj, reason: "object deleted".to_string() });
        roundtrip(Message::ReduceDone { target: obj, root: NodeId(3) });
        roundtrip(Message::Hello { node: NodeId(11), incarnation: 4 });
        roundtrip(Message::PeerFailureNotice { node: NodeId(6), incarnation: 2 });
        roundtrip(Message::MembershipDigest { entries: vec![] });
        roundtrip(Message::MembershipDigest {
            entries: vec![(NodeId(0), 3, true), (NodeId(5), 1, false)],
        });
    }

    #[test]
    fn reduce_instruction_roundtrips() {
        roundtrip(Message::ReduceInstruction(ReduceInstruction {
            target: ObjectId::from_name("t"),
            coordinator: NodeId(0),
            slot: 3,
            own_object: ObjectId::from_name("s"),
            spec: ReduceSpec::sum_f32(),
            object_size: 1024,
            block_size: 256,
            num_inputs: 3,
            epoch: 5,
            parent: Some(ReduceParent { slot: 5, node: NodeId(2), epoch: 1 }),
            children: vec![(1, NodeId(4), ObjectId::from_name("c"))],
            is_root: false,
            total_slots: 6,
        }));
        // Root variant: no parent, no children.
        roundtrip(Message::ReduceInstruction(ReduceInstruction {
            target: ObjectId::from_name("t2"),
            coordinator: NodeId(1),
            slot: 0,
            own_object: ObjectId::from_name("s2"),
            spec: ReduceSpec::sum_f32(),
            object_size: 8,
            block_size: 8,
            num_inputs: 1,
            epoch: 0,
            parent: None,
            children: vec![],
            is_root: true,
            total_slots: 1,
        }));
    }

    #[test]
    fn stream_roundtrip_through_a_buffer() {
        let messages = vec![
            Message::DirDelete { object: ObjectId::from_name("a") },
            Message::PushBlock {
                object: ObjectId::from_name("b"),
                offset: 4,
                total_size: 8,
                payload: Payload::from_vec(vec![9, 9, 9, 9]),
                complete: true,
            },
        ];
        let mut buf = Vec::new();
        for m in &messages {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for m in &messages {
            assert_eq!(&read_frame(&mut cursor).unwrap(), m);
        }
    }

    #[test]
    fn every_replicated_op_roundtrips() {
        let obj = ObjectId::from_name("rep");
        let ops = vec![
            hoplite_core::DirOp::Register {
                object: obj,
                holder: NodeId(1),
                status: ObjectStatus::Complete,
                size: 999,
            },
            hoplite_core::DirOp::PutInline {
                object: obj,
                holder: NodeId(2),
                payload: Payload::from_vec(vec![5, 6, 7]),
            },
            hoplite_core::DirOp::Unregister { object: obj, holder: NodeId(3) },
            hoplite_core::DirOp::Query {
                object: obj,
                requester: NodeId(4),
                query_id: 11,
                exclude: vec![NodeId(0), NodeId(9)],
            },
            hoplite_core::DirOp::Subscribe { object: obj, subscriber: NodeId(5) },
            hoplite_core::DirOp::Unsubscribe { object: obj, subscriber: NodeId(5) },
            hoplite_core::DirOp::TransferDone {
                object: obj,
                receiver: NodeId(6),
                sender: NodeId(7),
            },
            hoplite_core::DirOp::Delete { object: obj },
        ];
        for (i, op) in ops.into_iter().enumerate() {
            roundtrip(Message::DirReplicate { shard: i as u64, epoch: 3, seq: 100 + i as u64, op });
        }
    }

    #[test]
    fn resync_and_ack_messages_roundtrip() {
        let obj = ObjectId::from_name("resync");
        roundtrip(Message::DirAck { shard: 3, epoch: 2, seq: 41 });
        roundtrip(Message::DirSnapshotRequest {
            shard: 7,
            requester: NodeId(4),
            restart: true,
            after: None,
            have_epoch: 2,
            have_seq: 41,
            digest: vec![(NodeId(0), 1, true), (NodeId(2), 2, false)],
        });
        roundtrip(Message::DirSnapshotRequest {
            shard: 8,
            requester: NodeId(5),
            restart: false,
            after: Some(obj),
            have_epoch: 0,
            have_seq: 0,
            digest: vec![],
        });
        roundtrip(Message::DirResynced { node: NodeId(9), incarnation: 1 });
        roundtrip(Message::DirConfirm {
            object: obj,
            kind: ConfirmKind::Location { status: ObjectStatus::Partial },
        });
        roundtrip(Message::DirConfirm { object: obj, kind: ConfirmKind::Inline });
        roundtrip(Message::DirConfirm { object: obj, kind: ConfirmKind::Subscription });
        // An empty snapshot and a fully-populated one.
        roundtrip(Message::DirSnapshot {
            shard: 1,
            epoch: 5,
            seq: 12,
            rank: 1,
            state: ShardSnapshot::default(),
        });
        let state = ShardSnapshot {
            entries: vec![
                SnapshotEntry {
                    object: ObjectId::from_name("full"),
                    size: Some(4096),
                    locations: vec![
                        (NodeId(0), ObjectStatus::Complete, None),
                        (NodeId(2), ObjectStatus::Partial, Some(NodeId(3))),
                    ],
                    inline: Some(Payload::from_vec(vec![1, 2, 3])),
                    inline_stamp: 17,
                    pending: vec![(NodeId(5), 77, vec![NodeId(1), NodeId(2)])],
                    subscribers: vec![NodeId(6), NodeId(7)],
                    pulls: vec![(NodeId(3), NodeId(2))],
                    deleted: false,
                },
                SnapshotEntry {
                    object: ObjectId::from_name("tombstone"),
                    size: None,
                    locations: vec![],
                    inline: None,
                    inline_stamp: 0,
                    pending: vec![],
                    subscribers: vec![],
                    pulls: vec![],
                    deleted: true,
                },
            ],
        };
        roundtrip(Message::DirSnapshot { shard: 2, epoch: 1, seq: 9, rank: 0, state });
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let mut body = encode_body(&Message::DirSnapshot {
            shard: 0,
            epoch: 0,
            seq: 1,
            rank: 0,
            state: ShardSnapshot {
                entries: vec![SnapshotEntry {
                    object: ObjectId::from_name("t"),
                    size: Some(8),
                    locations: vec![(NodeId(1), ObjectStatus::Complete, None)],
                    ..SnapshotEntry::default()
                }],
            },
        })
        .unwrap();
        body.truncate(body.len() - 3);
        assert!(decode_body(&Bytes::from(body)).is_err());
    }

    #[test]
    fn decoded_payload_aliases_the_frame_buffer() {
        // Zero-copy contract: the decoded PushBlock payload is a view into the frame
        // body, so decoding must not copy megabytes per block.
        let msg = Message::PushBlock {
            object: ObjectId::from_name("z"),
            offset: 0,
            total_size: 64,
            payload: Payload::from_vec((0..64).collect()),
            complete: true,
        };
        let body = Bytes::from(encode_body(&msg).unwrap());
        let decoded = decode_body(&body).unwrap();
        let Message::PushBlock { payload: Payload::Bytes(b), .. } = decoded else {
            panic!("decoded wrong variant");
        };
        // The payload sits at the tail of the frame; identical bytes, shared storage.
        assert_eq!(b.as_slice(), &body.as_slice()[body.len() - 64..]);
        assert_eq!(b.slice(..).len(), 64);
    }

    /// Deterministic xorshift64* generator — the same in-file seeded-fuzzer style as
    /// `crates/core/tests/properties.rs`, so failures reproduce exactly.
    struct Rng(u64);

    impl Rng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        fn range(&mut self, lo: u64, hi: u64) -> u64 {
            lo + self.next_u64() % (hi - lo)
        }

        fn node(&mut self) -> NodeId {
            NodeId(self.range(0, 64) as u32)
        }

        fn object(&mut self) -> ObjectId {
            ObjectId::from_name(&format!("fuzz-{}", self.range(0, 1 << 20)))
        }

        fn bytes(&mut self, len: usize) -> Vec<u8> {
            (0..len).map(|_| self.next_u64() as u8).collect()
        }

        fn nodes(&mut self) -> Vec<NodeId> {
            let n = self.range(0, 4) as usize;
            (0..n).map(|_| self.node()).collect()
        }

        /// Any payload shape: contiguous, segmented (sometimes with bulk segments at
        /// or above the gather threshold), or synthetic.
        fn payload(&mut self) -> Payload {
            match self.range(0, 4) {
                0 => {
                    let len = self.range(0, 64) as usize;
                    Payload::from_vec(self.bytes(len))
                }
                1 => {
                    // Segmented, small pieces (all below the coalesce threshold).
                    let n = self.range(2, 5) as usize;
                    let segs = (0..n)
                        .map(|_| {
                            let len = self.range(1, 32) as usize;
                            Bytes::from(self.bytes(len))
                        })
                        .collect();
                    Payload::from_segments(segs)
                }
                2 => {
                    // Segmented with bulk segments that ride as shared references.
                    let n = self.range(1, 4) as usize;
                    let segs = (0..n)
                        .map(|_| {
                            let len = GATHER_MIN_SEGMENT + self.range(0, 64) as usize;
                            Bytes::from(self.bytes(len))
                        })
                        .collect();
                    Payload::from_segments(segs)
                }
                _ => Payload::synthetic(self.range(0, 1 << 30)),
            }
        }

        fn status(&mut self) -> ObjectStatus {
            if self.range(0, 2) == 0 {
                ObjectStatus::Partial
            } else {
                ObjectStatus::Complete
            }
        }

        fn spec(&mut self) -> ReduceSpec {
            let op = match self.range(0, 3) {
                0 => ReduceOp::Sum,
                1 => ReduceOp::Min,
                _ => ReduceOp::Max,
            };
            let dtype = match self.range(0, 4) {
                0 => DType::F32,
                1 => DType::F64,
                2 => DType::I32,
                _ => DType::I64,
            };
            ReduceSpec { op, dtype }
        }

        fn dir_op(&mut self) -> hoplite_core::DirOp {
            use hoplite_core::DirOp;
            match self.range(0, 8) {
                0 => DirOp::Register {
                    object: self.object(),
                    holder: self.node(),
                    status: self.status(),
                    size: self.next_u64(),
                },
                1 => DirOp::PutInline {
                    object: self.object(),
                    holder: self.node(),
                    payload: self.payload(),
                },
                2 => DirOp::Unregister { object: self.object(), holder: self.node() },
                3 => DirOp::Query {
                    object: self.object(),
                    requester: self.node(),
                    query_id: self.next_u64(),
                    exclude: self.nodes(),
                },
                4 => DirOp::Subscribe { object: self.object(), subscriber: self.node() },
                5 => DirOp::Unsubscribe { object: self.object(), subscriber: self.node() },
                6 => DirOp::TransferDone {
                    object: self.object(),
                    receiver: self.node(),
                    sender: self.node(),
                },
                _ => DirOp::Delete { object: self.object() },
            }
        }

        fn snapshot(&mut self) -> ShardSnapshot {
            let n = self.range(0, 3) as usize;
            ShardSnapshot {
                entries: (0..n)
                    .map(|_| SnapshotEntry {
                        object: self.object(),
                        size: (self.range(0, 2) == 1).then(|| self.next_u64()),
                        locations: (0..self.range(0, 3))
                            .map(|_| {
                                let lease = (self.range(0, 2) == 1).then(|| self.node());
                                (self.node(), self.status(), lease)
                            })
                            .collect(),
                        inline: (self.range(0, 2) == 1).then(|| self.payload()),
                        inline_stamp: self.next_u64(),
                        pending: (0..self.range(0, 2))
                            .map(|_| (self.node(), self.next_u64(), self.nodes()))
                            .collect(),
                        subscribers: self.nodes(),
                        pulls: (0..self.range(0, 2)).map(|_| (self.node(), self.node())).collect(),
                        deleted: self.range(0, 2) == 1,
                    })
                    .collect(),
            }
        }

        fn digest(&mut self) -> Vec<(NodeId, u64, bool)> {
            (0..self.range(0, 4))
                .map(|_| (self.node(), self.next_u64(), self.range(0, 2) == 1))
                .collect()
        }

        fn gossip(&mut self) -> Vec<GossipEntry> {
            (0..self.range(0, 7))
                .map(|_| {
                    let state = match self.range(0, 3) {
                        0 => GossipState::Alive,
                        1 => GossipState::Suspect,
                        _ => GossipState::Dead,
                    };
                    (self.node(), self.next_u64(), state)
                })
                .collect()
        }

        fn message(&mut self) -> Message {
            use hoplite_core::protocol::ReduceParent;
            match self.range(0, 33) {
                0 => Message::PushBlock {
                    object: self.object(),
                    offset: self.next_u64(),
                    total_size: self.next_u64(),
                    payload: self.payload(),
                    complete: self.range(0, 2) == 1,
                },
                1 => Message::ReduceBlock {
                    target: self.object(),
                    to_slot: self.range(0, 1 << 20) as usize,
                    from_slot: self.range(0, 1 << 20) as usize,
                    parent_epoch: self.next_u64(),
                    block_index: self.next_u64(),
                    object_size: self.next_u64(),
                    payload: self.payload(),
                },
                2 => Message::DirRegister {
                    object: self.object(),
                    holder: self.node(),
                    status: self.status(),
                    size: self.next_u64(),
                },
                3 => Message::DirPutInline {
                    object: self.object(),
                    holder: self.node(),
                    payload: self.payload(),
                },
                4 => Message::DirUnregister { object: self.object(), holder: self.node() },
                5 => Message::DirQuery {
                    object: self.object(),
                    requester: self.node(),
                    query_id: self.next_u64(),
                    exclude: self.nodes(),
                },
                6 => Message::DirQueryReply {
                    object: self.object(),
                    query_id: self.next_u64(),
                    result: match self.range(0, 3) {
                        0 => QueryResult::Inline { payload: self.payload() },
                        1 => QueryResult::Location {
                            node: self.node(),
                            status: self.status(),
                            size: self.next_u64(),
                        },
                        _ => QueryResult::Deleted,
                    },
                },
                7 => Message::DirSubscribe { object: self.object(), subscriber: self.node() },
                8 => Message::DirUnsubscribe { object: self.object(), subscriber: self.node() },
                9 => Message::DirPublish {
                    object: self.object(),
                    holder: self.node(),
                    status: self.status(),
                    size: self.next_u64(),
                },
                10 => Message::DirTransferDone {
                    object: self.object(),
                    receiver: self.node(),
                    sender: self.node(),
                },
                11 => Message::DirDelete { object: self.object() },
                12 => Message::StoreRelease { object: self.object() },
                13 => Message::PullRequest {
                    object: self.object(),
                    requester: self.node(),
                    offset: self.next_u64(),
                },
                14 => Message::PullCancel { object: self.object(), requester: self.node() },
                15 => Message::PullError {
                    object: self.object(),
                    reason: format!("reason-{}", self.range(0, 1000)),
                },
                16 => Message::ReduceInstruction(ReduceInstruction {
                    target: self.object(),
                    coordinator: self.node(),
                    slot: self.range(0, 256) as usize,
                    own_object: self.object(),
                    spec: self.spec(),
                    object_size: self.next_u64(),
                    block_size: self.next_u64(),
                    num_inputs: self.range(0, 16) as usize,
                    epoch: self.next_u64(),
                    parent: (self.range(0, 2) == 1).then(|| ReduceParent {
                        slot: self.range(0, 256) as usize,
                        node: self.node(),
                        epoch: self.next_u64(),
                    }),
                    children: (0..self.range(0, 3))
                        .map(|_| (self.range(0, 256) as usize, self.node(), self.object()))
                        .collect(),
                    is_root: self.range(0, 2) == 1,
                    total_slots: self.range(1, 256) as usize,
                }),
                17 => Message::ReduceDone { target: self.object(), root: self.node() },
                18 => Message::ReduceRelease { target: self.object() },
                19 => Message::DirReplicate {
                    shard: self.next_u64(),
                    epoch: self.next_u64(),
                    seq: self.next_u64(),
                    op: self.dir_op(),
                },
                20 => Message::DirAck {
                    shard: self.next_u64(),
                    epoch: self.next_u64(),
                    seq: self.next_u64(),
                },
                21 => Message::DirSnapshotRequest {
                    shard: self.next_u64(),
                    requester: self.node(),
                    restart: self.range(0, 2) == 1,
                    after: (self.range(0, 2) == 1).then(|| self.object()),
                    have_epoch: self.next_u64(),
                    have_seq: self.next_u64(),
                    digest: self.digest(),
                },
                22 => Message::DirSnapshot {
                    shard: self.next_u64(),
                    epoch: self.next_u64(),
                    seq: self.next_u64(),
                    rank: self.next_u64(),
                    state: self.snapshot(),
                },
                23 => Message::DirResynced { node: self.node(), incarnation: self.next_u64() },
                24 => Message::Hello { node: self.node(), incarnation: self.next_u64() },
                25 => Message::DirSnapshotChunk {
                    shard: self.next_u64(),
                    epoch: self.next_u64(),
                    seq: self.next_u64(),
                    rank: self.next_u64(),
                    done: self.range(0, 2) == 1,
                    state: self.snapshot(),
                },
                26 => Message::DirResyncDelta {
                    shard: self.next_u64(),
                    epoch: self.next_u64(),
                    ops: (0..self.range(0, 3)).map(|_| (self.next_u64(), self.dir_op())).collect(),
                    done: self.range(0, 2) == 1,
                },
                28 => {
                    Message::PeerFailureNotice { node: self.node(), incarnation: self.next_u64() }
                }
                29 => Message::MembershipDigest { entries: self.digest() },
                30 => Message::Ping {
                    origin: self.node(),
                    probe_id: self.next_u64(),
                    gossip: self.gossip(),
                },
                31 => Message::Ack { probe_id: self.next_u64(), gossip: self.gossip() },
                32 => Message::PingReq {
                    target: self.node(),
                    probe_id: self.next_u64(),
                    gossip: self.gossip(),
                },
                _ => Message::DirConfirm {
                    object: self.object(),
                    kind: match self.range(0, 3) {
                        0 => ConfirmKind::Location { status: self.status() },
                        1 => ConfirmKind::Inline,
                        _ => ConfirmKind::Subscription,
                    },
                },
            }
        }
    }

    /// Property (seeded fuzzer): for *every* message variant, with payloads in every
    /// shape, the scatter-gather frame flattens byte-for-byte to the contiguous
    /// encoding, and the body round-trips through `decode_body`.
    #[test]
    fn fuzz_vectored_encoding_matches_contiguous_for_every_variant() {
        let mut rng = Rng(0x5CA7_7E2F);
        let mut variants_seen = [false; 33];
        for case in 0..700 {
            let msg = rng.message();
            let contiguous = encode_frame(&msg).unwrap();
            let vectored = encode_frame_vectored(&msg).unwrap();
            assert_eq!(
                vectored.to_contiguous(),
                contiguous,
                "case {case}: vectored != contiguous for {msg:?}"
            );
            let body = Bytes::from(encode_body(&msg).unwrap());
            assert_eq!(&contiguous[4..], body.as_slice(), "case {case}: frame != prefix+body");
            let decoded = decode_body(&body).unwrap();
            assert_eq!(decoded, msg, "case {case}: decode roundtrip");
            variants_seen[(contiguous[4] - 1) as usize] = true;
        }
        assert!(
            variants_seen.iter().all(|&seen| seen),
            "700 cases should cover all 33 tags: {variants_seen:?}"
        );
    }

    /// Property (seeded fuzzer): chunking is codec-transparent. A shard's entry list
    /// split into `DirSnapshotChunk` frames at *arbitrary* boundaries — empty chunks,
    /// single-entry chunks, everything in one chunk — round-trips each frame and
    /// reassembles to exactly the original entries, regardless of where the cuts
    /// fall. Same for a replication-log suffix split across `DirResyncDelta` frames.
    #[test]
    fn fuzz_chunk_boundary_splits_reassemble_exactly() {
        let mut rng = Rng(0xC4_0B0B);
        for case in 0..200 {
            let total = rng.range(0, 24) as usize;
            let entries: Vec<SnapshotEntry> =
                (0..total).flat_map(|_| rng.snapshot().entries).collect();

            // Cut the entry list at random boundaries (possibly producing empty
            // chunks — a dirty-only stream with nothing fitting does exactly that).
            let mut chunks: Vec<Vec<SnapshotEntry>> = Vec::new();
            let mut rest = entries.as_slice();
            while !rest.is_empty() {
                let cut = rng.range(0, rest.len() as u64 + 1) as usize;
                chunks.push(rest[..cut].to_vec());
                rest = &rest[cut..];
            }
            chunks.push(Vec::new()); // trailing empty done-chunk

            let mut reassembled = Vec::new();
            let last = chunks.len() - 1;
            for (i, chunk) in chunks.into_iter().enumerate() {
                let msg = Message::DirSnapshotChunk {
                    shard: rng.next_u64(),
                    epoch: rng.next_u64(),
                    seq: rng.next_u64(),
                    rank: rng.next_u64(),
                    done: i == last,
                    state: ShardSnapshot { entries: chunk },
                };
                let body = Bytes::from(encode_body(&msg).unwrap());
                let decoded = decode_body(&body).unwrap();
                assert_eq!(decoded, msg, "case {case}: chunk {i} roundtrip");
                let Message::DirSnapshotChunk { state, .. } = decoded else { unreachable!() };
                reassembled.extend(state.entries);
            }
            assert_eq!(reassembled, entries, "case {case}: splits must reassemble");

            // Delta frames: a log suffix cut at a random boundary per frame.
            let ops: Vec<(u64, hoplite_core::DirOp)> =
                (0..rng.range(0, 12)).map(|seq| (seq, rng.dir_op())).collect();
            let mut replayed = Vec::new();
            let mut at = 0usize;
            while at < ops.len() || replayed.is_empty() {
                let cut = at + rng.range(0, (ops.len() - at) as u64 + 1) as usize;
                let msg = Message::DirResyncDelta {
                    shard: rng.next_u64(),
                    epoch: rng.next_u64(),
                    ops: ops[at..cut].to_vec(),
                    done: cut == ops.len(),
                };
                let body = Bytes::from(encode_body(&msg).unwrap());
                let decoded = decode_body(&body).unwrap();
                assert_eq!(decoded, msg, "case {case}: delta roundtrip");
                let Message::DirResyncDelta { ops: frame_ops, done, .. } = decoded else {
                    unreachable!()
                };
                replayed.extend(frame_ops);
                at = cut;
                if done {
                    break;
                }
            }
            assert_eq!(replayed, ops, "case {case}: delta splits must reassemble");
        }
    }

    #[test]
    fn bulk_payload_rides_as_shared_segments() {
        let backing = Bytes::from(vec![7u8; 2 * GATHER_MIN_SEGMENT]);
        let msg = Message::PushBlock {
            object: ObjectId::from_name("sg"),
            offset: 0,
            total_size: backing.len() as u64,
            payload: Payload::Bytes(backing.clone()),
            complete: true,
        };
        let frame = encode_frame_vectored(&msg).unwrap();
        assert_eq!(frame.segments.len(), 1);
        // Shared storage, not a copy: the segment points at the payload's buffer.
        assert_eq!(frame.segments[0].as_slice().as_ptr(), backing.as_slice().as_ptr());
        // Control messages coalesce to a single contiguous part.
        let ctl = encode_frame_vectored(&Message::DirResynced { node: NodeId(3), incarnation: 0 })
            .unwrap();
        assert!(ctl.segments.is_empty());
        // Payloads under the threshold coalesce too (short-frame single-syscall path).
        let small = encode_frame_vectored(&Message::PushBlock {
            object: ObjectId::from_name("small"),
            offset: 0,
            total_size: 64,
            payload: Payload::zeros(64),
            complete: true,
        })
        .unwrap();
        assert!(small.segments.is_empty());
    }

    #[test]
    fn forward_path_has_zero_payload_copies() {
        // The full forward hop a relaying node performs: receive frame → decode →
        // append to the store buffer → read a block back out → re-encode for the next
        // receiver. With scatter-gather encode this must not copy one payload byte —
        // the debug copy counter proves it, so the invariant cannot silently regress.
        use hoplite_core::buffer::ProgressBuffer;
        use hoplite_core::copytrace;
        let block_len = 2 * GATHER_MIN_SEGMENT as u64;
        let total = 2 * block_len;
        let incoming: Vec<Bytes> = (0..2)
            .map(|i| {
                Bytes::from(
                    encode_body(&Message::PushBlock {
                        object: ObjectId::from_name("fwd"),
                        offset: i * block_len,
                        total_size: total,
                        payload: Payload::from_vec(vec![i as u8 + 1; block_len as usize]),
                        complete: i == 1,
                    })
                    .unwrap(),
                )
            })
            .collect();
        copytrace::reset();
        let mut buf = ProgressBuffer::new(total, false);
        for frame in &incoming {
            let Message::PushBlock { offset, payload, .. } = decode_body(frame).unwrap() else {
                panic!("wrong variant");
            };
            assert!(buf.append_at(offset, &payload));
        }
        // Forward at an offset that straddles the two received segments — the hardest
        // case, which the old path would coalesce.
        let fwd = buf.read(block_len / 2, block_len).unwrap();
        assert!(fwd.as_bytes().is_none(), "straddling read should stay segmented");
        let frame = encode_frame_vectored(&Message::PushBlock {
            object: ObjectId::from_name("fwd"),
            offset: block_len / 2,
            total_size: total,
            payload: fwd,
            complete: false,
        })
        .unwrap();
        assert_eq!(frame.segments.len(), 2, "both straddled views ride as references");
        assert_eq!(
            copytrace::bytes_copied(),
            0,
            "decode → append → read → encode must not memcpy payload bytes"
        );
        assert_eq!(copytrace::copies(), 0);
    }

    #[test]
    fn legacy_contiguous_encode_pays_the_two_copies() {
        // Documents what the vectored path saves: the legacy frame encoding memcpys
        // the payload into the body and the body into the frame.
        use hoplite_core::copytrace;
        let payload_len = 4 * GATHER_MIN_SEGMENT;
        let msg = Message::PushBlock {
            object: ObjectId::from_name("legacy"),
            offset: 0,
            total_size: payload_len as u64,
            payload: Payload::zeros(payload_len),
            complete: true,
        };
        copytrace::reset();
        encode_frame(&msg).unwrap();
        if cfg!(debug_assertions) {
            assert!(copytrace::bytes_copied() >= 2 * payload_len as u64);
        }
        copytrace::reset();
        encode_frame_vectored(&msg).unwrap();
        assert_eq!(copytrace::bytes_copied(), 0);
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let decode = |v: &[u8]| decode_body(&Bytes::copy_from_slice(v));
        assert!(decode(&[]).is_err());
        assert!(decode(&[42]).is_err());
        assert!(decode(&[super::tags::PUSH_BLOCK, 1, 2]).is_err());
        // A valid message with trailing garbage is rejected too.
        let mut body =
            encode_body(&Message::DirDelete { object: ObjectId::from_name("x") }).unwrap();
        body.push(0);
        assert!(decode(&body).is_err());
        // Truncated node list length.
        let mut q = encode_body(&Message::DirQuery {
            object: ObjectId::from_name("q"),
            requester: NodeId(0),
            query_id: 1,
            exclude: vec![NodeId(1)],
        })
        .unwrap();
        q.truncate(q.len() - 2);
        assert!(decode(&q).is_err());
        // A payload length field of u64::MAX must come back Malformed, not panic
        // (checked end-offset arithmetic in the reader).
        let mut huge = encode_body(&Message::PushBlock {
            object: ObjectId::from_name("huge"),
            offset: 0,
            total_size: 8,
            payload: Payload::from_vec(vec![1; 8]),
            complete: true,
        })
        .unwrap();
        let len_at = huge.len() - 8 - 8; // length u64 sits just before the 8 payload bytes
        huge[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_be_bytes());
        assert!(decode(&huge).is_err());
    }

    /// Serves a fixed byte stream in adversarially small chunks: every `read` returns
    /// at most `max_chunk` bytes (rng-sized when `max_chunk > 1`), so frame headers,
    /// bodies, and slab boundaries are straddled in every possible way.
    struct ChunkedReader<'a> {
        data: &'a [u8],
        at: usize,
        rng: Rng,
        max_chunk: usize,
    }

    impl std::io::Read for ChunkedReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.at == self.data.len() {
                return Ok(0);
            }
            let chunk = if self.max_chunk <= 1 {
                1
            } else {
                self.rng.range(1, self.max_chunk as u64 + 1) as usize
            };
            let n = chunk.min(buf.len()).min(self.data.len() - self.at);
            buf[..n].copy_from_slice(&self.data[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    /// Property (seeded fuzzer): a [`FrameReader`] fed any message mix through any
    /// read chunking — 1-byte reads, short reads mid-header, frames straddling slab
    /// boundaries (tiny slabs force rolls constantly) — decodes exactly what
    /// [`read_frame`] decodes from the same byte stream.
    #[test]
    fn fuzz_frame_reader_matches_read_frame_under_adversarial_chunking() {
        let mut rng = Rng(0xF8A3_11D7);
        for round in 0..25u64 {
            let n_msgs = rng.range(1, 12) as usize;
            let msgs: Vec<Message> = (0..n_msgs).map(|_| rng.message()).collect();
            let mut stream = Vec::new();
            for m in &msgs {
                stream.extend_from_slice(&encode_frame(m).unwrap());
            }
            let mut cursor = std::io::Cursor::new(stream.clone());
            let baseline: Vec<Message> =
                (0..n_msgs).map(|_| read_frame(&mut cursor).unwrap()).collect();
            assert_eq!(baseline, msgs, "round {round}: read_frame baseline");
            for (slab_len, max_chunk) in
                [(64usize, 1usize), (97, 3), (1 << 10, 11), (1 << 16, 4096)]
            {
                let chunked =
                    ChunkedReader { data: &stream, at: 0, rng: Rng(rng.next_u64() | 1), max_chunk };
                let mut reader = FrameReader::with_slab_len(chunked, slab_len);
                let decoded: Vec<Message> = (0..n_msgs)
                    .map(|i| {
                        reader.read_message().unwrap_or_else(|e| {
                            panic!("round {round} slab {slab_len} chunk {max_chunk} msg {i}: {e}")
                        })
                    })
                    .collect();
                assert_eq!(decoded, msgs, "round {round} slab {slab_len} chunk {max_chunk}");
                // The stream ends at a frame boundary; the next read reports EOF.
                let err = reader.read_message().unwrap_err();
                assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
            }
        }
    }

    #[test]
    fn frame_reader_reuses_slabs_and_decodes_bulk_payloads_in_place() {
        use hoplite_core::copytrace;
        let block = 2 * GATHER_MIN_SEGMENT;
        let msgs: Vec<Message> = (0..8)
            .map(|i| Message::PushBlock {
                object: ObjectId::from_name("slab"),
                offset: (i * block) as u64,
                total_size: (8 * block) as u64,
                payload: Payload::from_vec(vec![i as u8 + 1; block]),
                complete: i == 7,
            })
            .collect();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_frame(m).unwrap());
        }
        copytrace::reset();
        let mut reader = FrameReader::with_slab_len(std::io::Cursor::new(stream), 4 * block);
        for want in &msgs {
            let got = reader.read_message().unwrap();
            assert_eq!(&got, want);
            // `got` (and its payload view into the slab) drops here, unpinning the
            // slab so the pool can hand it out again on the next roll.
        }
        assert!(reader.take_slab_reuses() > 0, "pool should recycle unpinned slabs");
        assert_eq!(
            copytrace::bytes_copied(),
            0,
            "slab-reader decode must not memcpy payload bytes"
        );
    }

    /// Counts syscall-shaped write calls and captures the byte stream, with a real
    /// gathering `write_vectored` (the std default would only take the first slice).
    #[derive(Default)]
    struct CountingWriter {
        out: Vec<u8>,
        calls: usize,
    }

    impl std::io::Write for CountingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.calls += 1;
            self.out.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn write_vectored(&mut self, bufs: &[std::io::IoSlice<'_>]) -> std::io::Result<usize> {
            self.calls += 1;
            let mut n = 0;
            for b in bufs {
                self.out.extend_from_slice(b);
                n += b.len();
            }
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn cork_batches_control_bursts_into_one_vectored_write() {
        let controls: Vec<Message> =
            (0..10).map(|i| Message::DirAck { shard: i, epoch: 1, seq: i + 1 }).collect();
        let mut expected = Vec::new();
        for m in &controls {
            write_frame_vectored(&mut expected, m).unwrap();
        }
        let mut w = CountingWriter::default();
        let mut cork = Cork::new();
        for m in &controls {
            cork.write(&mut w, m).unwrap();
        }
        assert_eq!(w.calls, 0, "control frames are held until flush");
        cork.flush(&mut w).unwrap();
        assert_eq!(w.calls, 1, "the whole burst goes out as one vectored write");
        assert_eq!(w.out, expected, "corked stream must be byte-exact");
        assert_eq!(cork.take_corked_frames(), 10);
        assert_eq!(cork.take_corked_writes(), 1);
    }

    #[test]
    fn cork_flushes_ahead_of_bulk_frames_and_on_cap_overflow() {
        let bulk = Message::PushBlock {
            object: ObjectId::from_name("blk"),
            offset: 0,
            total_size: 2 * GATHER_MIN_SEGMENT as u64,
            payload: Payload::Bytes(Bytes::from(vec![5u8; 2 * GATHER_MIN_SEGMENT])),
            complete: true,
        };
        let ctl = Message::DirResynced { node: NodeId(1), incarnation: 0 };
        let mut expected = Vec::new();
        write_frame_vectored(&mut expected, &ctl).unwrap();
        write_frame_vectored(&mut expected, &ctl).unwrap();
        write_frame_vectored(&mut expected, &bulk).unwrap();
        let mut w = CountingWriter::default();
        let mut cork = Cork::new();
        cork.write(&mut w, &ctl).unwrap();
        cork.write(&mut w, &ctl).unwrap();
        cork.write(&mut w, &bulk).unwrap();
        assert!(!cork.has_pending(), "a bulk frame flushes the cork first");
        assert_eq!(w.calls, 2, "pending burst, then the bulk frame itself");
        assert_eq!(w.out, expected, "ordering is preserved across the implicit flush");
        // Overflowing the frame cap flushes implicitly, so a cork never holds an
        // unbounded backlog.
        let mut w2 = CountingWriter::default();
        for i in 0..(MAX_CORKED_FRAMES as u64 + 1) {
            cork.write(&mut w2, &Message::DirAck { shard: 0, epoch: 0, seq: i }).unwrap();
        }
        assert_eq!(w2.calls, 1);
        assert!(cork.has_pending(), "the overflow frame starts the next batch");
        cork.flush(&mut w2).unwrap();
    }
}
