//! Wire framing for the real transports.
//!
//! The paper's implementation splits traffic into a gRPC control plane and a raw-TCP
//! data plane (§4). We mirror that split inside a single framed stream: every message
//! is encoded with a compact fixed binary layout — one tag byte selecting the variant,
//! followed by the variant's fields in declaration order. Bulk messages (`PushBlock`,
//! `ReduceBlock`) keep their historical tags so the payload bytes sit at a fixed,
//! copy-friendly offset. Each frame is length-prefixed.
//!
//! Frame layout:
//!
//! ```text
//! +----------------+--------+----------------------------+
//! | length: u32 BE | tag u8 | body (length - 1 bytes)    |
//! +----------------+--------+----------------------------+
//! tag  1 = PushBlock        (bulk)
//! tag  2 = ReduceBlock      (bulk)
//! tag  3+ = control messages (one tag per variant, see `tags`)
//! ```
//!
//! Integers are big-endian. Variable-length fields (`Vec`, `String`, payloads) are
//! length-prefixed. The codec is hand-rolled and dependency-free; the decode side
//! bounds-checks every read and rejects trailing or truncated bytes.

use bytes::Bytes;
use hoplite_core::prelude::*;
use hoplite_core::protocol::ReduceParent;
use hoplite_core::reduce::{DType, ReduceOp};
// The core prelude exports its own single-parameter `Result` alias; framing uses the
// standard two-parameter form.
use std::result::Result;

/// Errors produced while encoding or decoding frames.
#[derive(Debug)]
pub enum FrameError {
    /// The frame is shorter than its header or otherwise malformed.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn malformed(what: &str) -> FrameError {
    FrameError::Malformed(what.to_string())
}

/// Message tags. Bulk tags 1/2 are stable; control tags follow.
mod tags {
    pub const PUSH_BLOCK: u8 = 1;
    pub const REDUCE_BLOCK: u8 = 2;
    pub const DIR_REGISTER: u8 = 3;
    pub const DIR_PUT_INLINE: u8 = 4;
    pub const DIR_UNREGISTER: u8 = 5;
    pub const DIR_QUERY: u8 = 6;
    pub const DIR_QUERY_REPLY: u8 = 7;
    pub const DIR_SUBSCRIBE: u8 = 8;
    pub const DIR_PUBLISH: u8 = 9;
    pub const DIR_TRANSFER_DONE: u8 = 10;
    pub const DIR_DELETE: u8 = 11;
    pub const STORE_RELEASE: u8 = 12;
    pub const PULL_REQUEST: u8 = 13;
    pub const PULL_CANCEL: u8 = 14;
    pub const PULL_ERROR: u8 = 15;
    pub const REDUCE_INSTRUCTION: u8 = 16;
    pub const REDUCE_DONE: u8 = 17;
    pub const DIR_UNSUBSCRIBE: u8 = 18;
    pub const DIR_REPLICATE: u8 = 19;
    pub const REDUCE_RELEASE: u8 = 20;
    pub const DIR_ACK: u8 = 21;
    pub const DIR_SNAPSHOT_REQUEST: u8 = 22;
    pub const DIR_SNAPSHOT: u8 = 23;
    pub const DIR_RESYNCED: u8 = 24;
    pub const DIR_CONFIRM: u8 = 25;
}

/// Sub-tags selecting the [`ConfirmKind`] variant inside a `DirConfirm` frame.
mod confirm_tags {
    pub const LOCATION: u8 = 0;
    pub const INLINE: u8 = 1;
    pub const SUBSCRIPTION: u8 = 2;
}

/// Sub-tags selecting the [`DirOp`] variant inside a `DirReplicate` frame.
mod op_tags {
    pub const REGISTER: u8 = 0;
    pub const PUT_INLINE: u8 = 1;
    pub const UNREGISTER: u8 = 2;
    pub const QUERY: u8 = 3;
    pub const SUBSCRIBE: u8 = 4;
    pub const UNSUBSCRIBE: u8 = 5;
    pub const TRANSFER_DONE: u8 = 6;
    pub const DELETE: u8 = 7;
}

// ------------------------------------------------------------------ write helpers --

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_be_bytes());
        }
    }
}

fn put_opt_node(out: &mut Vec<u8>, v: Option<NodeId>) {
    match v {
        None => out.push(0),
        Some(n) => {
            out.push(1);
            out.extend_from_slice(&n.0.to_be_bytes());
        }
    }
}

fn put_snapshot(out: &mut Vec<u8>, state: &ShardSnapshot) {
    put_u64(out, state.entries.len() as u64);
    for e in &state.entries {
        put_object(out, e.object);
        put_opt_u64(out, e.size);
        put_u64(out, e.locations.len() as u64);
        for (holder, status, leased_to) in &e.locations {
            put_node(out, *holder);
            put_status(out, *status);
            put_opt_node(out, *leased_to);
        }
        match &e.inline {
            None => put_u8(out, 0),
            Some(p) => {
                put_u8(out, 1);
                put_payload(out, p);
            }
        }
        put_u64(out, e.pending.len() as u64);
        for (requester, query_id, exclude) in &e.pending {
            put_node(out, *requester);
            put_u64(out, *query_id);
            put_nodes(out, exclude);
        }
        put_nodes(out, &e.subscribers);
        put_u64(out, e.pulls.len() as u64);
        for (receiver, sender) in &e.pulls {
            put_node(out, *receiver);
            put_node(out, *sender);
        }
        put_bool(out, e.deleted);
    }
}

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn put_object(out: &mut Vec<u8>, object: ObjectId) {
    out.extend_from_slice(&object.0);
}

fn put_node(out: &mut Vec<u8>, node: NodeId) {
    put_u32(out, node.0);
}

fn put_status(out: &mut Vec<u8>, status: ObjectStatus) {
    put_u8(
        out,
        match status {
            ObjectStatus::Partial => 0,
            ObjectStatus::Complete => 1,
        },
    );
}

fn put_spec(out: &mut Vec<u8>, spec: ReduceSpec) {
    put_u8(
        out,
        match spec.op {
            ReduceOp::Sum => 0,
            ReduceOp::Min => 1,
            ReduceOp::Max => 2,
        },
    );
    put_u8(
        out,
        match spec.dtype {
            DType::F32 => 0,
            DType::F64 => 1,
            DType::I32 => 2,
            DType::I64 => 3,
        },
    );
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_nodes(out: &mut Vec<u8>, nodes: &[NodeId]) {
    put_u64(out, nodes.len() as u64);
    for &n in nodes {
        put_node(out, n);
    }
}

fn put_payload(out: &mut Vec<u8>, payload: &Payload) {
    match payload {
        Payload::Bytes(b) => {
            put_u8(out, 0);
            put_u64(out, b.len() as u64);
            out.extend_from_slice(b);
        }
        Payload::Synthetic { len } => {
            put_u8(out, 1);
            put_u64(out, *len);
        }
    }
}

fn put_dir_op(out: &mut Vec<u8>, op: &DirOp) {
    match op {
        DirOp::Register { object, holder, status, size } => {
            put_u8(out, op_tags::REGISTER);
            put_object(out, *object);
            put_node(out, *holder);
            put_status(out, *status);
            put_u64(out, *size);
        }
        DirOp::PutInline { object, holder, payload } => {
            put_u8(out, op_tags::PUT_INLINE);
            put_object(out, *object);
            put_node(out, *holder);
            put_payload(out, payload);
        }
        DirOp::Unregister { object, holder } => {
            put_u8(out, op_tags::UNREGISTER);
            put_object(out, *object);
            put_node(out, *holder);
        }
        DirOp::Query { object, requester, query_id, exclude } => {
            put_u8(out, op_tags::QUERY);
            put_object(out, *object);
            put_node(out, *requester);
            put_u64(out, *query_id);
            put_nodes(out, exclude);
        }
        DirOp::Subscribe { object, subscriber } => {
            put_u8(out, op_tags::SUBSCRIBE);
            put_object(out, *object);
            put_node(out, *subscriber);
        }
        DirOp::Unsubscribe { object, subscriber } => {
            put_u8(out, op_tags::UNSUBSCRIBE);
            put_object(out, *object);
            put_node(out, *subscriber);
        }
        DirOp::TransferDone { object, receiver, sender } => {
            put_u8(out, op_tags::TRANSFER_DONE);
            put_object(out, *object);
            put_node(out, *receiver);
            put_node(out, *sender);
        }
        DirOp::Delete { object } => {
            put_u8(out, op_tags::DELETE);
            put_object(out, *object);
        }
    }
}

// ------------------------------------------------------------------- read helpers --

/// Bounds-checked cursor over a received frame body.
///
/// The cursor borrows the frame as a shared [`Bytes`] buffer so payload fields decode
/// as zero-copy sub-slices of the receive buffer instead of fresh allocations — the
/// difference between ~1 GiB/s and encode-parity decode throughput on 4 MiB blocks
/// (see `BENCH_NOTES.md`).
struct Reader<'a> {
    buf: &'a Bytes,
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a Bytes, at: usize) -> Reader<'a> {
        Reader { buf, at }
    }

    /// End offset of an `n`-byte read, or an error when it overflows or runs past the
    /// frame (a corrupt or hostile length field must surface as `Malformed`, never as
    /// an arithmetic panic — these bytes come straight off the network).
    fn end_of(&self, n: usize) -> Result<usize, FrameError> {
        match self.at.checked_add(n) {
            Some(end) if end <= self.buf.len() => Ok(end),
            _ => Err(malformed("truncated field")),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.end_of(n)?;
        let slice = &self.buf.as_slice()[self.at..end];
        self.at = end;
        Ok(slice)
    }

    /// Take `n` bytes as a shared sub-slice of the frame (no copy).
    fn take_shared(&mut self, n: usize) -> Result<Bytes, FrameError> {
        let end = self.end_of(n)?;
        let shared = self.buf.slice(self.at..end);
        self.at = end;
        Ok(shared)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn usize_checked(&mut self) -> Result<usize, FrameError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| malformed("length overflows usize"))
    }

    fn bool(&mut self) -> Result<bool, FrameError> {
        Ok(self.u8()? != 0)
    }

    fn object(&mut self) -> Result<ObjectId, FrameError> {
        Ok(ObjectId(self.take(16)?.try_into().expect("16 bytes")))
    }

    fn node(&mut self) -> Result<NodeId, FrameError> {
        Ok(NodeId(self.u32()?))
    }

    fn status(&mut self) -> Result<ObjectStatus, FrameError> {
        match self.u8()? {
            0 => Ok(ObjectStatus::Partial),
            1 => Ok(ObjectStatus::Complete),
            other => Err(malformed(&format!("unknown object status {other}"))),
        }
    }

    fn spec(&mut self) -> Result<ReduceSpec, FrameError> {
        let op = match self.u8()? {
            0 => ReduceOp::Sum,
            1 => ReduceOp::Min,
            2 => ReduceOp::Max,
            other => return Err(malformed(&format!("unknown reduce op {other}"))),
        };
        let dtype = match self.u8()? {
            0 => DType::F32,
            1 => DType::F64,
            2 => DType::I32,
            3 => DType::I64,
            other => return Err(malformed(&format!("unknown dtype {other}"))),
        };
        Ok(ReduceSpec { op, dtype })
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let len = self.usize_checked()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("invalid utf-8 string"))
    }

    fn nodes(&mut self) -> Result<Vec<NodeId>, FrameError> {
        let len = self.usize_checked()?;
        if len > self.buf.len() {
            return Err(malformed("node list longer than frame"));
        }
        (0..len).map(|_| self.node()).collect()
    }

    fn payload(&mut self) -> Result<Payload, FrameError> {
        match self.u8()? {
            0 => {
                let len = self.usize_checked()?;
                Ok(Payload::Bytes(self.take_shared(len)?))
            }
            1 => Ok(Payload::synthetic(self.u64()?)),
            other => Err(malformed(&format!("unknown payload kind {other}"))),
        }
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, FrameError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(malformed(&format!("unknown option flag {other}"))),
        }
    }

    fn opt_node(&mut self) -> Result<Option<NodeId>, FrameError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.node()?)),
            other => Err(malformed(&format!("unknown option flag {other}"))),
        }
    }

    /// Bounds-check a count field against the *remaining* frame bytes, scaled by the
    /// minimum wire size of one element, before the caller reserves — so a corrupt
    /// or hostile count cannot drive a huge `Vec::with_capacity` (a count of `n`
    /// elements that each need at least `min_elem` encoded bytes cannot be honest
    /// unless `n * min_elem` bytes are actually left in the frame).
    fn count(&mut self, min_elem: usize) -> Result<usize, FrameError> {
        let n = self.usize_checked()?;
        let remaining = self.buf.len() - self.at;
        match n.checked_mul(min_elem.max(1)) {
            Some(needed) if needed <= remaining => Ok(n),
            _ => Err(malformed("list longer than frame")),
        }
    }

    fn snapshot(&mut self) -> Result<ShardSnapshot, FrameError> {
        // Minimum encoded sizes: entry = 16 object + 1 size flag + 3×8 counts +
        // 1 inline flag + 1 deleted + 8 subscriber count; location = 4 node +
        // 1 status + 1 lease flag; pending = 4 node + 8 id + 8 count; pull = 2×4.
        let num_entries = self.count(51)?;
        let mut entries = Vec::with_capacity(num_entries);
        for _ in 0..num_entries {
            let object = self.object()?;
            let size = self.opt_u64()?;
            let num_locations = self.count(6)?;
            let mut locations = Vec::with_capacity(num_locations);
            for _ in 0..num_locations {
                locations.push((self.node()?, self.status()?, self.opt_node()?));
            }
            let inline = match self.u8()? {
                0 => None,
                1 => Some(self.payload()?),
                other => return Err(malformed(&format!("unknown inline flag {other}"))),
            };
            let num_pending = self.count(20)?;
            let mut pending = Vec::with_capacity(num_pending);
            for _ in 0..num_pending {
                pending.push((self.node()?, self.u64()?, self.nodes()?));
            }
            let subscribers = self.nodes()?;
            let num_pulls = self.count(8)?;
            let mut pulls = Vec::with_capacity(num_pulls);
            for _ in 0..num_pulls {
                pulls.push((self.node()?, self.node()?));
            }
            let deleted = self.bool()?;
            entries.push(SnapshotEntry {
                object,
                size,
                locations,
                inline,
                pending,
                subscribers,
                pulls,
                deleted,
            });
        }
        Ok(ShardSnapshot { entries })
    }

    fn dir_op(&mut self) -> Result<DirOp, FrameError> {
        match self.u8()? {
            op_tags::REGISTER => Ok(DirOp::Register {
                object: self.object()?,
                holder: self.node()?,
                status: self.status()?,
                size: self.u64()?,
            }),
            op_tags::PUT_INLINE => Ok(DirOp::PutInline {
                object: self.object()?,
                holder: self.node()?,
                payload: self.payload()?,
            }),
            op_tags::UNREGISTER => {
                Ok(DirOp::Unregister { object: self.object()?, holder: self.node()? })
            }
            op_tags::QUERY => Ok(DirOp::Query {
                object: self.object()?,
                requester: self.node()?,
                query_id: self.u64()?,
                exclude: self.nodes()?,
            }),
            op_tags::SUBSCRIBE => {
                Ok(DirOp::Subscribe { object: self.object()?, subscriber: self.node()? })
            }
            op_tags::UNSUBSCRIBE => {
                Ok(DirOp::Unsubscribe { object: self.object()?, subscriber: self.node()? })
            }
            op_tags::TRANSFER_DONE => Ok(DirOp::TransferDone {
                object: self.object()?,
                receiver: self.node()?,
                sender: self.node()?,
            }),
            op_tags::DELETE => Ok(DirOp::Delete { object: self.object()? }),
            other => Err(malformed(&format!("unknown directory op tag {other}"))),
        }
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(malformed("trailing bytes after message"))
        }
    }
}

// ------------------------------------------------------------------------- encode --

/// Encode a message body (without the outer length prefix).
pub fn encode_body(msg: &Message) -> Result<Vec<u8>, FrameError> {
    let mut out = Vec::new();
    match msg {
        Message::PushBlock { object, offset, total_size, payload, complete } => {
            put_u8(&mut out, tags::PUSH_BLOCK);
            put_object(&mut out, *object);
            put_u64(&mut out, *offset);
            put_u64(&mut out, *total_size);
            put_bool(&mut out, *complete);
            put_payload(&mut out, payload);
        }
        Message::ReduceBlock {
            target,
            to_slot,
            from_slot,
            parent_epoch,
            block_index,
            object_size,
            payload,
        } => {
            put_u8(&mut out, tags::REDUCE_BLOCK);
            put_object(&mut out, *target);
            put_u64(&mut out, *to_slot as u64);
            put_u64(&mut out, *from_slot as u64);
            put_u64(&mut out, *parent_epoch);
            put_u64(&mut out, *block_index);
            put_u64(&mut out, *object_size);
            put_payload(&mut out, payload);
        }
        Message::DirRegister { object, holder, status, size } => {
            put_u8(&mut out, tags::DIR_REGISTER);
            put_object(&mut out, *object);
            put_node(&mut out, *holder);
            put_status(&mut out, *status);
            put_u64(&mut out, *size);
        }
        Message::DirPutInline { object, holder, payload } => {
            put_u8(&mut out, tags::DIR_PUT_INLINE);
            put_object(&mut out, *object);
            put_node(&mut out, *holder);
            put_payload(&mut out, payload);
        }
        Message::DirUnregister { object, holder } => {
            put_u8(&mut out, tags::DIR_UNREGISTER);
            put_object(&mut out, *object);
            put_node(&mut out, *holder);
        }
        Message::DirQuery { object, requester, query_id, exclude } => {
            put_u8(&mut out, tags::DIR_QUERY);
            put_object(&mut out, *object);
            put_node(&mut out, *requester);
            put_u64(&mut out, *query_id);
            put_nodes(&mut out, exclude);
        }
        Message::DirQueryReply { object, query_id, result } => {
            put_u8(&mut out, tags::DIR_QUERY_REPLY);
            put_object(&mut out, *object);
            put_u64(&mut out, *query_id);
            match result {
                QueryResult::Inline { payload } => {
                    put_u8(&mut out, 0);
                    put_payload(&mut out, payload);
                }
                QueryResult::Location { node, status, size } => {
                    put_u8(&mut out, 1);
                    put_node(&mut out, *node);
                    put_status(&mut out, *status);
                    put_u64(&mut out, *size);
                }
                QueryResult::Deleted => put_u8(&mut out, 2),
            }
        }
        Message::DirSubscribe { object, subscriber } => {
            put_u8(&mut out, tags::DIR_SUBSCRIBE);
            put_object(&mut out, *object);
            put_node(&mut out, *subscriber);
        }
        Message::DirUnsubscribe { object, subscriber } => {
            put_u8(&mut out, tags::DIR_UNSUBSCRIBE);
            put_object(&mut out, *object);
            put_node(&mut out, *subscriber);
        }
        Message::DirReplicate { shard, epoch, seq, op } => {
            put_u8(&mut out, tags::DIR_REPLICATE);
            put_u64(&mut out, *shard);
            put_u64(&mut out, *epoch);
            put_u64(&mut out, *seq);
            put_dir_op(&mut out, op);
        }
        Message::DirAck { shard, epoch, seq } => {
            put_u8(&mut out, tags::DIR_ACK);
            put_u64(&mut out, *shard);
            put_u64(&mut out, *epoch);
            put_u64(&mut out, *seq);
        }
        Message::DirSnapshotRequest { shard, requester, restart } => {
            put_u8(&mut out, tags::DIR_SNAPSHOT_REQUEST);
            put_u64(&mut out, *shard);
            put_node(&mut out, *requester);
            put_bool(&mut out, *restart);
        }
        Message::DirSnapshot { shard, epoch, seq, rank, state } => {
            put_u8(&mut out, tags::DIR_SNAPSHOT);
            put_u64(&mut out, *shard);
            put_u64(&mut out, *epoch);
            put_u64(&mut out, *seq);
            put_u64(&mut out, *rank);
            put_snapshot(&mut out, state);
        }
        Message::DirResynced { node } => {
            put_u8(&mut out, tags::DIR_RESYNCED);
            put_node(&mut out, *node);
        }
        Message::DirConfirm { object, kind } => {
            put_u8(&mut out, tags::DIR_CONFIRM);
            put_object(&mut out, *object);
            match kind {
                ConfirmKind::Location { status } => {
                    put_u8(&mut out, confirm_tags::LOCATION);
                    put_status(&mut out, *status);
                }
                ConfirmKind::Inline => put_u8(&mut out, confirm_tags::INLINE),
                ConfirmKind::Subscription => put_u8(&mut out, confirm_tags::SUBSCRIPTION),
            }
        }
        Message::DirPublish { object, holder, status, size } => {
            put_u8(&mut out, tags::DIR_PUBLISH);
            put_object(&mut out, *object);
            put_node(&mut out, *holder);
            put_status(&mut out, *status);
            put_u64(&mut out, *size);
        }
        Message::DirTransferDone { object, receiver, sender } => {
            put_u8(&mut out, tags::DIR_TRANSFER_DONE);
            put_object(&mut out, *object);
            put_node(&mut out, *receiver);
            put_node(&mut out, *sender);
        }
        Message::DirDelete { object } => {
            put_u8(&mut out, tags::DIR_DELETE);
            put_object(&mut out, *object);
        }
        Message::StoreRelease { object } => {
            put_u8(&mut out, tags::STORE_RELEASE);
            put_object(&mut out, *object);
        }
        Message::PullRequest { object, requester, offset } => {
            put_u8(&mut out, tags::PULL_REQUEST);
            put_object(&mut out, *object);
            put_node(&mut out, *requester);
            put_u64(&mut out, *offset);
        }
        Message::PullCancel { object, requester } => {
            put_u8(&mut out, tags::PULL_CANCEL);
            put_object(&mut out, *object);
            put_node(&mut out, *requester);
        }
        Message::PullError { object, reason } => {
            put_u8(&mut out, tags::PULL_ERROR);
            put_object(&mut out, *object);
            put_string(&mut out, reason);
        }
        Message::ReduceInstruction(instr) => {
            put_u8(&mut out, tags::REDUCE_INSTRUCTION);
            put_object(&mut out, instr.target);
            put_node(&mut out, instr.coordinator);
            put_u64(&mut out, instr.slot as u64);
            put_object(&mut out, instr.own_object);
            put_spec(&mut out, instr.spec);
            put_u64(&mut out, instr.object_size);
            put_u64(&mut out, instr.block_size);
            put_u64(&mut out, instr.num_inputs as u64);
            put_u64(&mut out, instr.epoch);
            match &instr.parent {
                None => put_u8(&mut out, 0),
                Some(p) => {
                    put_u8(&mut out, 1);
                    put_u64(&mut out, p.slot as u64);
                    put_node(&mut out, p.node);
                    put_u64(&mut out, p.epoch);
                }
            }
            put_u64(&mut out, instr.children.len() as u64);
            for (slot, node, object) in &instr.children {
                put_u64(&mut out, *slot as u64);
                put_node(&mut out, *node);
                put_object(&mut out, *object);
            }
            put_bool(&mut out, instr.is_root);
            put_u64(&mut out, instr.total_slots as u64);
        }
        Message::ReduceDone { target, root } => {
            put_u8(&mut out, tags::REDUCE_DONE);
            put_object(&mut out, *target);
            put_node(&mut out, *root);
        }
        Message::ReduceRelease { target } => {
            put_u8(&mut out, tags::REDUCE_RELEASE);
            put_object(&mut out, *target);
        }
    }
    Ok(out)
}

// ------------------------------------------------------------------------- decode --

/// Decode a message body produced by [`encode_body`].
///
/// The body is taken as a shared [`Bytes`] buffer so bulk payloads (`PushBlock`,
/// `ReduceBlock`, inline objects) decode as zero-copy views into it; callers that own
/// a `Vec<u8>` convert with `Bytes::from(vec)` (free) rather than re-allocating.
pub fn decode_body(buf: &Bytes) -> Result<Message, FrameError> {
    let tag = *buf.first().ok_or_else(|| malformed("empty frame"))?;
    let mut r = Reader::new(buf, 1);
    let msg = match tag {
        tags::PUSH_BLOCK => Message::PushBlock {
            object: r.object()?,
            offset: r.u64()?,
            total_size: r.u64()?,
            complete: r.bool()?,
            payload: r.payload()?,
        },
        tags::REDUCE_BLOCK => Message::ReduceBlock {
            target: r.object()?,
            to_slot: r.usize_checked()?,
            from_slot: r.usize_checked()?,
            parent_epoch: r.u64()?,
            block_index: r.u64()?,
            object_size: r.u64()?,
            payload: r.payload()?,
        },
        tags::DIR_REGISTER => Message::DirRegister {
            object: r.object()?,
            holder: r.node()?,
            status: r.status()?,
            size: r.u64()?,
        },
        tags::DIR_PUT_INLINE => {
            Message::DirPutInline { object: r.object()?, holder: r.node()?, payload: r.payload()? }
        }
        tags::DIR_UNREGISTER => Message::DirUnregister { object: r.object()?, holder: r.node()? },
        tags::DIR_QUERY => Message::DirQuery {
            object: r.object()?,
            requester: r.node()?,
            query_id: r.u64()?,
            exclude: r.nodes()?,
        },
        tags::DIR_QUERY_REPLY => {
            let object = r.object()?;
            let query_id = r.u64()?;
            let result = match r.u8()? {
                0 => QueryResult::Inline { payload: r.payload()? },
                1 => QueryResult::Location { node: r.node()?, status: r.status()?, size: r.u64()? },
                2 => QueryResult::Deleted,
                other => return Err(malformed(&format!("unknown query result {other}"))),
            };
            Message::DirQueryReply { object, query_id, result }
        }
        tags::DIR_SUBSCRIBE => Message::DirSubscribe { object: r.object()?, subscriber: r.node()? },
        tags::DIR_UNSUBSCRIBE => {
            Message::DirUnsubscribe { object: r.object()?, subscriber: r.node()? }
        }
        tags::DIR_REPLICATE => Message::DirReplicate {
            shard: r.u64()?,
            epoch: r.u64()?,
            seq: r.u64()?,
            op: r.dir_op()?,
        },
        tags::DIR_ACK => Message::DirAck { shard: r.u64()?, epoch: r.u64()?, seq: r.u64()? },
        tags::DIR_SNAPSHOT_REQUEST => Message::DirSnapshotRequest {
            shard: r.u64()?,
            requester: r.node()?,
            restart: r.bool()?,
        },
        tags::DIR_SNAPSHOT => Message::DirSnapshot {
            shard: r.u64()?,
            epoch: r.u64()?,
            seq: r.u64()?,
            rank: r.u64()?,
            state: r.snapshot()?,
        },
        tags::DIR_RESYNCED => Message::DirResynced { node: r.node()? },
        tags::DIR_CONFIRM => {
            let object = r.object()?;
            let kind = match r.u8()? {
                confirm_tags::LOCATION => ConfirmKind::Location { status: r.status()? },
                confirm_tags::INLINE => ConfirmKind::Inline,
                confirm_tags::SUBSCRIPTION => ConfirmKind::Subscription,
                other => return Err(malformed(&format!("unknown confirm kind {other}"))),
            };
            Message::DirConfirm { object, kind }
        }
        tags::DIR_PUBLISH => Message::DirPublish {
            object: r.object()?,
            holder: r.node()?,
            status: r.status()?,
            size: r.u64()?,
        },
        tags::DIR_TRANSFER_DONE => {
            Message::DirTransferDone { object: r.object()?, receiver: r.node()?, sender: r.node()? }
        }
        tags::DIR_DELETE => Message::DirDelete { object: r.object()? },
        tags::STORE_RELEASE => Message::StoreRelease { object: r.object()? },
        tags::PULL_REQUEST => {
            Message::PullRequest { object: r.object()?, requester: r.node()?, offset: r.u64()? }
        }
        tags::PULL_CANCEL => Message::PullCancel { object: r.object()?, requester: r.node()? },
        tags::PULL_ERROR => Message::PullError { object: r.object()?, reason: r.string()? },
        tags::REDUCE_INSTRUCTION => {
            let target = r.object()?;
            let coordinator = r.node()?;
            let slot = r.usize_checked()?;
            let own_object = r.object()?;
            let spec = r.spec()?;
            let object_size = r.u64()?;
            let block_size = r.u64()?;
            let num_inputs = r.usize_checked()?;
            let epoch = r.u64()?;
            let parent = match r.u8()? {
                0 => None,
                1 => Some(ReduceParent {
                    slot: r.usize_checked()?,
                    node: r.node()?,
                    epoch: r.u64()?,
                }),
                other => return Err(malformed(&format!("unknown parent flag {other}"))),
            };
            let num_children = r.usize_checked()?;
            if num_children > buf.len() {
                return Err(malformed("child list longer than frame"));
            }
            let mut children = Vec::with_capacity(num_children);
            for _ in 0..num_children {
                children.push((r.usize_checked()?, r.node()?, r.object()?));
            }
            Message::ReduceInstruction(ReduceInstruction {
                target,
                coordinator,
                slot,
                own_object,
                spec,
                object_size,
                block_size,
                num_inputs,
                epoch,
                parent,
                children,
                is_root: r.bool()?,
                total_slots: r.usize_checked()?,
            })
        }
        tags::REDUCE_DONE => Message::ReduceDone { target: r.object()?, root: r.node()? },
        tags::REDUCE_RELEASE => Message::ReduceRelease { target: r.object()? },
        other => return Err(malformed(&format!("unknown frame tag {other}"))),
    };
    r.finish()?;
    Ok(msg)
}

/// Encode a whole frame: `u32` big-endian length followed by the body.
pub fn encode_frame(msg: &Message) -> Result<Vec<u8>, FrameError> {
    let body = encode_body(msg)?;
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Write a framed message to a writer.
pub fn write_frame<W: std::io::Write>(w: &mut W, msg: &Message) -> std::io::Result<()> {
    let frame = encode_frame(msg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    w.write_all(&frame)
}

/// Read one framed message from a reader. The body buffer is handed to the decoder as
/// a shared `Bytes`, so the message's payload (if any) aliases it instead of copying.
pub fn read_frame<R: std::io::Read>(r: &mut R) -> std::io::Result<Message> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    decode_body(&Bytes::from(body))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_core::protocol::ReduceParent;
    use hoplite_core::reduce::ReduceSpec;

    fn roundtrip(msg: Message) {
        let body = Bytes::from(encode_body(&msg).unwrap());
        let decoded = decode_body(&body).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn push_block_roundtrip() {
        roundtrip(Message::PushBlock {
            object: ObjectId::from_name("x"),
            offset: 12345,
            total_size: 99999,
            payload: Payload::from_vec((0..255).collect()),
            complete: true,
        });
    }

    #[test]
    fn reduce_block_roundtrip() {
        roundtrip(Message::ReduceBlock {
            target: ObjectId::from_name("t"),
            to_slot: 3,
            from_slot: 9,
            parent_epoch: 2,
            block_index: 7,
            object_size: 4096,
            payload: Payload::from_f32s(&[1.0, -2.0, 3.5]),
        });
    }

    #[test]
    fn synthetic_payload_roundtrip() {
        roundtrip(Message::PushBlock {
            object: ObjectId::from_name("s"),
            offset: 0,
            total_size: 10,
            payload: Payload::synthetic(10),
            complete: false,
        });
    }

    #[test]
    fn every_control_message_roundtrips() {
        let obj = ObjectId::from_name("ctl");
        roundtrip(Message::DirRegister {
            object: obj,
            holder: NodeId(0),
            status: ObjectStatus::Partial,
            size: 123,
        });
        roundtrip(Message::DirPutInline {
            object: obj,
            holder: NodeId(3),
            payload: Payload::from_vec(vec![1, 2, 3]),
        });
        roundtrip(Message::DirUnregister { object: obj, holder: NodeId(1) });
        roundtrip(Message::DirQuery {
            object: obj,
            requester: NodeId(4),
            query_id: 77,
            exclude: vec![NodeId(1), NodeId(2)],
        });
        roundtrip(Message::DirQueryReply {
            object: obj,
            query_id: 9,
            result: QueryResult::Inline { payload: Payload::zeros(8) },
        });
        roundtrip(Message::DirQueryReply {
            object: obj,
            query_id: 10,
            result: QueryResult::Location {
                node: NodeId(5),
                status: ObjectStatus::Complete,
                size: 4096,
            },
        });
        roundtrip(Message::DirQueryReply {
            object: obj,
            query_id: 11,
            result: QueryResult::Deleted,
        });
        roundtrip(Message::DirSubscribe { object: obj, subscriber: NodeId(7) });
        roundtrip(Message::DirPublish {
            object: obj,
            holder: NodeId(2),
            status: ObjectStatus::Complete,
            size: 1 << 30,
        });
        roundtrip(Message::DirTransferDone { object: obj, receiver: NodeId(8), sender: NodeId(9) });
        roundtrip(Message::DirDelete { object: obj });
        roundtrip(Message::DirUnsubscribe { object: obj, subscriber: NodeId(7) });
        roundtrip(Message::StoreRelease { object: obj });
        roundtrip(Message::ReduceRelease { target: obj });
        roundtrip(Message::PullRequest { object: obj, requester: NodeId(1), offset: 512 });
        roundtrip(Message::PullCancel { object: obj, requester: NodeId(1) });
        roundtrip(Message::PullError { object: obj, reason: "object deleted".to_string() });
        roundtrip(Message::ReduceDone { target: obj, root: NodeId(3) });
    }

    #[test]
    fn reduce_instruction_roundtrips() {
        roundtrip(Message::ReduceInstruction(ReduceInstruction {
            target: ObjectId::from_name("t"),
            coordinator: NodeId(0),
            slot: 3,
            own_object: ObjectId::from_name("s"),
            spec: ReduceSpec::sum_f32(),
            object_size: 1024,
            block_size: 256,
            num_inputs: 3,
            epoch: 5,
            parent: Some(ReduceParent { slot: 5, node: NodeId(2), epoch: 1 }),
            children: vec![(1, NodeId(4), ObjectId::from_name("c"))],
            is_root: false,
            total_slots: 6,
        }));
        // Root variant: no parent, no children.
        roundtrip(Message::ReduceInstruction(ReduceInstruction {
            target: ObjectId::from_name("t2"),
            coordinator: NodeId(1),
            slot: 0,
            own_object: ObjectId::from_name("s2"),
            spec: ReduceSpec::sum_f32(),
            object_size: 8,
            block_size: 8,
            num_inputs: 1,
            epoch: 0,
            parent: None,
            children: vec![],
            is_root: true,
            total_slots: 1,
        }));
    }

    #[test]
    fn stream_roundtrip_through_a_buffer() {
        let messages = vec![
            Message::DirDelete { object: ObjectId::from_name("a") },
            Message::PushBlock {
                object: ObjectId::from_name("b"),
                offset: 4,
                total_size: 8,
                payload: Payload::from_vec(vec![9, 9, 9, 9]),
                complete: true,
            },
        ];
        let mut buf = Vec::new();
        for m in &messages {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for m in &messages {
            assert_eq!(&read_frame(&mut cursor).unwrap(), m);
        }
    }

    #[test]
    fn every_replicated_op_roundtrips() {
        let obj = ObjectId::from_name("rep");
        let ops = vec![
            hoplite_core::DirOp::Register {
                object: obj,
                holder: NodeId(1),
                status: ObjectStatus::Complete,
                size: 999,
            },
            hoplite_core::DirOp::PutInline {
                object: obj,
                holder: NodeId(2),
                payload: Payload::from_vec(vec![5, 6, 7]),
            },
            hoplite_core::DirOp::Unregister { object: obj, holder: NodeId(3) },
            hoplite_core::DirOp::Query {
                object: obj,
                requester: NodeId(4),
                query_id: 11,
                exclude: vec![NodeId(0), NodeId(9)],
            },
            hoplite_core::DirOp::Subscribe { object: obj, subscriber: NodeId(5) },
            hoplite_core::DirOp::Unsubscribe { object: obj, subscriber: NodeId(5) },
            hoplite_core::DirOp::TransferDone {
                object: obj,
                receiver: NodeId(6),
                sender: NodeId(7),
            },
            hoplite_core::DirOp::Delete { object: obj },
        ];
        for (i, op) in ops.into_iter().enumerate() {
            roundtrip(Message::DirReplicate { shard: i as u64, epoch: 3, seq: 100 + i as u64, op });
        }
    }

    #[test]
    fn resync_and_ack_messages_roundtrip() {
        let obj = ObjectId::from_name("resync");
        roundtrip(Message::DirAck { shard: 3, epoch: 2, seq: 41 });
        roundtrip(Message::DirSnapshotRequest { shard: 7, requester: NodeId(4), restart: true });
        roundtrip(Message::DirSnapshotRequest { shard: 8, requester: NodeId(5), restart: false });
        roundtrip(Message::DirResynced { node: NodeId(9) });
        roundtrip(Message::DirConfirm {
            object: obj,
            kind: ConfirmKind::Location { status: ObjectStatus::Partial },
        });
        roundtrip(Message::DirConfirm { object: obj, kind: ConfirmKind::Inline });
        roundtrip(Message::DirConfirm { object: obj, kind: ConfirmKind::Subscription });
        // An empty snapshot and a fully-populated one.
        roundtrip(Message::DirSnapshot {
            shard: 1,
            epoch: 5,
            seq: 12,
            rank: 1,
            state: ShardSnapshot::default(),
        });
        let state = ShardSnapshot {
            entries: vec![
                SnapshotEntry {
                    object: ObjectId::from_name("full"),
                    size: Some(4096),
                    locations: vec![
                        (NodeId(0), ObjectStatus::Complete, None),
                        (NodeId(2), ObjectStatus::Partial, Some(NodeId(3))),
                    ],
                    inline: Some(Payload::from_vec(vec![1, 2, 3])),
                    pending: vec![(NodeId(5), 77, vec![NodeId(1), NodeId(2)])],
                    subscribers: vec![NodeId(6), NodeId(7)],
                    pulls: vec![(NodeId(3), NodeId(2))],
                    deleted: false,
                },
                SnapshotEntry {
                    object: ObjectId::from_name("tombstone"),
                    size: None,
                    locations: vec![],
                    inline: None,
                    pending: vec![],
                    subscribers: vec![],
                    pulls: vec![],
                    deleted: true,
                },
            ],
        };
        roundtrip(Message::DirSnapshot { shard: 2, epoch: 1, seq: 9, rank: 0, state });
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let mut body = encode_body(&Message::DirSnapshot {
            shard: 0,
            epoch: 0,
            seq: 1,
            rank: 0,
            state: ShardSnapshot {
                entries: vec![SnapshotEntry {
                    object: ObjectId::from_name("t"),
                    size: Some(8),
                    locations: vec![(NodeId(1), ObjectStatus::Complete, None)],
                    ..SnapshotEntry::default()
                }],
            },
        })
        .unwrap();
        body.truncate(body.len() - 3);
        assert!(decode_body(&Bytes::from(body)).is_err());
    }

    #[test]
    fn decoded_payload_aliases_the_frame_buffer() {
        // Zero-copy contract: the decoded PushBlock payload is a view into the frame
        // body, so decoding must not copy megabytes per block.
        let msg = Message::PushBlock {
            object: ObjectId::from_name("z"),
            offset: 0,
            total_size: 64,
            payload: Payload::from_vec((0..64).collect()),
            complete: true,
        };
        let body = Bytes::from(encode_body(&msg).unwrap());
        let decoded = decode_body(&body).unwrap();
        let Message::PushBlock { payload: Payload::Bytes(b), .. } = decoded else {
            panic!("decoded wrong variant");
        };
        // The payload sits at the tail of the frame; identical bytes, shared storage.
        assert_eq!(b.as_slice(), &body.as_slice()[body.len() - 64..]);
        assert_eq!(b.slice(..).len(), 64);
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let decode = |v: &[u8]| decode_body(&Bytes::copy_from_slice(v));
        assert!(decode(&[]).is_err());
        assert!(decode(&[42]).is_err());
        assert!(decode(&[super::tags::PUSH_BLOCK, 1, 2]).is_err());
        // A valid message with trailing garbage is rejected too.
        let mut body =
            encode_body(&Message::DirDelete { object: ObjectId::from_name("x") }).unwrap();
        body.push(0);
        assert!(decode(&body).is_err());
        // Truncated node list length.
        let mut q = encode_body(&Message::DirQuery {
            object: ObjectId::from_name("q"),
            requester: NodeId(0),
            query_id: 1,
            exclude: vec![NodeId(1)],
        })
        .unwrap();
        q.truncate(q.len() - 2);
        assert!(decode(&q).is_err());
        // A payload length field of u64::MAX must come back Malformed, not panic
        // (checked end-offset arithmetic in the reader).
        let mut huge = encode_body(&Message::PushBlock {
            object: ObjectId::from_name("huge"),
            offset: 0,
            total_size: 8,
            payload: Payload::from_vec(vec![1; 8]),
            complete: true,
        })
        .unwrap();
        let len_at = huge.len() - 8 - 8; // length u64 sits just before the 8 payload bytes
        huge[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_be_bytes());
        assert!(decode(&huge).is_err());
    }
}
