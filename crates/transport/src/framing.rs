//! Wire framing for the real transports.
//!
//! The paper's implementation splits traffic into a gRPC control plane and a raw-TCP
//! data plane (§4). We mirror that split inside a single framed stream: bulk messages
//! (`PushBlock`, `ReduceBlock`) are encoded with a compact fixed binary header followed
//! by the raw payload bytes, while every other (small, infrequent) control message is
//! encoded as JSON. Each frame is length-prefixed.
//!
//! Frame layout:
//!
//! ```text
//! +----------------+--------+----------------------------+
//! | length: u32 BE | tag u8 | body (length - 1 bytes)    |
//! +----------------+--------+----------------------------+
//! tag 0 = JSON control message
//! tag 1 = PushBlock     (binary)
//! tag 2 = ReduceBlock   (binary)
//! ```

use bytes::Bytes;
use hoplite_core::prelude::*;
// The core prelude exports its own single-parameter `Result` alias; framing uses the
// standard two-parameter form.
use std::result::Result;

/// Errors produced while encoding or decoding frames.
#[derive(Debug)]
pub enum FrameError {
    /// The frame is shorter than its header or otherwise malformed.
    Malformed(String),
    /// JSON (de)serialization failed.
    Json(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
            FrameError::Json(m) => write!(f, "json frame error: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

const TAG_JSON: u8 = 0;
const TAG_PUSH_BLOCK: u8 = 1;
const TAG_REDUCE_BLOCK: u8 = 2;

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn get_u64(buf: &[u8], at: usize) -> Result<u64, FrameError> {
    buf.get(at..at + 8)
        .and_then(|s| s.try_into().ok())
        .map(u64::from_be_bytes)
        .ok_or_else(|| FrameError::Malformed("truncated u64".into()))
}

fn encode_payload(out: &mut Vec<u8>, payload: &Payload) {
    match payload {
        Payload::Bytes(b) => {
            out.push(0);
            put_u64(out, b.len() as u64);
            out.extend_from_slice(b);
        }
        Payload::Synthetic { len } => {
            out.push(1);
            put_u64(out, *len);
        }
    }
}

fn decode_payload(buf: &[u8], at: usize) -> Result<(Payload, usize), FrameError> {
    let kind = *buf.get(at).ok_or_else(|| FrameError::Malformed("missing payload kind".into()))?;
    let len = get_u64(buf, at + 1)? as usize;
    match kind {
        0 => {
            let start = at + 9;
            let data = buf
                .get(start..start + len)
                .ok_or_else(|| FrameError::Malformed("truncated payload".into()))?;
            Ok((Payload::Bytes(Bytes::copy_from_slice(data)), start + len))
        }
        1 => Ok((Payload::synthetic(len as u64), at + 9)),
        other => Err(FrameError::Malformed(format!("unknown payload kind {other}"))),
    }
}

/// Encode a message body (without the outer length prefix).
pub fn encode_body(msg: &Message) -> Result<Vec<u8>, FrameError> {
    let mut out = Vec::new();
    match msg {
        Message::PushBlock { object, offset, total_size, payload, complete } => {
            out.push(TAG_PUSH_BLOCK);
            out.extend_from_slice(&object.0);
            put_u64(&mut out, *offset);
            put_u64(&mut out, *total_size);
            out.push(u8::from(*complete));
            encode_payload(&mut out, payload);
        }
        Message::ReduceBlock {
            target,
            to_slot,
            from_slot,
            parent_epoch,
            block_index,
            object_size,
            payload,
        } => {
            out.push(TAG_REDUCE_BLOCK);
            out.extend_from_slice(&target.0);
            put_u64(&mut out, *to_slot as u64);
            put_u64(&mut out, *from_slot as u64);
            put_u64(&mut out, *parent_epoch);
            put_u64(&mut out, *block_index);
            put_u64(&mut out, *object_size);
            encode_payload(&mut out, payload);
        }
        other => {
            out.push(TAG_JSON);
            let json = serde_json::to_vec(other).map_err(|e| FrameError::Json(e.to_string()))?;
            out.extend_from_slice(&json);
        }
    }
    Ok(out)
}

/// Decode a message body produced by [`encode_body`].
pub fn decode_body(buf: &[u8]) -> Result<Message, FrameError> {
    let tag = *buf.first().ok_or_else(|| FrameError::Malformed("empty frame".into()))?;
    match tag {
        TAG_JSON => serde_json::from_slice(&buf[1..]).map_err(|e| FrameError::Json(e.to_string())),
        TAG_PUSH_BLOCK => {
            let mut object = [0u8; 16];
            object.copy_from_slice(
                buf.get(1..17).ok_or_else(|| FrameError::Malformed("truncated object id".into()))?,
            );
            let offset = get_u64(buf, 17)?;
            let total_size = get_u64(buf, 25)?;
            let complete = *buf
                .get(33)
                .ok_or_else(|| FrameError::Malformed("truncated complete flag".into()))?
                != 0;
            let (payload, _) = decode_payload(buf, 34)?;
            Ok(Message::PushBlock {
                object: ObjectId(object),
                offset,
                total_size,
                payload,
                complete,
            })
        }
        TAG_REDUCE_BLOCK => {
            let mut target = [0u8; 16];
            target.copy_from_slice(
                buf.get(1..17).ok_or_else(|| FrameError::Malformed("truncated target id".into()))?,
            );
            let to_slot = get_u64(buf, 17)? as usize;
            let from_slot = get_u64(buf, 25)? as usize;
            let parent_epoch = get_u64(buf, 33)?;
            let block_index = get_u64(buf, 41)?;
            let object_size = get_u64(buf, 49)?;
            let (payload, _) = decode_payload(buf, 57)?;
            Ok(Message::ReduceBlock {
                target: ObjectId(target),
                to_slot,
                from_slot,
                parent_epoch,
                block_index,
                object_size,
                payload,
            })
        }
        other => Err(FrameError::Malformed(format!("unknown frame tag {other}"))),
    }
}

/// Encode a whole frame: `u32` big-endian length followed by the body.
pub fn encode_frame(msg: &Message) -> Result<Vec<u8>, FrameError> {
    let body = encode_body(msg)?;
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Write a framed message to a writer.
pub fn write_frame<W: std::io::Write>(w: &mut W, msg: &Message) -> std::io::Result<()> {
    let frame = encode_frame(msg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    w.write_all(&frame)
}

/// Read one framed message from a reader.
pub fn read_frame<R: std::io::Read>(r: &mut R) -> std::io::Result<Message> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    decode_body(&body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_core::reduce::ReduceSpec;

    fn roundtrip(msg: Message) {
        let body = encode_body(&msg).unwrap();
        let decoded = decode_body(&body).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn push_block_roundtrip() {
        roundtrip(Message::PushBlock {
            object: ObjectId::from_name("x"),
            offset: 12345,
            total_size: 99999,
            payload: Payload::from_vec((0..255).collect()),
            complete: true,
        });
    }

    #[test]
    fn reduce_block_roundtrip() {
        roundtrip(Message::ReduceBlock {
            target: ObjectId::from_name("t"),
            to_slot: 3,
            from_slot: 9,
            parent_epoch: 2,
            block_index: 7,
            object_size: 4096,
            payload: Payload::from_f32s(&[1.0, -2.0, 3.5]),
        });
    }

    #[test]
    fn synthetic_payload_roundtrip() {
        roundtrip(Message::PushBlock {
            object: ObjectId::from_name("s"),
            offset: 0,
            total_size: 10,
            payload: Payload::synthetic(10),
            complete: false,
        });
    }

    #[test]
    fn control_messages_roundtrip_via_json() {
        roundtrip(Message::DirQuery {
            object: ObjectId::from_name("q"),
            requester: NodeId(4),
            query_id: 77,
            exclude: vec![NodeId(1), NodeId(2)],
        });
        roundtrip(Message::DirRegister {
            object: ObjectId::from_name("r"),
            holder: NodeId(0),
            status: ObjectStatus::Partial,
            size: 123,
        });
        roundtrip(Message::ReduceDone { target: ObjectId::from_name("d"), root: NodeId(3) });
        let _ = ReduceSpec::sum_f32();
    }

    #[test]
    fn stream_roundtrip_through_a_buffer() {
        let messages = vec![
            Message::DirDelete { object: ObjectId::from_name("a") },
            Message::PushBlock {
                object: ObjectId::from_name("b"),
                offset: 4,
                total_size: 8,
                payload: Payload::from_vec(vec![9, 9, 9, 9]),
                complete: true,
            },
        ];
        let mut buf = Vec::new();
        for m in &messages {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for m in &messages {
            assert_eq!(&read_frame(&mut cursor).unwrap(), m);
        }
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        assert!(decode_body(&[]).is_err());
        assert!(decode_body(&[42]).is_err());
        assert!(decode_body(&[TAG_PUSH_BLOCK, 1, 2]).is_err());
        assert!(decode_body(&[TAG_JSON, b'{']).is_err());
    }
}
