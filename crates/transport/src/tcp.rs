//! Localhost TCP fabric.
//!
//! Each node listens on an ephemeral `127.0.0.1` port. Senders open one TCP connection
//! per destination edge; the first frame on a connection is a [`Message::Hello`]
//! carrying the sender's node id, after which framed [`Message`]s flow. A reader
//! thread per accepted connection decodes frames and pushes them onto the destination
//! node's receive queue, preserving per-sender FIFO order exactly like the in-process
//! fabric.
//!
//! Both directions are **zero-copy** for bulk payloads:
//!
//! * Sends go through a per-edge writer thread owning the stream. Bulk frames are
//!   written as scatter-gather iovecs into the kernel (no staging copy); bursts of
//!   small control frames are corked ([`crate::framing::Cork`]) into a single
//!   `write_vectored` and flushed whenever the edge's queue drains, so directory
//!   chatter stops costing one syscall per frame without ever being delayed while
//!   traffic is idle.
//! * Receives go through a [`crate::framing::FrameReader`]: frames decode in place
//!   out of pooled slabs, so a block's payload bytes are written once by the kernel
//!   and then adopted as shared views all the way into the store.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crossbeam_channel::{unbounded, Receiver, Sender, TryRecvError};
use hoplite_core::prelude::*;
use parking_lot::{Mutex, RwLock};

use crate::fabric::{Fabric, FabricSender};
use crate::framing::{write_frame_vectored, Cork, FrameReader};

/// The shared, swappable table of per-node ingress queues. Reader threads look the
/// current queue up per frame, so swapping a slot (node restart) atomically reroutes
/// every surviving connection to the new incarnation's queue.
type IngressTable = Arc<RwLock<Vec<Sender<(NodeId, Message)>>>>;

/// A TCP-backed fabric for `n` co-hosted (or genuinely remote) nodes.
pub struct TcpFabric {
    addrs: Arc<Vec<SocketAddr>>,
    ingress: IngressTable,
    receivers: Vec<Option<Receiver<(NodeId, Message)>>>,
    incarnations: Arc<RwLock<Vec<u64>>>,
    recv_slab_reuses: Arc<AtomicU64>,
    corked_frames: Arc<AtomicU64>,
    corked_writes: Arc<AtomicU64>,
    _listeners: Vec<thread::JoinHandle<()>>,
}

/// Live writer-thread queues, keyed by `(from, to)` edge.
type EdgeMap = Arc<Mutex<HashMap<(u32, u32), Sender<Message>>>>;

/// Sender half of [`TcpFabric`]. Each edge `(from, to)` gets a dedicated writer
/// thread owning its stream; `send` only enqueues, so callers never block on the
/// network and the writer can see (and cork) whole bursts at once.
#[derive(Clone)]
pub struct TcpFabricSender {
    addrs: Arc<Vec<SocketAddr>>,
    edges: EdgeMap,
    incarnations: Arc<RwLock<Vec<u64>>>,
    corked_frames: Arc<AtomicU64>,
    corked_writes: Arc<AtomicU64>,
}

impl TcpFabric {
    /// Bind `n` listeners on localhost and start their accept loops.
    pub fn new(n: usize) -> std::io::Result<Self> {
        let mut addrs = Vec::with_capacity(n);
        let mut listeners = Vec::with_capacity(n);
        let mut ingress = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        let mut accept_threads = Vec::new();
        let recv_slab_reuses = Arc::new(AtomicU64::new(0));
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(listener.local_addr()?);
            let (tx, rx) = unbounded();
            ingress.push(tx);
            receivers.push(Some(rx));
            listeners.push(listener);
        }
        let ingress = Arc::new(RwLock::new(ingress));
        for (slot, listener) in listeners.into_iter().enumerate() {
            let reuses = recv_slab_reuses.clone();
            let table = ingress.clone();
            accept_threads.push(thread::spawn(move || accept_loop(listener, slot, table, reuses)));
        }
        Ok(TcpFabric {
            addrs: Arc::new(addrs),
            ingress,
            receivers,
            incarnations: Arc::new(RwLock::new(vec![0; n])),
            recv_slab_reuses,
            corked_frames: Arc::new(AtomicU64::new(0)),
            corked_writes: Arc::new(AtomicU64::new(0)),
            _listeners: accept_threads,
        })
    }

    /// Bind only `me`'s listener from a cluster address map — the one-node-per-process
    /// shape `hoplited` runs. `addrs` must list every node's fabric address (fixed
    /// ports agreed out of band); only `addrs[me]` is bound locally, the rest are dialed
    /// on demand. A port still held by a just-killed previous incarnation is retried
    /// for a few seconds before giving up, so a supervisor can restart a daemon
    /// immediately after `kill -9` without racing the kernel's socket teardown.
    pub fn bind_node(me: NodeId, addrs: &[SocketAddr], incarnation: u64) -> std::io::Result<Self> {
        let n = addrs.len();
        let listener = bind_with_retry(addrs[me.index()])?;
        let mut addrs = addrs.to_vec();
        // Resolve a requested port 0 to the port actually bound.
        addrs[me.index()] = listener.local_addr()?;
        let mut ingress = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = unbounded();
            ingress.push(tx);
            receivers.push((i == me.index()).then_some(rx));
        }
        let ingress = Arc::new(RwLock::new(ingress));
        let recv_slab_reuses = Arc::new(AtomicU64::new(0));
        let mut incarnations = vec![0; n];
        incarnations[me.index()] = incarnation;
        let accept = {
            let table = ingress.clone();
            let reuses = recv_slab_reuses.clone();
            let slot = me.index();
            thread::spawn(move || accept_loop(listener, slot, table, reuses))
        };
        Ok(TcpFabric {
            addrs: Arc::new(addrs),
            ingress,
            receivers,
            incarnations: Arc::new(RwLock::new(incarnations)),
            recv_slab_reuses,
            corked_frames: Arc::new(AtomicU64::new(0)),
            corked_writes: Arc::new(AtomicU64::new(0)),
            _listeners: vec![accept],
        })
    }

    /// Addresses of every node's listener (diagnostics).
    pub fn addresses(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Record `node`'s current incarnation. New connections *from* `node` greet peers
    /// with this value in their [`Message::Hello`]; existing edges are unaffected
    /// (their Hello already went out), so pair this with
    /// [`TcpFabricSender::drop_edges_from`] when restarting an in-process node.
    pub fn set_incarnation(&self, node: NodeId, incarnation: u64) {
        self.incarnations.write()[node.index()] = incarnation;
    }

    /// Receive slabs served by pool reuse instead of a fresh allocation, across every
    /// connection accepted by this fabric (→ the `recv_slab_reuse` metric).
    pub fn recv_slab_reuses(&self) -> u64 {
        self.recv_slab_reuses.load(Ordering::Relaxed)
    }
}

/// Bind `addr`, retrying `AddrInUse` for a few seconds. A daemon restarted in place
/// of a `kill -9`'d predecessor can land before the kernel has torn the old socket
/// down; anything else (privilege, bad address) fails immediately.
fn bind_with_retry(addr: SocketAddr) -> std::io::Result<TcpListener> {
    let mut last = None;
    for _ in 0..60 {
        match TcpListener::bind(addr) {
            Ok(listener) => return Ok(listener),
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                last = Some(e);
                thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("retry loop ran at least once"))
}

fn accept_loop(
    listener: TcpListener,
    slot: usize,
    ingress: IngressTable,
    slab_reuses: Arc<AtomicU64>,
) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { return };
        let ingress = ingress.clone();
        let slab_reuses = slab_reuses.clone();
        thread::spawn(move || {
            let mut reader = FrameReader::new(stream);
            // First frame identifies the peer (and its incarnation). The Hello is
            // forwarded to the node like any other frame: a survivor that sees a
            // restarted peer reconnect learns the new incarnation from it.
            let Ok(Message::Hello { node: from, incarnation }) = reader.read_message() else {
                return;
            };
            if ingress.read()[slot]
                .send((from, Message::Hello { node: from, incarnation }))
                .is_err()
            {
                return;
            }
            loop {
                match reader.read_message() {
                    Ok(msg) => {
                        slab_reuses.fetch_add(reader.take_slab_reuses(), Ordering::Relaxed);
                        // Look the queue up per frame: a restart swaps the slot, and
                        // this connection must start feeding the new incarnation.
                        if ingress.read()[slot].send((from, msg)).is_err() {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
        });
    }
}

impl Fabric for TcpFabric {
    type Sender = TcpFabricSender;

    fn take_receiver(&mut self, node: NodeId) -> Receiver<(NodeId, Message)> {
        self.receivers[node.index()].take().expect("receiver already taken")
    }

    fn sender(&self) -> TcpFabricSender {
        TcpFabricSender {
            addrs: self.addrs.clone(),
            edges: Arc::new(Mutex::new(HashMap::new())),
            incarnations: self.incarnations.clone(),
            // Cork counters are shared with the fabric (and every other sender it
            // hands out), so `transport_metrics` sees fabric-wide totals.
            corked_frames: self.corked_frames.clone(),
            corked_writes: self.corked_writes.clone(),
        }
    }

    fn note_restart(&mut self, node: NodeId, incarnation: u64) {
        self.set_incarnation(node, incarnation);
    }

    fn reset_receiver(&mut self, node: NodeId) -> Option<Receiver<(NodeId, Message)>> {
        let (tx, rx) = unbounded();
        // Swapping the slot drops the old sender; frames queued for the previous
        // incarnation go with it, and every live reader thread picks up the new
        // queue on its next frame.
        self.ingress.write()[node.index()] = tx;
        self.receivers[node.index()] = None;
        Some(rx)
    }

    fn transport_metrics(&self) -> NodeMetrics {
        NodeMetrics {
            recv_slab_reuse: self.recv_slab_reuses.load(Ordering::Relaxed),
            corked_frames_per_write: self.corked_frames.load(Ordering::Relaxed),
            ..NodeMetrics::default()
        }
    }
}

impl TcpFabricSender {
    /// Control frames that went out batched with at least one other frame in a single
    /// vectored write, across every edge (→ the `corked_frames_per_write` metric).
    pub fn corked_frames(&self) -> u64 {
        self.corked_frames.load(Ordering::Relaxed)
    }

    /// Multi-frame vectored writes issued across every edge.
    pub fn corked_writes(&self) -> u64 {
        self.corked_writes.load(Ordering::Relaxed)
    }

    /// Tear down every outgoing edge whose source is `from`. Writer threads exit as
    /// their queues disconnect; the next send from `from` reconnects and greets with
    /// a fresh [`Message::Hello`] — the restart path for an in-process node whose
    /// incarnation just changed.
    pub fn drop_edges_from(&self, from: NodeId) {
        self.edges.lock().retain(|&(f, _), _| f != from.0);
    }

    /// The queue feeding `(from, to)`'s writer thread, connecting (and greeting with
    /// [`Message::Hello`]) on first use.
    fn edge(&self, from: NodeId, to: NodeId) -> Option<Sender<Message>> {
        let key = (from.0, to.0);
        if let Some(existing) = self.edges.lock().get(&key) {
            return Some(existing.clone());
        }
        let mut stream = TcpStream::connect(self.addrs[to.index()]).ok()?;
        stream.set_nodelay(true).ok()?;
        let incarnation = self.incarnations.read().get(from.index()).copied().unwrap_or(0);
        write_frame_vectored(&mut stream, &Message::Hello { node: from, incarnation }).ok()?;
        let (tx, rx) = unbounded();
        let corked_frames = self.corked_frames.clone();
        let corked_writes = self.corked_writes.clone();
        thread::spawn(move || writer_loop(stream, rx, corked_frames, corked_writes));
        self.edges.lock().insert(key, tx.clone());
        Some(tx)
    }
}

/// Owns one edge's stream: blocks for the next frame, then drains whatever burst has
/// queued behind it through the cork, flushing when the queue goes empty so corking
/// never adds latency to an idle edge. Exits (closing the stream) on any write error;
/// the edge map entry is cleaned up by the next `send` that finds the channel dead.
fn writer_loop(
    mut stream: TcpStream,
    rx: Receiver<Message>,
    corked_frames: Arc<AtomicU64>,
    corked_writes: Arc<AtomicU64>,
) {
    let mut cork = Cork::new();
    loop {
        let Ok(msg) = rx.recv() else {
            let _ = cork.flush(&mut stream);
            return;
        };
        if cork.write(&mut stream, &msg).is_err() {
            return;
        }
        loop {
            match rx.try_recv() {
                Ok(next) => {
                    if cork.write(&mut stream, &next).is_err() {
                        return;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    let _ = cork.flush(&mut stream);
                    return;
                }
            }
        }
        // Queue drained: flush so the last frames of the burst are not held back.
        if cork.flush(&mut stream).is_err() {
            return;
        }
        corked_frames.fetch_add(cork.take_corked_frames(), Ordering::Relaxed);
        corked_writes.fetch_add(cork.take_corked_writes(), Ordering::Relaxed);
    }
}

impl FabricSender for TcpFabricSender {
    fn send(&self, from: NodeId, to: NodeId, msg: Message) {
        let Some(tx) = self.edge(from, to) else { return };
        if let Err(crossbeam_channel::SendError(msg)) = tx.send(msg) {
            // Writer thread exited (peer died or write failed). Drop the edge so a
            // later send reconnects, and retry this message once on a fresh edge.
            self.edges.lock().remove(&(from.0, to.0));
            if let Some(tx) = self.edge(from, to) {
                let _ = tx.send(msg);
            }
        }
    }

    fn peer_down(&self, to: NodeId) {
        // Connections into a SIGKILLed process die silently: the first write after
        // its death lands in a half-closed socket and "succeeds", so error-driven
        // cleanup never fires. Drop every edge toward the peer on the detector's
        // verdict; the next send dials a fresh connection (which reaches the peer's
        // replacement process once it rebinds).
        self.edges.lock().retain(|&(_, t), _| t != to.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration as StdDuration;

    /// Receive the next non-Hello frame (every edge now leads with a forwarded
    /// [`Message::Hello`]; tests that care about data frames skip it).
    fn recv_data(rx: &Receiver<(NodeId, Message)>) -> (NodeId, Message) {
        loop {
            let (from, msg) = rx.recv_timeout(StdDuration::from_secs(10)).unwrap();
            if !matches!(msg, Message::Hello { .. }) {
                return (from, msg);
            }
        }
    }

    #[test]
    fn tcp_fabric_delivers_messages_with_sender_identity() {
        let mut fabric = TcpFabric::new(2).unwrap();
        let rx = fabric.take_receiver(NodeId(1));
        let sender = fabric.sender();
        sender.send(
            NodeId(0),
            NodeId(1),
            Message::PushBlock {
                object: ObjectId::from_name("tcp"),
                offset: 0,
                total_size: 4,
                payload: Payload::from_vec(vec![1, 2, 3, 4]),
                complete: true,
            },
        );
        let (from, msg) = recv_data(&rx);
        assert_eq!(from, NodeId(0));
        match msg {
            Message::PushBlock { payload, complete, .. } => {
                assert!(complete);
                assert_eq!(payload.as_bytes().unwrap().as_ref(), &[1, 2, 3, 4]);
            }
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn tcp_fabric_delivers_large_segmented_payloads_via_vectored_writes() {
        // A multi-megabyte payload split across several shared segments exercises the
        // scatter-gather write path end to end, including short-write resumption in
        // write_frame_vectored (socket buffers are far smaller than the frame).
        use bytes::Bytes;
        let mut fabric = TcpFabric::new(2).unwrap();
        let rx = fabric.take_receiver(NodeId(1));
        let sender = fabric.sender();
        let segments: Vec<Bytes> =
            (0..5u8).map(|i| Bytes::from(vec![i; 1024 * 1024 + i as usize])).collect();
        let payload = Payload::from_segments(segments.clone());
        let total = payload.len();
        sender.send(
            NodeId(0),
            NodeId(1),
            Message::PushBlock {
                object: ObjectId::from_name("sg-tcp"),
                offset: 0,
                total_size: total,
                payload: payload.clone(),
                complete: true,
            },
        );
        let (from, msg) = recv_data(&rx);
        assert_eq!(from, NodeId(0));
        match msg {
            Message::PushBlock { payload: received, total_size, .. } => {
                assert_eq!(total_size, total);
                // Logical equality across different segmentations: the receiver sees
                // one contiguous view of the sender's five segments.
                assert_eq!(received, payload);
            }
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn tcp_fabric_preserves_order_and_reuses_connections() {
        let mut fabric = TcpFabric::new(2).unwrap();
        let rx = fabric.take_receiver(NodeId(1));
        let sender = fabric.sender();
        for i in 0..50u64 {
            sender.send(
                NodeId(0),
                NodeId(1),
                Message::PushBlock {
                    object: ObjectId::from_name("seq"),
                    offset: i,
                    total_size: 50,
                    payload: Payload::synthetic(1),
                    complete: false,
                },
            );
        }
        let mut expected = 0;
        while expected < 50 {
            let (_, msg) = rx.recv_timeout(StdDuration::from_secs(5)).unwrap();
            if let Message::PushBlock { offset, .. } = msg {
                assert_eq!(offset, expected);
                expected += 1;
            }
        }
    }

    #[test]
    fn tcp_fabric_corks_control_bursts() {
        // Flooding one edge with control frames from a tight loop must batch most of
        // them into multi-frame vectored writes: the writer thread drains whatever
        // queued behind the frame it is blocked on. Delivery stays ordered and
        // complete, and the cork counters record the batching.
        let mut fabric = TcpFabric::new(2).unwrap();
        let rx = fabric.take_receiver(NodeId(1));
        let sender = fabric.sender();
        const N: u64 = 2000;
        for i in 0..N {
            sender.send(NodeId(0), NodeId(1), Message::DirAck { shard: 0, epoch: 1, seq: i });
        }
        for i in 0..N {
            let (_, msg) = recv_data(&rx);
            match msg {
                Message::DirAck { seq, .. } => assert_eq!(seq, i),
                other => panic!("unexpected message {other:?}"),
            }
        }
        assert!(
            sender.corked_frames() > 0,
            "a 2000-frame burst should produce at least one corked write"
        );
        assert!(sender.corked_writes() > 0);
        assert!(sender.corked_frames() >= 2 * sender.corked_writes());
    }

    #[test]
    fn tcp_fabric_reuses_receive_slabs() {
        // Lockstep send/consume: each payload is dropped before the next frame is
        // sent, so by the time the reader thread rolls to a new slab the previous
        // one is unpinned and comes back out of the pool.
        let mut fabric = TcpFabric::new(2).unwrap();
        let rx = fabric.take_receiver(NodeId(1));
        let sender = fabric.sender();
        for i in 0..20u64 {
            sender.send(
                NodeId(0),
                NodeId(1),
                Message::PushBlock {
                    object: ObjectId::from_name("slab-reuse"),
                    offset: i,
                    total_size: 20,
                    payload: Payload::from_vec(vec![i as u8; 1024 * 1024]),
                    complete: false,
                },
            );
            let (_, msg) = recv_data(&rx);
            assert!(matches!(msg, Message::PushBlock { .. }));
            drop(msg);
        }
        assert!(
            fabric.recv_slab_reuses() > 0,
            "lockstep consumption should let the reader recycle slabs"
        );
    }

    #[test]
    fn tcp_relay_hop_has_zero_payload_copies() {
        // The full relay hop a forwarding node performs over real sockets: TCP read →
        // slab decode → buffer append → read back → re-encode → TCP send, for a
        // 64 MiB object in 4 MiB blocks. Everything runs on this thread so the
        // thread-local debug copy counter sees the whole hop — it must stay at zero:
        // payload bytes are written once by the kernel into a receive slab and then
        // travel as shared views the rest of the way.
        use crate::framing::write_frame_vectored;
        use hoplite_core::{buffer::ProgressBuffer, copytrace};
        const BLOCK: usize = 4 * 1024 * 1024;
        const TOTAL: usize = 64 * 1024 * 1024;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let producer = thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.set_nodelay(true).unwrap();
            for i in 0..TOTAL / BLOCK {
                let msg = Message::PushBlock {
                    object: ObjectId::from_name("relay64"),
                    offset: (i * BLOCK) as u64,
                    total_size: TOTAL as u64,
                    payload: Payload::from_vec(vec![(i % 251) as u8; BLOCK]),
                    complete: i == TOTAL / BLOCK - 1,
                };
                write_frame_vectored(&mut stream, &msg).unwrap();
            }
        });
        let sink_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let sink_addr = sink_listener.local_addr().unwrap();
        let sink = thread::spawn(move || {
            let (mut s, _) = sink_listener.accept().unwrap();
            let mut received = 0u64;
            let mut buf = vec![0u8; 1 << 20];
            loop {
                match std::io::Read::read(&mut s, &mut buf) {
                    Ok(0) | Err(_) => return received,
                    Ok(n) => received += n as u64,
                }
            }
        });
        let (upstream, _) = listener.accept().unwrap();
        let mut downstream = TcpStream::connect(sink_addr).unwrap();
        downstream.set_nodelay(true).unwrap();
        copytrace::reset();
        let mut reader = FrameReader::new(upstream);
        let mut progress = ProgressBuffer::new(TOTAL as u64, false);
        let mut relayed = 0u64;
        while relayed < TOTAL as u64 {
            let Ok(Message::PushBlock { offset, payload, .. }) = reader.read_message() else {
                panic!("unexpected frame on the relay hop");
            };
            let len = payload.len();
            assert!(progress.append_at(offset, &payload));
            drop(payload); // the buffer holds the slab views now
            let out = progress.read(offset, len).unwrap();
            relayed += len;
            write_frame_vectored(
                &mut downstream,
                &Message::PushBlock {
                    object: ObjectId::from_name("relay64"),
                    offset,
                    total_size: TOTAL as u64,
                    payload: out,
                    complete: relayed == TOTAL as u64,
                },
            )
            .unwrap();
        }
        assert_eq!(
            copytrace::bytes_copied(),
            0,
            "TCP read → decode → append → read → re-encode → send must not memcpy payload"
        );
        assert_eq!(copytrace::copies(), 0);
        drop(downstream);
        producer.join().unwrap();
        assert!(sink.join().unwrap() >= TOTAL as u64);
    }

    #[test]
    fn hello_carries_incarnation_and_is_forwarded_to_the_node() {
        let mut fabric = TcpFabric::new(2).unwrap();
        fabric.set_incarnation(NodeId(0), 3);
        let rx = fabric.take_receiver(NodeId(1));
        let sender = fabric.sender();
        sender.send(NodeId(0), NodeId(1), Message::DirAck { shard: 0, epoch: 1, seq: 1 });
        let (from, msg) = rx.recv_timeout(StdDuration::from_secs(5)).unwrap();
        assert_eq!(from, NodeId(0));
        assert_eq!(msg, Message::Hello { node: NodeId(0), incarnation: 3 });
        assert!(matches!(recv_data(&rx).1, Message::DirAck { .. }));
    }

    #[test]
    fn reset_receiver_reroutes_live_connections_to_the_new_queue() {
        let mut fabric = TcpFabric::new(2).unwrap();
        let rx = fabric.take_receiver(NodeId(1));
        let sender = fabric.sender();
        sender.send(NodeId(0), NodeId(1), Message::DirAck { shard: 0, epoch: 1, seq: 1 });
        assert!(matches!(recv_data(&rx).1, Message::DirAck { seq: 1, .. }));

        // Restart node 1: swap its queue. The already-established connection from
        // node 0 must start feeding the new queue without reconnecting.
        let rx2 = fabric.reset_receiver(NodeId(1)).expect("tcp fabric supports restarts");
        drop(rx);
        sender.send(NodeId(0), NodeId(1), Message::DirAck { shard: 0, epoch: 1, seq: 2 });
        assert!(matches!(recv_data(&rx2).1, Message::DirAck { seq: 2, .. }));
    }

    #[test]
    fn bind_node_pair_talks_across_fabric_instances() {
        // Reserve two ports, then bind one single-node fabric per "process" against
        // the shared address map — the hoplited deployment shape in miniature.
        let reserve: Vec<TcpListener> =
            (0..2).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
        let addrs: Vec<SocketAddr> = reserve.iter().map(|l| l.local_addr().unwrap()).collect();
        drop(reserve);

        let mut a = TcpFabric::bind_node(NodeId(0), &addrs, 0).unwrap();
        let mut b = TcpFabric::bind_node(NodeId(1), &addrs, 2).unwrap();
        let rx_a = a.take_receiver(NodeId(0));
        let rx_b = b.take_receiver(NodeId(1));

        a.sender().send(NodeId(0), NodeId(1), Message::DirAck { shard: 0, epoch: 1, seq: 7 });
        let (from, hello) = rx_b.recv_timeout(StdDuration::from_secs(5)).unwrap();
        assert_eq!((from, hello), (NodeId(0), Message::Hello { node: NodeId(0), incarnation: 0 }));
        assert!(matches!(recv_data(&rx_b).1, Message::DirAck { seq: 7, .. }));

        // And the reverse direction advertises b's non-zero incarnation.
        b.sender().send(NodeId(1), NodeId(0), Message::DirAck { shard: 0, epoch: 1, seq: 8 });
        let (from, hello) = rx_a.recv_timeout(StdDuration::from_secs(5)).unwrap();
        assert_eq!((from, hello), (NodeId(1), Message::Hello { node: NodeId(1), incarnation: 2 }));
        assert!(matches!(recv_data(&rx_a).1, Message::DirAck { seq: 8, .. }));
    }

    #[test]
    fn bind_node_retries_a_port_still_held_by_a_dying_predecessor() {
        let holder = TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs = vec![holder.local_addr().unwrap()];
        let release = thread::spawn(move || {
            thread::sleep(Duration::from_millis(300));
            drop(holder);
        });
        // SO_REUSEADDR makes a same-process rebind of a *closed* listener succeed;
        // while `holder` is live the bind fails with AddrInUse and must be retried.
        let fabric = TcpFabric::bind_node(NodeId(0), &addrs, 1).unwrap();
        release.join().unwrap();
        assert_eq!(fabric.addresses()[0], addrs[0]);
    }

    #[test]
    fn drop_edges_from_reconnects_with_a_fresh_hello() {
        let mut fabric = TcpFabric::new(2).unwrap();
        let rx = fabric.take_receiver(NodeId(1));
        let sender = fabric.sender();
        sender.send(NodeId(0), NodeId(1), Message::DirAck { shard: 0, epoch: 1, seq: 1 });
        let (_, hello) = rx.recv_timeout(StdDuration::from_secs(5)).unwrap();
        assert_eq!(hello, Message::Hello { node: NodeId(0), incarnation: 0 });
        assert!(matches!(recv_data(&rx).1, Message::DirAck { .. }));

        // Node 0 "restarts": bump its incarnation and tear down its outgoing edges.
        // The next send reconnects and the peer sees the new incarnation.
        fabric.set_incarnation(NodeId(0), 1);
        sender.drop_edges_from(NodeId(0));
        sender.send(NodeId(0), NodeId(1), Message::DirAck { shard: 0, epoch: 1, seq: 2 });
        let (_, hello) = rx.recv_timeout(StdDuration::from_secs(5)).unwrap();
        assert_eq!(hello, Message::Hello { node: NodeId(0), incarnation: 1 });
        assert!(matches!(recv_data(&rx).1, Message::DirAck { seq: 2, .. }));
    }
}
