//! Localhost TCP fabric.
//!
//! Each node listens on an ephemeral `127.0.0.1` port. Senders open (and cache) one TCP
//! connection per destination; the first frame on a connection is a hello that carries
//! the sender's node id, after which framed [`Message`]s flow. A reader thread per
//! accepted connection decodes frames and pushes them onto the destination node's
//! receive queue, preserving per-sender FIFO order exactly like the in-process fabric.
//!
//! Sends are **zero-copy**: frames go out through
//! [`crate::framing::write_frame_vectored`], so a bulk block's payload bytes are
//! handed to the kernel as iovec references into the sender's store segments — no
//! buffered-writer staging copy, no frame-assembly copy. Frames without bulk segments
//! (all control traffic, via the [`crate::framing::GATHER_MIN_SEGMENT`] coalesce
//! threshold) are a single contiguous part and still go out in one `write` syscall.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

use crossbeam_channel::{unbounded, Receiver, Sender};
use hoplite_core::prelude::*;
use parking_lot::Mutex;

use crate::fabric::{Fabric, FabricSender};
use crate::framing::{read_frame, write_frame, write_frame_vectored};

/// Hello message: the sender announces its node id as a `DirUnregister` frame with a
/// reserved object id (a tiny hack that avoids a second frame format).
fn hello_object() -> ObjectId {
    ObjectId::from_name("__hoplite_tcp_hello__")
}

/// A TCP-backed fabric for `n` co-hosted (or genuinely remote) nodes.
pub struct TcpFabric {
    addrs: Arc<Vec<SocketAddr>>,
    receivers: Vec<Option<Receiver<(NodeId, Message)>>>,
    _listeners: Vec<thread::JoinHandle<()>>,
}

/// One cached, framed connection shared by everyone sending over the same edge. The
/// stream is written directly (no `BufWriter`): every frame is either one contiguous
/// part or an iovec gather, so buffering would only add a staging memcpy.
type SharedConn = Arc<Mutex<TcpStream>>;

/// Sender half of [`TcpFabric`].
#[derive(Clone)]
pub struct TcpFabricSender {
    addrs: Arc<Vec<SocketAddr>>,
    connections: Arc<Mutex<HashMap<(u32, u32), SharedConn>>>,
}

impl TcpFabric {
    /// Bind `n` listeners on localhost and start their accept loops.
    pub fn new(n: usize) -> std::io::Result<Self> {
        let mut addrs = Vec::with_capacity(n);
        let mut listeners = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        let mut accept_threads = Vec::new();
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(listener.local_addr()?);
            let (tx, rx) = unbounded();
            receivers.push(Some(rx));
            listeners.push((listener, tx));
        }
        for (listener, tx) in listeners {
            accept_threads.push(thread::spawn(move || accept_loop(listener, tx)));
        }
        Ok(TcpFabric { addrs: Arc::new(addrs), receivers, _listeners: accept_threads })
    }

    /// Addresses of every node's listener (diagnostics).
    pub fn addresses(&self) -> &[SocketAddr] {
        &self.addrs
    }
}

fn accept_loop(listener: TcpListener, tx: Sender<(NodeId, Message)>) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { return };
        let tx = tx.clone();
        thread::spawn(move || {
            let mut stream = stream;
            // First frame identifies the peer.
            let Ok(hello) = read_frame(&mut stream) else { return };
            let from = match hello {
                Message::DirUnregister { object, holder } if object == hello_object() => holder,
                _ => return,
            };
            loop {
                match read_frame(&mut stream) {
                    Ok(msg) => {
                        if tx.send((from, msg)).is_err() {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
        });
    }
}

impl Fabric for TcpFabric {
    type Sender = TcpFabricSender;

    fn take_receiver(&mut self, node: NodeId) -> Receiver<(NodeId, Message)> {
        self.receivers[node.index()].take().expect("receiver already taken")
    }

    fn sender(&self) -> TcpFabricSender {
        TcpFabricSender {
            addrs: self.addrs.clone(),
            connections: Arc::new(Mutex::new(HashMap::new())),
        }
    }
}

impl TcpFabricSender {
    fn connection(&self, from: NodeId, to: NodeId) -> std::io::Result<SharedConn> {
        let key = (from.0, to.0);
        if let Some(existing) = self.connections.lock().get(&key) {
            return Ok(existing.clone());
        }
        let mut stream = TcpStream::connect(self.addrs[to.index()])?;
        stream.set_nodelay(true)?;
        write_frame(&mut stream, &Message::DirUnregister { object: hello_object(), holder: from })?;
        let conn = Arc::new(Mutex::new(stream));
        self.connections.lock().insert(key, conn.clone());
        Ok(conn)
    }
}

impl FabricSender for TcpFabricSender {
    fn send(&self, from: NodeId, to: NodeId, msg: Message) {
        let Ok(conn) = self.connection(from, to) else { return };
        let mut stream = conn.lock();
        if write_frame_vectored(&mut *stream, &msg).is_err() {
            // Connection broke (peer died); drop it so a later send reconnects, and let
            // the failure detector handle the rest.
            self.connections.lock().remove(&(from.0, to.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration as StdDuration;

    #[test]
    fn tcp_fabric_delivers_messages_with_sender_identity() {
        let mut fabric = TcpFabric::new(2).unwrap();
        let rx = fabric.take_receiver(NodeId(1));
        let sender = fabric.sender();
        sender.send(
            NodeId(0),
            NodeId(1),
            Message::PushBlock {
                object: ObjectId::from_name("tcp"),
                offset: 0,
                total_size: 4,
                payload: Payload::from_vec(vec![1, 2, 3, 4]),
                complete: true,
            },
        );
        let (from, msg) = rx.recv_timeout(StdDuration::from_secs(5)).unwrap();
        assert_eq!(from, NodeId(0));
        match msg {
            Message::PushBlock { payload, complete, .. } => {
                assert!(complete);
                assert_eq!(payload.as_bytes().unwrap().as_ref(), &[1, 2, 3, 4]);
            }
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn tcp_fabric_delivers_large_segmented_payloads_via_vectored_writes() {
        // A multi-megabyte payload split across several shared segments exercises the
        // scatter-gather write path end to end, including short-write resumption in
        // write_frame_vectored (socket buffers are far smaller than the frame).
        use bytes::Bytes;
        let mut fabric = TcpFabric::new(2).unwrap();
        let rx = fabric.take_receiver(NodeId(1));
        let sender = fabric.sender();
        let segments: Vec<Bytes> =
            (0..5u8).map(|i| Bytes::from(vec![i; 1024 * 1024 + i as usize])).collect();
        let payload = Payload::from_segments(segments.clone());
        let total = payload.len();
        sender.send(
            NodeId(0),
            NodeId(1),
            Message::PushBlock {
                object: ObjectId::from_name("sg-tcp"),
                offset: 0,
                total_size: total,
                payload: payload.clone(),
                complete: true,
            },
        );
        let (from, msg) = rx.recv_timeout(StdDuration::from_secs(10)).unwrap();
        assert_eq!(from, NodeId(0));
        match msg {
            Message::PushBlock { payload: received, total_size, .. } => {
                assert_eq!(total_size, total);
                // Logical equality across different segmentations: the receiver sees
                // one contiguous view of the sender's five segments.
                assert_eq!(received, payload);
            }
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn tcp_fabric_preserves_order_and_reuses_connections() {
        let mut fabric = TcpFabric::new(2).unwrap();
        let rx = fabric.take_receiver(NodeId(1));
        let sender = fabric.sender();
        for i in 0..50u64 {
            sender.send(
                NodeId(0),
                NodeId(1),
                Message::PushBlock {
                    object: ObjectId::from_name("seq"),
                    offset: i,
                    total_size: 50,
                    payload: Payload::synthetic(1),
                    complete: false,
                },
            );
        }
        let mut expected = 0;
        while expected < 50 {
            let (_, msg) = rx.recv_timeout(StdDuration::from_secs(5)).unwrap();
            if let Message::PushBlock { offset, .. } = msg {
                assert_eq!(offset, expected);
                expected += 1;
            }
        }
    }
}
