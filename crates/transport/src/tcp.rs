//! Localhost TCP fabric.
//!
//! Each node listens on an ephemeral `127.0.0.1` port. Senders open one TCP connection
//! per destination edge; the first frame on a connection is a [`Message::Hello`]
//! carrying the sender's node id, after which framed [`Message`]s flow. A reader
//! thread per accepted connection decodes frames and pushes them onto the destination
//! node's receive queue, preserving per-sender FIFO order exactly like the in-process
//! fabric.
//!
//! Both directions are **zero-copy** for bulk payloads:
//!
//! * Sends go through a per-edge writer thread owning the stream. Bulk frames are
//!   written as scatter-gather iovecs into the kernel (no staging copy); bursts of
//!   small control frames are corked ([`crate::framing::Cork`]) into a single
//!   `write_vectored` and flushed whenever the edge's queue drains, so directory
//!   chatter stops costing one syscall per frame without ever being delayed while
//!   traffic is idle.
//! * Receives go through a [`crate::framing::FrameReader`]: frames decode in place
//!   out of pooled slabs, so a block's payload bytes are written once by the kernel
//!   and then adopted as shared views all the way into the store.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use crossbeam_channel::{unbounded, Receiver, Sender, TryRecvError};
use hoplite_core::prelude::*;
use parking_lot::Mutex;

use crate::fabric::{Fabric, FabricSender};
use crate::framing::{write_frame_vectored, Cork, FrameReader};

/// A TCP-backed fabric for `n` co-hosted (or genuinely remote) nodes.
pub struct TcpFabric {
    addrs: Arc<Vec<SocketAddr>>,
    receivers: Vec<Option<Receiver<(NodeId, Message)>>>,
    recv_slab_reuses: Arc<AtomicU64>,
    corked_frames: Arc<AtomicU64>,
    corked_writes: Arc<AtomicU64>,
    _listeners: Vec<thread::JoinHandle<()>>,
}

/// Live writer-thread queues, keyed by `(from, to)` edge.
type EdgeMap = Arc<Mutex<HashMap<(u32, u32), Sender<Message>>>>;

/// Sender half of [`TcpFabric`]. Each edge `(from, to)` gets a dedicated writer
/// thread owning its stream; `send` only enqueues, so callers never block on the
/// network and the writer can see (and cork) whole bursts at once.
#[derive(Clone)]
pub struct TcpFabricSender {
    addrs: Arc<Vec<SocketAddr>>,
    edges: EdgeMap,
    corked_frames: Arc<AtomicU64>,
    corked_writes: Arc<AtomicU64>,
}

impl TcpFabric {
    /// Bind `n` listeners on localhost and start their accept loops.
    pub fn new(n: usize) -> std::io::Result<Self> {
        let mut addrs = Vec::with_capacity(n);
        let mut listeners = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        let mut accept_threads = Vec::new();
        let recv_slab_reuses = Arc::new(AtomicU64::new(0));
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(listener.local_addr()?);
            let (tx, rx) = unbounded();
            receivers.push(Some(rx));
            listeners.push((listener, tx));
        }
        for (listener, tx) in listeners {
            let reuses = recv_slab_reuses.clone();
            accept_threads.push(thread::spawn(move || accept_loop(listener, tx, reuses)));
        }
        Ok(TcpFabric {
            addrs: Arc::new(addrs),
            receivers,
            recv_slab_reuses,
            corked_frames: Arc::new(AtomicU64::new(0)),
            corked_writes: Arc::new(AtomicU64::new(0)),
            _listeners: accept_threads,
        })
    }

    /// Addresses of every node's listener (diagnostics).
    pub fn addresses(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Receive slabs served by pool reuse instead of a fresh allocation, across every
    /// connection accepted by this fabric (→ the `recv_slab_reuse` metric).
    pub fn recv_slab_reuses(&self) -> u64 {
        self.recv_slab_reuses.load(Ordering::Relaxed)
    }
}

fn accept_loop(listener: TcpListener, tx: Sender<(NodeId, Message)>, slab_reuses: Arc<AtomicU64>) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { return };
        let tx = tx.clone();
        let slab_reuses = slab_reuses.clone();
        thread::spawn(move || {
            let mut reader = FrameReader::new(stream);
            // First frame identifies the peer.
            let Ok(Message::Hello { node: from }) = reader.read_message() else { return };
            loop {
                match reader.read_message() {
                    Ok(msg) => {
                        slab_reuses.fetch_add(reader.take_slab_reuses(), Ordering::Relaxed);
                        if tx.send((from, msg)).is_err() {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
        });
    }
}

impl Fabric for TcpFabric {
    type Sender = TcpFabricSender;

    fn take_receiver(&mut self, node: NodeId) -> Receiver<(NodeId, Message)> {
        self.receivers[node.index()].take().expect("receiver already taken")
    }

    fn sender(&self) -> TcpFabricSender {
        TcpFabricSender {
            addrs: self.addrs.clone(),
            edges: Arc::new(Mutex::new(HashMap::new())),
            // Cork counters are shared with the fabric (and every other sender it
            // hands out), so `transport_metrics` sees fabric-wide totals.
            corked_frames: self.corked_frames.clone(),
            corked_writes: self.corked_writes.clone(),
        }
    }

    fn transport_metrics(&self) -> NodeMetrics {
        NodeMetrics {
            recv_slab_reuse: self.recv_slab_reuses.load(Ordering::Relaxed),
            corked_frames_per_write: self.corked_frames.load(Ordering::Relaxed),
            ..NodeMetrics::default()
        }
    }
}

impl TcpFabricSender {
    /// Control frames that went out batched with at least one other frame in a single
    /// vectored write, across every edge (→ the `corked_frames_per_write` metric).
    pub fn corked_frames(&self) -> u64 {
        self.corked_frames.load(Ordering::Relaxed)
    }

    /// Multi-frame vectored writes issued across every edge.
    pub fn corked_writes(&self) -> u64 {
        self.corked_writes.load(Ordering::Relaxed)
    }

    /// The queue feeding `(from, to)`'s writer thread, connecting (and greeting with
    /// [`Message::Hello`]) on first use.
    fn edge(&self, from: NodeId, to: NodeId) -> Option<Sender<Message>> {
        let key = (from.0, to.0);
        if let Some(existing) = self.edges.lock().get(&key) {
            return Some(existing.clone());
        }
        let mut stream = TcpStream::connect(self.addrs[to.index()]).ok()?;
        stream.set_nodelay(true).ok()?;
        write_frame_vectored(&mut stream, &Message::Hello { node: from }).ok()?;
        let (tx, rx) = unbounded();
        let corked_frames = self.corked_frames.clone();
        let corked_writes = self.corked_writes.clone();
        thread::spawn(move || writer_loop(stream, rx, corked_frames, corked_writes));
        self.edges.lock().insert(key, tx.clone());
        Some(tx)
    }
}

/// Owns one edge's stream: blocks for the next frame, then drains whatever burst has
/// queued behind it through the cork, flushing when the queue goes empty so corking
/// never adds latency to an idle edge. Exits (closing the stream) on any write error;
/// the edge map entry is cleaned up by the next `send` that finds the channel dead.
fn writer_loop(
    mut stream: TcpStream,
    rx: Receiver<Message>,
    corked_frames: Arc<AtomicU64>,
    corked_writes: Arc<AtomicU64>,
) {
    let mut cork = Cork::new();
    loop {
        let Ok(msg) = rx.recv() else {
            let _ = cork.flush(&mut stream);
            return;
        };
        if cork.write(&mut stream, &msg).is_err() {
            return;
        }
        loop {
            match rx.try_recv() {
                Ok(next) => {
                    if cork.write(&mut stream, &next).is_err() {
                        return;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    let _ = cork.flush(&mut stream);
                    return;
                }
            }
        }
        // Queue drained: flush so the last frames of the burst are not held back.
        if cork.flush(&mut stream).is_err() {
            return;
        }
        corked_frames.fetch_add(cork.take_corked_frames(), Ordering::Relaxed);
        corked_writes.fetch_add(cork.take_corked_writes(), Ordering::Relaxed);
    }
}

impl FabricSender for TcpFabricSender {
    fn send(&self, from: NodeId, to: NodeId, msg: Message) {
        let Some(tx) = self.edge(from, to) else { return };
        if let Err(crossbeam_channel::SendError(msg)) = tx.send(msg) {
            // Writer thread exited (peer died or write failed). Drop the edge so a
            // later send reconnects, and retry this message once on a fresh edge.
            self.edges.lock().remove(&(from.0, to.0));
            if let Some(tx) = self.edge(from, to) {
                let _ = tx.send(msg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration as StdDuration;

    #[test]
    fn tcp_fabric_delivers_messages_with_sender_identity() {
        let mut fabric = TcpFabric::new(2).unwrap();
        let rx = fabric.take_receiver(NodeId(1));
        let sender = fabric.sender();
        sender.send(
            NodeId(0),
            NodeId(1),
            Message::PushBlock {
                object: ObjectId::from_name("tcp"),
                offset: 0,
                total_size: 4,
                payload: Payload::from_vec(vec![1, 2, 3, 4]),
                complete: true,
            },
        );
        let (from, msg) = rx.recv_timeout(StdDuration::from_secs(5)).unwrap();
        assert_eq!(from, NodeId(0));
        match msg {
            Message::PushBlock { payload, complete, .. } => {
                assert!(complete);
                assert_eq!(payload.as_bytes().unwrap().as_ref(), &[1, 2, 3, 4]);
            }
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn tcp_fabric_delivers_large_segmented_payloads_via_vectored_writes() {
        // A multi-megabyte payload split across several shared segments exercises the
        // scatter-gather write path end to end, including short-write resumption in
        // write_frame_vectored (socket buffers are far smaller than the frame).
        use bytes::Bytes;
        let mut fabric = TcpFabric::new(2).unwrap();
        let rx = fabric.take_receiver(NodeId(1));
        let sender = fabric.sender();
        let segments: Vec<Bytes> =
            (0..5u8).map(|i| Bytes::from(vec![i; 1024 * 1024 + i as usize])).collect();
        let payload = Payload::from_segments(segments.clone());
        let total = payload.len();
        sender.send(
            NodeId(0),
            NodeId(1),
            Message::PushBlock {
                object: ObjectId::from_name("sg-tcp"),
                offset: 0,
                total_size: total,
                payload: payload.clone(),
                complete: true,
            },
        );
        let (from, msg) = rx.recv_timeout(StdDuration::from_secs(10)).unwrap();
        assert_eq!(from, NodeId(0));
        match msg {
            Message::PushBlock { payload: received, total_size, .. } => {
                assert_eq!(total_size, total);
                // Logical equality across different segmentations: the receiver sees
                // one contiguous view of the sender's five segments.
                assert_eq!(received, payload);
            }
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn tcp_fabric_preserves_order_and_reuses_connections() {
        let mut fabric = TcpFabric::new(2).unwrap();
        let rx = fabric.take_receiver(NodeId(1));
        let sender = fabric.sender();
        for i in 0..50u64 {
            sender.send(
                NodeId(0),
                NodeId(1),
                Message::PushBlock {
                    object: ObjectId::from_name("seq"),
                    offset: i,
                    total_size: 50,
                    payload: Payload::synthetic(1),
                    complete: false,
                },
            );
        }
        let mut expected = 0;
        while expected < 50 {
            let (_, msg) = rx.recv_timeout(StdDuration::from_secs(5)).unwrap();
            if let Message::PushBlock { offset, .. } = msg {
                assert_eq!(offset, expected);
                expected += 1;
            }
        }
    }

    #[test]
    fn tcp_fabric_corks_control_bursts() {
        // Flooding one edge with control frames from a tight loop must batch most of
        // them into multi-frame vectored writes: the writer thread drains whatever
        // queued behind the frame it is blocked on. Delivery stays ordered and
        // complete, and the cork counters record the batching.
        let mut fabric = TcpFabric::new(2).unwrap();
        let rx = fabric.take_receiver(NodeId(1));
        let sender = fabric.sender();
        const N: u64 = 2000;
        for i in 0..N {
            sender.send(NodeId(0), NodeId(1), Message::DirAck { shard: 0, epoch: 1, seq: i });
        }
        for i in 0..N {
            let (_, msg) = rx.recv_timeout(StdDuration::from_secs(5)).unwrap();
            match msg {
                Message::DirAck { seq, .. } => assert_eq!(seq, i),
                other => panic!("unexpected message {other:?}"),
            }
        }
        assert!(
            sender.corked_frames() > 0,
            "a 2000-frame burst should produce at least one corked write"
        );
        assert!(sender.corked_writes() > 0);
        assert!(sender.corked_frames() >= 2 * sender.corked_writes());
    }

    #[test]
    fn tcp_fabric_reuses_receive_slabs() {
        // Lockstep send/consume: each payload is dropped before the next frame is
        // sent, so by the time the reader thread rolls to a new slab the previous
        // one is unpinned and comes back out of the pool.
        let mut fabric = TcpFabric::new(2).unwrap();
        let rx = fabric.take_receiver(NodeId(1));
        let sender = fabric.sender();
        for i in 0..20u64 {
            sender.send(
                NodeId(0),
                NodeId(1),
                Message::PushBlock {
                    object: ObjectId::from_name("slab-reuse"),
                    offset: i,
                    total_size: 20,
                    payload: Payload::from_vec(vec![i as u8; 1024 * 1024]),
                    complete: false,
                },
            );
            let (_, msg) = rx.recv_timeout(StdDuration::from_secs(5)).unwrap();
            assert!(matches!(msg, Message::PushBlock { .. }));
            drop(msg);
        }
        assert!(
            fabric.recv_slab_reuses() > 0,
            "lockstep consumption should let the reader recycle slabs"
        );
    }

    #[test]
    fn tcp_relay_hop_has_zero_payload_copies() {
        // The full relay hop a forwarding node performs over real sockets: TCP read →
        // slab decode → buffer append → read back → re-encode → TCP send, for a
        // 64 MiB object in 4 MiB blocks. Everything runs on this thread so the
        // thread-local debug copy counter sees the whole hop — it must stay at zero:
        // payload bytes are written once by the kernel into a receive slab and then
        // travel as shared views the rest of the way.
        use crate::framing::write_frame_vectored;
        use hoplite_core::{buffer::ProgressBuffer, copytrace};
        const BLOCK: usize = 4 * 1024 * 1024;
        const TOTAL: usize = 64 * 1024 * 1024;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let producer = thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.set_nodelay(true).unwrap();
            for i in 0..TOTAL / BLOCK {
                let msg = Message::PushBlock {
                    object: ObjectId::from_name("relay64"),
                    offset: (i * BLOCK) as u64,
                    total_size: TOTAL as u64,
                    payload: Payload::from_vec(vec![(i % 251) as u8; BLOCK]),
                    complete: i == TOTAL / BLOCK - 1,
                };
                write_frame_vectored(&mut stream, &msg).unwrap();
            }
        });
        let sink_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let sink_addr = sink_listener.local_addr().unwrap();
        let sink = thread::spawn(move || {
            let (mut s, _) = sink_listener.accept().unwrap();
            let mut received = 0u64;
            let mut buf = vec![0u8; 1 << 20];
            loop {
                match std::io::Read::read(&mut s, &mut buf) {
                    Ok(0) | Err(_) => return received,
                    Ok(n) => received += n as u64,
                }
            }
        });
        let (upstream, _) = listener.accept().unwrap();
        let mut downstream = TcpStream::connect(sink_addr).unwrap();
        downstream.set_nodelay(true).unwrap();
        copytrace::reset();
        let mut reader = FrameReader::new(upstream);
        let mut progress = ProgressBuffer::new(TOTAL as u64, false);
        let mut relayed = 0u64;
        while relayed < TOTAL as u64 {
            let Ok(Message::PushBlock { offset, payload, .. }) = reader.read_message() else {
                panic!("unexpected frame on the relay hop");
            };
            let len = payload.len();
            assert!(progress.append_at(offset, &payload));
            drop(payload); // the buffer holds the slab views now
            let out = progress.read(offset, len).unwrap();
            relayed += len;
            write_frame_vectored(
                &mut downstream,
                &Message::PushBlock {
                    object: ObjectId::from_name("relay64"),
                    offset,
                    total_size: TOTAL as u64,
                    payload: out,
                    complete: relayed == TOTAL as u64,
                },
            )
            .unwrap();
        }
        assert_eq!(
            copytrace::bytes_copied(),
            0,
            "TCP read → decode → append → read → re-encode → send must not memcpy payload"
        );
        assert_eq!(copytrace::copies(), 0);
        drop(downstream);
        producer.join().unwrap();
        assert!(sink.join().unwrap() >= TOTAL as u64);
    }
}
