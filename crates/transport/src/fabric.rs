//! Message fabrics: how Hoplite nodes exchange [`Message`]s in real (non-simulated)
//! deployments.
//!
//! Two fabrics are provided:
//!
//! * [`ChannelFabric`] — in-process crossbeam channels, one queue per node. Used by the
//!   integration tests and examples that want real data movement without sockets.
//! * [`crate::tcp::TcpFabric`] — localhost TCP with the framing of [`crate::framing`],
//!   one connection per (sender, receiver) pair, mirroring the paper's raw-TCP data
//!   plane.
//!
//! Both preserve per-sender FIFO ordering, which the Hoplite block protocol relies on.
//!
//! Both are also **zero-copy for bulk payloads**: the channels fabric moves [`Message`]
//! values by ownership, so a segmented payload ([`Payload::Segments`]) arrives at the
//! receiver holding the very same shared segment buffers the sender read out of its
//! store — the segment vector passes through untouched. The TCP fabric achieves the
//! same by handing those segments to the kernel as an iovec gather (see
//! [`crate::tcp`]).

use std::sync::Arc;

use crossbeam_channel::{unbounded, Receiver, Sender};
use hoplite_core::prelude::*;
use parking_lot::RwLock;

/// The sending half of a fabric, cloneable and shareable across node threads.
pub trait FabricSender: Send + Sync + 'static {
    /// Deliver `msg` from `from` to `to`. Delivery is asynchronous and best-effort:
    /// messages to a dead node are silently dropped (the failure detector reports the
    /// death separately).
    fn send(&self, from: NodeId, to: NodeId, msg: Message);

    /// The failure detector declared `to` dead: tear down any cached transport state
    /// toward it, so the next send reconnects from scratch. Connection-oriented
    /// fabrics must implement this — a write into a socket whose remote process was
    /// SIGKILLed can succeed locally and vanish without an error, so sends after a
    /// restart would keep feeding a dead connection. Queue-based fabrics need nothing.
    fn peer_down(&self, _to: NodeId) {}
}

impl FabricSender for Box<dyn FabricSender> {
    fn send(&self, from: NodeId, to: NodeId, msg: Message) {
        (**self).send(from, to, msg)
    }

    fn peer_down(&self, to: NodeId) {
        (**self).peer_down(to)
    }
}

/// A fabric: per-node receive queues plus a cloneable sender.
pub trait Fabric {
    /// The sender type handed to node threads.
    type Sender: FabricSender + Clone;

    /// Take the receive queue of `node` (can only be taken once).
    fn take_receiver(&mut self, node: NodeId) -> Receiver<(NodeId, Message)>;

    /// A sender usable from any node thread.
    fn sender(&self) -> Self::Sender;

    /// Replace `node`'s receive queue with a fresh one and return its receiver —
    /// the fabric-level half of restarting a node. Messages queued for (or in flight
    /// to) the previous incarnation are dropped with the old queue. Returns `None`
    /// when the fabric does not support restarts (the default).
    fn reset_receiver(&mut self, _node: NodeId) -> Option<Receiver<(NodeId, Message)>> {
        None
    }

    /// Tell the fabric that `node` restarted and now runs at `incarnation`, so any
    /// identity the wire carries (the TCP fabric's `Hello` greeting) advertises the
    /// new incarnation on future connections. Fabrics without wire-level identity
    /// ignore this, the default.
    fn note_restart(&mut self, _node: NodeId, _incarnation: u64) {}

    /// Transport-level counters (`recv_slab_reuse`, `corked_frames_per_write`), folded
    /// into the cluster's [`NodeMetrics`] by the deployment harness. Fabrics without a
    /// wire (channels move `Message`s by ownership — no slabs, no corks) report zeros,
    /// the default.
    fn transport_metrics(&self) -> NodeMetrics {
        NodeMetrics::default()
    }
}

/// The shared, swappable table of per-node ingress queues.
type IngressTable = Arc<RwLock<Vec<Sender<(NodeId, Message)>>>>;

/// In-process fabric built from crossbeam channels. The per-node ingress senders live
/// behind a shared `RwLock`ed table so a node's queue can be swapped out on restart
/// while every outstanding [`ChannelFabricSender`] clone keeps working.
pub struct ChannelFabric {
    senders: IngressTable,
    receivers: Vec<Option<Receiver<(NodeId, Message)>>>,
}

/// Sender half of [`ChannelFabric`].
#[derive(Clone)]
pub struct ChannelFabricSender {
    senders: IngressTable,
}

impl ChannelFabric {
    /// Build a fabric for `n` nodes.
    pub fn new(n: usize) -> Self {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        ChannelFabric { senders: Arc::new(RwLock::new(senders)), receivers }
    }
}

impl Fabric for ChannelFabric {
    type Sender = ChannelFabricSender;

    fn take_receiver(&mut self, node: NodeId) -> Receiver<(NodeId, Message)> {
        self.receivers[node.index()].take().expect("receiver already taken")
    }

    fn sender(&self) -> ChannelFabricSender {
        ChannelFabricSender { senders: self.senders.clone() }
    }

    fn reset_receiver(&mut self, node: NodeId) -> Option<Receiver<(NodeId, Message)>> {
        let (tx, rx) = unbounded();
        // Swapping the slot drops the old sender; once the dead node's pump thread
        // drains, the old channel disconnects and the pump exits.
        self.senders.write()[node.index()] = tx;
        Some(rx)
    }
}

impl FabricSender for ChannelFabricSender {
    fn send(&self, from: NodeId, to: NodeId, msg: Message) {
        if let Some(tx) = self.senders.read().get(to.index()) {
            // A disconnected receiver means the destination node was shut down; the
            // failure path is exercised through the explicit failure notifications.
            let _ = tx.send((from, msg));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_fabric_routes_by_destination() {
        let mut fabric = ChannelFabric::new(3);
        let rx1 = fabric.take_receiver(NodeId(1));
        let rx2 = fabric.take_receiver(NodeId(2));
        let sender = fabric.sender();
        sender.send(NodeId(0), NodeId(1), Message::DirDelete { object: ObjectId::from_name("a") });
        sender.send(NodeId(0), NodeId(2), Message::DirDelete { object: ObjectId::from_name("b") });
        let (from, msg) = rx1.recv().unwrap();
        assert_eq!(from, NodeId(0));
        assert!(matches!(msg, Message::DirDelete { .. }));
        assert!(rx2.recv().is_ok());
        assert!(rx1.try_recv().is_err());
    }

    #[test]
    fn sends_to_dropped_receivers_do_not_panic() {
        let mut fabric = ChannelFabric::new(2);
        drop(fabric.take_receiver(NodeId(1)));
        let sender = fabric.sender();
        sender.send(NodeId(0), NodeId(1), Message::DirDelete { object: ObjectId::from_name("x") });
    }

    #[test]
    fn segmented_payloads_pass_through_untouched() {
        // A forwarded block read out of a ProgressBuffer can span receive segments;
        // the channels fabric must deliver the segment vector as-is — same shared
        // buffers, no coalesce, no copy.
        use bytes::Bytes;
        let first = Bytes::from(vec![1u8; 8]);
        let second = Bytes::from(vec![2u8; 8]);
        let payload = Payload::from_segments(vec![first.clone(), second.clone()]);
        let mut fabric = ChannelFabric::new(2);
        let rx = fabric.take_receiver(NodeId(1));
        hoplite_core::copytrace::reset();
        fabric.sender().send(
            NodeId(0),
            NodeId(1),
            Message::PushBlock {
                object: ObjectId::from_name("seg"),
                offset: 0,
                total_size: 16,
                payload,
                complete: true,
            },
        );
        let (_, msg) = rx.recv().unwrap();
        let Message::PushBlock { payload, .. } = msg else { panic!("wrong variant") };
        let ptrs: Vec<_> = payload.segments().map(|s| s.as_slice().as_ptr()).collect();
        assert_eq!(ptrs, vec![first.as_slice().as_ptr(), second.as_slice().as_ptr()]);
        assert_eq!(hoplite_core::copytrace::bytes_copied(), 0);
    }

    #[test]
    fn fifo_per_sender_is_preserved() {
        let mut fabric = ChannelFabric::new(2);
        let rx = fabric.take_receiver(NodeId(1));
        let sender = fabric.sender();
        for i in 0..100u64 {
            sender.send(
                NodeId(0),
                NodeId(1),
                Message::PushBlock {
                    object: ObjectId::from_name("o"),
                    offset: i,
                    total_size: 100,
                    payload: Payload::synthetic(1),
                    complete: false,
                },
            );
        }
        let mut last = None;
        for _ in 0..100 {
            if let (_, Message::PushBlock { offset, .. }) = rx.recv().unwrap() {
                if let Some(prev) = last {
                    assert!(offset > prev);
                }
                last = Some(offset);
            }
        }
    }
}
