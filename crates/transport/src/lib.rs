//! # hoplite-transport
//!
//! Real (non-simulated) transports for the Hoplite sans-IO core:
//!
//! * [`framing`] — length-prefixed wire format (binary for bulk blocks, JSON for
//!   control messages), mirroring the paper's gRPC-control / raw-TCP-data split;
//! * [`fabric::ChannelFabric`] — in-process crossbeam-channel fabric;
//! * [`tcp::TcpFabric`] — localhost TCP fabric with one connection per peer pair.
//!
//! The node event loop that drives [`hoplite_core::node::ObjectStoreNode`] over these
//! fabrics lives in `hoplite-cluster` (`LocalCluster`), so that simulated and real
//! deployments expose the same user-facing API.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fabric;
pub mod framing;
pub mod tcp;

pub use fabric::{ChannelFabric, ChannelFabricSender, Fabric, FabricSender};
pub use tcp::{TcpFabric, TcpFabricSender};
