//! A minimal, dependency-free JSON value with a stable writer and a strict parser.
//!
//! The container image vendors no serde, so the sweep harness carries its own JSON:
//! objects are **ordered** `(key, value)` vectors, which makes the emitted
//! `BENCH_sweep.json` byte-stable across runs (map iteration order never leaks into
//! the artifact) and keeps committed-baseline diffs minimal. Numbers are written with
//! Rust's shortest round-trip `Display` for `f64`, so `parse(write(x)) == x` for every
//! finite value the harness produces.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; integers up to 2^53 round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&c) = bytes.get(*pos) else { return Err("unexpected end of input".to_string()) };
    match c {
        b'n' => parse_literal(bytes, pos, "null", Json::Null),
        b't' => parse_literal(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_literal(bytes, pos, "false", Json::Bool(false)),
        b'"' => Ok(Json::Str(parse_string(bytes, pos)?)),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        b'-' | b'0'..=b'9' => {
            let start = *pos;
            if bytes[*pos] == b'-' {
                *pos += 1;
            }
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii");
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
        }
        other => Err(format!("unexpected byte `{}` at {}", other as char, *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else { return Err("unterminated string".to_string()) };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape `\\{}`", other as char)),
                }
            }
            c if c < 0x80 => out.push(c as char),
            _ => {
                // Multi-byte UTF-8: find the full character from the source slice.
                let start = *pos - 1;
                let s = std::str::from_utf8(&bytes[start..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                *pos = start + ch.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    #[test]
    fn round_trips_a_nested_document() {
        let doc = obj(vec![
            ("schema", Json::Str("hoplite-sweep-v1".into())),
            ("count", Json::Num(124.0)),
            ("ratio", Json::Num(0.0625)),
            ("ok", Json::Bool(true)),
            ("failure", Json::Null),
            (
                "cells",
                Json::Arr(vec![obj(vec![
                    ("id", Json::Str("fat32/none/broadcast/s0".into())),
                    ("completion_s", Json::Num(0.123456789)),
                ])]),
            ),
        ]);
        let text = doc.to_pretty_string();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn integers_write_without_decimal_point() {
        let text = Json::Num(1048576.0).to_pretty_string();
        assert_eq!(text.trim(), "1048576");
        assert_eq!(Json::parse("1048576").unwrap().as_u64(), Some(1048576));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1e-9, 123.456e12, -0.00742, f64::MAX] {
            let text = Json::Num(v).to_pretty_string();
            assert_eq!(Json::parse(text.trim()).unwrap().as_f64(), Some(v));
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a \"b\"\\\n\tc — µ";
        let text = Json::Str(s.into()).to_pretty_string();
        assert_eq!(Json::parse(text.trim()).unwrap().as_str(), Some(s));
    }

    #[test]
    fn object_field_order_is_preserved() {
        let text = "{\"b\": 1, \"a\": 2}";
        let Json::Obj(pairs) = Json::parse(text).unwrap() else { panic!("object") };
        assert_eq!(pairs[0].0, "b");
        assert_eq!(pairs[1].0, "a");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("nul").is_err());
    }
}
