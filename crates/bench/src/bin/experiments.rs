//! Experiment harness: regenerates every table and figure of the Hoplite paper's
//! evaluation (§5 and the appendices) on the simulated testbed.
//!
//! Usage:
//!
//! ```text
//! experiments <fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15|directory|pipeline-block|small-object-threshold|all>
//! ```
//!
//! Output is a set of aligned text tables (one series per column), mirroring the series
//! plotted in the corresponding paper figure. `EXPERIMENTS.md` records the
//! paper-vs-measured comparison for each of them.

use hoplite_apps::fault::{
    async_sgd_failure_timeline, broadcast_failover_demo, figure12_systems, serving_failure_timeline,
};
use hoplite_apps::params::{ALEXNET, SGD_MODELS};
use hoplite_apps::workloads::{
    async_sgd_throughput, rl_throughput, serving_throughput, sync_training_systems,
    sync_training_throughput, task_workload_systems, RlAlgorithm,
};
use hoplite_baselines::{Baseline, CollectiveKind, NetworkModel};
use hoplite_cluster::scenarios::{self, ScenarioEnv};
use hoplite_core::prelude::HopliteConfig;

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;
const GB: u64 = 1024 * 1024 * 1024;

fn human_size(bytes: u64) -> String {
    if bytes >= GB {
        format!("{}GB", bytes / GB)
    } else if bytes >= MB {
        format!("{}MB", bytes / MB)
    } else {
        format!("{}KB", bytes / KB)
    }
}

fn header(title: &str) {
    println!();
    println!("==== {title} ====");
}

fn fig6() {
    header("Figure 6: point-to-point RTT (2 nodes), seconds");
    let env = ScenarioEnv::paper_testbed();
    let model = NetworkModel::from_network(&env.network);
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "size", "Optimal", "Hoplite", "OpenMPI", "Ray", "Dask"
    );
    for size in [KB, MB, GB] {
        let hoplite = scenarios::p2p_rtt(&env, size).latency_s;
        println!(
            "{:<12} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
            human_size(size),
            Baseline::Optimal.p2p_rtt(&model, size),
            hoplite,
            Baseline::MpiLike.p2p_rtt(&model, size),
            Baseline::RayLike.p2p_rtt(&model, size),
            Baseline::DaskLike.p2p_rtt(&model, size),
        );
    }
}

fn collective_figure(title: &str, sizes: &[u64], nodes: &[usize]) {
    header(title);
    let env = ScenarioEnv::paper_testbed();
    let model = NetworkModel::from_network(&env.network);
    let collectives = [
        ("Broadcast", CollectiveKind::Broadcast),
        ("Gather", CollectiveKind::Gather),
        ("Reduce", CollectiveKind::Reduce),
        ("AllReduce", CollectiveKind::AllReduce),
    ];
    for &size in sizes {
        for (name, kind) in collectives {
            println!();
            println!("-- {name} {} --", human_size(size));
            println!(
                "{:<8} {:>12} {:>12} {:>12} {:>12} {:>14} {:>14} {:>18}",
                "nodes",
                "Hoplite",
                "OpenMPI",
                "Ray",
                "Dask",
                "Gloo(Bcast)",
                "Gloo(Ring)",
                "Gloo(HalvDoubl)"
            );
            for &n in nodes {
                let hoplite = match kind {
                    CollectiveKind::Broadcast => scenarios::broadcast_latency(&env, n, size, 0.0),
                    CollectiveKind::Gather => scenarios::gather_latency(&env, n, size),
                    CollectiveKind::Reduce => scenarios::reduce_latency(&env, n, size, None, 0.0),
                    CollectiveKind::AllReduce => scenarios::allreduce_latency(&env, n, size, 0.0),
                }
                .latency_s;
                let b = |base: Baseline| base.collective(&model, kind, n, size);
                println!(
                    "{:<8} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>14.6} {:>14.6} {:>18.6}",
                    n,
                    hoplite,
                    b(Baseline::MpiLike),
                    b(Baseline::RayLike),
                    b(Baseline::DaskLike),
                    b(Baseline::GlooBroadcast),
                    b(Baseline::GlooRingChunked),
                    b(Baseline::GlooHalvingDoubling),
                );
            }
        }
    }
}

fn fig7() {
    collective_figure(
        "Figure 7: collective latency, medium/large objects (seconds)",
        &[MB, 32 * MB, GB],
        &[4, 8, 12, 16],
    );
}

fn fig14() {
    collective_figure(
        "Figure 14 (Appendix A): collective latency, small objects (seconds)",
        &[KB, 32 * KB],
        &[4, 8, 12, 16],
    );
}

fn fig8() {
    header("Figure 8: 1 GB collectives on 16 nodes with staggered arrivals (seconds)");
    let env = ScenarioEnv::paper_testbed();
    let model = NetworkModel::from_network(&env.network);
    let intervals = [0.0, 0.1, 0.2, 0.3];
    for (name, kind) in [
        ("Broadcast", CollectiveKind::Broadcast),
        ("Reduce", CollectiveKind::Reduce),
        ("AllReduce", CollectiveKind::AllReduce),
    ] {
        println!();
        println!("-- {name} --");
        println!("{:<10} {:>12} {:>12} {:>16}", "interval", "Hoplite", "OpenMPI", "Gloo(Ring)");
        for &interval in &intervals {
            let hoplite = match kind {
                CollectiveKind::Broadcast => scenarios::broadcast_latency(&env, 16, GB, interval),
                CollectiveKind::Reduce => scenarios::reduce_latency(&env, 16, GB, None, interval),
                CollectiveKind::AllReduce => scenarios::allreduce_latency(&env, 16, GB, interval),
                CollectiveKind::Gather => unreachable!(),
            }
            .latency_s;
            let mpi = Baseline::MpiLike.collective_staggered(&model, kind, 16, GB, interval);
            let gloo =
                Baseline::GlooRingChunked.collective_staggered(&model, kind, 16, GB, interval);
            println!("{:<10} {:>12.3} {:>12.3} {:>16.3}", interval, hoplite, mpi, gloo);
        }
    }
}

fn fig9() {
    header("Figure 9: asynchronous SGD training throughput (samples/s)");
    for &nodes in &[8usize, 16] {
        println!();
        println!("-- {nodes} nodes --");
        println!("{:<12} {:>12} {:>12} {:>10}", "model", "Hoplite", "Ray", "speedup");
        for model in SGD_MODELS {
            let mut row = Vec::new();
            for system in task_workload_systems() {
                row.push(async_sgd_throughput(system, nodes, model).throughput);
            }
            println!(
                "{:<12} {:>12.1} {:>12.1} {:>9.1}x",
                model.name,
                row[0],
                row[1],
                row[0] / row[1]
            );
        }
    }
}

fn fig10() {
    header("Figure 10: RL training throughput (samples/s)");
    for algo in [RlAlgorithm::Impala, RlAlgorithm::A3c] {
        println!();
        println!("-- {} --", algo.label());
        println!("{:<8} {:>12} {:>12} {:>10}", "nodes", "Hoplite", "Ray", "speedup");
        for &nodes in &[8usize, 16] {
            let mut row = Vec::new();
            for system in task_workload_systems() {
                row.push(rl_throughput(system, nodes, algo).throughput);
            }
            println!("{:<8} {:>12.1} {:>12.1} {:>9.1}x", nodes, row[0], row[1], row[0] / row[1]);
        }
    }
}

fn fig11() {
    header("Figure 11: ensemble model-serving throughput (queries/s)");
    println!("{:<8} {:>12} {:>12} {:>10}", "nodes", "Hoplite", "Ray", "speedup");
    for &nodes in &[8usize, 16] {
        let mut row = Vec::new();
        for system in task_workload_systems() {
            row.push(serving_throughput(system, nodes).throughput);
        }
        println!("{:<8} {:>12.2} {:>12.2} {:>9.1}x", nodes, row[0], row[1], row[0] / row[1]);
    }
}

fn fig12() {
    header("Figure 12: latency around a worker failure and rejoin");
    let demo = broadcast_failover_demo(8, 256 * MB, 0.05);
    println!(
        "protocol-level failover demo (8 nodes, 256MB broadcast, intermediate killed mid-transfer):"
    );
    println!(
        "  no failure: {:.3}s   with failure: {:.3}s   surviving receivers completed: {}   failovers: {}",
        demo.baseline_s, demo.with_failure_s, demo.completed_receivers, demo.failovers
    );
    println!();
    println!("-- (a) Ray Serve latency per query (8 models, fail @20, rejoin @45) --");
    for system in figure12_systems() {
        let t = serving_failure_timeline(system, 8, 70, 20, 45);
        let line: Vec<String> = t
            .iter()
            .step_by(5)
            .map(|p| {
                format!(
                    "{}:{:.3}{}",
                    p.index,
                    p.latency_s,
                    if p.event.is_empty() { "" } else { "*" }
                )
            })
            .collect();
        println!("{:<12} {}", system.label(), line.join(" "));
    }
    println!();
    println!("-- (b) async SGD latency per iteration (6 workers, fail @10, rejoin @20) --");
    for system in figure12_systems() {
        let t = async_sgd_failure_timeline(system, 6, 30, 10, 20, ALEXNET);
        let line: Vec<String> = t
            .iter()
            .step_by(2)
            .map(|p| {
                format!(
                    "{}:{:.3}{}",
                    p.index,
                    p.latency_s,
                    if p.event.is_empty() { "" } else { "*" }
                )
            })
            .collect();
        println!("{:<12} {}", system.label(), line.join(" "));
    }
    println!("(* marks the failure / rejoin points)");
}

fn fig13() {
    header("Figure 13: synchronous data-parallel training throughput (samples/s)");
    for &nodes in &[8usize, 16] {
        println!();
        println!("-- {nodes} nodes --");
        println!(
            "{:<12} {:>12} {:>12} {:>14} {:>12}",
            "model", "Hoplite", "OpenMPI", "Gloo(Ring)", "Ray"
        );
        for model in SGD_MODELS {
            let mut row = Vec::new();
            for system in sync_training_systems() {
                row.push(sync_training_throughput(system, nodes, model).throughput);
            }
            println!(
                "{:<12} {:>12.1} {:>12.1} {:>14.1} {:>12.1}",
                model.name, row[0], row[1], row[2], row[3]
            );
        }
    }
}

fn fig15() {
    header("Figure 15 (Appendix B): reduce latency vs tree degree d (seconds)");
    let env = ScenarioEnv::paper_testbed();
    let sizes = [4 * KB, 32 * KB, 256 * KB, MB, 4 * MB, 8 * MB, 16 * MB, 32 * MB];
    let nodes = [8usize, 16, 32, 48, 64];
    for &size in &sizes {
        println!();
        println!("-- object size {} --", human_size(size));
        println!("{:<8} {:>12} {:>12} {:>12} {:>12}", "nodes", "d=1", "d=2", "d=n", "auto");
        for &n in &nodes {
            let run = |degree: Option<usize>| {
                scenarios::reduce_latency(&env, n, size, degree, 0.0).latency_s
            };
            println!(
                "{:<8} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
                n,
                run(Some(1)),
                run(Some(2)),
                run(Some(0)),
                run(None)
            );
        }
    }
}

fn directory_bench() {
    header("Section 5.1.1 directory microbenchmark");
    let env = ScenarioEnv::paper_testbed();
    let fetch = scenarios::directory_fetch_latency(&env, 1024).latency_s;
    println!("small-object (1 KB) location query + inline fetch: {:.1} us", fetch * 1e6);
    println!("(paper: location write 167 us, location read 177 us)");
}

fn pipeline_block_ablation() {
    header("Ablation: pipelining block size (16 nodes, 1 GB broadcast)");
    println!("{:<12} {:>12}", "block", "latency (s)");
    for block in [MB, 4 * MB, 16 * MB, 64 * MB] {
        let mut env = ScenarioEnv::paper_testbed();
        env.hoplite = HopliteConfig { block_size: block, ..env.hoplite };
        let r = scenarios::broadcast_latency(&env, 16, GB, 0.0);
        println!("{:<12} {:>12.3}", human_size(block), r.latency_s);
    }
}

fn small_object_threshold_ablation() {
    header("Ablation: small-object inline-cache threshold (2 nodes, 32 KB object fetch)");
    println!("{:<16} {:>14}", "threshold", "fetch latency");
    for threshold in [0u64, 4 * KB, 64 * KB, 256 * KB] {
        let mut env = ScenarioEnv::paper_testbed();
        env.hoplite = HopliteConfig { inline_threshold: threshold, ..env.hoplite };
        let r = scenarios::directory_fetch_latency(&env, 32 * KB);
        println!("{:<16} {:>11.1} us", format!("{threshold}B"), r.latency_s * 1e6);
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let run = |name: &str| arg == name || arg == "all";
    let mut matched = false;
    for (name, f) in [
        ("fig6", fig6 as fn()),
        ("fig7", fig7),
        ("fig8", fig8),
        ("fig9", fig9),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
        ("fig13", fig13),
        ("fig14", fig14),
        ("fig15", fig15),
        ("directory", directory_bench),
        ("pipeline-block", pipeline_block_ablation),
        ("small-object-threshold", small_object_threshold_ablation),
    ] {
        if run(name) {
            matched = true;
            f();
        }
    }
    if !matched {
        eprintln!(
            "unknown experiment '{arg}'; expected fig6..fig15, directory, pipeline-block, small-object-threshold, or all"
        );
        std::process::exit(2);
    }
    println!();
}
