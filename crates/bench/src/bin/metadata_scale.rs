//! Metadata-plane scale drill: register `METADATA_SCALE_OBJECTS` objects (default
//! 1M) through a replicated two-node directory, then kill and restart the backup and
//! replay the entire chunked resync stream with live registrations interleaved.
//!
//! Asserts, exiting nonzero on violation:
//! - every resync frame respects the configured chunk budget (single oversized
//!   entries excepted — none occur here);
//! - the restarted replica converges: sampled pre-kill records, every interleaved
//!   live record, and the full entry count are present;
//! - peak RSS (`VmHWM`) stays under `METADATA_SCALE_RSS_MB` (default 4096).
//!
//! CI runs this as the `metadata-scale` smoke step; BENCH_NOTES snapshots the
//! printed rows.

use std::collections::VecDeque;
use std::time::Instant;

use hoplite_core::config::HopliteConfig;
use hoplite_core::directory::DirectoryService;
use hoplite_core::object::{NodeId, ObjectId, ObjectStatus};
use hoplite_core::protocol::{DirOp, Message};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Peak resident set size in MiB from `/proc/self/status` (`VmHWM`); 0 when the
/// platform does not expose it (the ceiling check is then skipped).
fn peak_rss_mb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb / 1024;
        }
    }
    0
}

/// Route one message between the two services, returning the sends it produced.
/// Client-facing notifications are dropped — this drill has no clients.
fn route(
    svcs: &mut [DirectoryService; 2],
    from: NodeId,
    to: NodeId,
    msg: Message,
) -> Vec<(NodeId, NodeId, Message)> {
    let mut out = Vec::new();
    match msg {
        Message::DirReplicate { shard, epoch, seq, op } => {
            svcs[to.0 as usize].handle_replicate(shard as usize, epoch, seq, &op, from, &mut out);
        }
        Message::DirAck { shard, epoch, seq } => {
            svcs[to.0 as usize].handle_ack(shard as usize, from, epoch, seq, &mut out);
        }
        Message::DirSnapshotRequest {
            shard,
            requester,
            restart,
            after,
            have_epoch,
            have_seq,
            ..
        } => {
            svcs[to.0 as usize].handle_snapshot_request(
                shard as usize,
                requester,
                restart,
                after,
                have_epoch,
                have_seq,
                &mut out,
            );
        }
        Message::DirSnapshotChunk { shard, epoch, seq, rank, done, state } => {
            svcs[to.0 as usize].handle_snapshot_chunk(
                shard as usize,
                epoch,
                seq,
                rank as usize,
                done,
                &state,
                from,
                &mut out,
            );
        }
        Message::DirResyncDelta { shard, epoch, ops, done } => {
            svcs[to.0 as usize].handle_resync_delta(
                shard as usize,
                epoch,
                &ops,
                done,
                from,
                &mut out,
            );
        }
        _ => {}
    }
    out.into_iter().map(|(to2, m2)| (to, to2, m2)).collect()
}

fn register_op(o: ObjectId) -> DirOp {
    DirOp::Register { object: o, holder: NodeId(0), status: ObjectStatus::Complete, size: 1 << 20 }
}

fn main() {
    let objects = env_u64("METADATA_SCALE_OBJECTS", 1_000_000) as usize;
    let rss_ceiling_mb = env_u64("METADATA_SCALE_RSS_MB", 4096);
    let cfg = HopliteConfig::paper_testbed();
    let budget = cfg.snapshot_chunk_bytes;
    let nodes = vec![NodeId(0), NodeId(1)];
    let mut svcs = [
        DirectoryService::new(NodeId(0), &cfg, &nodes),
        DirectoryService::new(NodeId(1), &cfg, &nodes),
    ];

    // Phase 1 — populate: register `objects` objects at their shard primaries,
    // replicating and acking each op so the logs stay trimmed to the retention ring
    // (bounded memory is part of what this drill measures).
    let ids: Vec<ObjectId> =
        (0..objects as u64).map(|i| ObjectId::from_name(&format!("scale-{i}"))).collect();
    let populate_start = Instant::now();
    let mut queue: VecDeque<(NodeId, NodeId, Message)> = VecDeque::new();
    let mut out = Vec::new();
    for &o in &ids {
        let primary = svcs[0].primary_for(o).expect("shard has a primary");
        assert!(svcs[primary.0 as usize].handle_op(register_op(o), &mut out));
        queue.extend(out.drain(..).map(|(to, m)| (primary, to, m)));
        while let Some((from, to, msg)) = queue.pop_front() {
            let next = route(&mut svcs, from, to, msg);
            queue.extend(next);
        }
    }
    let populate_s = populate_start.elapsed().as_secs_f64();
    let populate_rate = objects as f64 / populate_s;
    println!(
        "metadata_scale: populate objects={objects} time={populate_s:.2}s \
         rate={populate_rate:.0} ops/s"
    );

    // Phase 2 — kill the backup node and restart it as a fresh process; it must
    // catch up through the cursor-driven chunk stream while live registrations keep
    // landing at the surviving node (which serves both roles without pausing).
    svcs[0].on_peer_failed(NodeId(1), &mut out);
    out.clear();
    svcs[1] = DirectoryService::new(NodeId(1), &cfg, &nodes);
    let resync_start = Instant::now();
    assert!(svcs[1].begin_local_resync(&mut out), "restart requests resync");
    queue.extend(out.drain(..).map(|(to, m)| (NodeId(1), to, m)));

    let mut chunks_routed = 0u64;
    let mut max_frame = 0u64;
    let mut oversized = 0u64;
    let mut live: Vec<ObjectId> = Vec::new();
    while let Some((from, to, msg)) = queue.pop_front() {
        if let Message::DirSnapshotChunk { ref state, .. } = msg {
            chunks_routed += 1;
            let sz = state.wire_size();
            max_frame = max_frame.max(sz);
            if sz > budget && state.entries.len() > 1 {
                oversized += 1;
            }
            // Live traffic interleaves with the stream: a fresh registration every
            // 8 chunks, applied at the source mid-serve.
            if chunks_routed.is_multiple_of(8) {
                let o = ObjectId::from_name(&format!("scale-live-{chunks_routed}"));
                live.push(o);
                let mut ops_out = Vec::new();
                assert!(svcs[0].handle_op(register_op(o), &mut ops_out));
                // No live backup: nothing to route, the op stays local until the
                // stream (or the post-resync readmission re-ship) carries it over.
            }
        }
        let next = route(&mut svcs, from, to, msg);
        queue.extend(next);
    }
    assert!(svcs[1].pending_resyncs().is_empty(), "resync stream completed");
    let resync_s = resync_start.elapsed().as_secs_f64();
    let (chunks_sent, chunk_bytes, delta_resyncs) = svcs[0].take_resync_counters();
    let resync_rate = (objects + live.len()) as f64 / resync_s;
    println!(
        "metadata_scale: resync chunks={chunks_sent} bytes={chunk_bytes} \
         max_frame={max_frame} budget={budget} deltas={delta_resyncs} \
         time={resync_s:.2}s rate={resync_rate:.0} entries/s"
    );

    // Phase 3 — readmit the caught-up replica and re-ship whatever landed after its
    // streams closed, then verify convergence.
    svcs[0].on_peer_recovered(NodeId(1));
    let mut q0 = Vec::new();
    svcs[0].on_peer_readmitted(NodeId(1), &mut q0);
    let mut q1 = Vec::new();
    svcs[1].on_peer_readmitted(NodeId(1), &mut q1);
    queue.extend(q0.into_iter().map(|(to, m)| (NodeId(0), to, m)));
    queue.extend(q1.into_iter().map(|(to, m)| (NodeId(1), to, m)));
    while let Some((from, to, msg)) = queue.pop_front() {
        let next = route(&mut svcs, from, to, msg);
        queue.extend(next);
    }

    let mut failures = 0u64;
    // Sampled pre-kill records plus every interleaved live record must be present
    // at the restarted replica.
    let sample_stride = (objects / 1024).max(1);
    for &o in ids.iter().step_by(sample_stride).chain(live.iter()) {
        let present = svcs[1].locations(o).map(|l| !l.is_empty()).unwrap_or(false);
        if !present {
            eprintln!("metadata_scale: FAIL record {o:?} missing at restarted replica");
            failures += 1;
        }
    }
    if oversized > 0 {
        eprintln!("metadata_scale: FAIL {oversized} multi-entry frames over the chunk budget");
        failures += 1;
    }
    if chunks_sent < 2 {
        eprintln!("metadata_scale: FAIL resync was not chunked (chunks={chunks_sent})");
        failures += 1;
    }

    let rss_mb = peak_rss_mb();
    println!("metadata_scale: peak_rss_mb={rss_mb} ceiling_mb={rss_ceiling_mb}");
    if rss_mb > rss_ceiling_mb {
        eprintln!("metadata_scale: FAIL peak RSS {rss_mb} MiB over ceiling {rss_ceiling_mb} MiB");
        failures += 1;
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("metadata_scale: OK ({} live ops interleaved, {} records sampled)", live.len(), {
        ids.len().div_ceil(sample_stride)
    });
}
