//! Scenario sweep harness: run the topology × fault-schedule × collective matrix on
//! the simulator and emit machine-readable results.
//!
//! ```text
//! sweep [--matrix ci|full] [--out BENCH_sweep.json]
//!     Run the matrix and write the JSON document (stdout progress, one line/cell).
//!
//! sweep --check BASELINE [--against FRESH] [--tolerance 15%] [--matrix ci|full]
//!     Compare a fresh run (from --against, or executed in-process) to the committed
//!     baseline. Exit 1 on any regression: lost convergence, missing cell, or a
//!     deterministic metric (completion_s, data_bytes_sent) off by more than the
//!     tolerance.
//!
//! sweep --summarize FILE
//!     Render the one-line-per-cell table from an existing document.
//! ```

use std::fs;
use std::process::ExitCode;

use hoplite_bench::json::Json;
use hoplite_bench::sweep::{self, MatrixKind};

struct Args {
    matrix: MatrixKind,
    out: String,
    check: Option<String>,
    against: Option<String>,
    summarize: Option<String>,
    tolerance: f64,
}

fn parse_tolerance(s: &str) -> Result<f64, String> {
    let (text, percent) = match s.strip_suffix('%') {
        Some(t) => (t, true),
        None => (s, false),
    };
    let v: f64 = text.parse().map_err(|_| format!("bad tolerance `{s}`"))?;
    let v = if percent { v / 100.0 } else { v };
    if !(0.0..=10.0).contains(&v) {
        return Err(format!("tolerance `{s}` out of range"));
    }
    Ok(v)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        matrix: MatrixKind::Ci,
        out: "BENCH_sweep.json".to_string(),
        check: None,
        against: None,
        summarize: None,
        tolerance: 0.15,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--matrix" => {
                let v = value("--matrix")?;
                args.matrix =
                    MatrixKind::parse(&v).ok_or(format!("unknown matrix `{v}` (ci|full)"))?;
            }
            "--out" => args.out = value("--out")?,
            "--check" => args.check = Some(value("--check")?),
            "--against" => args.against = Some(value("--against")?),
            "--summarize" => args.summarize = Some(value("--summarize")?),
            "--tolerance" => args.tolerance = parse_tolerance(&value("--tolerance")?)?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn load(path: &str) -> Result<Json, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn run_fresh(matrix: MatrixKind) -> Json {
    eprintln!("running {} matrix...", matrix.name());
    sweep::run_matrix(matrix, |i, total, id, converged| {
        eprintln!(
            "[{:>3}/{total}] {id:<40} {}",
            i + 1,
            if converged { "converged" } else { "FAILED" }
        );
    })
}

fn real_main() -> Result<ExitCode, String> {
    let args = parse_args()?;

    if let Some(path) = &args.summarize {
        print!("{}", sweep::summarize(&load(path)?)?);
        return Ok(ExitCode::SUCCESS);
    }

    if let Some(baseline_path) = &args.check {
        let baseline = load(baseline_path)?;
        let fresh = match &args.against {
            Some(path) => load(path)?,
            None => run_fresh(args.matrix),
        };
        let report = sweep::check(&baseline, &fresh, args.tolerance)?;
        for note in &report.notes {
            println!("note: {note}");
        }
        if report.regressions.is_empty() {
            println!(
                "sweep check: {} cells within {:.1}% of {baseline_path}",
                report.compared,
                args.tolerance * 100.0
            );
            return Ok(ExitCode::SUCCESS);
        }
        eprintln!(
            "sweep check: {} regression(s) vs {baseline_path} (tolerance {:.1}%):",
            report.regressions.len(),
            args.tolerance * 100.0
        );
        for r in &report.regressions {
            eprintln!("  REGRESSION {r}");
        }
        return Ok(ExitCode::FAILURE);
    }

    let doc = run_fresh(args.matrix);
    fs::write(&args.out, doc.to_pretty_string()).map_err(|e| format!("{}: {e}", args.out))?;
    let cells = doc.get("cells").and_then(Json::as_arr).map(<[Json]>::len).unwrap_or(0);
    let failed: Vec<&str> = doc
        .get("cells")
        .and_then(Json::as_arr)
        .map(|cs| {
            cs.iter()
                .filter(|c| c.get("converged").and_then(Json::as_bool) != Some(true))
                .filter_map(|c| c.get("id").and_then(Json::as_str))
                .collect()
        })
        .unwrap_or_default();
    println!("wrote {} ({cells} cells, {} failed)", args.out, failed.len());
    for id in &failed {
        eprintln!("  NOT CONVERGED: {id}");
    }
    Ok(if failed.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("sweep: {e}");
            eprintln!("usage: sweep [--matrix ci|full] [--out FILE]");
            eprintln!("       sweep --check BASELINE [--against FRESH] [--tolerance 15%]");
            eprintln!("       sweep --summarize FILE");
            ExitCode::FAILURE
        }
    }
}
