//! The scenario sweep matrix: cell enumeration, execution, regression checking, and
//! human-readable summaries.
//!
//! A sweep is a cartesian matrix of generated topologies × seeded fault schedules ×
//! collectives × seeds, each cell executed on a [`hoplite_cluster::SimCluster`] by
//! [`hoplite_cluster::sweep::run_cell`] and reduced to one JSON row. Simulated-time
//! metrics (`completion_s`, `data_bytes_sent`, message/event counts) are fully
//! deterministic — the simulator's only randomness is seeded per cell — so
//! [`check`] can gate CI on them with a tolerance that only real behavioural changes
//! can trip. Wall-clock time is recorded per cell for humans but never checked.

use std::time::Instant;

use hoplite_cluster::faults::ScheduleKind;
use hoplite_cluster::sweep::{run_cell, Collective};
use hoplite_cluster::topology::{self, GeneratedTopology};

use crate::json::Json;

/// Schema identifier stamped into every sweep document.
pub const SCHEMA: &str = "hoplite-sweep-v1";

/// Object size per collective: 8 MiB = two 4 MiB blocks at the paper's block size,
/// so every transfer exercises multi-block pipelining.
pub const OBJECT_BYTES: u64 = 8 * 1024 * 1024;

/// Which matrix to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatrixKind {
    /// The reduced CI matrix: 124 cells, a couple of minutes in release.
    Ci,
    /// The full local matrix: more seeds and every schedule on the 256-node
    /// fat-tree.
    Full,
}

impl MatrixKind {
    /// Parse `ci` / `full`.
    pub fn parse(s: &str) -> Option<MatrixKind> {
        match s {
            "ci" => Some(MatrixKind::Ci),
            "full" => Some(MatrixKind::Full),
            _ => None,
        }
    }

    /// Stable name, stamped into the document.
    pub fn name(&self) -> &'static str {
        match self {
            MatrixKind::Ci => "ci",
            MatrixKind::Full => "full",
        }
    }
}

/// One cell of the matrix, fully specified before execution.
pub struct CellDef {
    /// Stable id: `topology/schedule/collective/sN`.
    pub id: String,
    /// The generated topology.
    pub topology: GeneratedTopology,
    /// Fault-schedule family.
    pub kind: ScheduleKind,
    /// Collective under test.
    pub collective: Collective,
    /// Seed for the schedule (and its link faults).
    pub seed: u64,
}

fn cell(topo: &GeneratedTopology, kind: ScheduleKind, coll: Collective, seed: u64) -> CellDef {
    CellDef {
        id: format!("{}/{}/{}/s{}", topo.name, kind.name(), coll.name(), seed),
        topology: topo.clone(),
        kind,
        collective: coll,
        seed,
    }
}

/// Enumerate the matrix of `kind`.
///
/// The small-topology block is the cartesian product
/// `4 topologies × 5 schedules × 3 collectives × seeds`; the 256-node fat-tree rows
/// on top keep the big-cluster path exercised (including one loss/reorder schedule)
/// without dominating the runtime.
pub fn build_matrix(kind: MatrixKind) -> Vec<CellDef> {
    let small: Vec<GeneratedTopology> = vec![
        topology::uniform(8),
        topology::fat_tree(4, 8, 4.0),
        topology::hetero_nics(16, 1),
        topology::wan_tiers(3, 8, 2),
    ];
    let big = topology::fat_tree(16, 16, 8.0);
    let seeds: &[u64] = match kind {
        MatrixKind::Ci => &[0, 1],
        MatrixKind::Full => &[0, 1, 2, 3],
    };
    let mut cells = Vec::new();
    for topo in &small {
        for sched in ScheduleKind::all() {
            for coll in Collective::all() {
                for &seed in seeds {
                    cells.push(cell(topo, sched, coll, seed));
                }
            }
        }
    }
    match kind {
        MatrixKind::Ci => {
            cells.push(cell(&big, ScheduleKind::None, Collective::Broadcast, 0));
            cells.push(cell(&big, ScheduleKind::LossReorder, Collective::Broadcast, 0));
            cells.push(cell(&big, ScheduleKind::None, Collective::Reduce, 0));
            cells.push(cell(&big, ScheduleKind::CorrelatedKills, Collective::Multicast, 0));
        }
        MatrixKind::Full => {
            for sched in ScheduleKind::all() {
                for coll in Collective::all() {
                    cells.push(cell(&big, sched, coll, 0));
                }
            }
        }
    }
    cells
}

/// Execute every cell and build the sweep document. `progress` is called after each
/// cell with `(index, total, id, converged)`.
pub fn run_matrix(kind: MatrixKind, mut progress: impl FnMut(usize, usize, &str, bool)) -> Json {
    let cells = build_matrix(kind);
    let total = cells.len();
    let mut rows = Vec::with_capacity(total);
    for (i, def) in cells.iter().enumerate() {
        let wall = Instant::now();
        let (schedule, out) =
            run_cell(&def.topology, def.kind, def.collective, OBJECT_BYTES, def.seed);
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        progress(i, total, &def.id, out.converged);
        rows.push(Json::Obj(vec![
            ("id".into(), Json::Str(def.id.clone())),
            ("topology".into(), Json::Str(def.topology.name.clone())),
            ("nodes".into(), Json::Num(def.topology.n as f64)),
            ("schedule".into(), Json::Str(schedule.name.clone())),
            ("collective".into(), Json::Str(def.collective.name().into())),
            ("seed".into(), Json::Num(def.seed as f64)),
            ("object_bytes".into(), Json::Num(OBJECT_BYTES as f64)),
            ("converged".into(), Json::Bool(out.converged)),
            ("failure".into(), out.failure.clone().map(Json::Str).unwrap_or(Json::Null)),
            ("completion_s".into(), Json::Num(out.completion_s)),
            ("data_bytes_sent".into(), Json::Num(out.data_bytes_sent as f64)),
            ("messages".into(), Json::Num(out.messages as f64)),
            ("events".into(), Json::Num(out.events as f64)),
            ("failovers".into(), Json::Num(out.failovers as f64)),
            ("redrives".into(), Json::Num(out.redrives as f64)),
            ("resyncs".into(), Json::Num(out.resyncs as f64)),
            ("messages_lost".into(), Json::Num(out.lost as f64)),
            ("messages_reordered".into(), Json::Num(out.reordered as f64)),
            ("wall_ms".into(), Json::Num((wall_ms * 100.0).round() / 100.0)),
        ]));
    }
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("matrix".into(), Json::Str(kind.name().into())),
        ("object_bytes".into(), Json::Num(OBJECT_BYTES as f64)),
        ("cells".into(), Json::Arr(rows)),
    ])
}

/// The result of a baseline comparison.
pub struct CheckReport {
    /// Cells compared (present in both documents).
    pub compared: usize,
    /// Human-readable regression descriptions; empty means the gate passes.
    pub regressions: Vec<String>,
    /// Non-gating notes (e.g. newly-converging cells, extra cells in the fresh run).
    pub notes: Vec<String>,
}

fn cells_of(doc: &Json) -> Result<Vec<&Json>, String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(SCHEMA) => {}
        Some(other) => return Err(format!("unsupported schema `{other}` (want {SCHEMA})")),
        None => return Err("missing `schema` field".to_string()),
    }
    doc.get("cells")
        .and_then(Json::as_arr)
        .map(|cells| cells.iter().collect())
        .ok_or_else(|| "missing `cells` array".to_string())
}

/// Compare a fresh sweep against a committed baseline.
///
/// Gated per cell: convergence must not regress, and the deterministic simulated
/// metrics `completion_s` and `data_bytes_sent` must stay within `tolerance`
/// (relative, e.g. `0.15`) of the baseline. Cells present only in the baseline are
/// regressions (coverage shrank); cells only in the fresh run are notes.
pub fn check(baseline: &Json, fresh: &Json, tolerance: f64) -> Result<CheckReport, String> {
    let base_cells = cells_of(baseline)?;
    let fresh_cells = cells_of(fresh)?;
    let fresh_by_id = |id: &str| {
        fresh_cells.iter().find(|c| c.get("id").and_then(Json::as_str) == Some(id)).copied()
    };
    let mut report = CheckReport { compared: 0, regressions: Vec::new(), notes: Vec::new() };
    for b in &base_cells {
        let id = b
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| "baseline cell without id".to_string())?;
        let Some(f) = fresh_by_id(id) else {
            report.regressions.push(format!("{id}: present in baseline, missing from fresh run"));
            continue;
        };
        report.compared += 1;
        let b_conv = b.get("converged").and_then(Json::as_bool).unwrap_or(false);
        let f_conv = f.get("converged").and_then(Json::as_bool).unwrap_or(false);
        match (b_conv, f_conv) {
            (true, false) => {
                let why = f.get("failure").and_then(Json::as_str).unwrap_or("unknown failure");
                report.regressions.push(format!("{id}: no longer converges ({why})"));
                continue;
            }
            (false, true) => {
                report.notes.push(format!("{id}: now converges (baseline did not)"));
                continue;
            }
            (false, false) => continue,
            (true, true) => {}
        }
        for field in ["completion_s", "data_bytes_sent"] {
            let bv = b.get(field).and_then(Json::as_f64).unwrap_or(0.0);
            let fv = f.get(field).and_then(Json::as_f64).unwrap_or(0.0);
            let scale = bv.abs().max(1e-12);
            let rel = (fv - bv).abs() / scale;
            if rel > tolerance {
                report.regressions.push(format!(
                    "{id}: {field} moved {bv} -> {fv} ({:+.1}%, tolerance {:.1}%)",
                    (fv - bv) / scale * 100.0,
                    tolerance * 100.0
                ));
            }
        }
    }
    let extra = fresh_cells.len().saturating_sub(report.compared);
    if extra > 0 {
        report.notes.push(format!("{extra} fresh cell(s) not in the baseline (not gated)"));
    }
    Ok(report)
}

/// Render the per-cell summary table (one line per cell, aligned columns).
pub fn summarize(doc: &Json) -> Result<String, String> {
    let cells = cells_of(doc)?;
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34} {:>5} {:>6} {:>9} {:>9} {:>5} {:>7} {:>8}  {}\n",
        "cell", "nodes", "conv", "time_s", "MB_wire", "fail", "resync", "events", "notes"
    ));
    let mut converged = 0usize;
    for c in &cells {
        let id = c.get("id").and_then(Json::as_str).unwrap_or("?");
        let nodes = c.get("nodes").and_then(Json::as_u64).unwrap_or(0);
        let conv = c.get("converged").and_then(Json::as_bool).unwrap_or(false);
        converged += conv as usize;
        let time_s = c.get("completion_s").and_then(Json::as_f64).unwrap_or(0.0);
        let mb = c.get("data_bytes_sent").and_then(Json::as_f64).unwrap_or(0.0) / (1024.0 * 1024.0);
        let failovers = c.get("failovers").and_then(Json::as_u64).unwrap_or(0);
        let resyncs = c.get("resyncs").and_then(Json::as_u64).unwrap_or(0);
        let events = c.get("events").and_then(Json::as_u64).unwrap_or(0);
        let lost = c.get("messages_lost").and_then(Json::as_u64).unwrap_or(0);
        let reordered = c.get("messages_reordered").and_then(Json::as_u64).unwrap_or(0);
        let mut notes = String::new();
        if lost + reordered > 0 {
            notes.push_str(&format!("lost={lost} reord={reordered}"));
        }
        if let Some(failure) = c.get("failure").and_then(Json::as_str) {
            if !notes.is_empty() {
                notes.push(' ');
            }
            notes.push_str(failure);
        }
        out.push_str(&format!(
            "{:<34} {:>5} {:>6} {:>9.4} {:>9.1} {:>5} {:>7} {:>8}  {}\n",
            id,
            nodes,
            if conv { "ok" } else { "FAIL" },
            time_s,
            mb,
            failovers,
            resyncs,
            events,
            notes
        ));
    }
    out.push_str(&format!("{} cells, {} converged\n", cells.len(), converged));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_matrix_shape_meets_the_acceptance_bar() {
        let cells = build_matrix(MatrixKind::Ci);
        assert!(cells.len() >= 100, "only {} cells", cells.len());
        assert!(cells.iter().any(|c| c.topology.n == 256), "no 256-node cell");
        assert!(
            cells.iter().any(|c| c.topology.n == 256 && c.kind == ScheduleKind::LossReorder),
            "no 256-node loss/reorder cell"
        );
        // Ids are unique — the check step keys on them.
        let mut ids: Vec<&str> = cells.iter().map(|c| c.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), cells.len());
    }

    fn tiny_doc(completion: f64, converged: bool) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("matrix".into(), Json::Str("test".into())),
            (
                "cells".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("id".into(), Json::Str("uniform8/none/broadcast/s0".into())),
                    ("nodes".into(), Json::Num(8.0)),
                    ("converged".into(), Json::Bool(converged)),
                    ("failure".into(), Json::Null),
                    ("completion_s".into(), Json::Num(completion)),
                    ("data_bytes_sent".into(), Json::Num(1e8)),
                ])]),
            ),
        ])
    }

    #[test]
    fn check_passes_within_tolerance_and_fails_beyond() {
        let base = tiny_doc(0.100, true);
        let ok = check(&base, &tiny_doc(0.110, true), 0.15).unwrap();
        assert!(ok.regressions.is_empty(), "{:?}", ok.regressions);
        assert_eq!(ok.compared, 1);
        let bad = check(&base, &tiny_doc(0.130, true), 0.15).unwrap();
        assert_eq!(bad.regressions.len(), 1, "{:?}", bad.regressions);
        assert!(bad.regressions[0].contains("completion_s"));
    }

    #[test]
    fn check_flags_convergence_regressions_and_missing_cells() {
        let base = tiny_doc(0.100, true);
        let r = check(&base, &tiny_doc(0.100, false), 0.15).unwrap();
        assert!(r.regressions[0].contains("no longer converges"));
        let empty = Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("cells".into(), Json::Arr(vec![])),
        ]);
        let r = check(&base, &empty, 0.15).unwrap();
        assert!(r.regressions[0].contains("missing from fresh run"));
    }

    #[test]
    fn summarize_renders_one_line_per_cell() {
        let doc = tiny_doc(0.1, true);
        let table = summarize(&doc).unwrap();
        assert_eq!(table.lines().count(), 3); // header + 1 cell + totals
        assert!(table.contains("uniform8/none/broadcast/s0"));
        assert!(table.contains("1 cells, 1 converged"));
    }
}
