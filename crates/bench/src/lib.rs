//! # hoplite-bench
//!
//! The benchmark and evaluation harness: Criterion benches (in `benches/`), the
//! figure-regeneration binary (`experiments`), the metadata-scale drill
//! (`metadata_scale`), and the scenario sweep (`sweep`).
//!
//! The library half carries the sweep machinery the `sweep` binary and its tests
//! share:
//!
//! * [`json`] — a dependency-free JSON value with a byte-stable writer, since the
//!   container vendors no serde;
//! * [`sweep`] — matrix enumeration, cell execution, the `--check` regression gate,
//!   and the `--summarize` table.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod sweep;
