//! Criterion benches for the object directory shard: registration, query, and the
//! small-object inline fast path (§3.2, §5.1.1).

use criterion::{criterion_group, criterion_main, Criterion};
use hoplite_core::buffer::Payload;
use hoplite_core::config::HopliteConfig;
use hoplite_core::directory::DirectoryShard;
use hoplite_core::object::{NodeId, ObjectId, ObjectStatus};

fn bench_register_query(c: &mut Criterion) {
    // Id derivation is harness setup, not shard work; keep it out of the timed loop
    // (BENCH_NOTES flagged the per-iteration `from_name(format!)` as polluting this
    // measurement).
    let ids: Vec<ObjectId> =
        (0..1000u32).map(|i| ObjectId::from_name(&format!("obj-{i}"))).collect();
    c.bench_function("directory_register_then_query_1k_objects", |b| {
        b.iter(|| {
            let mut shard = DirectoryShard::new(0, HopliteConfig::paper_testbed());
            let mut out = Vec::new();
            for (i, &obj) in ids.iter().enumerate() {
                let i = i as u32;
                shard.register(obj, NodeId(i % 16), ObjectStatus::Complete, 1 << 20, &mut out);
                shard.query(obj, NodeId((i + 1) % 16), u64::from(i), vec![], &mut out);
                out.clear();
            }
            shard.len()
        })
    });
}

fn bench_inline_cache(c: &mut Criterion) {
    c.bench_function("directory_inline_put_and_query", |b| {
        b.iter(|| {
            let mut shard = DirectoryShard::new(0, HopliteConfig::paper_testbed());
            let mut out = Vec::new();
            for i in 0..500u32 {
                let obj = ObjectId::from_name(&format!("small-{i}"));
                shard.put_inline(obj, NodeId(0), Payload::zeros(512), &mut out);
                shard.query(obj, NodeId(1), u64::from(i), vec![], &mut out);
                out.clear();
            }
            shard.len()
        })
    });
}

fn bench_broadcast_chain_assignment(c: &mut Criterion) {
    // The hot path of receiver-driven broadcast: each new receiver queries while all
    // earlier receivers hold partial copies.
    c.bench_function("directory_broadcast_chain_64_receivers", |b| {
        b.iter(|| {
            let mut shard = DirectoryShard::new(0, HopliteConfig::paper_testbed());
            let mut out = Vec::new();
            let obj = ObjectId::from_name("bcast");
            shard.register(obj, NodeId(0), ObjectStatus::Complete, 1 << 30, &mut out);
            for r in 1..64u32 {
                shard.query(obj, NodeId(r), u64::from(r), vec![], &mut out);
                shard.register(obj, NodeId(r), ObjectStatus::Partial, 1 << 30, &mut out);
                out.clear();
            }
            shard.len()
        })
    });
}

criterion_group!(
    benches,
    bench_register_query,
    bench_inline_cache,
    bench_broadcast_chain_assignment
);
criterion_main!(benches);
