//! Criterion benches for the object directory shard: registration, query, and the
//! small-object inline fast path (§3.2, §5.1.1), plus the sized
//! `directory_register_then_query` family that tracks metadata-plane scaling from
//! 1k to 10M objects.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hoplite_core::buffer::Payload;
use hoplite_core::config::HopliteConfig;
use hoplite_core::directory::DirectoryShard;
use hoplite_core::object::{NodeId, ObjectId, ObjectStatus};

/// The two big rows (1M, 10M) take minutes of wall time and gigabytes of RSS, so
/// they only run when explicitly requested: `HOPLITE_BENCH_SCALE=1 cargo bench`.
fn scaled_rows_enabled() -> bool {
    std::env::var("HOPLITE_BENCH_SCALE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn bench_register_query_family(c: &mut Criterion) {
    // (objects, samples): fewer samples at the scales where one iteration is
    // already seconds of work.
    let mut sizes: Vec<(usize, usize)> = vec![(1_000, 10), (100_000, 5)];
    if scaled_rows_enabled() {
        sizes.push((1_000_000, 3));
        sizes.push((10_000_000, 2));
    }
    let mut group = c.benchmark_group("directory_register_then_query");
    for (n, samples) in sizes {
        // Id derivation is harness setup, not shard work; keep it out of the timed
        // loop (BENCH_NOTES flagged the per-iteration `from_name(format!)` as
        // polluting this measurement).
        let ids: Vec<ObjectId> =
            (0..n as u64).map(|i| ObjectId::from_name(&format!("obj-{i}"))).collect();
        // One register + one query per object → 2n directory ops per iteration.
        group.sample_size(samples).throughput(Throughput::Elements(2 * n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ids, |b, ids| {
            b.iter(|| {
                let mut shard = DirectoryShard::new(0, HopliteConfig::paper_testbed());
                let mut out = Vec::new();
                for (i, &obj) in ids.iter().enumerate() {
                    let i = i as u32;
                    shard.register(obj, NodeId(i % 16), ObjectStatus::Complete, 1 << 20, &mut out);
                    shard.query(obj, NodeId((i + 1) % 16), u64::from(i), vec![], &mut out);
                    out.clear();
                }
                shard.len()
            })
        });
    }
    group.finish();
}

fn bench_inline_cache(c: &mut Criterion) {
    let ids: Vec<ObjectId> =
        (0..500u32).map(|i| ObjectId::from_name(&format!("small-{i}"))).collect();
    c.bench_function("directory_inline_put_and_query", |b| {
        b.iter(|| {
            let mut shard = DirectoryShard::new(0, HopliteConfig::paper_testbed());
            let mut out = Vec::new();
            for (i, &obj) in ids.iter().enumerate() {
                shard.put_inline(obj, NodeId(0), Payload::zeros(512), &mut out);
                shard.query(obj, NodeId(1), i as u64, vec![], &mut out);
                out.clear();
            }
            shard.len()
        })
    });
}

fn bench_broadcast_chain_assignment(c: &mut Criterion) {
    // The hot path of receiver-driven broadcast: each new receiver queries while all
    // earlier receivers hold partial copies.
    c.bench_function("directory_broadcast_chain_64_receivers", |b| {
        b.iter(|| {
            let mut shard = DirectoryShard::new(0, HopliteConfig::paper_testbed());
            let mut out = Vec::new();
            let obj = ObjectId::from_name("bcast");
            shard.register(obj, NodeId(0), ObjectStatus::Complete, 1 << 30, &mut out);
            for r in 1..64u32 {
                shard.query(obj, NodeId(r), u64::from(r), vec![], &mut out);
                shard.register(obj, NodeId(r), ObjectStatus::Partial, 1 << 30, &mut out);
                out.clear();
            }
            shard.len()
        })
    });
}

criterion_group!(
    benches,
    bench_register_query_family,
    bench_inline_cache,
    bench_broadcast_chain_assignment
);
criterion_main!(benches);
