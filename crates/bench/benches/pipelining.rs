//! Criterion benches for the data-plane building blocks: streaming progress buffers,
//! block slicing, element-wise reduction, and wire framing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hoplite_core::buffer::{Payload, ProgressBuffer};
use hoplite_core::object::{NodeId, ObjectId};
use hoplite_core::reduce::ReduceSpec;
use hoplite_transport::framing::{
    decode_body, encode_body, encode_frame_vectored, read_frame, write_frame_vectored, Cork,
    FrameReader,
};

fn bench_progress_buffer(c: &mut Criterion) {
    let block = Payload::zeros(4 * 1024 * 1024);
    let total = 64 * 1024 * 1024u64;
    let mut group = c.benchmark_group("progress_buffer_append_64MB");
    group.throughput(Throughput::Bytes(total));
    group.bench_function("4MB_blocks", |b| {
        b.iter(|| {
            let mut buf = ProgressBuffer::new(total, false);
            let mut offset = 0;
            while offset < total {
                buf.append_at(offset, &block);
                offset += block.len();
            }
            buf.is_complete()
        })
    });
    // Appends are zero-copy segment adoptions; this variant also materializes the
    // complete payload, which pays the one remaining coalesce copy.
    group.bench_function("4MB_blocks_coalesced", |b| {
        b.iter(|| {
            let mut buf = ProgressBuffer::new(total, false);
            let mut offset = 0;
            while offset < total {
                buf.append_at(offset, &block);
                offset += block.len();
            }
            buf.to_payload().unwrap().len()
        })
    });
    group.finish();
}

/// The forward hop of a relay node, minus the network: append received blocks, read
/// every block back out (including reads that straddle the received segments), and
/// re-encode each as a scatter-gather frame. No coalesce anywhere — this is the path
/// the zero-copy send work opened up, and the copy-counter tests pin it at zero
/// payload memcpys.
fn bench_forward_path(c: &mut Criterion) {
    let block_len = 4 * 1024 * 1024u64;
    let total = 64 * 1024 * 1024u64;
    let block = Payload::zeros(block_len as usize);
    let object = ObjectId::from_name("fwd");
    let mut group = c.benchmark_group("forward_path_64MB");
    group.throughput(Throughput::Bytes(total));
    group.bench_function("append_read_reencode_no_coalesce", |b| {
        b.iter(|| {
            let mut buf = ProgressBuffer::new(total, false);
            let mut offset = 0;
            while offset < total {
                buf.append_at(offset, &block);
                offset += block_len;
            }
            // Forward at a half-block phase shift so every read spans two received
            // segments — the case the old path could only serve with a memcpy.
            let mut sent = 0u64;
            let mut offset = block_len / 2;
            while offset + block_len <= total {
                let payload = buf.read(offset, block_len).unwrap();
                let frame = encode_frame_vectored(&hoplite_core::protocol::Message::PushBlock {
                    object,
                    offset,
                    total_size: total,
                    payload,
                    complete: false,
                })
                .unwrap();
                sent += frame.frame_len() as u64;
                offset += block_len;
            }
            sent
        })
    });
    group.finish();
}

fn bench_reduce_combine(c: &mut Criterion) {
    let spec = ReduceSpec::sum_f32();
    let target = ObjectId::from_name("bench");
    let a = Payload::from_f32s(&vec![1.0f32; 1 << 20]);
    let b_payload = Payload::from_f32s(&vec![2.0f32; 1 << 20]);
    let mut group = c.benchmark_group("reduce_combine_f32");
    group.throughput(Throughput::Bytes((1 << 20) * 4));
    // Legacy allocate-per-combine path (kept for the trajectory).
    group.bench_function("4MB_block", |bench| {
        bench.iter(|| spec.combine(target, &a, &b_payload).unwrap())
    });
    // The streaming engines' path: fold into a reusable accumulator in place.
    group.bench_function("4MB_block_inplace", |bench| {
        let mut acc = a.to_owned_vec().unwrap();
        bench.iter(|| {
            spec.combine_into(target, &mut acc, &b_payload).unwrap();
            acc.len()
        })
    });
    group.finish();
}

fn bench_framing(c: &mut Criterion) {
    let msg = hoplite_core::protocol::Message::PushBlock {
        object: ObjectId::from_name("frame"),
        offset: 0,
        total_size: 4 * 1024 * 1024,
        payload: Payload::zeros(4 * 1024 * 1024),
        complete: false,
    };
    // Decode consumes a shared receive buffer, exactly as `read_frame` hands it over.
    let encoded = bytes::Bytes::from(encode_body(&msg).unwrap());
    let mut group = c.benchmark_group("framing_push_block_4MB");
    group.throughput(Throughput::Bytes(4 * 1024 * 1024));
    group.bench_function("encode", |b| b.iter(|| encode_body(&msg).unwrap()));
    // The send path: header-only work, the payload rides as a shared reference.
    group.bench_function("encode_vectored", |b| {
        b.iter(|| encode_frame_vectored(&msg).unwrap().frame_len())
    });
    group.bench_function("decode", |b| b.iter(|| decode_body(&encoded).unwrap()));

    // The receive path proper: a 64 MiB stream of 4 MiB PushBlock frames, consumed
    // (a) by the legacy `read_frame` (a fresh zeroed allocation per frame, then an
    // `Arc` conversion copy) and (b) by the pooled slab reader (frames decode as
    // views into a reused block-aligned slab; payloads are never copied).
    let mut stream = Vec::new();
    for i in 0..16u64 {
        write_frame_vectored(
            &mut stream,
            &hoplite_core::protocol::Message::PushBlock {
                object: ObjectId::from_name("frame"),
                offset: i * 4 * 1024 * 1024,
                total_size: 64 * 1024 * 1024,
                payload: Payload::zeros(4 * 1024 * 1024),
                complete: false,
            },
        )
        .unwrap();
    }
    group.throughput(Throughput::Bytes(stream.len() as u64));
    group.bench_function("read_frame_alloc", |b| {
        b.iter(|| {
            let mut cursor = std::io::Cursor::new(stream.as_slice());
            let mut frames = 0u64;
            while (cursor.position() as usize) < stream.len() {
                read_frame(&mut cursor).unwrap();
                frames += 1;
            }
            frames
        })
    });
    group.bench_function("read_frame_slab", |b| {
        b.iter(|| {
            let mut reader = FrameReader::new(std::io::Cursor::new(stream.as_slice()));
            let mut frames = 0u64;
            for _ in 0..16 {
                reader.read_message().unwrap();
                frames += 1;
            }
            frames
        })
    });

    // The component the pool removes, isolated: what `read_frame` pays per frame to
    // acquire a receive buffer (a fresh zeroed 4 MiB allocation plus the `Arc`
    // conversion copy) vs a warm slab checkout (a refcount scan and a pointer swap).
    // The full-stream rows above are bounded below by the one unavoidable copy out
    // of the source; this pair shows the allocation machinery itself.
    use hoplite_transport::framing::{RecvSlabPool, DEFAULT_RECV_SLAB};
    group.bench_function("recv_buffer_alloc_per_frame", |b| {
        b.iter(|| {
            let buf = vec![0u8; DEFAULT_RECV_SLAB];
            let arc: std::sync::Arc<[u8]> = std::sync::Arc::from(buf);
            arc.len()
        })
    });
    group.bench_function("recv_buffer_slab_checkout", |b| {
        let mut pool = RecvSlabPool::new(DEFAULT_RECV_SLAB);
        let warm = pool.checkout(DEFAULT_RECV_SLAB);
        pool.retain(warm);
        b.iter(|| {
            let slab = pool.checkout(DEFAULT_RECV_SLAB);
            let len = slab.len();
            pool.retain(slab);
            len
        })
    });
    group.finish();
}

/// A burst of small control frames (acks), written frame-by-frame vs corked into
/// batched vectored writes. On a real socket the win is syscall count (the TCP
/// fabric's writer thread corks opportunistically); this measures the framing-layer
/// overhead of both paths against a memory sink.
fn bench_control_burst(c: &mut Criterion) {
    const BURST: usize = 1024;
    let acks: Vec<hoplite_core::protocol::Message> = (0..BURST as u64)
        .map(|seq| hoplite_core::protocol::Message::DirAck { shard: 0, epoch: 1, seq })
        .collect();
    let mut group = c.benchmark_group("control_frame_burst");
    group.throughput(Throughput::Elements(BURST as u64));
    group.bench_function("uncorked", |b| {
        b.iter(|| {
            let mut sink = Vec::with_capacity(BURST * 32);
            for msg in &acks {
                write_frame_vectored(&mut sink, msg).unwrap();
            }
            sink.len()
        })
    });
    group.bench_function("corked", |b| {
        b.iter(|| {
            let mut sink = Vec::with_capacity(BURST * 32);
            let mut cork = Cork::new();
            for msg in &acks {
                cork.write(&mut sink, msg).unwrap();
            }
            cork.flush(&mut sink).unwrap();
            sink.len()
        })
    });
    group.finish();
}

/// Shard-primary replication egress at r = 3: the same registration stream applied
/// through `DirectoryService::handle_op` under star fan-out (two `DirReplicate`s per
/// op) and chain replication (one, to the chain head). NodeIds 0..2 form the chain.
fn bench_replication_fanout(c: &mut Criterion) {
    use hoplite_core::config::HopliteConfig;
    use hoplite_core::directory::DirectoryService;
    use hoplite_core::object::ObjectStatus;
    use hoplite_core::protocol::DirOp;

    const OPS: usize = 256;
    let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
    let base = HopliteConfig { directory_replication: 3, ..HopliteConfig::paper_testbed() };
    let probe = DirectoryService::new(NodeId(0), &base, &nodes);
    let objects: Vec<ObjectId> = (0u64..)
        .map(|k| ObjectId::from_name(&format!("fanout-{k}")))
        .filter(|&o| probe.placement().shard_of(o) == 0)
        .take(OPS)
        .collect();
    let mut group = c.benchmark_group("directory_replication_fanout");
    group.throughput(Throughput::Elements(OPS as u64));
    for (label, chain) in [("r3_star", false), ("r3_chain", true)] {
        let cfg = HopliteConfig { directory_chain_replication: chain, ..base.clone() };
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut svc = DirectoryService::new(NodeId(0), &cfg, &nodes);
                let mut out = Vec::new();
                for &o in &objects {
                    let op = DirOp::Register {
                        object: o,
                        holder: NodeId(1),
                        status: ObjectStatus::Complete,
                        size: 1 << 20,
                    };
                    svc.handle_op(op, &mut out);
                }
                let shipped = out.len();
                out.clear();
                shipped
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_progress_buffer,
    bench_forward_path,
    bench_reduce_combine,
    bench_framing,
    bench_control_burst,
    bench_replication_fanout
);
criterion_main!(benches);
