//! Criterion benches for the data-plane building blocks: streaming progress buffers,
//! block slicing, element-wise reduction, and wire framing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hoplite_core::buffer::{Payload, ProgressBuffer};
use hoplite_core::object::ObjectId;
use hoplite_core::reduce::ReduceSpec;
use hoplite_transport::framing::{decode_body, encode_body};

fn bench_progress_buffer(c: &mut Criterion) {
    let block = Payload::zeros(4 * 1024 * 1024);
    let total = 64 * 1024 * 1024u64;
    let mut group = c.benchmark_group("progress_buffer_append_64MB");
    group.throughput(Throughput::Bytes(total));
    group.bench_function("4MB_blocks", |b| {
        b.iter(|| {
            let mut buf = ProgressBuffer::new(total, false);
            let mut offset = 0;
            while offset < total {
                buf.append_at(offset, &block);
                offset += block.len();
            }
            buf.is_complete()
        })
    });
    // Appends are zero-copy segment adoptions; this variant also materializes the
    // complete payload, which pays the one remaining coalesce copy.
    group.bench_function("4MB_blocks_coalesced", |b| {
        b.iter(|| {
            let mut buf = ProgressBuffer::new(total, false);
            let mut offset = 0;
            while offset < total {
                buf.append_at(offset, &block);
                offset += block.len();
            }
            buf.to_payload().unwrap().len()
        })
    });
    group.finish();
}

fn bench_reduce_combine(c: &mut Criterion) {
    let spec = ReduceSpec::sum_f32();
    let target = ObjectId::from_name("bench");
    let a = Payload::from_f32s(&vec![1.0f32; 1 << 20]);
    let b_payload = Payload::from_f32s(&vec![2.0f32; 1 << 20]);
    let mut group = c.benchmark_group("reduce_combine_f32");
    group.throughput(Throughput::Bytes((1 << 20) * 4));
    group.bench_function("4MB_block", |bench| {
        bench.iter(|| spec.combine(target, &a, &b_payload).unwrap())
    });
    group.finish();
}

fn bench_framing(c: &mut Criterion) {
    let msg = hoplite_core::protocol::Message::PushBlock {
        object: ObjectId::from_name("frame"),
        offset: 0,
        total_size: 4 * 1024 * 1024,
        payload: Payload::zeros(4 * 1024 * 1024),
        complete: false,
    };
    // Decode consumes a shared receive buffer, exactly as `read_frame` hands it over.
    let encoded = bytes::Bytes::from(encode_body(&msg).unwrap());
    let mut group = c.benchmark_group("framing_push_block_4MB");
    group.throughput(Throughput::Bytes(4 * 1024 * 1024));
    group.bench_function("encode", |b| b.iter(|| encode_body(&msg).unwrap()));
    group.bench_function("decode", |b| b.iter(|| decode_body(&encoded).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_progress_buffer, bench_reduce_combine, bench_framing);
criterion_main!(benches);
