//! Criterion benches for the data-plane building blocks: streaming progress buffers,
//! block slicing, element-wise reduction, and wire framing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hoplite_core::buffer::{Payload, ProgressBuffer};
use hoplite_core::object::ObjectId;
use hoplite_core::reduce::ReduceSpec;
use hoplite_transport::framing::{decode_body, encode_body, encode_frame_vectored};

fn bench_progress_buffer(c: &mut Criterion) {
    let block = Payload::zeros(4 * 1024 * 1024);
    let total = 64 * 1024 * 1024u64;
    let mut group = c.benchmark_group("progress_buffer_append_64MB");
    group.throughput(Throughput::Bytes(total));
    group.bench_function("4MB_blocks", |b| {
        b.iter(|| {
            let mut buf = ProgressBuffer::new(total, false);
            let mut offset = 0;
            while offset < total {
                buf.append_at(offset, &block);
                offset += block.len();
            }
            buf.is_complete()
        })
    });
    // Appends are zero-copy segment adoptions; this variant also materializes the
    // complete payload, which pays the one remaining coalesce copy.
    group.bench_function("4MB_blocks_coalesced", |b| {
        b.iter(|| {
            let mut buf = ProgressBuffer::new(total, false);
            let mut offset = 0;
            while offset < total {
                buf.append_at(offset, &block);
                offset += block.len();
            }
            buf.to_payload().unwrap().len()
        })
    });
    group.finish();
}

/// The forward hop of a relay node, minus the network: append received blocks, read
/// every block back out (including reads that straddle the received segments), and
/// re-encode each as a scatter-gather frame. No coalesce anywhere — this is the path
/// the zero-copy send work opened up, and the copy-counter tests pin it at zero
/// payload memcpys.
fn bench_forward_path(c: &mut Criterion) {
    let block_len = 4 * 1024 * 1024u64;
    let total = 64 * 1024 * 1024u64;
    let block = Payload::zeros(block_len as usize);
    let object = ObjectId::from_name("fwd");
    let mut group = c.benchmark_group("forward_path_64MB");
    group.throughput(Throughput::Bytes(total));
    group.bench_function("append_read_reencode_no_coalesce", |b| {
        b.iter(|| {
            let mut buf = ProgressBuffer::new(total, false);
            let mut offset = 0;
            while offset < total {
                buf.append_at(offset, &block);
                offset += block_len;
            }
            // Forward at a half-block phase shift so every read spans two received
            // segments — the case the old path could only serve with a memcpy.
            let mut sent = 0u64;
            let mut offset = block_len / 2;
            while offset + block_len <= total {
                let payload = buf.read(offset, block_len).unwrap();
                let frame = encode_frame_vectored(&hoplite_core::protocol::Message::PushBlock {
                    object,
                    offset,
                    total_size: total,
                    payload,
                    complete: false,
                })
                .unwrap();
                sent += frame.frame_len() as u64;
                offset += block_len;
            }
            sent
        })
    });
    group.finish();
}

fn bench_reduce_combine(c: &mut Criterion) {
    let spec = ReduceSpec::sum_f32();
    let target = ObjectId::from_name("bench");
    let a = Payload::from_f32s(&vec![1.0f32; 1 << 20]);
    let b_payload = Payload::from_f32s(&vec![2.0f32; 1 << 20]);
    let mut group = c.benchmark_group("reduce_combine_f32");
    group.throughput(Throughput::Bytes((1 << 20) * 4));
    // Legacy allocate-per-combine path (kept for the trajectory).
    group.bench_function("4MB_block", |bench| {
        bench.iter(|| spec.combine(target, &a, &b_payload).unwrap())
    });
    // The streaming engines' path: fold into a reusable accumulator in place.
    group.bench_function("4MB_block_inplace", |bench| {
        let mut acc = a.to_owned_vec().unwrap();
        bench.iter(|| {
            spec.combine_into(target, &mut acc, &b_payload).unwrap();
            acc.len()
        })
    });
    group.finish();
}

fn bench_framing(c: &mut Criterion) {
    let msg = hoplite_core::protocol::Message::PushBlock {
        object: ObjectId::from_name("frame"),
        offset: 0,
        total_size: 4 * 1024 * 1024,
        payload: Payload::zeros(4 * 1024 * 1024),
        complete: false,
    };
    // Decode consumes a shared receive buffer, exactly as `read_frame` hands it over.
    let encoded = bytes::Bytes::from(encode_body(&msg).unwrap());
    let mut group = c.benchmark_group("framing_push_block_4MB");
    group.throughput(Throughput::Bytes(4 * 1024 * 1024));
    group.bench_function("encode", |b| b.iter(|| encode_body(&msg).unwrap()));
    // The send path: header-only work, the payload rides as a shared reference.
    group.bench_function("encode_vectored", |b| {
        b.iter(|| encode_frame_vectored(&msg).unwrap().frame_len())
    });
    group.bench_function("decode", |b| b.iter(|| decode_body(&encoded).unwrap()));
    group.finish();
}

criterion_group!(
    benches,
    bench_progress_buffer,
    bench_forward_path,
    bench_reduce_combine,
    bench_framing
);
criterion_main!(benches);
