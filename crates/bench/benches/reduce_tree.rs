//! Criterion benches for the dynamic reduce tree: shape construction, in-order
//! assignment, and failure repair (the data structures behind Figure 15).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hoplite_core::object::{NodeId, ObjectId};
use hoplite_core::reduce::{DegreeModel, ReduceInput, ReduceTreePlan, TreeShape};

fn bench_shape(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_shape_build");
    for n in [16usize, 256, 4096] {
        for d in [1usize, 2, 8] {
            group.bench_with_input(BenchmarkId::new(format!("d{d}"), n), &(n, d), |b, &(n, d)| {
                b.iter(|| TreeShape::new(n, d))
            });
        }
    }
    group.finish();
}

/// Precomputed inputs: id derivation (`ObjectId::from_name` over a formatted string)
/// is bench-harness work, not assignment work, so it stays out of the timed loops —
/// BENCH_NOTES flagged it as a large share of the measured time.
fn inputs(n: usize) -> Vec<ReduceInput> {
    (0..n)
        .map(|i| ReduceInput {
            object: ObjectId::from_name(&format!("o{i}")),
            node: NodeId(i as u32),
        })
        .collect()
}

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_assignment");
    for n in [64usize, 1024] {
        let offers = inputs(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut plan = ReduceTreePlan::new(n, 2);
                for &input in &offers {
                    plan.offer_input(input);
                }
                plan
            })
        });
    }
    group.finish();
}

fn bench_failure_repair(c: &mut Criterion) {
    let offers = inputs(1026);
    c.bench_function("tree_failure_repair_1024", |b| {
        b.iter(|| {
            let mut plan = ReduceTreePlan::new(1024, 2);
            for &input in &offers {
                plan.offer_input(input);
            }
            for failed in [3u32, 511, 900] {
                plan.on_node_failed(NodeId(failed));
            }
            plan
        })
    });
}

fn bench_degree_model(c: &mut Criterion) {
    let model = DegreeModel::paper_testbed();
    c.bench_function("degree_model_choose", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for n in 2..64usize {
                for size in [1024u64, 1 << 20, 1 << 25] {
                    acc += model.choose(&[1, 2, 0], n, size);
                }
            }
            acc
        })
    });
}

criterion_group!(benches, bench_shape, bench_assignment, bench_failure_repair, bench_degree_model);
criterion_main!(benches);
