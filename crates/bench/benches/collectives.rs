//! Criterion benches for the simulated collective scenarios (the machinery behind
//! Figures 7, 8, 14): wall-clock cost of simulating each collective, and a regression
//! guard on the protocol's message complexity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hoplite_cluster::scenarios::{self, ScenarioEnv};

const MB: u64 = 1024 * 1024;

fn bench_broadcast(c: &mut Criterion) {
    let env = ScenarioEnv::paper_testbed();
    let mut group = c.benchmark_group("simulated_broadcast_32MB");
    group.sample_size(10);
    for nodes in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| scenarios::broadcast_latency(&env, n, 32 * MB, 0.0))
        });
    }
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let env = ScenarioEnv::paper_testbed();
    let mut group = c.benchmark_group("simulated_reduce_32MB");
    group.sample_size(10);
    for nodes in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| scenarios::reduce_latency(&env, n, 32 * MB, None, 0.0))
        });
    }
    group.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let env = ScenarioEnv::paper_testbed();
    let mut group = c.benchmark_group("simulated_allreduce_32MB");
    group.sample_size(10);
    for nodes in [8usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| scenarios::allreduce_latency(&env, n, 32 * MB, 0.0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_broadcast, bench_reduce, bench_allreduce);
criterion_main!(benches);
