//! # hoplite-baselines
//!
//! The comparator systems of the Hoplite paper's evaluation — OpenMPI, Gloo, Ray's
//! object store, and Dask — re-created as cost models of their *documented* collective
//! algorithms, evaluated on exactly the same network parameters (per-NIC bandwidth `B`,
//! one-way latency `L`, worker↔store memcpy bandwidth) as the simulated Hoplite
//! deployment in `hoplite-cluster`.
//!
//! Hoplite itself is simulated at full protocol granularity (every block, every
//! directory RPC); the baselines use closed-form models because their data-transfer
//! schedules are static and well understood:
//!
//! | System | Broadcast | Gather | Reduce | AllReduce |
//! |---|---|---|---|---|
//! | OpenMPI-like | pipelined binomial tree | linear gather | pipelined binomial tree | tuned: reduce+bcast for small, ring for large |
//! | Gloo-like | unoptimized (sender fan-out) | — | — | ring-chunked & halving-doubling |
//! | Ray-like | sender fan-out through the object store (two extra copies, no pipelining) | all-to-root | fetch-all-then-add at the caller | reduce + broadcast, both naive |
//! | Dask-like | Ray-like plus a central-scheduler hop per transfer | same | same | same |
//! | Optimal | `S/B` | `(n-1)·S/B` | `(n-1)·S/B` at the root's downlink | `2·(n-1)/n·S/B` |
//!
//! The synchronous-semantics difference that Figure 8 highlights is also modelled:
//! MPI/Gloo reduce and allreduce cannot start before the *last* participant arrives,
//! whereas the naive object-store baselines and Hoplite make progress with whatever has
//! already arrived.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod model;
pub mod systems;

pub use model::NetworkModel;
pub use systems::{Baseline, CollectiveKind};
