//! Cost models of the comparator systems (OpenMPI, Gloo, Ray, Dask, and the
//! theoretical optimum).
//!
//! Notation: `n` participants, object size `S` bytes, NIC bandwidth `B`, one-way
//! latency `L`, worker↔store memcpy bandwidth `M`, object (de)serialization bandwidth
//! `P` (Ray and Dask move Python-serialized objects; MPI/Gloo/Hoplite move raw
//! buffers).

use crate::model::NetworkModel;

/// Which collective is being modelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// One sender, `n - 1` receivers.
    Broadcast,
    /// `n - 1` senders, one receiver, no combination.
    Gather,
    /// `n` inputs combined into one output at a single node.
    Reduce,
    /// `n` inputs combined and the result available on every node.
    AllReduce,
}

/// A comparator system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// OpenMPI-like: static, tuned collective schedules (binomial / ring), raw buffers.
    MpiLike,
    /// Gloo broadcast path (no broadcast optimization, sender fan-out).
    GlooBroadcast,
    /// Gloo ring-chunked allreduce.
    GlooRingChunked,
    /// Gloo halving-doubling allreduce.
    GlooHalvingDoubling,
    /// Ray's object store: per-receiver fan-out, two extra memcpys, serialization, no
    /// pipelining, no collectives.
    RayLike,
    /// Dask: like Ray but every transfer is brokered by the central scheduler.
    DaskLike,
    /// Information-theoretic lower bound on the same network.
    Optimal,
}

/// Extra serialization bandwidth applied to Ray/Dask object movement (cloudpickle et
/// al.), bytes per second.
const SERIALIZATION_BANDWIDTH: f64 = 1.0e9;

impl Baseline {
    /// Human-readable label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Baseline::MpiLike => "OpenMPI-like",
            Baseline::GlooBroadcast => "Gloo (Broadcast)",
            Baseline::GlooRingChunked => "Gloo (Ring Chunked)",
            Baseline::GlooHalvingDoubling => "Gloo (Halving Doubling)",
            Baseline::RayLike => "Ray-like",
            Baseline::DaskLike => "Dask-like",
            Baseline::Optimal => "Optimal",
        }
    }

    /// Every baseline that appears in the paper's collective-latency figures.
    pub fn all() -> Vec<Baseline> {
        vec![
            Baseline::MpiLike,
            Baseline::GlooBroadcast,
            Baseline::GlooRingChunked,
            Baseline::GlooHalvingDoubling,
            Baseline::RayLike,
            Baseline::DaskLike,
            Baseline::Optimal,
        ]
    }

    /// Round-trip time of a point-to-point exchange of `size`-byte objects (Figure 6).
    pub fn p2p_rtt(&self, m: &NetworkModel, size: u64) -> f64 {
        let wire = m.wire(size);
        match self {
            Baseline::Optimal => 2.0 * wire,
            Baseline::MpiLike
            | Baseline::GlooBroadcast
            | Baseline::GlooRingChunked
            | Baseline::GlooHalvingDoubling => 2.0 * (wire + m.latency),
            Baseline::RayLike => 2.0 * self.store_transfer(m, size),
            Baseline::DaskLike => 2.0 * self.store_transfer(m, size),
        }
    }

    /// One unpipelined transfer through an object store: serialize, copy into the
    /// store, cross the wire (twice for Dask, via the scheduler), copy out, pay the
    /// object-directory / scheduler control latency.
    fn store_transfer(&self, m: &NetworkModel, size: u64) -> f64 {
        let ser = size as f64 / SERIALIZATION_BANDWIDTH;
        let copies = 2.0 * m.copy(size);
        let control = 4.0 * m.latency;
        match self {
            Baseline::DaskLike => {
                ser + copies + 2.0 * m.wire(size) + control + m.scheduler_overhead
            }
            _ => ser + copies + m.wire(size) + control,
        }
    }

    /// Latency of a collective over `n` participants with `size`-byte objects, all
    /// inputs ready at time zero (Figures 7 and 14).
    pub fn collective(&self, m: &NetworkModel, kind: CollectiveKind, n: usize, size: u64) -> f64 {
        let n = n.max(2);
        let s = size as f64;
        let wire = m.wire(size);
        let depth = f64::from(NetworkModel::log2_ceil(n));
        let block = (4u64 << 20).min(size.max(1));
        let block_wire = m.wire(block);
        match (self, kind) {
            // ------------------------------------------------------------- optimal --
            (Baseline::Optimal, CollectiveKind::Broadcast) => wire,
            (Baseline::Optimal, CollectiveKind::Gather) => (n as f64 - 1.0) * wire,
            (Baseline::Optimal, CollectiveKind::Reduce) => wire,
            (Baseline::Optimal, CollectiveKind::AllReduce) => {
                2.0 * (n as f64 - 1.0) / n as f64 * wire
            }
            // ----------------------------------------------------------------- MPI --
            (Baseline::MpiLike, CollectiveKind::Broadcast) => {
                // Pipelined binomial tree: latency per level plus one object time plus
                // one block per extra level of depth.
                depth * m.latency + wire + depth * block_wire
            }
            (Baseline::MpiLike, CollectiveKind::Gather) => m.latency + (n as f64 - 1.0) * wire,
            (Baseline::MpiLike, CollectiveKind::Reduce) => {
                // Pipelined binary-tree reduce: every interior node receives two child
                // streams through one downlink.
                depth * m.latency + 2.0 * wire + depth * block_wire
            }
            (Baseline::MpiLike, CollectiveKind::AllReduce) => {
                // OpenMPI switches algorithms with size/node count; take the better of
                // reduce+broadcast and ring (which is why its latency is not monotonic
                // in the paper's Figure 7).
                let tree = self.collective(m, CollectiveKind::Reduce, n, size)
                    + self.collective(m, CollectiveKind::Broadcast, n, size);
                let ring =
                    2.0 * (n as f64 - 1.0) / n as f64 * wire + 2.0 * (n as f64 - 1.0) * m.latency;
                tree.min(ring)
            }
            // ---------------------------------------------------------------- Gloo --
            (Baseline::GlooBroadcast, CollectiveKind::Broadcast) => {
                m.latency + (n as f64 - 1.0) * wire
            }
            (Baseline::GlooRingChunked, CollectiveKind::AllReduce) => {
                2.0 * (n as f64 - 1.0) / n as f64 * wire + 2.0 * (n as f64 - 1.0) * m.latency
            }
            (Baseline::GlooHalvingDoubling, CollectiveKind::AllReduce) => {
                // Fewer latency terms than the ring, but the recursive halves touch
                // non-contiguous buffers, which costs it ~15% of effective bandwidth —
                // that is why ring-chunked wins for large objects in the paper.
                2.0 * (n as f64 - 1.0) / n as f64 * wire * 1.15 + 2.0 * depth * m.latency
            }
            // Gloo implements only broadcast and allreduce (§5.1.2); other collectives
            // fall back to the naive pattern.
            (Baseline::GlooBroadcast, k)
            | (Baseline::GlooRingChunked, k)
            | (Baseline::GlooHalvingDoubling, k) => Baseline::RayLike.collective(m, k, n, size),
            // ------------------------------------------------------------ Ray-like --
            (Baseline::RayLike, CollectiveKind::Broadcast) => {
                // The owner serializes once, then pushes a full copy to every receiver
                // through its single uplink; each receiver copies out of its store.
                s / SERIALIZATION_BANDWIDTH
                    + m.copy(size)
                    + (n as f64 - 1.0) * wire
                    + m.copy(size)
                    + 2.0 * m.latency
            }
            (Baseline::RayLike, CollectiveKind::Gather)
            | (Baseline::RayLike, CollectiveKind::Reduce) => {
                // Every remote object crosses the caller's downlink; the caller
                // deserializes and (for reduce) adds them one by one.
                s / SERIALIZATION_BANDWIDTH
                    + (n as f64 - 1.0) * (wire + s / SERIALIZATION_BANDWIDTH / (n as f64 - 1.0))
                    + 2.0 * m.copy(size)
                    + 2.0 * m.latency
            }
            (Baseline::RayLike, CollectiveKind::AllReduce) => {
                self.collective(m, CollectiveKind::Reduce, n, size)
                    + self.collective(m, CollectiveKind::Broadcast, n, size)
            }
            // ----------------------------------------------------------- Dask-like --
            (Baseline::DaskLike, kind) => {
                // Every transfer is brokered by the centralized scheduler and relayed
                // through it, so the scheduler's NIC carries every byte twice.
                let ray = Baseline::RayLike.collective(m, kind, n, size);
                let relayed_bytes = match kind {
                    CollectiveKind::Broadcast | CollectiveKind::Gather | CollectiveKind::Reduce => {
                        (n as f64 - 1.0) * s
                    }
                    CollectiveKind::AllReduce => 2.0 * (n as f64 - 1.0) * s,
                };
                ray + relayed_bytes / m.bandwidth + (n as f64 - 1.0) * m.scheduler_overhead
            }
        }
    }

    /// Latency of a collective when participant `i` arrives at `i · interval_s`
    /// (Figure 8). Measured from the first arrival, like the Hoplite scenarios.
    pub fn collective_staggered(
        &self,
        m: &NetworkModel,
        kind: CollectiveKind,
        n: usize,
        size: u64,
        interval_s: f64,
    ) -> f64 {
        let base = self.collective(m, kind, n, size);
        if interval_s <= 0.0 {
            return base;
        }
        let last_arrival = (n.max(1) as f64 - 1.0) * interval_s;
        match (self, kind) {
            // Static-schedule systems cannot finish a reduce/allreduce before the last
            // participant shows up, and then still pay the full collective.
            (
                Baseline::MpiLike
                | Baseline::GlooRingChunked
                | Baseline::GlooHalvingDoubling
                | Baseline::GlooBroadcast,
                CollectiveKind::Reduce | CollectiveKind::AllReduce,
            ) => last_arrival + base,
            // MPI broadcast makes partial progress when arrivals happen to follow rank
            // order (§7 "Asynchronous MPI"): earlier ranks are already serving their
            // subtrees, so only the last arrival's own transfer remains.
            (Baseline::MpiLike, CollectiveKind::Broadcast) => {
                base.max(last_arrival + m.wire(size) + m.latency)
            }
            // Naive object stores serve receivers as they arrive; the sender's uplink
            // may or may not still be the bottleneck.
            (Baseline::RayLike | Baseline::DaskLike | Baseline::GlooBroadcast, _) => {
                base.max(last_arrival + Baseline::RayLike.store_transfer(m, size))
            }
            (Baseline::Optimal, _) => base.max(last_arrival + m.wire(size)),
            _ => last_arrival + base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;
    const GB: u64 = 1024 * 1024 * 1024;

    fn m() -> NetworkModel {
        NetworkModel::paper_testbed()
    }

    #[test]
    fn figure6_shape_rtt_ordering() {
        // OpenMPI < Ray < Dask for every size; optimal is the floor.
        for size in [1024u64, MB, GB] {
            let mpi = Baseline::MpiLike.p2p_rtt(&m(), size);
            let ray = Baseline::RayLike.p2p_rtt(&m(), size);
            let dask = Baseline::DaskLike.p2p_rtt(&m(), size);
            let opt = Baseline::Optimal.p2p_rtt(&m(), size);
            assert!(opt <= mpi && mpi < ray && ray < dask, "size {size}");
        }
        // At 1 GB the gap between MPI and optimal is small (bandwidth dominates).
        let mpi = Baseline::MpiLike.p2p_rtt(&m(), GB);
        let opt = Baseline::Optimal.p2p_rtt(&m(), GB);
        assert!(mpi / opt < 1.05);
    }

    #[test]
    fn figure7_shape_broadcast() {
        // MPI's tree broadcast beats the sender fan-out of Ray/Dask/Gloo at 16 nodes.
        let n = 16;
        let mpi = Baseline::MpiLike.collective(&m(), CollectiveKind::Broadcast, n, GB);
        let ray = Baseline::RayLike.collective(&m(), CollectiveKind::Broadcast, n, GB);
        let gloo = Baseline::GlooBroadcast.collective(&m(), CollectiveKind::Broadcast, n, GB);
        let dask = Baseline::DaskLike.collective(&m(), CollectiveKind::Broadcast, n, GB);
        assert!(mpi < ray / 4.0);
        assert!(ray < dask);
        assert!(gloo > mpi, "Gloo does not optimize broadcast");
    }

    #[test]
    fn figure7_shape_allreduce() {
        // Gloo's ring-chunked allreduce is the fastest allreduce for large objects.
        let n = 16;
        let ring = Baseline::GlooRingChunked.collective(&m(), CollectiveKind::AllReduce, n, GB);
        let hd = Baseline::GlooHalvingDoubling.collective(&m(), CollectiveKind::AllReduce, n, GB);
        let mpi = Baseline::MpiLike.collective(&m(), CollectiveKind::AllReduce, n, GB);
        let ray = Baseline::RayLike.collective(&m(), CollectiveKind::AllReduce, n, GB);
        assert!(ring <= hd);
        assert!(ring <= mpi * 1.05);
        assert!(ray > 3.0 * ring);
    }

    #[test]
    fn figure8_shape_staggered_reduce() {
        // With a 0.3 s arrival interval over 16 nodes, MPI cannot go below 4.5 s while
        // the theoretical lower bound barely moves.
        let n = 16;
        let interval = 0.3;
        let mpi =
            Baseline::MpiLike.collective_staggered(&m(), CollectiveKind::Reduce, n, GB, interval);
        assert!(mpi > (n as f64 - 1.0) * interval);
        let opt =
            Baseline::Optimal.collective_staggered(&m(), CollectiveKind::Reduce, n, GB, interval);
        assert!(opt < mpi);
    }

    #[test]
    fn gather_scales_linearly_for_everyone() {
        let n8 = Baseline::MpiLike.collective(&m(), CollectiveKind::Gather, 8, 32 * MB);
        let n16 = Baseline::MpiLike.collective(&m(), CollectiveKind::Gather, 16, 32 * MB);
        assert!(n16 > 1.8 * n8 && n16 < 2.4 * n8);
    }

    #[test]
    fn labels_are_unique() {
        let labels: Vec<&str> = Baseline::all().iter().map(|b| b.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }
}
