//! Shared network parameters for baseline cost models.

use hoplite_simnet::prelude::*;

/// The network parameters every baseline is evaluated against. Constructed from the
/// same [`NetworkConfig`] the simulated Hoplite cluster uses, so the comparison is
/// apples-to-apples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// Per-NIC bandwidth in bytes/second (full duplex).
    pub bandwidth: f64,
    /// One-way latency in seconds.
    pub latency: f64,
    /// Worker ↔ object-store memcpy bandwidth in bytes/second (the extra copies that
    /// Ray/Dask pay on both sides of every transfer; Hoplite pays them too but hides
    /// them with pipelining, §3.3).
    pub memcpy_bandwidth: f64,
    /// Fixed per-transfer control overhead of a centralized scheduler (Dask), seconds.
    pub scheduler_overhead: f64,
}

impl NetworkModel {
    /// Derive the model from a simulator network configuration.
    pub fn from_network(net: &NetworkConfig) -> Self {
        NetworkModel {
            bandwidth: net.bandwidth,
            latency: net.latency.as_secs_f64(),
            memcpy_bandwidth: 5.0e9,
            scheduler_overhead: 2e-3,
        }
    }

    /// The paper's testbed (10 Gbps, ~85 µs one-way latency).
    pub fn paper_testbed() -> Self {
        NetworkModel::from_network(&NetworkConfig::paper_testbed())
    }

    /// Seconds to move `bytes` across one NIC direction.
    pub fn wire(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth
    }

    /// Seconds to memcpy `bytes` between a worker and its local store.
    pub fn copy(&self, bytes: u64) -> f64 {
        bytes as f64 / self.memcpy_bandwidth
    }

    /// Ceil of log2 for tree-depth computations.
    pub fn log2_ceil(n: usize) -> u32 {
        if n <= 1 {
            0
        } else {
            usize::BITS - (n - 1).leading_zeros()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_and_copy_scale_linearly() {
        let m = NetworkModel::paper_testbed();
        assert!((m.wire(1_250_000_000) - 1.0).abs() < 1e-9);
        assert!(m.copy(1 << 30) < m.wire(1 << 30), "memcpy is faster than the wire");
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(NetworkModel::log2_ceil(1), 0);
        assert_eq!(NetworkModel::log2_ceil(2), 1);
        assert_eq!(NetworkModel::log2_ceil(3), 2);
        assert_eq!(NetworkModel::log2_ceil(16), 4);
        assert_eq!(NetworkModel::log2_ceil(17), 5);
    }
}
