//! Minimal offline stand-in for `criterion`.
//!
//! Implements the macro/API surface the workspace's benches use:
//! `criterion_group!` / `criterion_main!`, [`Criterion::bench_function`], benchmark
//! groups with `sample_size` / `throughput` / `bench_with_input`, and
//! [`Bencher::iter`]. Each benchmark runs a short warm-up followed by `sample_size`
//! timed samples and prints the mean, min, and max wall time per iteration (plus
//! throughput when configured) in a stable one-line format that `BENCH_NOTES.md`
//! snapshots can diff against.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Sample-count override for smoke runs: `HOPLITE_BENCH_SAMPLES=1 cargo bench` runs
/// every benchmark once (CI uses this to catch bench-breaking regressions cheaply
/// without paying for statistically meaningful timings).
fn sample_override() -> Option<usize> {
    std::env::var("HOPLITE_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|n: usize| n.max(1))
}

/// Top-level benchmark driver, passed by `criterion_group!` into each bench function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: sample_override().unwrap_or(10) }
    }
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.default_sample_size);
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _criterion: self, name: name.to_string(), sample_size, throughput: None }
    }
}

/// Throughput annotation used to derive bytes/second rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// Identifier for one parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function>/<parameter>` form.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (the `HOPLITE_BENCH_SAMPLES` smoke
    /// override wins over per-group settings).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = sample_override().unwrap_or_else(|| n.max(1));
        self
    }

    /// Attach a throughput annotation to subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name), self.throughput);
        self
    }

    /// Run a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// End the group (accepted for API compatibility; reporting is per-benchmark).
    pub fn finish(&mut self) {}
}

/// Handle through which a benchmark body times its workload.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher { sample_size, samples: Vec::new() }
    }

    /// Time `routine`: a short warm-up, then `sample_size` timed iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: at least one run, more for very fast routines.
        let warmup_start = Instant::now();
        black_box(routine());
        let first = warmup_start.elapsed();
        if first < Duration::from_millis(1) {
            for _ in 0..10 {
                black_box(routine());
            }
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            // Fast routines are batched so timer resolution does not dominate.
            let batch = if first < Duration::from_micros(50) { 100u32 } else { 1 };
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        let rate = match throughput {
            Some(Throughput::Bytes(bytes)) if mean > Duration::ZERO => {
                let gib = bytes as f64 / mean.as_secs_f64() / (1024.0 * 1024.0 * 1024.0);
                format!("  thrpt: {gib:8.3} GiB/s")
            }
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                let meps = n as f64 / mean.as_secs_f64() / 1e6;
                format!("  thrpt: {meps:8.3} Melem/s")
            }
            _ => String::new(),
        };
        println!(
            "{name:<50} time: [{} {} {}]{rate}",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} us", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main()` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; they are irrelevant here.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Bytes(8));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| b.iter(|| n * 2));
        g.finish();
    }
}
