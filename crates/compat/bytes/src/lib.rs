//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply cloneable, sliceable byte buffer backed by
//! an `Arc<[u8]>`. Clones and slices share the same allocation; only construction from
//! owned or borrowed data copies.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer (a view into a shared allocation).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]), start: 0, end: 0 }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// A static slice (copied; the real crate borrows, but callers only read).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view. Panics when the range is out of bounds, matching the real
    /// crate's behaviour.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice {begin}..{end} out of bounds of {len}");
        Bytes { data: self.data.clone(), start: self.start + begin, end: self.start + end }
    }

    /// The bytes of this view.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the view into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A view over a caller-retained shared allocation (no copy). This is the hook
    /// slab pools use: the pool keeps its own `Arc` handle to the slab, mints frame
    /// views with this constructor, and reclaims the slab for rewriting once every
    /// view has dropped (`Arc::get_mut` on the retained handle succeeds again).
    /// Panics when the range is out of bounds.
    pub fn from_arc(data: Arc<[u8]>, start: usize, end: usize) -> Bytes {
        assert!(start <= end && end <= data.len(), "view {start}..{end} out of bounds");
        Bytes { data, start, end }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Arc::from(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(s2.as_slice(), &[3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn equality_and_deref() {
        let b = Bytes::copy_from_slice(&[9, 8]);
        assert_eq!(b, Bytes::from(vec![9, 8]));
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![9, 8]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![1]).slice(0..2);
    }
}
