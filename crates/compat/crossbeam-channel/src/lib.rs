//! Minimal offline stand-in for `crossbeam-channel`.
//!
//! Implements unbounded multi-producer multi-consumer channels on top of
//! `Mutex` + `Condvar`, with the operations this workspace uses: `send`, `recv`,
//! `try_recv`, `recv_timeout`, clonable senders *and* receivers, and disconnect
//! detection in both directions. `select!` is intentionally not provided; the event
//! loops in this workspace multiplex by merging sources into one channel instead.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// The sending half of a channel. Cloning produces another producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloning produces another consumer.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when every receiver is gone; carries the value.
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and every sender is
/// gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Create an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

/// Create a "bounded" channel. The stand-in does not implement backpressure; it is an
/// unbounded channel with the bounded constructor's signature.
pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
    unbounded()
}

impl<T> Sender<T> {
    /// Enqueue a message; fails (returning the value) when every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(value);
        drop(queue);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake blocked receivers so they observe the disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeue a message, blocking until one arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self.shared.ready.wait(queue).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeue a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(value) = queue.pop_front() {
            return Ok(value);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Dequeue a message, blocking for at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .shared
                .ready
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            queue = guard;
        }
    }

    /// A blocking iterator that ends when every sender is gone.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver { shared: self.shared.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver")
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn mpmc_roundtrip() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx2.recv().unwrap()];
        got.sort();
        assert_eq!(got, vec![1, 2]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_detection() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(7u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
        handle.join().unwrap();
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let handle = thread::spawn(move || rx.recv().unwrap());
        thread::sleep(Duration::from_millis(10));
        tx.send(42u64).unwrap();
        assert_eq!(handle.join().unwrap(), 42);
    }
}
