//! Minimal offline stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync::{Mutex, RwLock}` with `parking_lot`'s API shape:
//! `lock()` / `read()` / `write()` return guards directly (poisoning is swallowed, which
//! matches `parking_lot`'s no-poisoning semantics closely enough for this workspace).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Mutex(..)")
    }
}

/// A reader-writer lock whose `read()`/`write()` never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
