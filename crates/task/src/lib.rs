//! # hoplite-task
//!
//! A miniature task-based distributed framework ("mini-Ray") layered on a real
//! [`hoplite_cluster::LocalCluster`]. It provides the substrate the paper assumes from
//! Ray (§2.1):
//!
//! * **dynamic tasks** — closures registered by name and invoked at runtime, returning
//!   an [`ObjectRef`] *future* immediately;
//! * **object futures** — task arguments may be `ObjectRef`s of results that do not
//!   exist yet; the worker blocks on the Hoplite object store until they do;
//! * **a scheduler** — tasks are placed round-robin across nodes (the paper's point is
//!   that placement is *not* known in advance, which is exactly what defeats static
//!   collective schedules);
//! * **lineage-based reconstruction** — every task's specification is recorded, so a
//!   lost object can be recomputed after a worker failure, letting the failed
//!   participant rejoin an ongoing collective (§3.5).
//!
//! Objects put through this layer live in the Hoplite object store, so collective
//! communication (broadcast via `get`, `reduce` via [`TaskSystem::reduce`]) is
//! available to tasks with no extra plumbing.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod system;

pub use system::{ObjectRef, TaskError, TaskSystem};
