//! The task system: registry, scheduler, worker pool, and lineage.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use crossbeam_channel::{unbounded, Receiver, Sender};
use hoplite_cluster::{HopliteClient, LocalCluster};
use hoplite_core::prelude::*;
use parking_lot::{Mutex, RwLock};
// The core prelude exports a single-parameter `Result` alias; this module uses the
// standard two-parameter form with its own error type.
use std::result::Result;

/// A future: a reference to the (eventual) output object of a task or a `put`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjectRef {
    id: ObjectId,
}

impl ObjectRef {
    /// The underlying Hoplite object id (usable directly with the Hoplite API, e.g. as
    /// a `Reduce` source).
    pub fn object_id(&self) -> ObjectId {
        self.id
    }
}

impl fmt::Debug for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectRef({})", self.id.short_hex())
    }
}

/// Errors surfaced by the task layer.
#[derive(Debug, Clone)]
pub enum TaskError {
    /// The task name was not registered.
    UnknownTask(String),
    /// The underlying Hoplite operation failed.
    Storage(HopliteError),
    /// The task's worker died and reconstruction was not requested.
    WorkerLost(String),
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::UnknownTask(name) => write!(f, "unknown task '{name}'"),
            TaskError::Storage(e) => write!(f, "storage error: {e}"),
            TaskError::WorkerLost(name) => write!(f, "worker running '{name}' was lost"),
        }
    }
}

impl std::error::Error for TaskError {}

/// A task function: takes resolved argument payloads, returns the output payload.
pub type TaskFn = Arc<dyn Fn(&[Payload]) -> Payload + Send + Sync>;

/// Everything needed to (re-)execute one task invocation.
#[derive(Clone)]
struct TaskSpec {
    name: String,
    args: Vec<ObjectRef>,
    output: ObjectId,
}

enum WorkerJob {
    Run { spec: TaskSpec, func: TaskFn },
    Shutdown,
}

/// The task-based distributed system.
pub struct TaskSystem {
    cluster: Arc<Mutex<LocalCluster>>,
    clients: Vec<HopliteClient>,
    registry: Arc<RwLock<HashMap<String, TaskFn>>>,
    lineage: Arc<RwLock<HashMap<ObjectId, TaskSpec>>>,
    workers: Vec<Sender<WorkerJob>>,
    worker_handles: Vec<thread::JoinHandle<()>>,
    alive: Arc<RwLock<Vec<bool>>>,
    next_id: AtomicU64,
    next_worker: AtomicU64,
}

impl TaskSystem {
    /// Start a task system over `num_nodes` Hoplite nodes, one worker per node.
    pub fn new(num_nodes: usize, cfg: HopliteConfig) -> Self {
        let cluster = LocalCluster::new(num_nodes, cfg);
        let clients: Vec<HopliteClient> = (0..num_nodes).map(|i| cluster.client(i)).collect();
        let registry: Arc<RwLock<HashMap<String, TaskFn>>> = Arc::new(RwLock::new(HashMap::new()));
        let alive = Arc::new(RwLock::new(vec![true; num_nodes]));
        let mut workers = Vec::with_capacity(num_nodes);
        let mut worker_handles = Vec::with_capacity(num_nodes);
        for node in 0..num_nodes {
            let (tx, rx): (Sender<WorkerJob>, Receiver<WorkerJob>) = unbounded();
            let client = cluster.client(node);
            let handle = thread::Builder::new()
                .name(format!("hoplite-worker-{node}"))
                .spawn(move || worker_loop(client, rx))
                .expect("spawn worker");
            workers.push(tx);
            worker_handles.push(handle);
        }
        TaskSystem {
            cluster: Arc::new(Mutex::new(cluster)),
            clients,
            registry,
            lineage: Arc::new(RwLock::new(HashMap::new())),
            workers,
            worker_handles,
            alive,
            next_id: AtomicU64::new(1),
            next_worker: AtomicU64::new(0),
        }
    }

    /// Number of nodes (= workers).
    pub fn num_nodes(&self) -> usize {
        self.clients.len()
    }

    /// Register a task function under `name`.
    pub fn register<F>(&self, name: &str, func: F)
    where
        F: Fn(&[Payload]) -> Payload + Send + Sync + 'static,
    {
        self.registry.write().insert(name.to_string(), Arc::new(func));
    }

    fn fresh_ref(&self, tag: &str) -> ObjectRef {
        let seq = self.next_id.fetch_add(1, Ordering::Relaxed);
        ObjectRef { id: ObjectId::from_name(&format!("task-{tag}-{seq}")) }
    }

    /// Store a value in the object store and return a reference to it.
    pub fn put(&self, payload: Payload) -> Result<ObjectRef, TaskError> {
        let r = self.fresh_ref("put");
        let node = self.pick_node();
        self.clients[node].put(r.id, payload).map_err(TaskError::Storage)?;
        Ok(r)
    }

    /// Invoke a registered task with the given argument futures. Returns immediately
    /// with a future for the result; the task runs on some worker chosen by the
    /// scheduler.
    pub fn submit(&self, name: &str, args: Vec<ObjectRef>) -> Result<ObjectRef, TaskError> {
        let func = self
            .registry
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| TaskError::UnknownTask(name.to_string()))?;
        let output = self.fresh_ref("out");
        let spec = TaskSpec { name: name.to_string(), args, output: output.id };
        self.lineage.write().insert(output.id, spec.clone());
        self.dispatch(spec, func);
        Ok(output)
    }

    /// Blockingly fetch the value behind a future.
    pub fn get(&self, object: ObjectRef) -> Result<Payload, TaskError> {
        let node = self.pick_node();
        self.clients[node].get(object.id).map_err(TaskError::Storage)
    }

    /// Reduce a set of futures with the given operation (Hoplite's `Reduce`, §3.4.2).
    /// `num_objects` selects how many of the (possibly not-yet-ready) inputs to fold.
    pub fn reduce(
        &self,
        sources: &[ObjectRef],
        num_objects: Option<usize>,
        spec: ReduceSpec,
    ) -> Result<ObjectRef, TaskError> {
        let target = self.fresh_ref("reduce");
        let node = self.pick_node();
        self.clients[node]
            .reduce(target.id, sources.iter().map(|r| r.id).collect(), num_objects, spec)
            .map_err(TaskError::Storage)?;
        Ok(target)
    }

    /// Delete the object behind a future on every node.
    pub fn delete(&self, object: ObjectRef) -> Result<(), TaskError> {
        let node = self.pick_node();
        self.clients[node].delete(object.id).map_err(TaskError::Storage)
    }

    /// Kill one worker node (its Hoplite store and its worker thread), as if the
    /// machine crashed. Objects that only lived there are lost until reconstructed.
    pub fn kill_node(&self, node: usize) {
        self.alive.write()[node] = false;
        let _ = self.workers[node].send(WorkerJob::Shutdown);
        self.cluster.lock().kill_node(node);
    }

    /// Re-execute the lineage of `object` (and, recursively, of its missing inputs) on
    /// the surviving nodes. This is the task-framework half of failure recovery that
    /// the paper assumes from Ray (§2.1, §3.5): Hoplite adapts in-flight collectives,
    /// the framework recreates the lost objects so they can rejoin.
    pub fn reconstruct(&self, object: ObjectRef) -> Result<(), TaskError> {
        let spec = {
            let lineage = self.lineage.read();
            lineage.get(&object.id).cloned()
        };
        let Some(spec) = spec else {
            return Err(TaskError::WorkerLost(format!("{object:?} has no lineage")));
        };
        // Recursively make sure inputs exist (puts have no lineage and are assumed to
        // be durable at their creator, like Ray's ownership model).
        for arg in &spec.args {
            if self.lineage.read().contains_key(&arg.id) {
                self.reconstruct(*arg)?;
            }
        }
        let func = self
            .registry
            .read()
            .get(&spec.name)
            .cloned()
            .ok_or_else(|| TaskError::UnknownTask(spec.name.clone()))?;
        self.dispatch(spec, func);
        Ok(())
    }

    fn pick_node(&self) -> usize {
        let n = self.clients.len();
        let alive = self.alive.read();
        for _ in 0..n {
            let idx = (self.next_worker.fetch_add(1, Ordering::Relaxed) as usize) % n;
            if alive[idx] {
                return idx;
            }
        }
        0
    }

    fn dispatch(&self, spec: TaskSpec, func: TaskFn) {
        let node = self.pick_node();
        let _ = self.workers[node].send(WorkerJob::Run { spec, func });
    }
}

impl Drop for TaskSystem {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.send(WorkerJob::Shutdown);
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(client: HopliteClient, jobs: Receiver<WorkerJob>) {
    while let Ok(job) = jobs.recv() {
        match job {
            WorkerJob::Shutdown => return,
            WorkerJob::Run { spec, func } => {
                // Resolve argument futures through the object store (this is the
                // implicit broadcast path: many tasks fetching the same object).
                let mut args = Vec::with_capacity(spec.args.len());
                let mut ok = true;
                for arg in &spec.args {
                    match client.get(arg.id) {
                        Ok(payload) => args.push(payload),
                        Err(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let output = func(&args);
                // The object may already exist if this is a lineage re-execution racing
                // with a surviving copy; that is fine.
                let _ = client.put(spec.output, output);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(n: usize) -> TaskSystem {
        TaskSystem::new(n, HopliteConfig::small_for_tests())
    }

    #[test]
    fn dynamic_tasks_compose_through_futures() {
        let ts = system(3);
        ts.register("double", |args| {
            let v = args[0].to_f32s().iter().map(|x| x * 2.0).collect::<Vec<_>>();
            Payload::from_f32s(&v)
        });
        ts.register("add", |args| {
            let a = args[0].to_f32s();
            let b = args[1].to_f32s();
            Payload::from_f32s(&a.iter().zip(&b).map(|(x, y)| x + y).collect::<Vec<_>>())
        });
        let x = ts.put(Payload::from_f32s(&[1.0, 2.0, 3.0])).unwrap();
        // `add` is submitted before `double` finishes — futures make that fine.
        let doubled = ts.submit("double", vec![x]).unwrap();
        let summed = ts.submit("add", vec![doubled, x]).unwrap();
        let result = ts.get(summed).unwrap();
        assert_eq!(result.to_f32s(), vec![3.0, 6.0, 9.0]);
    }

    #[test]
    fn unknown_tasks_are_rejected() {
        let ts = system(2);
        assert!(matches!(ts.submit("nope", vec![]), Err(TaskError::UnknownTask(_))));
    }

    #[test]
    fn reduce_over_task_outputs() {
        let ts = system(4);
        ts.register("constant", |args| {
            let k = args[0].to_f32s()[0];
            Payload::from_f32s(&vec![k; 256])
        });
        let outputs: Vec<ObjectRef> = (1..=4)
            .map(|k| {
                let karg = ts.put(Payload::from_f32s(&[k as f32])).unwrap();
                ts.submit("constant", vec![karg]).unwrap()
            })
            .collect();
        let reduced = ts.reduce(&outputs, None, ReduceSpec::sum_f32()).unwrap();
        let result = ts.get(reduced).unwrap();
        for v in result.to_f32s() {
            assert!((v - 10.0).abs() < 1e-4);
        }
    }

    #[test]
    fn lineage_reconstruction_recreates_lost_objects() {
        let ts = system(3);
        ts.register("emit", |args| args[0].clone());
        let seed = ts.put(Payload::from_f32s(&[7.0; 128])).unwrap();
        let out = ts.submit("emit", vec![seed]).unwrap();
        // Make sure it ran, then "lose" it by deleting every copy (standing in for a
        // crashed worker whose store vanished).
        assert_eq!(ts.get(out).unwrap().to_f32s()[0], 7.0);
        ts.delete(out).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(200));
        ts.reconstruct(out).unwrap();
        // Reconstruction is asynchronous (the task is re-dispatched to a worker); poll
        // until the recreated object is visible again.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match ts.get(out) {
                Ok(value) => {
                    assert_eq!(value.to_f32s()[0], 7.0);
                    break;
                }
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                Err(e) => panic!("object was not reconstructed in time: {e}"),
            }
        }
    }
}
