//! Daemon configuration: a flat TOML subset mapped onto [`HopliteConfig`].
//!
//! The container vendors no TOML crate, so `hoplited` reads the small flat dialect a
//! deployment actually needs — `key = value` lines, `#` comments, integers, booleans
//! and durations in milliseconds. Unknown keys are an error (a typo in a config file
//! must not silently run with defaults).

use hoplite_core::prelude::*;

/// Parse the flat-TOML daemon config dialect into a [`HopliteConfig`], starting from
/// [`HopliteConfig::default`]. Supported keys:
///
/// `block_size`, `inline_threshold`, `store_capacity`, `snapshot_chunk_bytes`,
/// `directory_inline_cache_bytes`, `directory_log_retention`,
/// `directory_replication`, `directory_shards`, `directory_chain_replication`,
/// `pull_timeout_ms`, `directory_lease_ttl_ms`.
///
/// The SWIM failure detector is off unless `detector = true`; with it on, the knobs
/// `detector_probe_period_ms`, `detector_ack_timeout_ms`,
/// `detector_suspicion_multiplier`, `detector_indirect_fanout`, and
/// `detector_gossip_budget` override [`DetectorConfig::default`] (any of them also
/// implies `detector = true`).
pub fn parse(text: &str) -> std::result::Result<HopliteConfig, String> {
    let mut cfg = HopliteConfig::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`, got `{raw}`", lineno + 1))?;
        let (key, value) = (key.trim(), value.trim());
        let int = || -> std::result::Result<u64, String> {
            value.parse().map_err(|e| format!("line {}: {key} = {value}: {e}", lineno + 1))
        };
        let boolean = || -> std::result::Result<bool, String> {
            value.parse().map_err(|e| format!("line {}: {key} = {value}: {e}", lineno + 1))
        };
        match key {
            "block_size" => cfg.block_size = int()?,
            "inline_threshold" => cfg.inline_threshold = int()?,
            "store_capacity" => cfg.store_capacity = int()?,
            "snapshot_chunk_bytes" => cfg.snapshot_chunk_bytes = int()?,
            "directory_inline_cache_bytes" => cfg.directory_inline_cache_bytes = int()?,
            "directory_log_retention" => cfg.directory_log_retention = int()? as usize,
            "directory_replication" => cfg.directory_replication = int()? as usize,
            "directory_shards" => cfg.directory_shards = Some(int()? as usize),
            "directory_chain_replication" => cfg.directory_chain_replication = boolean()?,
            "pull_timeout_ms" => cfg.pull_timeout = Duration::from_millis(int()?),
            "directory_lease_ttl_ms" => cfg.directory_lease_ttl = Duration::from_millis(int()?),
            "detector" => {
                if boolean()? {
                    cfg.detector.get_or_insert_with(DetectorConfig::default);
                } else {
                    cfg.detector = None;
                }
            }
            "detector_probe_period_ms" => {
                cfg.detector.get_or_insert_with(DetectorConfig::default).probe_period =
                    Duration::from_millis(int()?);
            }
            "detector_ack_timeout_ms" => {
                cfg.detector.get_or_insert_with(DetectorConfig::default).ack_timeout =
                    Duration::from_millis(int()?);
            }
            "detector_suspicion_multiplier" => {
                cfg.detector.get_or_insert_with(DetectorConfig::default).suspicion_multiplier =
                    int()? as u32;
            }
            "detector_indirect_fanout" => {
                cfg.detector.get_or_insert_with(DetectorConfig::default).indirect_fanout =
                    int()? as usize;
            }
            "detector_gossip_budget" => {
                cfg.detector.get_or_insert_with(DetectorConfig::default).gossip_budget =
                    int()? as usize;
            }
            other => return Err(format!("line {}: unknown config key `{other}`", lineno + 1)),
        }
    }
    Ok(cfg)
}

/// Load and parse a config file.
pub fn load(path: &std::path::Path) -> std::result::Result<HopliteConfig, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_supported_keys() {
        let cfg = parse(
            "# drill config\n\
             block_size = 65536\n\
             inline_threshold = 128   # small objects stay inline\n\
             directory_replication = 3\n\
             directory_chain_replication = false\n\
             pull_timeout_ms = 250\n",
        )
        .unwrap();
        assert_eq!(cfg.block_size, 65536);
        assert_eq!(cfg.inline_threshold, 128);
        assert_eq!(cfg.directory_replication, 3);
        assert!(!cfg.directory_chain_replication);
        assert_eq!(cfg.pull_timeout, Duration::from_millis(250));
        // Untouched keys keep their defaults.
        assert_eq!(cfg.store_capacity, HopliteConfig::default().store_capacity);
    }

    #[test]
    fn unknown_keys_and_bad_values_are_errors() {
        assert!(parse("block_sz = 1").is_err());
        assert!(parse("block_size = banana").is_err());
        assert!(parse("no equals sign").is_err());
    }

    #[test]
    fn detector_keys_enable_and_tune_the_detector() {
        assert!(parse("").unwrap().detector.is_none(), "off by default");
        assert!(parse("detector = true").unwrap().detector.is_some());
        assert!(parse("detector = false").unwrap().detector.is_none());
        let cfg = parse(
            "detector_probe_period_ms = 100\n\
             detector_ack_timeout_ms = 40\n\
             detector_suspicion_multiplier = 10\n\
             detector_indirect_fanout = 2\n\
             detector_gossip_budget = 8\n",
        )
        .unwrap();
        let det = cfg.detector.expect("any detector knob implies detector = true");
        assert_eq!(det.probe_period, Duration::from_millis(100));
        assert_eq!(det.ack_timeout, Duration::from_millis(40));
        assert_eq!(det.suspicion_multiplier, 10);
        assert_eq!(det.indirect_fanout, 2);
        assert_eq!(det.gossip_budget, 8);
    }
}
