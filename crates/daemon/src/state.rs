//! The on-disk deployment state file `hoplitectl` invocations share.
//!
//! `hoplitectl spawn` writes `<dir>/cluster.state`; later `status` / `kill` /
//! `restart` / `stop` invocations (separate processes) load it to find the fleet.
//! The format is deliberately line-oriented and human-readable:
//!
//! ```text
//! binary /path/to/hoplited
//! config /path/to/config.toml        # line absent when no config file is used
//! node 0 127.0.0.1:4000 127.0.0.1:5000 12345 0
//! node 1 127.0.0.1:4001 127.0.0.1:5001 12346 2
//! ```
//!
//! Each `node` line is: id, fabric address, control address, pid (0 = killed),
//! incarnation.

use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};

/// One daemon's bookkeeping entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeEntry {
    /// Fabric listener address.
    pub fabric: SocketAddr,
    /// Control socket address.
    pub control: SocketAddr,
    /// OS pid of the running daemon, 0 after a kill.
    pub pid: u32,
    /// The incarnation the daemon (last) ran at.
    pub incarnation: u64,
}

/// The persisted fleet description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterState {
    /// Path to the `hoplited` binary (for restarts).
    pub binary: PathBuf,
    /// Optional config file every daemon is launched with.
    pub config: Option<PathBuf>,
    /// Per-node entries, indexed by node id.
    pub nodes: Vec<NodeEntry>,
}

impl ClusterState {
    /// The state file inside a deployment directory.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join("cluster.state")
    }

    /// Serialize to the line format.
    pub fn to_text(&self) -> String {
        let mut out = format!("binary {}\n", self.binary.display());
        if let Some(config) = &self.config {
            out.push_str(&format!("config {}\n", config.display()));
        }
        for (id, n) in self.nodes.iter().enumerate() {
            out.push_str(&format!(
                "node {id} {} {} {} {}\n",
                n.fabric, n.control, n.pid, n.incarnation
            ));
        }
        out
    }

    /// Parse the line format.
    pub fn from_text(text: &str) -> Result<ClusterState, String> {
        let mut binary = None;
        let mut config = None;
        let mut nodes: Vec<NodeEntry> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: `{raw}`", lineno + 1);
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("binary") => binary = Some(PathBuf::from(line[6..].trim())),
                Some("config") => config = Some(PathBuf::from(line[6..].trim())),
                Some("node") => {
                    let id: usize =
                        parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| err("bad id"))?;
                    if id != nodes.len() {
                        return Err(err("node ids must be dense and in order"));
                    }
                    let fabric = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("bad fabric addr"))?;
                    let control = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("bad control addr"))?;
                    let pid =
                        parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| err("bad pid"))?;
                    let incarnation = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("bad incarnation"))?;
                    nodes.push(NodeEntry { fabric, control, pid, incarnation });
                }
                _ => return Err(err("unknown directive")),
            }
        }
        Ok(ClusterState {
            binary: binary.ok_or("missing `binary` line".to_string())?,
            config,
            nodes,
        })
    }

    /// Write the state file into `dir` (atomically via a temp file + rename, so a
    /// concurrent reader never sees a torn file).
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        let tmp = dir.join("cluster.state.tmp");
        std::fs::write(&tmp, self.to_text())?;
        std::fs::rename(tmp, Self::path(dir))
    }

    /// Load the state file from `dir`.
    pub fn load(dir: &Path) -> io::Result<ClusterState> {
        let text = std::fs::read_to_string(Self::path(dir))?;
        Self::from_text(&text).map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_the_line_format() {
        let state = ClusterState {
            binary: PathBuf::from("/tmp/deploy/hoplited"),
            config: Some(PathBuf::from("/tmp/deploy/config.toml")),
            nodes: vec![
                NodeEntry {
                    fabric: "127.0.0.1:4000".parse().unwrap(),
                    control: "127.0.0.1:5000".parse().unwrap(),
                    pid: 100,
                    incarnation: 0,
                },
                NodeEntry {
                    fabric: "127.0.0.1:4001".parse().unwrap(),
                    control: "127.0.0.1:5001".parse().unwrap(),
                    pid: 0,
                    incarnation: 3,
                },
            ],
        };
        assert_eq!(ClusterState::from_text(&state.to_text()).unwrap(), state);

        let without_config = ClusterState { config: None, ..state };
        assert_eq!(ClusterState::from_text(&without_config.to_text()).unwrap(), without_config);
    }

    #[test]
    fn rejects_gaps_and_garbage() {
        assert!(ClusterState::from_text("node 1 127.0.0.1:1 127.0.0.1:2 0 0").is_err());
        assert!(ClusterState::from_text("binary /x\nwat 0").is_err());
        assert!(ClusterState::from_text("").is_err(), "missing binary line");
    }
}
