//! # hoplite-daemon
//!
//! The real multi-process deployment of Hoplite: the `hoplited` node daemon (one
//! [`hoplite_cluster::host::NodeHost`] over a TCP fabric listener, plus a control
//! socket) and the `hoplitectl` controller (spawn / status / kill / restart / drill).
//!
//! The library half carries what both binaries and the tests share: flag parsing
//! ([`args`]), the flat-TOML config loader ([`config`]), and the on-disk deployment
//! state file ([`state`]) that lets separate `hoplitectl` invocations manage the same
//! running fleet.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod config;
pub mod state;
