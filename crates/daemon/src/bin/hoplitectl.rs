//! `hoplitectl` — deployment controller for a fleet of `hoplited` daemons.
//!
//! ```text
//! hoplitectl spawn   --nodes 5 --dir /tmp/hoplite [--binary PATH] [--config FILE]
//! hoplitectl status  --dir /tmp/hoplite [--json]
//! hoplitectl kill    --dir /tmp/hoplite --node 3        # kill -9 + failure verdicts
//! hoplitectl restart --dir /tmp/hoplite --node 3        # next incarnation, --recover
//! hoplitectl stop    --dir /tmp/hoplite
//! hoplitectl drill   --nodes 5 --dir /tmp/drill [--waves 6] [--kill-wave 2]
//!                    [--size BYTES] [--timeout-secs 300] [--json FILE] [--detect]
//! ```
//!
//! `spawn`/`status`/`kill`/`restart`/`stop` manage a long-lived deployment through
//! the on-disk state file (`<dir>/cluster.state`); each invocation is a separate
//! short-lived process, daemons keep running in between. `drill` is the self-contained
//! kill -9 end-to-end exercise CI runs: it spawns its own fleet, drives broadcast +
//! reduce waves, SIGKILLs a receiver mid-broadcast, restarts it at the next
//! incarnation, and then proves zero location records were lost — every object of
//! every wave readable from every node, including the restarted one.
//!
//! With `--detect` the drill is *verdict-free*: the daemons run the SWIM gossip
//! detector, no `peer-failed` notice is ever injected, no `peer-recovered` is sent
//! after the restart — survivors must notice the victim's silence themselves
//! (probe → indirect ping-req → suspect → dead) and learn of its comeback from its
//! own `Hello` at the bumped incarnation. The JSON report gains `detection_ms`: the
//! time from SIGKILL until every survivor has marked the victim dead.

use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hoplite_bench::json::Json;
use hoplite_cluster::process::{ControlClient, DaemonSpec, ProcessCluster};
use hoplite_core::prelude::NodeId;
use hoplite_daemon::args::Args;
use hoplite_daemon::state::{ClusterState, NodeEntry};

fn main() {
    let sub = std::env::args().nth(1).unwrap_or_default();
    let mut args = Args::from_env(1);
    let result = match sub.as_str() {
        "spawn" => cmd_spawn(&mut args),
        "status" => cmd_status(&mut args),
        "kill" => cmd_kill(&mut args),
        "restart" => cmd_restart(&mut args),
        "stop" => cmd_stop(&mut args),
        "drill" => cmd_drill(&mut args),
        "" | "help" | "--help" => {
            eprint!("{USAGE}");
            return;
        }
        other => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    if let Err(e) = result {
        eprintln!("hoplitectl {sub}: {e}");
        std::process::exit(1);
    }
}

const USAGE: &str = "usage:\n  \
    hoplitectl spawn   --nodes N --dir DIR [--binary PATH] [--config FILE]\n  \
    hoplitectl status  --dir DIR [--json]\n  \
    hoplitectl kill    --dir DIR --node I\n  \
    hoplitectl restart --dir DIR --node I\n  \
    hoplitectl stop    --dir DIR\n  \
    hoplitectl drill   --nodes N --dir DIR [--binary PATH] [--waves W] [--kill-wave K]\n                     \
    [--size BYTES] [--timeout-secs S] [--json FILE] [--detect]\n";

/// The `hoplited` binary that ships next to this `hoplitectl`.
fn sibling_hoplited() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me.parent().ok_or("current_exe has no parent directory")?;
    let candidate = dir.join("hoplited");
    if candidate.is_file() {
        Ok(candidate)
    } else {
        Err(format!("{} not found; pass --binary", candidate.display()))
    }
}

fn binary_arg(args: &mut Args) -> Result<PathBuf, String> {
    match args.opt("binary")? {
        Some(path) => Ok(PathBuf::from(path)),
        None => sibling_hoplited(),
    }
}

/// Reserve `n` distinct localhost ports by binding and releasing them.
fn reserve_ports(n: usize) -> Result<Vec<SocketAddr>, String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<std::io::Result<_>>()
        .map_err(|e| format!("reserve ports: {e}"))?;
    listeners.iter().map(|l| l.local_addr().map_err(|e| format!("local_addr: {e}"))).collect()
}

/// Launch one detached daemon for `state.nodes[node]` and record its pid. The
/// returned `Child` is dropped on purpose: `std::process::Child` does not kill on
/// drop, so the daemon outlives this `hoplitectl` invocation.
fn launch(state: &mut ClusterState, dir: &Path, node: usize, recover: bool) -> Result<(), String> {
    let fabric_list =
        state.nodes.iter().map(|n| n.fabric.to_string()).collect::<Vec<_>>().join(",");
    let log = std::fs::File::create(dir.join(format!("node-{node}.log")))
        .map_err(|e| format!("create log: {e}"))?;
    let entry = &state.nodes[node];
    let mut cmd = Command::new(&state.binary);
    cmd.arg("--node")
        .arg(node.to_string())
        .arg("--fabric")
        .arg(fabric_list)
        .arg("--control")
        .arg(entry.control.to_string())
        .arg("--incarnation")
        .arg(entry.incarnation.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::from(log.try_clone().map_err(|e| e.to_string())?))
        .stderr(Stdio::from(log));
    if recover {
        cmd.arg("--recover");
    }
    if let Some(config) = &state.config {
        cmd.arg("--config").arg(config);
    }
    let child = cmd.spawn().map_err(|e| format!("spawn {}: {e}", state.binary.display()))?;
    state.nodes[node].pid = child.id();
    Ok(())
}

/// Poll a control socket until it answers `ping`.
fn wait_ready(addr: SocketAddr, what: &str, timeout: Duration) -> Result<(), String> {
    let deadline = Instant::now() + timeout;
    loop {
        match ControlClient::connect(addr, Duration::from_millis(250)).and_then(|mut c| c.ping()) {
            Ok(()) => return Ok(()),
            Err(e) if Instant::now() >= deadline => {
                return Err(format!("{what} not ready within {timeout:?}: {e}"));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

fn control(entry: &NodeEntry) -> Result<ControlClient, String> {
    ControlClient::connect(entry.control, Duration::from_secs(5)).map_err(|e| e.to_string())
}

fn cmd_spawn(args: &mut Args) -> Result<(), String> {
    let n: usize = args.req("nodes")?;
    let dir = PathBuf::from(args.req::<String>("dir")?);
    let binary = binary_arg(args)?;
    let config = args.opt("config")?.map(PathBuf::from);
    args.finish()?;
    if n == 0 {
        return Err("--nodes must be at least 1".to_string());
    }
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    if ClusterState::path(&dir).exists() {
        return Err(format!(
            "{} already exists — `hoplitectl stop --dir {}` first",
            ClusterState::path(&dir).display(),
            dir.display()
        ));
    }

    let fabric = reserve_ports(n)?;
    let controls = reserve_ports(n)?;
    let mut state = ClusterState {
        binary,
        config,
        nodes: fabric
            .into_iter()
            .zip(controls)
            .map(|(fabric, control)| NodeEntry { fabric, control, pid: 0, incarnation: 0 })
            .collect(),
    };
    for node in 0..n {
        launch(&mut state, &dir, node, false)?;
    }
    for node in 0..n {
        wait_ready(state.nodes[node].control, &format!("node {node}"), Duration::from_secs(20))?;
    }
    state.save(&dir).map_err(|e| format!("save state: {e}"))?;
    for (node, entry) in state.nodes.iter().enumerate() {
        println!(
            "node {node}: pid {} fabric {} control {}",
            entry.pid, entry.fabric, entry.control
        );
    }
    println!("{n} daemons up; state in {}", ClusterState::path(&dir).display());
    Ok(())
}

fn cmd_status(args: &mut Args) -> Result<(), String> {
    let dir = PathBuf::from(args.req::<String>("dir")?);
    let as_json = args.switch("json");
    args.finish()?;
    let state = ClusterState::load(&dir).map_err(|e| format!("load state: {e}"))?;

    let mut nodes = Vec::new();
    for (node, entry) in state.nodes.iter().enumerate() {
        let status = if entry.pid == 0 {
            None
        } else {
            control(entry).and_then(|mut c| c.status().map_err(|e| e.to_string())).ok()
        };
        nodes.push((node, entry.clone(), status));
    }

    if as_json {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("hoplite-ctl-status-v1".into())),
            (
                "nodes".into(),
                Json::Arr(
                    nodes
                        .iter()
                        .map(|(node, entry, status)| {
                            let mut pairs = vec![
                                ("node".into(), Json::Num(*node as f64)),
                                ("pid".into(), Json::Num(entry.pid as f64)),
                                ("up".into(), Json::Bool(status.is_some())),
                                ("incarnation".into(), Json::Num(entry.incarnation as f64)),
                            ];
                            if let Some(status) = status {
                                pairs.push((
                                    "resyncing".into(),
                                    Json::Bool(
                                        status.get("resyncing").map(String::as_str) == Some("true"),
                                    ),
                                ));
                                let metrics: Vec<(String, Json)> = status
                                    .iter()
                                    .filter(|(k, _)| {
                                        !matches!(k.as_str(), "node" | "incarnation" | "resyncing")
                                    })
                                    .map(|(k, v)| {
                                        (k.clone(), Json::Num(v.parse::<f64>().unwrap_or(-1.0)))
                                    })
                                    .collect();
                                pairs.push(("metrics".into(), Json::Obj(metrics)));
                            }
                            Json::Obj(pairs)
                        })
                        .collect(),
                ),
            ),
        ]);
        print!("{}", doc.to_pretty_string());
    } else {
        for (node, entry, status) in &nodes {
            match status {
                Some(status) => println!(
                    "node {node}: up pid={} incarnation={} resyncing={} puts={} gets={} \
                     failovers={} resyncs={}",
                    entry.pid,
                    entry.incarnation,
                    status.get("resyncing").map(String::as_str).unwrap_or("?"),
                    status.get("objects_put").map(String::as_str).unwrap_or("?"),
                    status.get("gets_completed").map(String::as_str).unwrap_or("?"),
                    status.get("broadcast_failovers").map(String::as_str).unwrap_or("?"),
                    status.get("directory_resyncs").map(String::as_str).unwrap_or("?"),
                ),
                None => println!("node {node}: down (last incarnation {})", entry.incarnation),
            }
        }
    }
    Ok(())
}

fn cmd_kill(args: &mut Args) -> Result<(), String> {
    let dir = PathBuf::from(args.req::<String>("dir")?);
    let node: usize = args.req("node")?;
    args.finish()?;
    let mut state = ClusterState::load(&dir).map_err(|e| format!("load state: {e}"))?;
    let entry = state.nodes.get(node).ok_or(format!("no node {node}"))?.clone();
    if entry.pid == 0 {
        return Err(format!("node {node} is already down"));
    }

    let status = Command::new("kill")
        .args(["-9", &entry.pid.to_string()])
        .status()
        .map_err(|e| format!("kill: {e}"))?;
    if !status.success() {
        return Err(format!("kill -9 {} failed: {status}", entry.pid));
    }
    state.nodes[node].pid = 0;
    state.save(&dir).map_err(|e| format!("save state: {e}"))?;

    // Deliver the failure-detector verdict, stamped with the victim's incarnation.
    for (other, peer) in state.nodes.iter().enumerate() {
        if other != node && peer.pid != 0 {
            control(peer)?
                .peer_failed(NodeId(node as u32), entry.incarnation)
                .map_err(|e| format!("peer-failed to node {other}: {e}"))?;
        }
    }
    println!("node {node}: killed pid {}", entry.pid);
    Ok(())
}

fn cmd_restart(args: &mut Args) -> Result<(), String> {
    let dir = PathBuf::from(args.req::<String>("dir")?);
    let node: usize = args.req("node")?;
    args.finish()?;
    let mut state = ClusterState::load(&dir).map_err(|e| format!("load state: {e}"))?;
    if state.nodes.get(node).ok_or(format!("no node {node}"))?.pid != 0 {
        return Err(format!("node {node} is still running — kill it first"));
    }

    state.nodes[node].incarnation += 1;
    launch(&mut state, &dir, node, true)?;
    wait_ready(state.nodes[node].control, &format!("node {node}"), Duration::from_secs(30))?;
    state.save(&dir).map_err(|e| format!("save state: {e}"))?;
    for (other, peer) in state.nodes.iter().enumerate() {
        if other != node && peer.pid != 0 {
            control(peer)?
                .peer_recovered(NodeId(node as u32))
                .map_err(|e| format!("peer-recovered to node {other}: {e}"))?;
        }
    }
    println!(
        "node {node}: restarted as pid {} at incarnation {}",
        state.nodes[node].pid, state.nodes[node].incarnation
    );
    Ok(())
}

fn cmd_stop(args: &mut Args) -> Result<(), String> {
    let dir = PathBuf::from(args.req::<String>("dir")?);
    args.finish()?;
    let state = ClusterState::load(&dir).map_err(|e| format!("load state: {e}"))?;
    for (node, entry) in state.nodes.iter().enumerate() {
        if entry.pid == 0 {
            continue;
        }
        match control(entry).and_then(|mut c| c.shutdown().map_err(|e| e.to_string())) {
            Ok(()) => println!("node {node}: stopped"),
            Err(e) => {
                // Unreachable control socket: fall back to SIGKILL so `stop` always
                // leaves nothing behind.
                let _ = Command::new("kill").args(["-9", &entry.pid.to_string()]).status();
                println!("node {node}: control unreachable ({e}); sent SIGKILL");
            }
        }
    }
    std::fs::remove_file(ClusterState::path(&dir)).map_err(|e| format!("remove state: {e}"))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// The kill -9 drill.
// ---------------------------------------------------------------------------

/// Object size and seeds for one wave's workload.
#[derive(Clone, Copy)]
struct Wave {
    index: usize,
    size: u64,
}

impl Wave {
    fn object(&self) -> String {
        format!("wave-{}", self.index)
    }
    fn seed(&self) -> u64 {
        0xD0_5E_ED + self.index as u64
    }
    fn sum(&self) -> String {
        format!("sum-{}", self.index)
    }
    fn contrib(&self, node: usize) -> String {
        format!("contrib-{}-{node}", self.index)
    }
}

const REDUCE_LEN: usize = 4096;

fn cmd_drill(args: &mut Args) -> Result<(), String> {
    let n: usize = args.opt_or("nodes", 5)?;
    let dir = PathBuf::from(args.req::<String>("dir")?);
    let binary = binary_arg(args)?;
    let waves: usize = args.opt_or("waves", 6)?;
    let kill_wave: usize = args.opt_or("kill-wave", 2)?;
    let size: u64 = args.opt_or("size", 1 << 20)?;
    let timeout_secs: u64 = args.opt_or("timeout-secs", 300)?;
    let json_path = args.opt("json")?.map(PathBuf::from);
    let detect = args.switch("detect");
    args.finish()?;
    if n < 3 {
        return Err("--nodes must be at least 3 (source + victim + a survivor)".to_string());
    }
    if kill_wave >= waves {
        return Err(format!("--kill-wave {kill_wave} must be below --waves {waves}"));
    }

    // Watchdog: if the drill wedges (a lost location record shows up as a get that
    // never completes), fail loudly with a distinctive exit code instead of letting
    // the CI job idle until its own timeout.
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(timeout_secs));
        eprintln!("drill watchdog: not done after {timeout_secs}s, aborting");
        std::process::exit(124);
    });

    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    // Small blocks so a 1 MiB broadcast is a multi-block, multi-round transfer —
    // the kill lands mid-object, not between objects.
    let config_path = dir.join("drill-config.toml");
    let mut config_text = "# kill -9 drill: multi-block objects at modest sizes\n\
         block_size = 65536\n\
         inline_threshold = 1024\n\
         pull_timeout_ms = 250\n"
        .to_string();
    if detect {
        // Verdict-free mode: the daemons run the SWIM detector with a tight probe
        // cadence so the 1 s suspicion window (100 ms x 10) keeps the drill fast
        // while still surviving real scheduling noise on a loaded CI machine.
        config_text.push_str(
            "detector_probe_period_ms = 100\n\
             detector_ack_timeout_ms = 40\n\
             detector_suspicion_multiplier = 10\n",
        );
    }
    std::fs::write(&config_path, config_text).map_err(|e| format!("write config: {e}"))?;

    println!("drill: spawning {n} hoplited processes (binary {})", binary.display());
    let mut cluster = ProcessCluster::spawn(DaemonSpec {
        binary,
        n,
        log_dir: dir.clone(),
        config: Some(config_path),
    })
    .map_err(|e| format!("spawn fleet: {e}"))?;
    for node in 0..n {
        println!(
            "  node {node}: pid {} log {}",
            cluster.pid(node).unwrap(),
            cluster.log_path(node).display()
        );
    }

    // Node 0 sources every wave and is never killed; the victim is a *receiver*
    // whose death lands mid-broadcast while survivors' gets are in flight.
    let victim = n - 1;
    let started = Instant::now();
    let mut killed = false;
    let mut detection_ms: Option<f64> = None;
    for index in 0..waves {
        let wave = Wave { index, size };
        let detected =
            run_wave(&mut cluster, wave, n, (index == kill_wave).then_some(victim), detect)?;
        if index == kill_wave {
            killed = true;
            detection_ms = detected;
            restart_and_verify(&mut cluster, victim, n, size, index, detect)?;
        }
        println!("drill: wave {index} complete ({:.1}s)", started.elapsed().as_secs_f64());
    }
    assert!(killed, "kill wave must have run");
    if detect {
        assert!(detection_ms.is_some(), "detect mode must have measured detection");
    }

    // Final sweep: every wave object and every reduce result, from every node.
    verify_all(&cluster, n, size, waves - 1)?;

    let statuses = collect_statuses(&cluster, n)?;
    let victim_resyncs =
        statuses[victim].get("directory_resyncs").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
    let survivor_failovers: u64 = statuses
        .iter()
        .enumerate()
        .filter(|(node, _)| *node != victim)
        .filter_map(|(_, s)| {
            let b = s.get("broadcast_failovers")?.parse::<u64>().ok()?;
            let d = s.get("directory_failovers")?.parse::<u64>().ok()?;
            Some(b + d)
        })
        .sum();
    println!(
        "drill: victim resyncs={victim_resyncs} survivor failovers={survivor_failovers} \
         victim incarnation={}",
        cluster.incarnation(victim)
    );

    if let Some(path) = json_path {
        let doc = drill_report(
            &cluster,
            n,
            waves,
            kill_wave,
            victim,
            size,
            &statuses,
            started.elapsed(),
            detection_ms,
        );
        std::fs::write(&path, doc.to_pretty_string())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("drill: report written to {}", path.display());
    }

    cluster.shutdown_all();
    println!("drill: PASS — {waves} waves, kill -9 at wave {kill_wave}, zero lost objects");
    Ok(())
}

/// One wave: node 0 puts a multi-block object, every other node gets it (in
/// parallel), then a sum-reduce across per-node contributions is verified
/// everywhere. When `kill` names a victim, it is SIGKILLed while the gets are in
/// flight, and survivor gets are retried through the failover window. With `detect`
/// the failure verdict is never announced — the SWIM detector has to notice on its
/// own, and the returned `detection_ms` is the time from SIGKILL until every
/// survivor reported the victim dead.
fn run_wave(
    cluster: &mut ProcessCluster,
    wave: Wave,
    n: usize,
    kill: Option<usize>,
    detect: bool,
) -> Result<Option<f64>, String> {
    cluster
        .control(0)
        .and_then(|mut c| c.put(&wave.object(), wave.size, wave.seed()))
        .map_err(|e| format!("wave {}: put: {e}", wave.index))?;

    // Concurrent receivers: each survivor keeps retrying until the object verifies,
    // because a get that raced the kill may fail once before failover kicks in. The
    // threads reconnect by address on their own, so the supervisor keeps `cluster`
    // mutably for the kill.
    let failed: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let in_flight = Arc::new(AtomicUsize::new(0));
    let mut detection_ms: Option<f64> = None;
    std::thread::scope(|scope| -> Result<(), String> {
        let mut handles = Vec::new();
        for node in 1..n {
            let failed = failed.clone();
            let in_flight = in_flight.clone();
            let addr = cluster.control_addr(node);
            let mut ctl = ControlClient::connect(addr, Duration::from_secs(5))
                .map_err(|e| format!("wave {}: connect node {node}: {e}", wave.index))?;
            let is_victim = kill == Some(node);
            handles.push(scope.spawn(move || {
                in_flight.fetch_add(1, Ordering::SeqCst);
                let deadline = Instant::now() + Duration::from_secs(60);
                loop {
                    match ctl.get(&wave.object(), wave.size, wave.seed()) {
                        Ok(()) => return,
                        Err(_) if is_victim => return, // it died mid-get, by design
                        Err(e) if Instant::now() >= deadline => {
                            failed.lock().unwrap().push(format!("node {node}: {e}"));
                            return;
                        }
                        Err(_) => {
                            // Failover window: reconnect and retry.
                            std::thread::sleep(Duration::from_millis(200));
                            // A fresh connection, in case the daemon dropped ours.
                            if let Ok(fresh) = ControlClient::connect(addr, Duration::from_secs(1))
                            {
                                ctl = fresh;
                            }
                        }
                    }
                }
            }));
        }

        if let Some(victim) = kill {
            // Let the gets actually start pulling blocks, then yank the process.
            while in_flight.load(Ordering::SeqCst) < n - 1 {
                std::thread::sleep(Duration::from_millis(5));
            }
            std::thread::sleep(Duration::from_millis(30));
            let pid = cluster.pid(victim);
            cluster.kill9(victim).map_err(|e| format!("kill -9 node {victim}: {e}"))?;
            println!(
                "drill: kill -9 node {victim} (pid {}) mid-broadcast of {}",
                pid.unwrap_or(0),
                wave.object()
            );
            if detect {
                // Nobody tells the survivors anything. Poll their status counters
                // (over retrying control connections: a survivor mid-redrive may be
                // slow to accept) until each has either declared the death itself
                // or learned it from gossip.
                let kill_at = Instant::now();
                let deadline = kill_at + Duration::from_secs(30);
                loop {
                    let mut all_know = true;
                    for node in (0..n).filter(|&node| node != victim) {
                        let status = ControlClient::connect_retrying(
                            cluster.control_addr(node),
                            5,
                            Duration::from_millis(50),
                        )
                        .and_then(|mut c| c.status())
                        .map_err(|e| {
                            format!("wave {}: detect poll node {node}: {e}", wave.index)
                        })?;
                        let knows = ["deaths_declared", "membership_deaths_learned"]
                            .iter()
                            .filter_map(|key| status.get(*key)?.parse::<u64>().ok())
                            .sum::<u64>()
                            > 0;
                        if !knows {
                            all_know = false;
                            break;
                        }
                    }
                    if all_know {
                        break;
                    }
                    if Instant::now() >= deadline {
                        return Err(format!(
                            "wave {}: survivors did not detect the kill within 30s",
                            wave.index
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
                let elapsed_ms = kill_at.elapsed().as_secs_f64() * 1000.0;
                println!(
                    "drill: every survivor marked node {victim} dead in {elapsed_ms:.0} ms — \
                     no verdict was delivered"
                );
                detection_ms = Some(elapsed_ms);
            } else {
                cluster.announce_failure(victim).map_err(|e| format!("announce failure: {e}"))?;
            }
        }
        for handle in handles {
            handle.join().map_err(|_| "get thread panicked".to_string())?;
        }
        Ok(())
    })?;
    let failed = Arc::try_unwrap(failed).unwrap().into_inner().unwrap();
    if !failed.is_empty() {
        return Err(format!("wave {}: gets failed: {}", wave.index, failed.join("; ")));
    }

    // Reduce leg across whoever is alive: each contributes (node+1), node 0
    // coordinates, everyone alive checks the sum.
    let alive: Vec<usize> = (0..n).filter(|&node| cluster.pid(node).is_some()).collect();
    let mut expected = 0.0f32;
    let mut sources = Vec::new();
    for &node in &alive {
        let value = (node + 1) as f32;
        cluster
            .control(node)
            .and_then(|mut c| c.put_f32(&wave.contrib(node), REDUCE_LEN, value))
            .map_err(|e| format!("wave {}: contrib node {node}: {e}", wave.index))?;
        expected += value;
        sources.push(wave.contrib(node));
    }
    cluster
        .control(0)
        .and_then(|mut c| c.reduce(&wave.sum(), &sources))
        .map_err(|e| format!("wave {}: reduce: {e}", wave.index))?;
    for &node in &alive {
        cluster
            .control(node)
            .and_then(|mut c| c.get_f32(&wave.sum(), REDUCE_LEN, expected))
            .map_err(|e| format!("wave {}: verify sum on node {node}: {e}", wave.index))?;
    }
    Ok(detection_ms)
}

/// Restart the victim at the next incarnation, wait out its directory resync, and
/// prove no location record was lost: the restarted node must be able to get every
/// object broadcast so far, and every survivor must still see them too. In `detect`
/// mode no `peer-recovered` verdict is sent either — survivors readmit the victim
/// when its own `Hello` at the bumped incarnation reaches them.
fn restart_and_verify(
    cluster: &mut ProcessCluster,
    victim: usize,
    n: usize,
    size: u64,
    through_wave: usize,
    detect: bool,
) -> Result<(), String> {
    if detect {
        cluster.restart_undetected(victim).map_err(|e| format!("restart node {victim}: {e}"))?;
    } else {
        cluster.restart(victim).map_err(|e| format!("restart node {victim}: {e}"))?;
    }
    println!("drill: node {victim} restarted at incarnation {}", cluster.incarnation(victim));

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = cluster
            .control(victim)
            .and_then(|mut c| c.status())
            .map_err(|e| format!("status node {victim}: {e}"))?;
        let resyncing = status.get("resyncing").map(String::as_str) == Some("true");
        let incarnation: u64 = status
            .get("incarnation")
            .and_then(|v| v.parse().ok())
            .ok_or("status missing incarnation")?;
        if !resyncing {
            if incarnation != cluster.incarnation(victim) {
                return Err(format!(
                    "node {victim} resynced at incarnation {incarnation}, expected {}",
                    cluster.incarnation(victim)
                ));
            }
            println!("drill: node {victim} resynced at incarnation {incarnation}");
            break;
        }
        if Instant::now() >= deadline {
            return Err(format!("node {victim} still resyncing after 30s"));
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    verify_all(cluster, n, size, through_wave)
}

/// Every wave object so far, from every running node — the "zero lost location
/// records" check.
fn verify_all(
    cluster: &ProcessCluster,
    n: usize,
    size: u64,
    through_wave: usize,
) -> Result<(), String> {
    for index in 0..=through_wave {
        let wave = Wave { index, size };
        for node in 0..n {
            if cluster.pid(node).is_none() {
                continue;
            }
            cluster
                .control(node)
                .and_then(|mut c| c.get(&wave.object(), wave.size, wave.seed()))
                .map_err(|e| format!("verify: node {node} lost {}: {e}", wave.object()))?;
        }
    }
    Ok(())
}

fn collect_statuses(
    cluster: &ProcessCluster,
    n: usize,
) -> Result<Vec<std::collections::BTreeMap<String, String>>, String> {
    (0..n)
        .map(|node| {
            cluster
                .control(node)
                .and_then(|mut c| c.status())
                .map_err(|e| format!("status node {node}: {e}"))
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn drill_report(
    cluster: &ProcessCluster,
    n: usize,
    waves: usize,
    kill_wave: usize,
    victim: usize,
    size: u64,
    statuses: &[std::collections::BTreeMap<String, String>],
    elapsed: Duration,
    detection_ms: Option<f64>,
) -> Json {
    let mut pairs = vec![
        ("schema".into(), Json::Str("hoplite-drill-v1".into())),
        ("nodes".into(), Json::Num(n as f64)),
        ("waves".into(), Json::Num(waves as f64)),
        ("kill_wave".into(), Json::Num(kill_wave as f64)),
        ("victim".into(), Json::Num(victim as f64)),
        ("victim_incarnation".into(), Json::Num(cluster.incarnation(victim) as f64)),
        ("object_bytes".into(), Json::Num(size as f64)),
        ("elapsed_s".into(), Json::Num(elapsed.as_secs_f64())),
        ("detect".into(), Json::Bool(detection_ms.is_some())),
        ("completed".into(), Json::Bool(true)),
    ];
    if let Some(ms) = detection_ms {
        pairs.push(("detection_ms".into(), Json::Num(ms)));
    }
    pairs.push((
        "node_status".into(),
        Json::Arr(
            statuses
                .iter()
                .enumerate()
                .map(|(node, status)| {
                    let mut pairs = vec![("node".into(), Json::Num(node as f64))];
                    for (k, v) in status {
                        if k == "node" {
                            continue;
                        }
                        pairs.push((
                            k.clone(),
                            match v.as_str() {
                                "true" => Json::Bool(true),
                                "false" => Json::Bool(false),
                                other => Json::Num(other.parse().unwrap_or(-1.0)),
                            },
                        ));
                    }
                    Json::Obj(pairs)
                })
                .collect(),
        ),
    ));
    Json::Obj(pairs)
}
