//! `hoplited` — the Hoplite node daemon.
//!
//! One OS process hosts one object-store node: a TCP fabric listener bound from a
//! shared cluster address map, the unified event loop of
//! [`hoplite_cluster::host::NodeHost`], and a newline-delimited control socket the
//! deployment controller (`hoplitectl`) drives workload and failure verdicts
//! through (the protocol table lives in [`hoplite_cluster::process`]).
//!
//! ```text
//! hoplited --node 2 \
//!          --fabric 127.0.0.1:4000,127.0.0.1:4001,127.0.0.1:4002 \
//!          --control 127.0.0.1:5002 \
//!          [--incarnation 1] [--recover] [--config hoplite.toml]
//! ```
//!
//! `--recover` starts the node as a restarted process: empty store, empty directory
//! replicas, immediate resync (snapshot requests + log catch-up) before announcing
//! itself readmitted. `--incarnation` is the monotonically-bumped process number the
//! supervisor assigns; it rides on `Hello`, failure notices and `DirResynced`, so
//! stale news about a dead predecessor can never re-park the new process.
//!
//! Logs go to stderr (the supervisor tees them to a per-node file); set
//! `HOPLITE_TRACE=1` for protocol-level traces.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use hoplite_cluster::host::NodeHost;
use hoplite_cluster::process::pattern_byte;
use hoplite_core::prelude::*;
use hoplite_daemon::{args::Args, config};
use hoplite_transport::fabric::Fabric;
use hoplite_transport::tcp::TcpFabric;

fn main() {
    if let Err(e) = run() {
        eprintln!("hoplited: {e}");
        std::process::exit(2);
    }
}

fn run() -> std::result::Result<(), String> {
    let mut args = Args::from_env(0);
    let me = NodeId(args.req::<u32>("node")?);
    let fabric_list: String = args.req("fabric")?;
    let control: SocketAddr = args.req("control")?;
    let incarnation: u64 = args.opt_or("incarnation", 0)?;
    let recover = args.switch("recover");
    let cfg = match args.opt("config")? {
        Some(path) => config::load(std::path::Path::new(&path))?,
        None => HopliteConfig::default(),
    };
    args.finish()?;

    let addrs: Vec<SocketAddr> = fabric_list
        .split(',')
        .map(|a| a.trim().parse().map_err(|e| format!("--fabric {a}: {e}")))
        .collect::<std::result::Result<_, _>>()?;
    if me.index() >= addrs.len() {
        return Err(format!("--node {} out of range for {} fabric addresses", me.0, addrs.len()));
    }

    let mut fabric = TcpFabric::bind_node(me, &addrs, incarnation)
        .map_err(|e| format!("bind fabric {}: {e}", addrs[me.index()]))?;
    let rx_fabric = fabric.take_receiver(me);
    let node = ObjectStoreNode::new(
        me,
        cfg,
        ClusterView::of_size(addrs.len()),
        NodeOptions { synthetic_data: false, pipelined_put: false, incarnation },
    );
    let host = Arc::new(NodeHost::spawn(
        node,
        rx_fabric,
        fabric.sender(),
        recover,
        Arc::new(AtomicU64::new(1)),
    ));

    let listener =
        TcpListener::bind(control).map_err(|e| format!("bind control {control}: {e}"))?;
    eprintln!(
        "hoplited node {} up: fabric {}, control {}, incarnation {}, recover {}",
        me.0,
        fabric.addresses()[me.index()],
        control,
        incarnation,
        recover
    );

    let (shutdown_tx, shutdown_rx) = std::sync::mpsc::channel::<()>();
    {
        let host = host.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { return };
                let host = host.clone();
                let shutdown_tx = shutdown_tx.clone();
                std::thread::spawn(move || serve_control(stream, &host, &shutdown_tx));
            }
        });
    }

    // Park until a control connection asks us to exit; `kill -9` is the other way out.
    let _ = shutdown_rx.recv();
    eprintln!("hoplited node {} shutting down", me.0);
    Ok(())
}

/// Serve one control connection: one request line in, one `ok`/`err` line out.
fn serve_control(stream: TcpStream, host: &NodeHost, shutdown_tx: &std::sync::mpsc::Sender<()>) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = write_half;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let shutdown = line == "shutdown";
        let reply = match handle(line, host) {
            Ok(payload) if payload.is_empty() => "ok".to_string(),
            Ok(payload) => format!("ok {payload}"),
            Err(e) => format!("err {e}"),
        };
        if writer.write_all(reply.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            return;
        }
        let _ = writer.flush();
        if shutdown {
            let _ = shutdown_tx.send(());
            return;
        }
    }
}

fn handle(line: &str, host: &NodeHost) -> std::result::Result<String, String> {
    let mut parts = line.split_whitespace();
    let verb = parts.next().unwrap_or("");
    let mut arg = |what: &str| -> std::result::Result<&str, String> {
        parts.next().ok_or_else(|| format!("{verb}: missing {what}"))
    };
    match verb {
        "ping" => Ok("pong".to_string()),
        "shutdown" => Ok(String::new()),
        "status" => {
            let status = host.status().ok_or("node loop is gone")?;
            let mut out = format!(
                "node={} incarnation={} resyncing={}",
                status.node.0, status.incarnation, status.resyncing
            );
            for (name, value) in status.metrics.fields() {
                out.push_str(&format!(" {name}={value}"));
            }
            Ok(out)
        }
        "put" => {
            let name = arg("name")?;
            let size: u64 = parse(arg("size")?)?;
            let seed: u64 = parse(arg("seed")?)?;
            let data: Vec<u8> = (0..size).map(|i| pattern_byte(seed, i)).collect();
            host.client()
                .put(ObjectId::from_name(name), Payload::from_vec(data))
                .map_err(|e| format!("{e:?}"))?;
            Ok(String::new())
        }
        "get" => {
            let name = arg("name")?;
            let size: u64 = parse(arg("size")?)?;
            let seed: u64 = parse(arg("seed")?)?;
            let payload =
                host.client().get(ObjectId::from_name(name)).map_err(|e| format!("{e:?}"))?;
            if payload.len() != size {
                return Err(format!("size mismatch: got {}, want {size}", payload.len()));
            }
            let mut i: u64 = 0;
            for segment in payload.segments() {
                for &byte in segment.as_slice() {
                    if byte != pattern_byte(seed, i) {
                        return Err(format!("content mismatch at byte {i}"));
                    }
                    i += 1;
                }
            }
            Ok(String::new())
        }
        "put-f32" => {
            let name = arg("name")?;
            let len: usize = parse(arg("len")?)?;
            let value: f32 = parse(arg("value")?)?;
            host.client()
                .put(ObjectId::from_name(name), Payload::from_f32s(&vec![value; len]))
                .map_err(|e| format!("{e:?}"))?;
            Ok(String::new())
        }
        "reduce" => {
            let target = arg("target")?;
            let sources: Vec<ObjectId> =
                arg("sources")?.split(',').map(ObjectId::from_name).collect();
            host.client()
                .reduce(ObjectId::from_name(target), sources, None, ReduceSpec::sum_f32())
                .map_err(|e| format!("{e:?}"))?;
            Ok(String::new())
        }
        "get-f32" => {
            let name = arg("name")?;
            let len: usize = parse(arg("len")?)?;
            let expected: f32 = parse(arg("expected")?)?;
            let payload =
                host.client().get(ObjectId::from_name(name)).map_err(|e| format!("{e:?}"))?;
            let values = payload.to_f32s();
            if values.len() != len {
                return Err(format!("length mismatch: got {}, want {len}", values.len()));
            }
            for (i, v) in values.iter().enumerate() {
                if (v - expected).abs() > expected.abs() * 1e-4 + 1e-4 {
                    return Err(format!("element {i}: got {v}, want ≈{expected}"));
                }
            }
            Ok(String::new())
        }
        "peer-failed" => {
            let node = NodeId(parse(arg("node id")?)?);
            let incarnation: u64 = parse(arg("incarnation")?)?;
            // Incarnation-stamped verdict: inject the protocol-level notice so the
            // node can drop it as stale if that peer already restarted.
            host.inject_message(host.id(), Message::PeerFailureNotice { node, incarnation });
            Ok(String::new())
        }
        "peer-recovered" => {
            let node = NodeId(parse(arg("node id")?)?);
            host.notify_peer_recovered(node);
            Ok(String::new())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> std::result::Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("{s}: {e}"))
}
