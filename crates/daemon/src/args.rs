//! Minimal command-line flag parsing (the container vendors no clap): `--name value`
//! options and `--name` boolean switches, consumed from a copied argument list.

/// A consumable view of the process arguments.
pub struct Args {
    rest: Vec<String>,
}

impl Args {
    /// Wrap an argument list (without the program name).
    pub fn new(rest: Vec<String>) -> Args {
        Args { rest }
    }

    /// Collect the process arguments after the program name (and an optional leading
    /// subcommand, which the caller has already consumed).
    pub fn from_env(skip: usize) -> Args {
        Args::new(std::env::args().skip(1 + skip).collect())
    }

    /// Consume `--name value`; `None` if absent.
    pub fn opt(&mut self, name: &str) -> Result<Option<String>, String> {
        let flag = format!("--{name}");
        let Some(pos) = self.rest.iter().position(|a| *a == flag) else {
            return Ok(None);
        };
        if pos + 1 >= self.rest.len() {
            return Err(format!("{flag} requires a value"));
        }
        self.rest.remove(pos);
        Ok(Some(self.rest.remove(pos)))
    }

    /// Consume `--name value` and parse it; error if absent or unparsable.
    pub fn req<T: std::str::FromStr>(&mut self, name: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.opt(name)? {
            Some(v) => v.parse().map_err(|e| format!("--{name} {v}: {e}")),
            None => Err(format!("--{name} is required")),
        }
    }

    /// Consume `--name value` and parse it, with a default when absent.
    pub fn opt_or<T: std::str::FromStr>(&mut self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.opt(name)? {
            Some(v) => v.parse().map_err(|e| format!("--{name} {v}: {e}")),
            None => Ok(default),
        }
    }

    /// Consume a boolean `--name` switch.
    pub fn switch(&mut self, name: &str) -> bool {
        let flag = format!("--{name}");
        if let Some(pos) = self.rest.iter().position(|a| *a == flag) {
            self.rest.remove(pos);
            true
        } else {
            false
        }
    }

    /// Error if anything was left unconsumed (catches typos early).
    pub fn finish(&self) -> Result<(), String> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(format!("unrecognized arguments: {}", self.rest.join(" ")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::new(list.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn options_switches_and_leftovers() {
        let mut a = args(&["--node", "3", "--recover", "--fabric", "a:1,b:2"]);
        assert_eq!(a.req::<u32>("node").unwrap(), 3);
        assert!(a.switch("recover"));
        assert!(!a.switch("recover"), "switch consumed");
        assert_eq!(a.opt("fabric").unwrap().as_deref(), Some("a:1,b:2"));
        a.finish().unwrap();

        let mut b = args(&["--oops"]);
        assert!(b.opt("node").unwrap().is_none());
        assert!(b.req::<u32>("node").is_err());
        assert!(b.finish().is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        let mut a = args(&["--node"]);
        assert!(a.opt("node").is_err());
    }

    #[test]
    fn opt_or_defaults() {
        let mut a = args(&[]);
        assert_eq!(a.opt_or("waves", 4u32).unwrap(), 4);
    }
}
