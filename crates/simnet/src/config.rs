//! Network and cluster configuration for the simulator.

use crate::time::SimDuration;

/// Characteristics of the simulated cluster network.
///
/// The model matches the paper's testbed assumptions (§5, §6): a uniform, full-duplex
/// network where every node has the same NIC bandwidth, plus a fixed one-way
/// propagation/RPC latency. Messages below [`NetworkConfig::control_cutoff`] bytes are
/// treated as control RPCs: they only pay latency (plus a per-byte cost folded into the
/// latency constant), which mirrors how small gRPC messages interleave with bulk TCP
/// traffic at packet granularity on a real network.
#[derive(Clone, Debug, PartialEq)]
pub struct NetworkConfig {
    /// Per-node NIC bandwidth, bytes/second, applied independently to the transmit and
    /// receive directions (full duplex).
    pub bandwidth: f64,
    /// One-way latency between two distinct nodes.
    pub latency: SimDuration,
    /// Latency of a node messaging itself (directory shard co-located with a client).
    pub loopback_latency: SimDuration,
    /// Messages at or below this size bypass NIC queuing and only pay latency.
    pub control_cutoff: u64,
    /// How long after a node fails the remaining nodes learn about it. The paper
    /// measures 0.74 s for Hoplite's socket-liveness detection (§5.5).
    pub failure_detection_delay: SimDuration,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::paper_testbed()
    }
}

impl NetworkConfig {
    /// The paper's testbed: 16 × m5.4xlarge with 10 Gbps networking and ~85 µs one-way
    /// latency (the measured 167–177 µs directory round trips include request +
    /// response plus service time).
    pub fn paper_testbed() -> Self {
        NetworkConfig {
            bandwidth: 1.25e9,
            latency: SimDuration::from_micros(85),
            loopback_latency: SimDuration::from_micros(2),
            control_cutoff: 4096,
            failure_detection_delay: SimDuration::from_millis(740),
        }
    }

    /// A slower network, useful in tests to magnify bandwidth effects.
    pub fn slow(bandwidth: f64, latency: SimDuration) -> Self {
        NetworkConfig { bandwidth, latency, ..NetworkConfig::paper_testbed() }
    }

    /// Time to serialize `bytes` onto (or off) a NIC.
    pub fn serialization_delay(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_values() {
        let cfg = NetworkConfig::paper_testbed();
        assert_eq!(cfg.bandwidth, 1.25e9);
        assert!(cfg.latency.as_secs_f64() < 1e-3);
    }

    #[test]
    fn serialization_delay_scales_linearly() {
        let cfg = NetworkConfig { bandwidth: 1e9, ..NetworkConfig::paper_testbed() };
        let one_mb = cfg.serialization_delay(1_000_000);
        assert!((one_mb.as_secs_f64() - 1e-3).abs() < 1e-9);
        let two_mb = cfg.serialization_delay(2_000_000);
        assert_eq!(two_mb.as_nanos(), 2 * one_mb.as_nanos());
    }
}
