//! Network and cluster configuration for the simulator.

use crate::time::SimDuration;

/// Characteristics of the simulated cluster network.
///
/// The base model matches the paper's testbed assumptions (§5, §6): a uniform,
/// full-duplex network where every node has the same NIC bandwidth, plus a fixed
/// one-way propagation/RPC latency. Messages below [`NetworkConfig::control_cutoff`]
/// bytes are treated as control RPCs: they only pay latency (plus a per-byte cost
/// folded into the latency constant), which mirrors how small gRPC messages interleave
/// with bulk TCP traffic at packet granularity on a real network.
///
/// On top of the uniform model, three optional layers let the sweep harness generate
/// realistic topology families:
///
/// * [`NetworkConfig::node_bandwidth`] — per-node NIC speeds (heterogeneous clusters);
/// * [`NetworkConfig::latency_tiers`] — per-node latency tiers with a tier-pair matrix
///   (WAN deployments: intra-site µs, inter-site ms);
/// * [`NetworkConfig::uplinks`] — shared per-group uplink/downlink queues that bulk
///   cross-group traffic must also serialize through (oversubscribed fat-tree cores);
/// * [`NetworkConfig::faults`] — seeded, deterministic message loss and reordering,
///   modeled with TCP semantics (see [`LinkFaults`]).
#[derive(Clone, Debug, PartialEq)]
pub struct NetworkConfig {
    /// Per-node NIC bandwidth, bytes/second, applied independently to the transmit and
    /// receive directions (full duplex).
    pub bandwidth: f64,
    /// One-way latency between two distinct nodes.
    pub latency: SimDuration,
    /// Latency of a node messaging itself (directory shard co-located with a client).
    pub loopback_latency: SimDuration,
    /// Messages at or below this size bypass NIC queuing and only pay latency.
    pub control_cutoff: u64,
    /// How long after a node fails the remaining nodes learn about it. The paper
    /// measures 0.74 s for Hoplite's socket-liveness detection (§5.5).
    pub failure_detection_delay: SimDuration,
    /// Per-node NIC bandwidth overrides, bytes/second. Node `i` uses
    /// `node_bandwidth[i]` when present, else the uniform [`NetworkConfig::bandwidth`].
    /// Empty (the default) means a homogeneous cluster.
    pub node_bandwidth: Vec<f64>,
    /// Optional latency tiers (WAN sites); when absent every distinct pair pays
    /// [`NetworkConfig::latency`].
    pub latency_tiers: Option<LatencyTiers>,
    /// Optional shared per-group uplinks (oversubscribed fat-tree core); when absent
    /// only endpoint NICs constrain bulk transfers.
    pub uplinks: Option<UplinkSpec>,
    /// Optional seeded link faults (loss + reordering); when absent links are perfect.
    pub faults: Option<LinkFaults>,
}

/// Latency tiers: every node belongs to a tier (a WAN site), and the one-way latency
/// between two nodes is looked up in a symmetric tier-pair matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyTiers {
    /// Tier id of each node (`tier_of[node]`); nodes beyond the vector fall back to
    /// tier 0.
    pub tier_of: Vec<u32>,
    /// `latency[a][b]` is the one-way latency between a node in tier `a` and a node in
    /// tier `b`. Must be square and at least `max(tier_of)+1` wide.
    pub latency: Vec<Vec<SimDuration>>,
}

impl LatencyTiers {
    /// Tier of `node` (tier 0 when unassigned).
    pub fn tier(&self, node: usize) -> usize {
        self.tier_of.get(node).copied().unwrap_or(0) as usize
    }

    /// One-way latency between two nodes, falling back to `default` when the matrix
    /// does not cover the tier pair.
    pub fn one_way(&self, from: usize, to: usize, default: SimDuration) -> SimDuration {
        let (a, b) = (self.tier(from), self.tier(to));
        self.latency.get(a).and_then(|row| row.get(b)).copied().unwrap_or(default)
    }
}

/// Shared per-group uplink/downlink queues: bulk messages between nodes of different
/// groups additionally serialize through the sender group's uplink and the receiver
/// group's downlink, each draining at `bandwidth` bytes/second. With `g` nodes per
/// group at NIC speed `B`, an uplink of `g·B / f` models an oversubscription factor
/// of `f` at the rack (ToR) layer.
#[derive(Clone, Debug, PartialEq)]
pub struct UplinkSpec {
    /// Group id of each node (`group_of[node]`); nodes beyond the vector fall back to
    /// group 0.
    pub group_of: Vec<u32>,
    /// Shared uplink/downlink bandwidth per group, bytes/second.
    pub bandwidth: f64,
}

impl UplinkSpec {
    /// Group of `node` (group 0 when unassigned).
    pub fn group(&self, node: usize) -> usize {
        self.group_of.get(node).copied().unwrap_or(0) as usize
    }

    /// Number of groups (highest assigned id + 1).
    pub fn num_groups(&self) -> usize {
        self.group_of.iter().copied().max().map(|g| g as usize + 1).unwrap_or(1)
    }
}

/// Seeded, deterministic link faults.
///
/// Hoplite runs over TCP, so the *actor-visible* contract stays reliable, in-order
/// delivery per pair: a "lost" message is one whose first transmission was dropped and
/// that arrives after a retransmission timeout; a "reordered" message is one delayed
/// by packet-level jitter, with subsequent same-pair messages held behind it
/// (head-of-line blocking). Both therefore manifest as deterministic extra delivery
/// delay — protocols converge, but every timing-sensitive seam (pull timeouts,
/// failure-detector races, ack windows) gets exercised. Decisions are drawn from a
/// hash of `(seed, sender, receiver, message index)`, so a run replays identically
/// for the same seed.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability in `[0, 1)` that a message's first transmission is lost and it
    /// pays [`LinkFaults::retransmit`] of extra delay.
    pub loss: f64,
    /// Probability in `[0, 1)` that a (non-lost) message is jitter-delayed by up to
    /// [`LinkFaults::jitter`], potentially overtaken on the wire and re-sequenced.
    pub reorder: f64,
    /// Maximum jitter delay applied to a reordered message.
    pub jitter: SimDuration,
    /// Extra delay paid by a lost message (the retransmission timeout).
    pub retransmit: SimDuration,
    /// Seed for the per-message fault draws.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::paper_testbed()
    }
}

impl NetworkConfig {
    /// The paper's testbed: 16 × m5.4xlarge with 10 Gbps networking and ~85 µs one-way
    /// latency (the measured 167–177 µs directory round trips include request +
    /// response plus service time).
    pub fn paper_testbed() -> Self {
        NetworkConfig {
            bandwidth: 1.25e9,
            latency: SimDuration::from_micros(85),
            loopback_latency: SimDuration::from_micros(2),
            control_cutoff: 4096,
            failure_detection_delay: SimDuration::from_millis(740),
            node_bandwidth: Vec::new(),
            latency_tiers: None,
            uplinks: None,
            faults: None,
        }
    }

    /// A slower network, useful in tests to magnify bandwidth effects.
    pub fn slow(bandwidth: f64, latency: SimDuration) -> Self {
        NetworkConfig { bandwidth, latency, ..NetworkConfig::paper_testbed() }
    }

    /// NIC bandwidth of `node`, honoring per-node overrides.
    pub fn node_bandwidth(&self, node: usize) -> f64 {
        self.node_bandwidth.get(node).copied().unwrap_or(self.bandwidth)
    }

    /// One-way latency between two distinct nodes, honoring latency tiers.
    pub fn one_way_latency(&self, from: usize, to: usize) -> SimDuration {
        match &self.latency_tiers {
            Some(tiers) => tiers.one_way(from, to, self.latency),
            None => self.latency,
        }
    }

    /// Time to serialize `bytes` onto (or off) a NIC at the uniform bandwidth.
    pub fn serialization_delay(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_values() {
        let cfg = NetworkConfig::paper_testbed();
        assert_eq!(cfg.bandwidth, 1.25e9);
        assert!(cfg.latency.as_secs_f64() < 1e-3);
        assert!(cfg.node_bandwidth.is_empty());
        assert!(cfg.latency_tiers.is_none() && cfg.uplinks.is_none() && cfg.faults.is_none());
    }

    #[test]
    fn serialization_delay_scales_linearly() {
        let cfg = NetworkConfig { bandwidth: 1e9, ..NetworkConfig::paper_testbed() };
        let one_mb = cfg.serialization_delay(1_000_000);
        assert!((one_mb.as_secs_f64() - 1e-3).abs() < 1e-9);
        let two_mb = cfg.serialization_delay(2_000_000);
        assert_eq!(two_mb.as_nanos(), 2 * one_mb.as_nanos());
    }

    #[test]
    fn per_node_bandwidth_overrides_fall_back_to_uniform() {
        let cfg =
            NetworkConfig { node_bandwidth: vec![1e9, 2e9], ..NetworkConfig::paper_testbed() };
        assert_eq!(cfg.node_bandwidth(0), 1e9);
        assert_eq!(cfg.node_bandwidth(1), 2e9);
        assert_eq!(cfg.node_bandwidth(7), 1.25e9);
    }

    #[test]
    fn latency_tiers_lookup_is_symmetric_when_matrix_is() {
        let us = SimDuration::from_micros;
        let cfg = NetworkConfig {
            latency_tiers: Some(LatencyTiers {
                tier_of: vec![0, 0, 1, 1],
                latency: vec![vec![us(85), us(10_000)], vec![us(10_000), us(85)]],
            }),
            ..NetworkConfig::paper_testbed()
        };
        assert_eq!(cfg.one_way_latency(0, 1), us(85));
        assert_eq!(cfg.one_way_latency(0, 2), us(10_000));
        assert_eq!(cfg.one_way_latency(2, 0), us(10_000));
        // Unassigned nodes land in tier 0.
        assert_eq!(cfg.one_way_latency(9, 2), us(10_000));
    }

    #[test]
    fn uplink_groups() {
        let up = UplinkSpec { group_of: vec![0, 0, 1, 1, 2], bandwidth: 2.5e9 };
        assert_eq!(up.group(0), 0);
        assert_eq!(up.group(4), 2);
        assert_eq!(up.group(17), 0);
        assert_eq!(up.num_groups(), 3);
    }
}
