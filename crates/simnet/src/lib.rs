//! # hoplite-simnet
//!
//! A small, deterministic discrete-event cluster-network simulator.
//!
//! This crate is the substrate that stands in for the Hoplite paper's 16-node AWS
//! testbed (m5.4xlarge, 10 Gbps). It models exactly the effects the paper's evaluation
//! depends on:
//!
//! * **per-NIC bandwidth serialization** (full duplex) — a node pushing one object to
//!   `n` receivers is uplink-bound, a node pulling `n` objects is downlink-bound;
//! * **propagation / RPC latency** — small control messages pay latency but do not
//!   contend for NIC bandwidth;
//! * **failure and recovery** with a configurable detection delay.
//!
//! It is generic over the actor type: the Hoplite data plane (`hoplite-cluster`) and
//! every baseline system (`hoplite-baselines`) run on the *same* simulated network, so
//! algorithmic comparisons are apples-to-apples, exactly as in the paper's testbed.
//!
//! ```
//! use hoplite_simnet::prelude::*;
//!
//! struct Echo;
//! impl SimActor for Echo {
//!     type Msg = &'static str;
//!     fn on_message(&mut self, from: usize, _msg: &'static str, ctx: &mut SimContext<'_, &'static str>) {
//!         if ctx.node() != 0 {
//!             ctx.send(from, "pong", 128);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(NetworkConfig::paper_testbed(), vec![Echo, Echo]);
//! sim.call_at(SimTime::ZERO, 0, |_a, ctx| ctx.send(1, "ping", 128));
//! sim.run_to_completion();
//! assert_eq!(sim.stats().messages_delivered, 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod nic;
pub mod sim;
pub mod time;

/// Common re-exports.
pub mod prelude {
    pub use crate::config::{LatencyTiers, LinkFaults, NetworkConfig, UplinkSpec};
    pub use crate::nic::Nic;
    pub use crate::sim::{SimActor, SimContext, SimStats, Simulation};
    pub use crate::time::{SimDuration, SimTime};
}

pub use prelude::*;
