//! The discrete-event simulation engine.
//!
//! A [`Simulation`] owns a set of actors (one per simulated node), a [`Nic`] pair per
//! node, and a time-ordered event queue. Actors are arbitrary state machines
//! implementing [`SimActor`]; they communicate only through [`SimContext::send`], which
//! routes messages through the NIC bandwidth model of [`crate::nic`].
//!
//! The engine supports node failure and recovery with a configurable detection delay,
//! external calls injected at chosen times (used by experiment scenarios to issue
//! client operations), and deterministic execution: ties in the event queue are broken
//! by insertion order, and the only randomness is the seeded per-message fault draw of
//! [`crate::config::LinkFaults`] — a hash of `(seed, link, message index)`, so every
//! run replays identically for the same seed.
//!
//! Beyond the uniform network, the engine honors the optional [`NetworkConfig`]
//! layers (per-node NIC speeds, latency tiers, shared group uplinks, link faults) and
//! two scheduled degradations used by fault sweeps: [`Simulation::partition_between`]
//! (transient network partition with TCP-like stall-and-heal semantics) and
//! [`Simulation::slow_node_between`] (straggler windows that divide a node's NIC
//! rate).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use crate::config::NetworkConfig;
use crate::nic::Nic;
use crate::time::{SimDuration, SimTime};

/// A simulated node's behaviour.
pub trait SimActor: Sized {
    /// Message type exchanged between actors.
    type Msg;

    /// Called once when the simulation starts (and again after a recovery restart).
    fn on_start(&mut self, _ctx: &mut SimContext<'_, Self::Msg>) {}

    /// A message from `from` finished arriving.
    fn on_message(&mut self, from: usize, msg: Self::Msg, ctx: &mut SimContext<'_, Self::Msg>);

    /// A timer armed via [`SimContext::set_timer`] fired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut SimContext<'_, Self::Msg>) {}

    /// Another node was declared failed (after the detection delay).
    fn on_peer_failed(&mut self, _peer: usize, _ctx: &mut SimContext<'_, Self::Msg>) {}

    /// A previously-failed node was declared recovered.
    fn on_peer_recovered(&mut self, _peer: usize, _ctx: &mut SimContext<'_, Self::Msg>) {}
}

/// Actions an actor can take during a callback.
enum Action<M> {
    Send { to: usize, msg: M, bytes: u64 },
    Timer { delay: SimDuration, token: u64 },
}

/// Handle through which an actor interacts with the simulation during a callback.
pub struct SimContext<'a, M> {
    node: usize,
    now: SimTime,
    actions: &'a mut Vec<Action<M>>,
}

impl<'a, M> SimContext<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this actor is running on.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Send `msg` (of `bytes` modelled size) to node `to`.
    pub fn send(&mut self, to: usize, msg: M, bytes: u64) {
        self.actions.push(Action::Send { to, msg, bytes });
    }

    /// Arm a timer that fires `delay` from now with the given token.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.actions.push(Action::Timer { delay, token });
    }
}

type ExternalCall<A> = Box<dyn FnOnce(&mut A, &mut SimContext<'_, <A as SimActor>::Msg>) + 'static>;

enum EventKind<A: SimActor> {
    /// A bulk message reached the receiver's NIC input.
    NicArrival { from: usize, to: usize, msg: A::Msg, bytes: u64 },
    /// A message finished arriving and is handed to the actor.
    Deliver { from: usize, to: usize, msg: A::Msg, bytes: u64 },
    /// A timer fires on `node`.
    Timer { node: usize, token: u64 },
    /// Kill a node.
    NodeFail { node: usize },
    /// Bring a node back (empty).
    NodeRecover { node: usize },
    /// Tell `node` that `peer` failed.
    PeerFailedNotice { node: usize, peer: usize },
    /// Tell `node` that `peer` recovered.
    PeerRecoveredNotice { node: usize, peer: usize },
    /// Run an injected closure against `node`'s actor.
    External { node: usize, call: ExternalCall<A> },
}

struct Event<A: SimActor> {
    time: SimTime,
    seq: u64,
    kind: EventKind<A>,
}

impl<A: SimActor> PartialEq for Event<A> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<A: SimActor> Eq for Event<A> {}
impl<A: SimActor> PartialOrd for Event<A> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<A: SimActor> Ord for Event<A> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the BinaryHeap becomes a min-heap on (time, seq).
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Aggregate statistics of a simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages delivered to actors.
    pub messages_delivered: u64,
    /// Modelled bytes delivered to actors.
    pub bytes_delivered: u64,
    /// Messages dropped because the destination (or source) node was down.
    pub messages_dropped: u64,
    /// Events processed in total.
    pub events_processed: u64,
    /// Messages whose first transmission was lost (they arrived late, after the
    /// modeled retransmission timeout). Only nonzero with [`NetworkConfig::faults`].
    pub messages_lost: u64,
    /// Messages delayed by reordering jitter (and re-sequenced behind the per-pair
    /// FIFO clamp). Only nonzero with [`NetworkConfig::faults`].
    pub messages_reordered: u64,
}

/// A scheduled transient partition: while active, messages crossing the side boundary
/// stall and are delivered after the heal (TCP retransmits across the cut).
struct PartitionWindow {
    from: SimTime,
    until: SimTime,
    side: Vec<bool>,
}

/// A scheduled straggler window: `node`'s NIC drains `factor`× slower while active.
struct SlowWindow {
    node: usize,
    from: SimTime,
    until: SimTime,
    factor: f64,
}

/// SplitMix64: the per-message deterministic fault draw.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Map a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The discrete-event simulator.
pub struct Simulation<A: SimActor> {
    cfg: NetworkConfig,
    actors: Vec<A>,
    nics: Vec<Nic>,
    /// Shared per-group uplink/downlink queues (empty without `cfg.uplinks`).
    uplinks: Vec<Nic>,
    /// Group of each node, padded to the cluster size (empty without `cfg.uplinks`).
    group_of: Vec<usize>,
    alive: Vec<bool>,
    queue: BinaryHeap<Event<A>>,
    now: SimTime,
    seq: u64,
    stats: SimStats,
    started: bool,
    partitions: Vec<PartitionWindow>,
    slow_windows: Vec<SlowWindow>,
    /// Per-message index feeding the fault hash.
    fault_draws: u64,
    /// Last scheduled arrival per (from, to): the FIFO clamp that keeps per-pair
    /// delivery in send order under jitter (TCP head-of-line blocking). Only
    /// maintained when faults are configured.
    last_arrival: HashMap<(usize, usize), SimTime>,
}

impl<A: SimActor> Simulation<A> {
    /// Create a simulation over the given actors (node `i` runs `actors[i]`).
    pub fn new(cfg: NetworkConfig, actors: Vec<A>) -> Self {
        let n = actors.len();
        let (uplinks, group_of) = match &cfg.uplinks {
            Some(up) => {
                (vec![Nic::default(); up.num_groups()], (0..n).map(|i| up.group(i)).collect())
            }
            None => (Vec::new(), Vec::new()),
        };
        Simulation {
            cfg,
            actors,
            nics: vec![Nic::default(); n],
            uplinks,
            group_of,
            alive: vec![true; n],
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            stats: SimStats::default(),
            started: false,
            partitions: Vec::new(),
            slow_windows: Vec::new(),
            fault_draws: 0,
            last_arrival: HashMap::new(),
        }
    }

    /// Number of simulated nodes.
    pub fn len(&self) -> usize {
        self.actors.len()
    }

    /// `true` when the simulation has no nodes.
    pub fn is_empty(&self) -> bool {
        self.actors.is_empty()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Immutable access to an actor (for reading results after a run).
    pub fn actor(&self, node: usize) -> &A {
        &self.actors[node]
    }

    /// Whether a node is currently alive.
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive[node]
    }

    /// Network configuration in effect.
    pub fn network(&self) -> &NetworkConfig {
        &self.cfg
    }

    fn push(&mut self, time: SimTime, kind: EventKind<A>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { time, seq, kind });
    }

    /// Schedule a closure to run against `node`'s actor at `at`.
    pub fn call_at<F>(&mut self, at: SimTime, node: usize, f: F)
    where
        F: FnOnce(&mut A, &mut SimContext<'_, A::Msg>) + 'static,
    {
        self.push(at, EventKind::External { node, call: Box::new(f) });
    }

    /// Schedule a node failure.
    pub fn fail_node_at(&mut self, at: SimTime, node: usize) {
        self.push(at, EventKind::NodeFail { node });
    }

    /// Schedule a node recovery.
    pub fn recover_node_at(&mut self, at: SimTime, node: usize) {
        self.push(at, EventKind::NodeRecover { node });
    }

    /// Schedule a transient partition between `from` and `until`: `side[i]` assigns
    /// node `i` to one half (nodes beyond the vector land on the `false` side).
    /// Messages sent across the boundary while the window is active stall and arrive
    /// one propagation delay after the heal — TCP retransmits across the cut, so no
    /// message is lost and per-pair ordering is preserved, but every cross-cut
    /// exchange (queries, pulls, acks) stalls for the duration.
    pub fn partition_between(&mut self, from: SimTime, until: SimTime, side: Vec<bool>) {
        self.partitions.push(PartitionWindow { from, until, side });
    }

    /// Schedule a straggler window: between `from` and `until`, `node`'s NIC (both
    /// directions) drains `factor`× slower than its configured rate. Transfers queued
    /// while the window is active serialize at the degraded rate.
    pub fn slow_node_between(&mut self, node: usize, from: SimTime, until: SimTime, factor: f64) {
        assert!(factor >= 1.0, "slow-down factor must be >= 1");
        self.slow_windows.push(SlowWindow { node, from, until, factor });
    }

    /// Effective NIC rate of `node` at `now`: the per-node bandwidth divided by the
    /// strongest active straggler window.
    fn node_rate(&self, node: usize, now: SimTime) -> f64 {
        let mut factor = 1.0f64;
        for w in &self.slow_windows {
            if w.node == node && now >= w.from && now < w.until && w.factor > factor {
                factor = w.factor;
            }
        }
        self.cfg.node_bandwidth(node) / factor
    }

    /// When an active partition separates `from` and `to` at `now`, the time the cut
    /// heals (the latest such heal across overlapping windows).
    fn partition_release(&self, from: usize, to: usize, now: SimTime) -> Option<SimTime> {
        let mut release: Option<SimTime> = None;
        for p in &self.partitions {
            if now >= p.from && now < p.until {
                let sf = p.side.get(from).copied().unwrap_or(false);
                let st = p.side.get(to).copied().unwrap_or(false);
                if sf != st {
                    release = Some(release.map_or(p.until, |r| r.max(p.until)));
                }
            }
        }
        release
    }

    /// Per-message fault draw: extra delivery delay plus (lost, reordered) flags.
    fn fault_penalty(&mut self, from: usize, to: usize) -> (SimDuration, bool, bool) {
        let Some(f) = &self.cfg.faults else { return (SimDuration::ZERO, false, false) };
        let idx = self.fault_draws;
        self.fault_draws += 1;
        let h = splitmix64(f.seed ^ ((from as u64) << 40) ^ ((to as u64) << 20) ^ idx);
        let u = unit(h);
        if u < f.loss {
            (f.retransmit, true, false)
        } else if u < f.loss + f.reorder {
            let frac = unit(splitmix64(h));
            (SimDuration::from_secs_f64(f.jitter.as_secs_f64() * frac), false, true)
        } else {
            (SimDuration::ZERO, false, false)
        }
    }

    /// Clamp `t` so per-pair arrivals stay in send order (only needed once jitter or
    /// partitions can delay an earlier message past a later one).
    fn fifo_clamp(&mut self, from: usize, to: usize, t: SimTime) -> SimTime {
        if self.cfg.faults.is_none() && self.partitions.is_empty() {
            return t;
        }
        let last = self.last_arrival.entry((from, to)).or_insert(SimTime::ZERO);
        let t = t.max(*last);
        *last = t;
        t
    }

    /// Groups of `from` and `to` plus the shared uplink bandwidth, when group uplinks
    /// are configured and the nodes sit in different groups.
    fn cross_group(&self, from: usize, to: usize) -> Option<(usize, usize, f64)> {
        let up = self.cfg.uplinks.as_ref()?;
        let (gf, gt) = (self.group_of[from], self.group_of[to]);
        if gf == gt {
            None
        } else {
            Some((gf, gt, up.bandwidth))
        }
    }

    /// Run until the event queue is empty or `deadline` is reached. Returns the time of
    /// the last processed event.
    pub fn run_until_idle(&mut self, deadline: SimTime) -> SimTime {
        self.ensure_started();
        while let Some(ev) = self.queue.peek() {
            if ev.time > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.now = ev.time;
            self.dispatch(ev);
        }
        self.now
    }

    /// Run everything (no deadline). Panics if the simulation exceeds an internal event
    /// budget, which indicates a livelock in the protocol under test.
    pub fn run_to_completion(&mut self) -> SimTime {
        self.run_until_idle(SimTime(u64::MAX))
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for node in 0..self.actors.len() {
            let mut actions = Vec::new();
            {
                let mut ctx = SimContext { node, now: self.now, actions: &mut actions };
                self.actors[node].on_start(&mut ctx);
            }
            self.apply_actions(node, actions);
        }
    }

    fn dispatch(&mut self, ev: Event<A>) {
        self.stats.events_processed += 1;
        match ev.kind {
            EventKind::NicArrival { from, to, msg, bytes } => {
                if !self.alive[to] {
                    self.stats.messages_dropped += 1;
                    return;
                }
                // Cross-group bulk traffic serializes through the receiver group's
                // shared downlink before the endpoint NIC.
                let mut at = self.now;
                if let Some((_gf, gt, up_bw)) = self.cross_group(from, to) {
                    at = self.uplinks[gt].rx.enqueue_at(at, bytes, up_bw);
                }
                let rate = self.node_rate(to, self.now);
                let deliver_at = self.nics[to].rx.enqueue_at(at, bytes, rate);
                self.push(deliver_at, EventKind::Deliver { from, to, msg, bytes });
            }
            EventKind::Deliver { from, to, msg, bytes } => {
                if !self.alive[to] {
                    self.stats.messages_dropped += 1;
                    return;
                }
                self.stats.messages_delivered += 1;
                self.stats.bytes_delivered += bytes;
                let mut actions = Vec::new();
                {
                    let mut ctx = SimContext { node: to, now: self.now, actions: &mut actions };
                    self.actors[to].on_message(from, msg, &mut ctx);
                }
                self.apply_actions(to, actions);
            }
            EventKind::Timer { node, token } => {
                if !self.alive[node] {
                    return;
                }
                let mut actions = Vec::new();
                {
                    let mut ctx = SimContext { node, now: self.now, actions: &mut actions };
                    self.actors[node].on_timer(token, &mut ctx);
                }
                self.apply_actions(node, actions);
            }
            EventKind::NodeFail { node } => {
                if !self.alive[node] {
                    return;
                }
                self.alive[node] = false;
                self.nics[node].reset();
                let notice_at = self.now + self.cfg.failure_detection_delay;
                for other in 0..self.actors.len() {
                    if other != node && self.alive[other] {
                        self.push(
                            notice_at,
                            EventKind::PeerFailedNotice { node: other, peer: node },
                        );
                    }
                }
            }
            EventKind::NodeRecover { node } => {
                if self.alive[node] {
                    return;
                }
                self.alive[node] = true;
                self.nics[node].reset();
                let mut actions = Vec::new();
                {
                    let mut ctx = SimContext { node, now: self.now, actions: &mut actions };
                    self.actors[node].on_start(&mut ctx);
                }
                self.apply_actions(node, actions);
                let notice_at = self.now + self.cfg.failure_detection_delay;
                for other in 0..self.actors.len() {
                    if other != node && self.alive[other] {
                        self.push(
                            notice_at,
                            EventKind::PeerRecoveredNotice { node: other, peer: node },
                        );
                    }
                }
            }
            EventKind::PeerFailedNotice { node, peer } => {
                if !self.alive[node] {
                    return;
                }
                let mut actions = Vec::new();
                {
                    let mut ctx = SimContext { node, now: self.now, actions: &mut actions };
                    self.actors[node].on_peer_failed(peer, &mut ctx);
                }
                self.apply_actions(node, actions);
            }
            EventKind::PeerRecoveredNotice { node, peer } => {
                if !self.alive[node] {
                    return;
                }
                let mut actions = Vec::new();
                {
                    let mut ctx = SimContext { node, now: self.now, actions: &mut actions };
                    self.actors[node].on_peer_recovered(peer, &mut ctx);
                }
                self.apply_actions(node, actions);
            }
            EventKind::External { node, call } => {
                if !self.alive[node] {
                    return;
                }
                let mut actions = Vec::new();
                {
                    let mut ctx = SimContext { node, now: self.now, actions: &mut actions };
                    call(&mut self.actors[node], &mut ctx);
                }
                self.apply_actions(node, actions);
            }
        }
    }

    fn apply_actions(&mut self, from: usize, actions: Vec<Action<A::Msg>>) {
        for action in actions {
            match action {
                Action::Send { to, msg, bytes } => {
                    if !self.alive[from] {
                        self.stats.messages_dropped += 1;
                        continue;
                    }
                    if to == from {
                        // Loopback: latency only; no faults, no partitions.
                        let at = self.now + self.cfg.loopback_latency;
                        self.push(at, EventKind::Deliver { from, to, msg, bytes });
                        continue;
                    }
                    let (penalty, lost, reordered) = self.fault_penalty(from, to);
                    if lost {
                        self.stats.messages_lost += 1;
                    }
                    if reordered {
                        self.stats.messages_reordered += 1;
                    }
                    let heal = self.partition_release(from, to, self.now);
                    let latency = self.cfg.one_way_latency(from, to);
                    if bytes <= self.cfg.control_cutoff {
                        // Control RPC: pays latency but does not contend for NIC
                        // bandwidth (packets interleave with bulk flows).
                        let mut at = self.now + latency + penalty;
                        if let Some(h) = heal {
                            at = at.max(h + latency);
                        }
                        let at = self.fifo_clamp(from, to, at);
                        self.push(at, EventKind::Deliver { from, to, msg, bytes });
                    } else {
                        let rate = self.node_rate(from, self.now);
                        let tx_done = self.nics[from].tx.enqueue_at(self.now, bytes, rate);
                        // Cross-group traffic also serializes through the sender
                        // group's shared uplink (the oversubscription bottleneck).
                        let mut depart = tx_done;
                        if let Some((gf, _gt, up_bw)) = self.cross_group(from, to) {
                            depart = self.uplinks[gf].tx.enqueue_at(tx_done, bytes, up_bw);
                        }
                        let mut arrival = depart + latency + penalty;
                        if let Some(h) = heal {
                            arrival = arrival.max(h + latency);
                        }
                        let arrival = self.fifo_clamp(from, to, arrival);
                        self.push(arrival, EventKind::NicArrival { from, to, msg, bytes });
                    }
                }
                Action::Timer { delay, token } => {
                    self.push(self.now + delay, EventKind::Timer { node: from, token });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simple flooding actor used to exercise the engine: node 0 sends `size`-byte
    /// messages to everyone, everyone records arrival time.
    struct Flood {
        me: usize,
        n: usize,
        size: u64,
        received_at: Option<SimTime>,
        peers_failed: Vec<usize>,
    }

    impl SimActor for Flood {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut SimContext<'_, u64>) {
            if self.me == 0 {
                for to in 1..self.n {
                    ctx.send(to, 42, self.size);
                }
            }
        }
        fn on_message(&mut self, _from: usize, _msg: u64, ctx: &mut SimContext<'_, u64>) {
            self.received_at = Some(ctx.now());
        }
        fn on_peer_failed(&mut self, peer: usize, _ctx: &mut SimContext<'_, u64>) {
            self.peers_failed.push(peer);
        }
    }

    fn flood(n: usize, size: u64) -> Vec<Flood> {
        (0..n)
            .map(|me| Flood { me, n, size, received_at: None, peers_failed: Vec::new() })
            .collect()
    }

    #[test]
    fn sender_uplink_serializes_bulk_transfers() {
        let cfg = NetworkConfig {
            bandwidth: 1e9,
            latency: SimDuration::from_micros(100),
            ..NetworkConfig::paper_testbed()
        };
        let mut sim = Simulation::new(cfg, flood(5, 10_000_000)); // 10 MB to 4 receivers
        sim.run_to_completion();
        // The last receiver can only finish after the sender pushed all 40 MB through
        // its uplink: >= 40 ms.
        let latest = (1..5).map(|i| sim.actor(i).received_at.expect("received")).max().unwrap();
        assert!(latest.as_secs_f64() >= 0.040, "latest = {latest:?}");
        let earliest = (1..5).map(|i| sim.actor(i).received_at.expect("received")).min().unwrap();
        assert!(earliest.as_secs_f64() >= 0.010 && earliest.as_secs_f64() < 0.025);
    }

    #[test]
    fn control_messages_bypass_bandwidth_queues() {
        let cfg = NetworkConfig {
            bandwidth: 1e9,
            latency: SimDuration::from_micros(100),
            control_cutoff: 4096,
            ..NetworkConfig::paper_testbed()
        };
        let mut sim = Simulation::new(cfg, flood(3, 128));
        sim.run_to_completion();
        for i in 1..3 {
            let t = sim.actor(i).received_at.unwrap();
            assert_eq!(t.as_nanos(), 100_000, "latency only");
        }
    }

    #[test]
    fn failure_notifications_arrive_after_detection_delay() {
        let cfg = NetworkConfig {
            failure_detection_delay: SimDuration::from_millis(500),
            ..NetworkConfig::paper_testbed()
        };
        let mut sim = Simulation::new(cfg, flood(3, 128));
        sim.fail_node_at(SimTime::from_secs_f64(1.0), 2);
        sim.run_to_completion();
        assert!(!sim.is_alive(2));
        assert_eq!(sim.actor(0).peers_failed, vec![2]);
        assert_eq!(sim.actor(1).peers_failed, vec![2]);
        assert!(sim.now().as_secs_f64() >= 1.5);
    }

    #[test]
    fn messages_to_failed_nodes_are_dropped() {
        let cfg = NetworkConfig::paper_testbed();
        let mut sim = Simulation::new(cfg, flood(2, 128));
        sim.fail_node_at(SimTime::ZERO, 1);
        // Node 0 sends a message to node 1 after the failure.
        sim.call_at(SimTime::from_secs_f64(1.0), 0, |_actor, ctx| {
            ctx.send(1, 7, 128);
        });
        sim.run_to_completion();
        assert!(sim.actor(1).received_at.is_none() || sim.stats().messages_dropped > 0);
    }

    #[test]
    fn external_calls_and_timers_fire_in_order() {
        struct Ticker {
            fired: Vec<(u64, SimTime)>,
        }
        impl SimActor for Ticker {
            type Msg = ();
            fn on_message(&mut self, _f: usize, _m: (), _c: &mut SimContext<'_, ()>) {}
            fn on_timer(&mut self, token: u64, ctx: &mut SimContext<'_, ()>) {
                self.fired.push((token, ctx.now()));
                if token < 3 {
                    ctx.set_timer(SimDuration::from_millis(10), token + 1);
                }
            }
        }
        let mut sim =
            Simulation::new(NetworkConfig::paper_testbed(), vec![Ticker { fired: vec![] }]);
        sim.call_at(SimTime::ZERO, 0, |_a, ctx| ctx.set_timer(SimDuration::from_millis(5), 1));
        sim.run_to_completion();
        let fired = &sim.actor(0).fired;
        assert_eq!(fired.iter().map(|(t, _)| *t).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(fired[2].1.as_nanos(), 25_000_000);
    }

    #[test]
    fn recovery_restarts_the_actor() {
        let cfg = NetworkConfig {
            failure_detection_delay: SimDuration::from_millis(1),
            ..NetworkConfig::paper_testbed()
        };
        let mut sim = Simulation::new(cfg, flood(3, 64));
        sim.fail_node_at(SimTime::from_secs_f64(0.1), 0);
        sim.recover_node_at(SimTime::from_secs_f64(0.2), 0);
        sim.run_to_completion();
        assert!(sim.is_alive(0));
        // on_start ran again for node 0 after recovery, so receivers saw a second send.
        assert!(sim.stats().messages_delivered >= 4);
    }

    #[test]
    fn heterogeneous_nics_scale_transfer_time() {
        // Node 0 → 1 at 1 GB/s and node 2 → 3 at 2 GB/s, same 10 MB payload: the
        // faster pair finishes in half the serialization time.
        let cfg = NetworkConfig {
            bandwidth: 1e9,
            node_bandwidth: vec![1e9, 1e9, 2e9, 2e9],
            latency: SimDuration::from_micros(100),
            ..NetworkConfig::paper_testbed()
        };
        let mut sim = Simulation::new(cfg, flood(4, 0));
        sim.call_at(SimTime::ZERO, 0, |_a, ctx| ctx.send(1, 1, 10_000_000));
        sim.call_at(SimTime::ZERO, 2, |_a, ctx| ctx.send(3, 2, 10_000_000));
        sim.run_to_completion();
        let slow = sim.actor(1).received_at.unwrap().as_secs_f64();
        let fast = sim.actor(3).received_at.unwrap().as_secs_f64();
        // tx + rx serialization dominate: 20 ms vs 10 ms (plus latency).
        assert!(slow > 0.019 && slow < 0.022, "slow = {slow}");
        assert!(fast > 0.009 && fast < 0.012, "fast = {fast}");
    }

    #[test]
    fn oversubscribed_uplink_throttles_cross_group_flows() {
        use crate::config::UplinkSpec;
        // Two racks of two nodes; the shared uplink runs at node speed (so two
        // concurrent cross-rack flows halve each other), intra-rack flows don't touch
        // it.
        let cfg = NetworkConfig {
            bandwidth: 1e9,
            latency: SimDuration::from_micros(100),
            uplinks: Some(UplinkSpec { group_of: vec![0, 0, 1, 1], bandwidth: 1e9 }),
            ..NetworkConfig::paper_testbed()
        };
        let mut sim = Simulation::new(cfg.clone(), flood(4, 0));
        // Both rack-0 nodes send 10 MB to rack 1 at t=0: the shared uplink serializes
        // 20 MB, so the later flow lands at >= 20 ms + rx.
        sim.call_at(SimTime::ZERO, 0, |_a, ctx| ctx.send(2, 1, 10_000_000));
        sim.call_at(SimTime::ZERO, 1, |_a, ctx| ctx.send(3, 2, 10_000_000));
        sim.run_to_completion();
        let last =
            sim.actor(2).received_at.unwrap().max(sim.actor(3).received_at.unwrap()).as_secs_f64();
        assert!(last >= 0.030, "uplink contention: {last}");
        // The same pair of flows kept intra-rack never touches the uplink.
        let mut sim = Simulation::new(cfg, flood(4, 0));
        sim.call_at(SimTime::ZERO, 0, |_a, ctx| ctx.send(1, 1, 10_000_000));
        sim.call_at(SimTime::ZERO, 2, |_a, ctx| ctx.send(3, 2, 10_000_000));
        sim.run_to_completion();
        let intra =
            sim.actor(1).received_at.unwrap().max(sim.actor(3).received_at.unwrap()).as_secs_f64();
        assert!(intra < 0.025, "no uplink contention intra-rack: {intra}");
    }

    #[test]
    fn latency_tiers_apply_to_cross_tier_pairs() {
        use crate::config::LatencyTiers;
        let us = SimDuration::from_micros;
        let cfg = NetworkConfig {
            latency: us(100),
            latency_tiers: Some(LatencyTiers {
                tier_of: vec![0, 0, 1],
                latency: vec![vec![us(100), us(10_000)], vec![us(10_000), us(100)]],
            }),
            ..NetworkConfig::paper_testbed()
        };
        let mut sim = Simulation::new(cfg, flood(3, 0));
        sim.call_at(SimTime::ZERO, 0, |_a, ctx| {
            ctx.send(1, 1, 128); // intra-site
            ctx.send(2, 2, 128); // cross-site
        });
        sim.run_to_completion();
        assert_eq!(sim.actor(1).received_at.unwrap().as_nanos(), 100_000);
        assert_eq!(sim.actor(2).received_at.unwrap().as_nanos(), 10_000_000);
    }

    #[test]
    fn link_faults_are_deterministic_and_preserve_pair_order() {
        use crate::config::LinkFaults;
        let faults = LinkFaults {
            loss: 0.2,
            reorder: 0.5,
            jitter: SimDuration::from_millis(5),
            retransmit: SimDuration::from_millis(200),
            seed: 7,
        };
        let run = |seed: u64| {
            let cfg = NetworkConfig {
                latency: SimDuration::from_micros(100),
                faults: Some(LinkFaults { seed, ..faults.clone() }),
                ..NetworkConfig::paper_testbed()
            };
            struct Recorder {
                got: Vec<u64>,
            }
            impl SimActor for Recorder {
                type Msg = u64;
                fn on_message(&mut self, _f: usize, m: u64, _c: &mut SimContext<'_, u64>) {
                    self.got.push(m);
                }
            }
            let actors = (0..2).map(|_| Recorder { got: vec![] }).collect();
            let mut sim = Simulation::new(cfg, actors);
            sim.call_at(SimTime::ZERO, 0, |_a, ctx| {
                for m in 0..50 {
                    ctx.send(1, m, 128);
                }
            });
            sim.run_to_completion();
            (sim.actor(1).got.clone(), sim.stats().clone())
        };
        let (order_a, stats_a) = run(7);
        let (order_b, stats_b) = run(7);
        // Deterministic replay for the same seed.
        assert_eq!(order_a, order_b);
        assert_eq!(stats_a, stats_b);
        // Faults actually fired...
        assert!(stats_a.messages_lost > 0, "loss drew at p=0.2 over 50 messages");
        assert!(stats_a.messages_reordered > 0, "reorder drew at p=0.5 over 50 messages");
        // ...yet per-pair delivery order is preserved (TCP head-of-line semantics).
        assert_eq!(order_a, (0..50).collect::<Vec<u64>>());
        // A different seed draws a different schedule.
        let (_, stats_c) = run(8);
        assert_ne!((stats_a.messages_lost, stats_a.messages_reordered), {
            (stats_c.messages_lost, stats_c.messages_reordered)
        });
    }

    #[test]
    fn partition_stalls_cross_cut_messages_until_heal() {
        let cfg = NetworkConfig {
            latency: SimDuration::from_micros(100),
            ..NetworkConfig::paper_testbed()
        };
        let mut sim = Simulation::new(cfg, flood(4, 0));
        // Nodes {2, 3} are cut off from {0, 1} between 1 s and 2 s.
        sim.partition_between(
            SimTime::from_secs_f64(1.0),
            SimTime::from_secs_f64(2.0),
            vec![false, false, true, true],
        );
        sim.call_at(SimTime::from_secs_f64(1.5), 0, |_a, ctx| {
            ctx.send(2, 1, 128); // crosses the cut: stalls until the heal
            ctx.send(1, 2, 128); // same side: unaffected
        });
        sim.run_to_completion();
        let stalled = sim.actor(2).received_at.unwrap().as_secs_f64();
        let same_side = sim.actor(1).received_at.unwrap().as_secs_f64();
        assert!(stalled >= 2.0, "crossed the cut after the heal: {stalled}");
        assert!(same_side < 1.6, "same-side message unaffected: {same_side}");
    }

    #[test]
    fn straggler_window_slows_the_node_then_releases() {
        let cfg = NetworkConfig {
            bandwidth: 1e9,
            latency: SimDuration::from_micros(100),
            ..NetworkConfig::paper_testbed()
        };
        let mut sim = Simulation::new(cfg, flood(2, 0));
        // Node 0's NIC is 10× slower between 0 and 1 s.
        sim.slow_node_between(0, SimTime::ZERO, SimTime::from_secs_f64(1.0), 10.0);
        sim.call_at(SimTime::ZERO, 0, |_a, ctx| ctx.send(1, 1, 10_000_000));
        sim.run_to_completion();
        // tx at 0.1 GB/s = 100 ms (rx still at full rate: +10 ms).
        let t = sim.actor(1).received_at.unwrap().as_secs_f64();
        assert!(t >= 0.100, "straggler tx dominates: {t}");
        // After the window, the same transfer runs at full speed.
        let cfg = NetworkConfig {
            bandwidth: 1e9,
            latency: SimDuration::from_micros(100),
            ..NetworkConfig::paper_testbed()
        };
        let mut sim = Simulation::new(cfg, flood(2, 0));
        sim.slow_node_between(0, SimTime::ZERO, SimTime::from_secs_f64(1.0), 10.0);
        sim.call_at(SimTime::from_secs_f64(2.0), 0, |_a, ctx| ctx.send(1, 1, 10_000_000));
        sim.run_to_completion();
        let t = sim.actor(1).received_at.unwrap().as_secs_f64() - 2.0;
        assert!(t < 0.025, "window released: {t}");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = Simulation::new(NetworkConfig::paper_testbed(), flood(8, 1_000_000));
            sim.run_to_completion();
            (1..8).map(|i| sim.actor(i).received_at.unwrap().as_nanos()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
