//! The discrete-event simulation engine.
//!
//! A [`Simulation`] owns a set of actors (one per simulated node), a [`Nic`] pair per
//! node, and a time-ordered event queue. Actors are arbitrary state machines
//! implementing [`SimActor`]; they communicate only through [`SimContext::send`], which
//! routes messages through the NIC bandwidth model of [`crate::nic`].
//!
//! The engine supports node failure and recovery with a configurable detection delay,
//! external calls injected at chosen times (used by experiment scenarios to issue
//! client operations), and deterministic execution: ties in the event queue are broken
//! by insertion order, and no randomness is used anywhere in the engine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::config::NetworkConfig;
use crate::nic::{rx_deliver, tx_and_propagate, Nic};
use crate::time::{SimDuration, SimTime};

/// A simulated node's behaviour.
pub trait SimActor: Sized {
    /// Message type exchanged between actors.
    type Msg;

    /// Called once when the simulation starts (and again after a recovery restart).
    fn on_start(&mut self, _ctx: &mut SimContext<'_, Self::Msg>) {}

    /// A message from `from` finished arriving.
    fn on_message(&mut self, from: usize, msg: Self::Msg, ctx: &mut SimContext<'_, Self::Msg>);

    /// A timer armed via [`SimContext::set_timer`] fired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut SimContext<'_, Self::Msg>) {}

    /// Another node was declared failed (after the detection delay).
    fn on_peer_failed(&mut self, _peer: usize, _ctx: &mut SimContext<'_, Self::Msg>) {}

    /// A previously-failed node was declared recovered.
    fn on_peer_recovered(&mut self, _peer: usize, _ctx: &mut SimContext<'_, Self::Msg>) {}
}

/// Actions an actor can take during a callback.
enum Action<M> {
    Send { to: usize, msg: M, bytes: u64 },
    Timer { delay: SimDuration, token: u64 },
}

/// Handle through which an actor interacts with the simulation during a callback.
pub struct SimContext<'a, M> {
    node: usize,
    now: SimTime,
    actions: &'a mut Vec<Action<M>>,
}

impl<'a, M> SimContext<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this actor is running on.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Send `msg` (of `bytes` modelled size) to node `to`.
    pub fn send(&mut self, to: usize, msg: M, bytes: u64) {
        self.actions.push(Action::Send { to, msg, bytes });
    }

    /// Arm a timer that fires `delay` from now with the given token.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.actions.push(Action::Timer { delay, token });
    }
}

type ExternalCall<A> = Box<dyn FnOnce(&mut A, &mut SimContext<'_, <A as SimActor>::Msg>) + 'static>;

enum EventKind<A: SimActor> {
    /// A bulk message reached the receiver's NIC input.
    NicArrival { from: usize, to: usize, msg: A::Msg, bytes: u64 },
    /// A message finished arriving and is handed to the actor.
    Deliver { from: usize, to: usize, msg: A::Msg, bytes: u64 },
    /// A timer fires on `node`.
    Timer { node: usize, token: u64 },
    /// Kill a node.
    NodeFail { node: usize },
    /// Bring a node back (empty).
    NodeRecover { node: usize },
    /// Tell `node` that `peer` failed.
    PeerFailedNotice { node: usize, peer: usize },
    /// Tell `node` that `peer` recovered.
    PeerRecoveredNotice { node: usize, peer: usize },
    /// Run an injected closure against `node`'s actor.
    External { node: usize, call: ExternalCall<A> },
}

struct Event<A: SimActor> {
    time: SimTime,
    seq: u64,
    kind: EventKind<A>,
}

impl<A: SimActor> PartialEq for Event<A> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<A: SimActor> Eq for Event<A> {}
impl<A: SimActor> PartialOrd for Event<A> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<A: SimActor> Ord for Event<A> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the BinaryHeap becomes a min-heap on (time, seq).
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Aggregate statistics of a simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages delivered to actors.
    pub messages_delivered: u64,
    /// Modelled bytes delivered to actors.
    pub bytes_delivered: u64,
    /// Messages dropped because the destination (or source) node was down.
    pub messages_dropped: u64,
    /// Events processed in total.
    pub events_processed: u64,
}

/// The discrete-event simulator.
pub struct Simulation<A: SimActor> {
    cfg: NetworkConfig,
    actors: Vec<A>,
    nics: Vec<Nic>,
    alive: Vec<bool>,
    queue: BinaryHeap<Event<A>>,
    now: SimTime,
    seq: u64,
    stats: SimStats,
    started: bool,
}

impl<A: SimActor> Simulation<A> {
    /// Create a simulation over the given actors (node `i` runs `actors[i]`).
    pub fn new(cfg: NetworkConfig, actors: Vec<A>) -> Self {
        let n = actors.len();
        Simulation {
            cfg,
            actors,
            nics: vec![Nic::default(); n],
            alive: vec![true; n],
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            stats: SimStats::default(),
            started: false,
        }
    }

    /// Number of simulated nodes.
    pub fn len(&self) -> usize {
        self.actors.len()
    }

    /// `true` when the simulation has no nodes.
    pub fn is_empty(&self) -> bool {
        self.actors.is_empty()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Immutable access to an actor (for reading results after a run).
    pub fn actor(&self, node: usize) -> &A {
        &self.actors[node]
    }

    /// Whether a node is currently alive.
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive[node]
    }

    /// Network configuration in effect.
    pub fn network(&self) -> &NetworkConfig {
        &self.cfg
    }

    fn push(&mut self, time: SimTime, kind: EventKind<A>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { time, seq, kind });
    }

    /// Schedule a closure to run against `node`'s actor at `at`.
    pub fn call_at<F>(&mut self, at: SimTime, node: usize, f: F)
    where
        F: FnOnce(&mut A, &mut SimContext<'_, A::Msg>) + 'static,
    {
        self.push(at, EventKind::External { node, call: Box::new(f) });
    }

    /// Schedule a node failure.
    pub fn fail_node_at(&mut self, at: SimTime, node: usize) {
        self.push(at, EventKind::NodeFail { node });
    }

    /// Schedule a node recovery.
    pub fn recover_node_at(&mut self, at: SimTime, node: usize) {
        self.push(at, EventKind::NodeRecover { node });
    }

    /// Run until the event queue is empty or `deadline` is reached. Returns the time of
    /// the last processed event.
    pub fn run_until_idle(&mut self, deadline: SimTime) -> SimTime {
        self.ensure_started();
        while let Some(ev) = self.queue.peek() {
            if ev.time > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.now = ev.time;
            self.dispatch(ev);
        }
        self.now
    }

    /// Run everything (no deadline). Panics if the simulation exceeds an internal event
    /// budget, which indicates a livelock in the protocol under test.
    pub fn run_to_completion(&mut self) -> SimTime {
        self.run_until_idle(SimTime(u64::MAX))
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for node in 0..self.actors.len() {
            let mut actions = Vec::new();
            {
                let mut ctx = SimContext { node, now: self.now, actions: &mut actions };
                self.actors[node].on_start(&mut ctx);
            }
            self.apply_actions(node, actions);
        }
    }

    fn dispatch(&mut self, ev: Event<A>) {
        self.stats.events_processed += 1;
        match ev.kind {
            EventKind::NicArrival { from, to, msg, bytes } => {
                if !self.alive[to] {
                    self.stats.messages_dropped += 1;
                    return;
                }
                let deliver_at = rx_deliver(&mut self.nics[to], self.now, bytes, &self.cfg);
                self.push(deliver_at, EventKind::Deliver { from, to, msg, bytes });
            }
            EventKind::Deliver { from, to, msg, bytes } => {
                if !self.alive[to] {
                    self.stats.messages_dropped += 1;
                    return;
                }
                self.stats.messages_delivered += 1;
                self.stats.bytes_delivered += bytes;
                let mut actions = Vec::new();
                {
                    let mut ctx = SimContext { node: to, now: self.now, actions: &mut actions };
                    self.actors[to].on_message(from, msg, &mut ctx);
                }
                self.apply_actions(to, actions);
            }
            EventKind::Timer { node, token } => {
                if !self.alive[node] {
                    return;
                }
                let mut actions = Vec::new();
                {
                    let mut ctx = SimContext { node, now: self.now, actions: &mut actions };
                    self.actors[node].on_timer(token, &mut ctx);
                }
                self.apply_actions(node, actions);
            }
            EventKind::NodeFail { node } => {
                if !self.alive[node] {
                    return;
                }
                self.alive[node] = false;
                self.nics[node].reset();
                let notice_at = self.now + self.cfg.failure_detection_delay;
                for other in 0..self.actors.len() {
                    if other != node && self.alive[other] {
                        self.push(
                            notice_at,
                            EventKind::PeerFailedNotice { node: other, peer: node },
                        );
                    }
                }
            }
            EventKind::NodeRecover { node } => {
                if self.alive[node] {
                    return;
                }
                self.alive[node] = true;
                self.nics[node].reset();
                let mut actions = Vec::new();
                {
                    let mut ctx = SimContext { node, now: self.now, actions: &mut actions };
                    self.actors[node].on_start(&mut ctx);
                }
                self.apply_actions(node, actions);
                let notice_at = self.now + self.cfg.failure_detection_delay;
                for other in 0..self.actors.len() {
                    if other != node && self.alive[other] {
                        self.push(
                            notice_at,
                            EventKind::PeerRecoveredNotice { node: other, peer: node },
                        );
                    }
                }
            }
            EventKind::PeerFailedNotice { node, peer } => {
                if !self.alive[node] {
                    return;
                }
                let mut actions = Vec::new();
                {
                    let mut ctx = SimContext { node, now: self.now, actions: &mut actions };
                    self.actors[node].on_peer_failed(peer, &mut ctx);
                }
                self.apply_actions(node, actions);
            }
            EventKind::PeerRecoveredNotice { node, peer } => {
                if !self.alive[node] {
                    return;
                }
                let mut actions = Vec::new();
                {
                    let mut ctx = SimContext { node, now: self.now, actions: &mut actions };
                    self.actors[node].on_peer_recovered(peer, &mut ctx);
                }
                self.apply_actions(node, actions);
            }
            EventKind::External { node, call } => {
                if !self.alive[node] {
                    return;
                }
                let mut actions = Vec::new();
                {
                    let mut ctx = SimContext { node, now: self.now, actions: &mut actions };
                    call(&mut self.actors[node], &mut ctx);
                }
                self.apply_actions(node, actions);
            }
        }
    }

    fn apply_actions(&mut self, from: usize, actions: Vec<Action<A::Msg>>) {
        for action in actions {
            match action {
                Action::Send { to, msg, bytes } => {
                    if !self.alive[from] {
                        self.stats.messages_dropped += 1;
                        continue;
                    }
                    if to == from {
                        // Loopback: latency only.
                        let at = self.now + self.cfg.loopback_latency;
                        self.push(at, EventKind::Deliver { from, to, msg, bytes });
                    } else if bytes <= self.cfg.control_cutoff {
                        // Control RPC: pays latency but does not contend for NIC
                        // bandwidth (packets interleave with bulk flows).
                        let at = self.now + self.cfg.latency;
                        self.push(at, EventKind::Deliver { from, to, msg, bytes });
                    } else {
                        let (_tx_done, arrival) =
                            tx_and_propagate(&mut self.nics[from], self.now, bytes, &self.cfg);
                        self.push(arrival, EventKind::NicArrival { from, to, msg, bytes });
                    }
                }
                Action::Timer { delay, token } => {
                    self.push(self.now + delay, EventKind::Timer { node: from, token });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simple flooding actor used to exercise the engine: node 0 sends `size`-byte
    /// messages to everyone, everyone records arrival time.
    struct Flood {
        me: usize,
        n: usize,
        size: u64,
        received_at: Option<SimTime>,
        peers_failed: Vec<usize>,
    }

    impl SimActor for Flood {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut SimContext<'_, u64>) {
            if self.me == 0 {
                for to in 1..self.n {
                    ctx.send(to, 42, self.size);
                }
            }
        }
        fn on_message(&mut self, _from: usize, _msg: u64, ctx: &mut SimContext<'_, u64>) {
            self.received_at = Some(ctx.now());
        }
        fn on_peer_failed(&mut self, peer: usize, _ctx: &mut SimContext<'_, u64>) {
            self.peers_failed.push(peer);
        }
    }

    fn flood(n: usize, size: u64) -> Vec<Flood> {
        (0..n)
            .map(|me| Flood { me, n, size, received_at: None, peers_failed: Vec::new() })
            .collect()
    }

    #[test]
    fn sender_uplink_serializes_bulk_transfers() {
        let cfg = NetworkConfig {
            bandwidth: 1e9,
            latency: SimDuration::from_micros(100),
            ..NetworkConfig::paper_testbed()
        };
        let mut sim = Simulation::new(cfg, flood(5, 10_000_000)); // 10 MB to 4 receivers
        sim.run_to_completion();
        // The last receiver can only finish after the sender pushed all 40 MB through
        // its uplink: >= 40 ms.
        let latest = (1..5).map(|i| sim.actor(i).received_at.expect("received")).max().unwrap();
        assert!(latest.as_secs_f64() >= 0.040, "latest = {latest:?}");
        let earliest = (1..5).map(|i| sim.actor(i).received_at.expect("received")).min().unwrap();
        assert!(earliest.as_secs_f64() >= 0.010 && earliest.as_secs_f64() < 0.025);
    }

    #[test]
    fn control_messages_bypass_bandwidth_queues() {
        let cfg = NetworkConfig {
            bandwidth: 1e9,
            latency: SimDuration::from_micros(100),
            control_cutoff: 4096,
            ..NetworkConfig::paper_testbed()
        };
        let mut sim = Simulation::new(cfg, flood(3, 128));
        sim.run_to_completion();
        for i in 1..3 {
            let t = sim.actor(i).received_at.unwrap();
            assert_eq!(t.as_nanos(), 100_000, "latency only");
        }
    }

    #[test]
    fn failure_notifications_arrive_after_detection_delay() {
        let cfg = NetworkConfig {
            failure_detection_delay: SimDuration::from_millis(500),
            ..NetworkConfig::paper_testbed()
        };
        let mut sim = Simulation::new(cfg, flood(3, 128));
        sim.fail_node_at(SimTime::from_secs_f64(1.0), 2);
        sim.run_to_completion();
        assert!(!sim.is_alive(2));
        assert_eq!(sim.actor(0).peers_failed, vec![2]);
        assert_eq!(sim.actor(1).peers_failed, vec![2]);
        assert!(sim.now().as_secs_f64() >= 1.5);
    }

    #[test]
    fn messages_to_failed_nodes_are_dropped() {
        let cfg = NetworkConfig::paper_testbed();
        let mut sim = Simulation::new(cfg, flood(2, 128));
        sim.fail_node_at(SimTime::ZERO, 1);
        // Node 0 sends a message to node 1 after the failure.
        sim.call_at(SimTime::from_secs_f64(1.0), 0, |_actor, ctx| {
            ctx.send(1, 7, 128);
        });
        sim.run_to_completion();
        assert!(sim.actor(1).received_at.is_none() || sim.stats().messages_dropped > 0);
    }

    #[test]
    fn external_calls_and_timers_fire_in_order() {
        struct Ticker {
            fired: Vec<(u64, SimTime)>,
        }
        impl SimActor for Ticker {
            type Msg = ();
            fn on_message(&mut self, _f: usize, _m: (), _c: &mut SimContext<'_, ()>) {}
            fn on_timer(&mut self, token: u64, ctx: &mut SimContext<'_, ()>) {
                self.fired.push((token, ctx.now()));
                if token < 3 {
                    ctx.set_timer(SimDuration::from_millis(10), token + 1);
                }
            }
        }
        let mut sim =
            Simulation::new(NetworkConfig::paper_testbed(), vec![Ticker { fired: vec![] }]);
        sim.call_at(SimTime::ZERO, 0, |_a, ctx| ctx.set_timer(SimDuration::from_millis(5), 1));
        sim.run_to_completion();
        let fired = &sim.actor(0).fired;
        assert_eq!(fired.iter().map(|(t, _)| *t).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(fired[2].1.as_nanos(), 25_000_000);
    }

    #[test]
    fn recovery_restarts_the_actor() {
        let cfg = NetworkConfig {
            failure_detection_delay: SimDuration::from_millis(1),
            ..NetworkConfig::paper_testbed()
        };
        let mut sim = Simulation::new(cfg, flood(3, 64));
        sim.fail_node_at(SimTime::from_secs_f64(0.1), 0);
        sim.recover_node_at(SimTime::from_secs_f64(0.2), 0);
        sim.run_to_completion();
        assert!(sim.is_alive(0));
        // on_start ran again for node 0 after recovery, so receivers saw a second send.
        assert!(sim.stats().messages_delivered >= 4);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = Simulation::new(NetworkConfig::paper_testbed(), flood(8, 1_000_000));
            sim.run_to_completion();
            (1..8).map(|i| sim.actor(i).received_at.unwrap().as_nanos()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
