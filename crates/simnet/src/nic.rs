//! Per-node NIC model: full-duplex serialization queues.
//!
//! Every node has a transmit queue and a receive queue, each draining at the configured
//! bandwidth. A message first serializes through the sender's transmit queue, then
//! crosses the network (propagation latency), then serializes through the receiver's
//! receive queue. This simple FIFO model captures the three effects the paper's
//! evaluation depends on:
//!
//! * a node sending the same object to `n` receivers is limited by its uplink
//!   (`n·S/B`), which is what makes naive broadcast slow;
//! * a node receiving from `n` senders is limited by its downlink, which is what makes
//!   naive gather/reduce slow;
//! * a chain of transfers pipelines: while block `k+1` serializes at the sender, block
//!   `k` can serialize at the receiver, so a relay adds only per-block latency.

use crate::config::NetworkConfig;
use crate::time::{SimDuration, SimTime};

/// One direction (transmit or receive) of a NIC.
#[derive(Clone, Debug, Default)]
pub struct NicQueue {
    busy_until: SimTime,
    bytes_total: u64,
}

impl NicQueue {
    /// Schedule `bytes` through the queue starting no earlier than `now`; returns the
    /// time at which the last byte has passed through.
    pub fn enqueue(&mut self, now: SimTime, bytes: u64, cfg: &NetworkConfig) -> SimTime {
        self.enqueue_at(now, bytes, cfg.bandwidth)
    }

    /// Like [`NicQueue::enqueue`] but draining at an explicit `bytes_per_sec` rate —
    /// used for heterogeneous NICs, shared group uplinks, and straggler slow-downs.
    pub fn enqueue_at(&mut self, now: SimTime, bytes: u64, bytes_per_sec: f64) -> SimTime {
        let start = if self.busy_until > now { self.busy_until } else { now };
        let finish = start + SimDuration::from_secs_f64(bytes as f64 / bytes_per_sec);
        self.busy_until = finish;
        self.bytes_total += bytes;
        finish
    }

    /// Total bytes that have passed through this queue.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// When the queue drains, given no further arrivals.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

/// The full-duplex NIC of one node.
#[derive(Clone, Debug, Default)]
pub struct Nic {
    /// Transmit direction.
    pub tx: NicQueue,
    /// Receive direction.
    pub rx: NicQueue,
}

impl Nic {
    /// Reset the NIC (used when a node recovers from a failure).
    pub fn reset(&mut self) {
        self.tx = NicQueue::default();
        self.rx = NicQueue::default();
    }
}

/// Compute when a message leaves the sender's NIC and when it arrives at the receiver's
/// NIC input, for a bulk message sent at `now`.
pub fn tx_and_propagate(
    nic: &mut Nic,
    now: SimTime,
    bytes: u64,
    cfg: &NetworkConfig,
) -> (SimTime, SimTime) {
    let tx_done = nic.tx.enqueue(now, bytes, cfg);
    (tx_done, tx_done + cfg.latency)
}

/// Compute when an arriving message finishes serializing into the receiver.
pub fn rx_deliver(nic: &mut Nic, arrival: SimTime, bytes: u64, cfg: &NetworkConfig) -> SimTime {
    nic.rx.enqueue(arrival, bytes, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NetworkConfig {
        NetworkConfig {
            bandwidth: 1e9,
            latency: SimDuration::from_micros(100),
            ..Default::default()
        }
    }

    #[test]
    fn queue_serializes_back_to_back() {
        let cfg = cfg();
        let mut q = NicQueue::default();
        let first = q.enqueue(SimTime::ZERO, 1_000_000, &cfg); // 1 ms
        let second = q.enqueue(SimTime::ZERO, 1_000_000, &cfg); // queued behind: 2 ms
        assert_eq!(first.as_nanos(), 1_000_000);
        assert_eq!(second.as_nanos(), 2_000_000);
        assert_eq!(q.bytes_total(), 2_000_000);
    }

    #[test]
    fn explicit_rate_overrides_uniform_bandwidth() {
        let mut q = NicQueue::default();
        // 1 MB at 0.5 GB/s takes 2 ms regardless of the config's uniform rate.
        let done = q.enqueue_at(SimTime::ZERO, 1_000_000, 0.5e9);
        assert_eq!(done.as_nanos(), 2_000_000);
    }

    #[test]
    fn idle_queue_starts_at_now() {
        let cfg = cfg();
        let mut q = NicQueue::default();
        q.enqueue(SimTime::ZERO, 1_000, &cfg);
        let later = q.enqueue(SimTime(10_000_000), 1_000, &cfg);
        assert_eq!(later.as_nanos(), 10_000_000 + 1_000);
    }

    #[test]
    fn tx_rx_pipeline_adds_latency_once_per_hop() {
        let cfg = cfg();
        let mut a = Nic::default();
        let mut b = Nic::default();
        let (tx_done, arrival) = tx_and_propagate(&mut a, SimTime::ZERO, 1_000_000, &cfg);
        let delivered = rx_deliver(&mut b, arrival, 1_000_000, &cfg);
        assert_eq!(tx_done.as_nanos(), 1_000_000);
        assert_eq!(arrival.as_nanos(), 1_100_000);
        assert_eq!(delivered.as_nanos(), 2_100_000);
    }

    #[test]
    fn incast_is_limited_by_receiver_downlink() {
        let cfg = cfg();
        let mut receiver = Nic::default();
        // Four senders each deliver 1 MB arriving at the same instant.
        let mut last = SimTime::ZERO;
        for _ in 0..4 {
            last = rx_deliver(&mut receiver, SimTime(100), 1_000_000, &cfg);
        }
        assert_eq!(last.as_nanos(), 100 + 4_000_000);
    }
}
