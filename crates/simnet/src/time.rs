//! Simulated time.
//!
//! The simulator measures time in integer nanoseconds from the start of the run. The
//! type is deliberately minimal: the protocol crates carry their own richer time types
//! and drivers convert at the boundary (both use nanosecond `u64` representations, so
//! conversion is a field copy).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (nanoseconds since the start of the simulation).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Build from fractional seconds.
    pub fn from_secs_f64(secs: f64) -> SimTime {
        SimTime((secs.max(0.0) * 1e9) as u64)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// From fractional seconds.
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        SimDuration((secs.max(0.0) * 1e9) as u64)
    }

    /// Nanoseconds in this duration.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds in this duration.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(3);
        assert_eq!(t.as_nanos(), 3_000_000);
        assert_eq!((t - SimTime::ZERO).as_nanos(), 3_000_000);
        assert_eq!(SimTime(5) - SimTime(9), SimDuration::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert!((SimDuration::from_secs_f64(0.25).as_secs_f64() - 0.25).abs() < 1e-12);
        assert_eq!(SimDuration::from_micros(1000), SimDuration::from_millis(1));
    }
}
