//! The adapter that runs a [`hoplite_core::node::ObjectStoreNode`] as a simulator
//! actor.

use std::collections::HashMap;

use hoplite_core::prelude::*;
use hoplite_simnet::prelude::*;

/// Record of one completed client operation.
#[derive(Clone, Debug)]
pub struct Completion {
    /// When the reply was produced (simulated time).
    pub at: SimTime,
    /// The reply itself.
    pub reply: ClientReply,
}

/// A simulator actor hosting one Hoplite object-store node.
pub struct HopliteActor {
    node: ObjectStoreNode,
    completions: HashMap<OpId, Vec<Completion>>,
}

impl HopliteActor {
    /// Wrap a freshly-created node.
    pub fn new(node: ObjectStoreNode) -> Self {
        HopliteActor { node, completions: HashMap::new() }
    }

    /// Submit a client operation (called from an external simulation event).
    pub fn submit(&mut self, op_id: OpId, op: ClientOp, ctx: &mut SimContext<'_, Message>) {
        let now = Time(ctx.now().as_nanos());
        let mut effects = Vec::new();
        self.node.handle_client(now, op_id, op, &mut effects);
        self.apply(effects, ctx);
    }

    /// All replies recorded for an operation (most ops produce exactly one; `Reduce`
    /// produces `ReduceAccepted` followed by `ReduceComplete`).
    pub fn completions(&self, op: OpId) -> &[Completion] {
        self.completions.get(&op).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The underlying node (metrics, store inspection).
    pub fn node(&self) -> &ObjectStoreNode {
        &self.node
    }

    fn apply(&mut self, effects: Vec<Effect>, ctx: &mut SimContext<'_, Message>) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    let bytes = msg.wire_size();
                    ctx.send(to.index(), msg, bytes);
                }
                Effect::Reply { op, reply } => {
                    self.completions
                        .entry(op)
                        .or_default()
                        .push(Completion { at: ctx.now(), reply });
                }
                Effect::SetTimer { token, delay } => {
                    ctx.set_timer(SimDuration::from_nanos(delay.as_nanos()), token.0);
                }
                Effect::LocalProgress { .. } => {}
            }
        }
    }
}

impl SimActor for HopliteActor {
    type Msg = Message;

    fn on_message(&mut self, from: usize, msg: Message, ctx: &mut SimContext<'_, Message>) {
        let now = Time(ctx.now().as_nanos());
        let mut effects = Vec::new();
        self.node.handle_message(now, NodeId(from as u32), msg, &mut effects);
        self.apply(effects, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut SimContext<'_, Message>) {
        let now = Time(ctx.now().as_nanos());
        let mut effects = Vec::new();
        self.node.handle_timer(now, TimerToken(token), &mut effects);
        self.apply(effects, ctx);
    }

    fn on_peer_failed(&mut self, peer: usize, ctx: &mut SimContext<'_, Message>) {
        let now = Time(ctx.now().as_nanos());
        let mut effects = Vec::new();
        self.node.handle_peer_failed(now, NodeId(peer as u32), &mut effects);
        self.apply(effects, ctx);
    }

    fn on_peer_recovered(&mut self, peer: usize, ctx: &mut SimContext<'_, Message>) {
        let now = Time(ctx.now().as_nanos());
        let mut effects = Vec::new();
        self.node.handle_peer_recovered(now, NodeId(peer as u32), &mut effects);
        self.apply(effects, ctx);
    }
}
