//! The adapter that runs a [`hoplite_core::node::ObjectStoreNode`] as a simulator
//! actor, by plugging the shared [`NodeRuntime`] into the discrete-event engine: sim
//! callbacks become [`NodeEvent`]s, and effects route through a [`DriverPort`] that
//! speaks [`SimContext`].

use std::collections::HashMap;

use hoplite_core::prelude::*;
use hoplite_simnet::prelude::*;

use crate::driver::{DriverPort, NodeEvent, NodeRuntime};

/// Record of one completed client operation.
#[derive(Clone, Debug)]
pub struct Completion {
    /// When the reply was produced (simulated time).
    pub at: SimTime,
    /// The reply itself.
    pub reply: ClientReply,
}

/// A simulator actor hosting one Hoplite object-store node.
///
/// The actor keeps the ingredients to rebuild its node: when the simulator recovers
/// a failed node it calls [`SimActor::on_start`] again, and the actor models a real
/// process restart — a fresh, empty [`ObjectStoreNode`] that immediately begins
/// directory recovery (snapshot requests, log catch-up, `DirResynced` announcement).
pub struct HopliteActor {
    id: NodeId,
    cfg: HopliteConfig,
    cluster: ClusterView,
    opts: NodeOptions,
    runtime: NodeRuntime,
    completions: HashMap<OpId, Vec<Completion>>,
    booted: bool,
}

/// [`DriverPort`] implementation over a simulation callback context.
struct SimPort<'a, 'b> {
    ctx: &'a mut SimContext<'b, Message>,
    completions: &'a mut HashMap<OpId, Vec<Completion>>,
}

impl DriverPort for SimPort<'_, '_> {
    fn send(&mut self, to: NodeId, msg: Message) {
        let bytes = msg.wire_size();
        self.ctx.send(to.index(), msg, bytes);
    }

    fn reply(&mut self, op: OpId, reply: ClientReply) {
        self.completions.entry(op).or_default().push(Completion { at: self.ctx.now(), reply });
    }

    fn set_timer(&mut self, token: TimerToken, delay: Duration) {
        self.ctx.set_timer(SimDuration::from_nanos(delay.as_nanos()), token.0);
    }
}

impl HopliteActor {
    /// Build the actor (and its initial node) from the node's construction parts.
    pub fn new(id: NodeId, cfg: HopliteConfig, cluster: ClusterView, opts: NodeOptions) -> Self {
        let node = ObjectStoreNode::new(id, cfg.clone(), cluster.clone(), opts.clone());
        HopliteActor {
            id,
            cfg,
            cluster,
            opts,
            runtime: NodeRuntime::new(node),
            completions: HashMap::new(),
            booted: false,
        }
    }

    /// Submit a client operation (called from an external simulation event).
    pub fn submit(&mut self, op_id: OpId, op: ClientOp, ctx: &mut SimContext<'_, Message>) {
        self.drive(NodeEvent::Client { op: op_id, request: op }, ctx);
    }

    /// All replies recorded for an operation (most ops produce exactly one; `Reduce`
    /// produces `ReduceAccepted` followed by `ReduceComplete`).
    pub fn completions(&self, op: OpId) -> &[Completion] {
        self.completions.get(&op).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The underlying node (metrics, store inspection).
    pub fn node(&self) -> &ObjectStoreNode {
        self.runtime.node()
    }

    fn drive(&mut self, event: NodeEvent, ctx: &mut SimContext<'_, Message>) {
        let now = Time(ctx.now().as_nanos());
        let mut port = SimPort { ctx, completions: &mut self.completions };
        self.runtime.handle(now, event, &mut port);
    }
}

impl SimActor for HopliteActor {
    type Msg = Message;

    fn on_start(&mut self, ctx: &mut SimContext<'_, Message>) {
        if !self.booted {
            // Cold boot: the node constructed in `new` is already current. Arm
            // self-driven machinery (the SWIM probe timer, when configured).
            self.booted = true;
            self.drive(NodeEvent::Started, ctx);
            return;
        }
        // Recovery restart: model a fresh process — empty store, empty directory
        // replicas — that must resync before leading any shard again. The new
        // process runs at the next incarnation, so stale failure notices about the
        // old one cannot re-park it.
        self.opts.incarnation += 1;
        let node = ObjectStoreNode::new(
            self.id,
            self.cfg.clone(),
            self.cluster.clone(),
            self.opts.clone(),
        );
        self.runtime = NodeRuntime::new(node);
        self.drive(NodeEvent::Restarted, ctx);
        self.drive(NodeEvent::Started, ctx);
    }

    fn on_message(&mut self, from: usize, msg: Message, ctx: &mut SimContext<'_, Message>) {
        self.drive(NodeEvent::Message { from: NodeId(from as u32), msg }, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut SimContext<'_, Message>) {
        self.drive(NodeEvent::Timer(TimerToken(token)), ctx);
    }

    fn on_peer_failed(&mut self, peer: usize, ctx: &mut SimContext<'_, Message>) {
        self.drive(NodeEvent::PeerFailed(NodeId(peer as u32)), ctx);
    }

    fn on_peer_recovered(&mut self, peer: usize, ctx: &mut SimContext<'_, Message>) {
        self.drive(NodeEvent::PeerRecovered(NodeId(peer as u32)), ctx);
    }
}
