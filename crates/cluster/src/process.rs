//! Real multi-process deployment driver: spawn, supervise, kill and restart a
//! cluster of `hoplited` OS processes, and drive workload through their control
//! sockets.
//!
//! Each daemon hosts exactly one [`crate::host::NodeHost`] over a
//! [`hoplite_transport::tcp::TcpFabric`] bound with
//! [`bind_node`](hoplite_transport::tcp::TcpFabric::bind_node), plus a tiny control
//! server on a separate localhost TCP port. The control protocol is newline-delimited
//! text — one request line, one reply line, every reply starting `ok` or `err`:
//!
//! | request | reply |
//! |---|---|
//! | `ping` | `ok pong` |
//! | `status` | `ok node=0 incarnation=1 resyncing=false <counter>=<value>...` |
//! | `put <name> <size> <seed>` | `ok` — stores `size` pattern bytes derived from `seed` |
//! | `get <name> <size> <seed>` | `ok` — fetches and verifies the pattern, `err mismatch` otherwise |
//! | `put-f32 <name> <len> <value>` | `ok` — stores `len` f32s all equal to `value` |
//! | `reduce <target> <src,src,...>` | `ok` — sum-reduces the sources into `target` |
//! | `get-f32 <name> <len> <expected>` | `ok` — fetches and checks every element ≈ `expected` |
//! | `peer-failed <id> <incarnation>` | `ok` — failure-detector verdict for the hosted node |
//! | `peer-recovered <id>` | `ok` |
//! | `shutdown` | `ok` — then the daemon exits cleanly |
//!
//! Payload bytes are never shipped over the control socket: `put`/`get` agree on a
//! deterministic pattern ([`pattern_byte`]) so the controller can assert end-to-end
//! content integrity of multi-megabyte objects with one short line each way.
//!
//! [`ProcessCluster`] is what `hoplitectl` uses: it reserves fabric + control ports,
//! spawns one daemon per node with stdout/stderr teed to per-node log files, waits
//! for every control socket to answer `ping`, and exposes `kill -9` + restart with
//! incarnation bookkeeping that mirrors what a production supervisor would do.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use hoplite_core::prelude::*;

/// The deterministic content byte `i` of an object generated from `seed`. Both ends
/// of the control protocol compute this, so `get` can verify a broadcast's payload
/// without the bytes ever crossing the control socket.
pub fn pattern_byte(seed: u64, i: u64) -> u8 {
    (seed.wrapping_add(i.wrapping_mul(2654435761)) % 251) as u8
}

/// How to launch a daemon fleet.
#[derive(Clone, Debug)]
pub struct DaemonSpec {
    /// Path to the `hoplited` binary.
    pub binary: PathBuf,
    /// Number of nodes.
    pub n: usize,
    /// Directory for per-node log files (`node-<i>.log`), created if missing.
    pub log_dir: PathBuf,
    /// Optional TOML config file passed to every daemon via `--config`.
    pub config: Option<PathBuf>,
}

/// Blocking client for one daemon's control socket.
pub struct ControlClient {
    reader: BufReader<TcpStream>,
}

impl ControlClient {
    /// Connect to a daemon's control socket.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        // Generous read timeout: a `get` of a large object blocks until the data
        // plane delivers it, which legitimately takes a while under failover.
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(ControlClient { reader: BufReader::new(stream) })
    }

    /// Connect with bounded retry: up to `attempts` tries, sleeping an exponentially
    /// doubling backoff (starting at `base`, capped at one second) between them. A
    /// daemon that is still binding its control socket — or mid-restart — refuses
    /// connections for a moment; callers that can tolerate that window use this
    /// instead of hand-rolled sleep loops. The last error is returned verbatim.
    pub fn connect_retrying(addr: SocketAddr, attempts: u32, base: Duration) -> io::Result<Self> {
        assert!(attempts >= 1, "at least one attempt");
        let mut backoff = base;
        let mut last = None;
        for attempt in 0..attempts {
            match ControlClient::connect(addr, Duration::from_millis(250)) {
                Ok(client) => return Ok(client),
                Err(e) => last = Some(e),
            }
            if attempt + 1 < attempts {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(1));
            }
        }
        Err(last.expect("attempts >= 1 recorded an error"))
    }

    /// One request with bounded retry over fresh connections: on a transport error
    /// (refused, reset, unexpected EOF) the request line is replayed on a new
    /// connection, up to `attempts` tries with the [`ControlClient::connect_retrying`]
    /// backoff schedule. An `err ...` *reply* is returned immediately — the daemon
    /// answered, retrying would not change its mind. Only for idempotent request
    /// lines (everything in the control vocabulary is).
    pub fn request_retrying(
        addr: SocketAddr,
        line: &str,
        attempts: u32,
        base: Duration,
    ) -> io::Result<String> {
        assert!(attempts >= 1, "at least one attempt");
        let mut backoff = base;
        let mut last = None;
        for attempt in 0..attempts {
            match ControlClient::connect(addr, Duration::from_millis(250))
                .and_then(|mut c| c.request(line))
            {
                Ok(reply) => return Ok(reply),
                // A daemon that parsed the request and said `err` will keep saying it.
                Err(e) if e.to_string().contains("daemon replied") => return Err(e),
                Err(e) => last = Some(e),
            }
            if attempt + 1 < attempts {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(1));
            }
        }
        Err(last.expect("attempts >= 1 recorded an error"))
    }

    /// Send one request line, read one reply line. Returns the reply payload after
    /// the `ok ` prefix; an `err ...` reply becomes an `io::Error`.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        let stream = self.reader.get_mut();
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "control socket closed"));
        }
        let reply = reply.trim_end();
        if let Some(rest) = reply.strip_prefix("ok") {
            Ok(rest.trim_start().to_string())
        } else {
            Err(io::Error::other(format!("daemon replied: {reply}")))
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        self.request("ping").map(|_| ())
    }

    /// Status snapshot as `key → value` pairs (`node`, `incarnation`, `resyncing`,
    /// plus every [`NodeMetrics`] counter).
    pub fn status(&mut self) -> io::Result<BTreeMap<String, String>> {
        let reply = self.request("status")?;
        Ok(reply
            .split_whitespace()
            .filter_map(|pair| pair.split_once('=').map(|(k, v)| (k.to_string(), v.to_string())))
            .collect())
    }

    /// Store `size` pattern bytes under `name`.
    pub fn put(&mut self, name: &str, size: u64, seed: u64) -> io::Result<()> {
        self.request(&format!("put {name} {size} {seed}")).map(|_| ())
    }

    /// Fetch `name` and verify it is `size` pattern bytes for `seed`.
    pub fn get(&mut self, name: &str, size: u64, seed: u64) -> io::Result<()> {
        self.request(&format!("get {name} {size} {seed}")).map(|_| ())
    }

    /// Store `len` f32s all equal to `value` under `name`.
    pub fn put_f32(&mut self, name: &str, len: usize, value: f32) -> io::Result<()> {
        self.request(&format!("put-f32 {name} {len} {value}")).map(|_| ())
    }

    /// Sum-reduce `sources` into `target`.
    pub fn reduce(&mut self, target: &str, sources: &[String]) -> io::Result<()> {
        self.request(&format!("reduce {target} {}", sources.join(","))).map(|_| ())
    }

    /// Fetch `name` and verify every element ≈ `expected`.
    pub fn get_f32(&mut self, name: &str, len: usize, expected: f32) -> io::Result<()> {
        self.request(&format!("get-f32 {name} {len} {expected}")).map(|_| ())
    }

    /// Failure-detector verdict: `node` (at `incarnation`) is dead.
    pub fn peer_failed(&mut self, node: NodeId, incarnation: u64) -> io::Result<()> {
        self.request(&format!("peer-failed {} {incarnation}", node.0)).map(|_| ())
    }

    /// Failure-detector verdict: `node` is back.
    pub fn peer_recovered(&mut self, node: NodeId) -> io::Result<()> {
        self.request(&format!("peer-recovered {}", node.0)).map(|_| ())
    }

    /// Ask the daemon to exit cleanly.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.request("shutdown").map(|_| ())
    }
}

/// A fleet of `hoplited` OS processes under supervision.
pub struct ProcessCluster {
    spec: DaemonSpec,
    fabric_addrs: Vec<SocketAddr>,
    control_addrs: Vec<SocketAddr>,
    children: Vec<Option<Child>>,
    incarnations: Vec<u64>,
}

impl ProcessCluster {
    /// Reserve ports, spawn `spec.n` daemons, and wait until every control socket
    /// answers `ping`.
    pub fn spawn(spec: DaemonSpec) -> io::Result<Self> {
        std::fs::create_dir_all(&spec.log_dir)?;
        let fabric_addrs = reserve_ports(spec.n)?;
        let control_addrs = reserve_ports(spec.n)?;
        let mut cluster = ProcessCluster {
            children: (0..spec.n).map(|_| None).collect(),
            incarnations: vec![0; spec.n],
            spec,
            fabric_addrs,
            control_addrs,
        };
        for node in 0..cluster.spec.n {
            cluster.spawn_daemon(node, false)?;
        }
        for node in 0..cluster.spec.n {
            cluster.wait_ready(node, Duration::from_secs(20))?;
        }
        Ok(cluster)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.spec.n
    }

    /// `true` for an empty fleet.
    pub fn is_empty(&self) -> bool {
        self.spec.n == 0
    }

    /// The daemons' fabric listener addresses.
    pub fn fabric_addrs(&self) -> &[SocketAddr] {
        &self.fabric_addrs
    }

    /// The control socket address of `node` (stable across kills and restarts, so
    /// workload threads can reconnect on their own while the supervisor holds the
    /// cluster mutably).
    pub fn control_addr(&self, node: usize) -> SocketAddr {
        self.control_addrs[node]
    }

    /// The incarnation `node` currently runs at.
    pub fn incarnation(&self, node: usize) -> u64 {
        self.incarnations[node]
    }

    /// The log file `node`'s stdout/stderr are teed to.
    pub fn log_path(&self, node: usize) -> PathBuf {
        self.spec.log_dir.join(format!("node-{node}.log"))
    }

    /// The OS pid of `node`'s daemon, if running.
    pub fn pid(&self, node: usize) -> Option<u32> {
        self.children[node].as_ref().map(|c| c.id())
    }

    fn spawn_daemon(&mut self, node: usize, recover: bool) -> io::Result<()> {
        let fabric_list =
            self.fabric_addrs.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(",");
        let log = File::create(self.log_path(node))?;
        let mut cmd = Command::new(&self.spec.binary);
        cmd.arg("--node")
            .arg(node.to_string())
            .arg("--fabric")
            .arg(fabric_list)
            .arg("--control")
            .arg(self.control_addrs[node].to_string())
            .arg("--incarnation")
            .arg(self.incarnations[node].to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::from(log.try_clone()?))
            .stderr(Stdio::from(log));
        if recover {
            cmd.arg("--recover");
        }
        if let Some(config) = &self.spec.config {
            cmd.arg("--config").arg(config);
        }
        self.children[node] = Some(cmd.spawn()?);
        Ok(())
    }

    /// Poll `node`'s control socket until it answers `ping` (or the deadline passes).
    pub fn wait_ready(&self, node: usize, timeout: Duration) -> io::Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            match ControlClient::connect(self.control_addrs[node], Duration::from_millis(250))
                .and_then(|mut c| c.ping())
            {
                Ok(()) => return Ok(()),
                Err(e) if Instant::now() >= deadline => {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("node {node} not ready within {timeout:?}: {e}"),
                    ));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
    }

    /// A fresh control connection to `node`.
    pub fn control(&self, node: usize) -> io::Result<ControlClient> {
        ControlClient::connect(self.control_addrs[node], Duration::from_secs(5))
    }

    /// `kill -9` the daemon: no shutdown handshake, no flush — the process is gone
    /// mid-whatever-it-was-doing, exactly like a crashed machine.
    pub fn kill9(&mut self, node: usize) -> io::Result<()> {
        if let Some(child) = self.children[node].as_mut() {
            child.kill()?;
            child.wait()?;
        }
        self.children[node] = None;
        Ok(())
    }

    /// Deliver the failure verdict about `victim` (at its current incarnation) to
    /// every running daemon, as the deployment's failure detector would.
    pub fn announce_failure(&self, victim: usize) -> io::Result<()> {
        for node in 0..self.spec.n {
            if node != victim && self.children[node].is_some() {
                self.control(node)?
                    .peer_failed(NodeId(victim as u32), self.incarnations[victim])?;
            }
        }
        Ok(())
    }

    /// Restart a killed daemon at the next incarnation with `--recover`: it rebinds
    /// the same fabric port (retrying while the kernel finishes tearing down the old
    /// socket), resyncs its directory replicas, and announces itself. Survivors get
    /// the recovery verdict once the daemon answers `ping`.
    pub fn restart(&mut self, node: usize) -> io::Result<()> {
        assert!(self.children[node].is_none(), "restart requires a killed node");
        self.incarnations[node] += 1;
        self.spawn_daemon(node, true)?;
        self.wait_ready(node, Duration::from_secs(30))?;
        for other in 0..self.spec.n {
            if other != node && self.children[other].is_some() {
                self.control(other)?.peer_recovered(NodeId(node as u32))?;
            }
        }
        Ok(())
    }

    /// Restart a killed daemon at the next incarnation with `--recover`, delivering
    /// **no** recovery verdict: survivors must learn of the comeback from the
    /// restarted daemon's own traffic (`Hello` at the bumped incarnation, resync
    /// snapshot requests, and — when the SWIM detector is on — its alive claims in
    /// piggybacked gossip). The verdict-free kill drill (`drill --detect`) restarts
    /// through this path.
    pub fn restart_undetected(&mut self, node: usize) -> io::Result<()> {
        assert!(self.children[node].is_none(), "restart requires a killed node");
        self.incarnations[node] += 1;
        self.spawn_daemon(node, true)?;
        self.wait_ready(node, Duration::from_secs(30))
    }

    /// Ask every running daemon to exit cleanly, then reap them.
    pub fn shutdown_all(&mut self) {
        for node in 0..self.spec.n {
            if self.children[node].is_some() {
                if let Ok(mut ctl) = self.control(node) {
                    let _ = ctl.shutdown();
                }
            }
        }
        for child in self.children.iter_mut().flatten() {
            let _ = child.wait();
        }
        self.children.iter_mut().for_each(|c| *c = None);
    }
}

impl Drop for ProcessCluster {
    fn drop(&mut self) {
        // Belt and braces: never leave orphan daemons behind a panicking controller.
        for child in self.children.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Reserve `n` distinct localhost ports by binding and immediately releasing them.
/// The tiny window between release and the daemon's own bind is tolerable for a
/// test/CI harness (and the daemon retries `AddrInUse` anyway).
fn reserve_ports(n: usize) -> io::Result<Vec<SocketAddr>> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0")).collect::<io::Result<_>>()?;
    listeners.iter().map(|l| l.local_addr()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_is_deterministic_and_seed_sensitive() {
        assert_eq!(pattern_byte(7, 100), pattern_byte(7, 100));
        let a: Vec<u8> = (0..64).map(|i| pattern_byte(1, i)).collect();
        let b: Vec<u8> = (0..64).map(|i| pattern_byte(2, i)).collect();
        assert_ne!(a, b, "different seeds must produce different payloads");
    }

    #[test]
    fn reserve_ports_yields_distinct_addresses() {
        let addrs = reserve_ports(8).unwrap();
        let mut ports: Vec<u16> = addrs.iter().map(|a| a.port()).collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 8);
    }
}
