//! One hosted Hoplite node: the event-loop thread every real-byte deployment shares.
//!
//! [`NodeHost`] owns a node's unified event queue and its OS thread. The same host
//! runs a node whether it is one of many inside a [`crate::local::LocalCluster`]
//! process or the single node of a `hoplited` daemon: fabric messages are forwarded
//! into the queue by a small pump thread, client commands and failure notices are
//! enqueued directly, timers live in a local deadline heap serviced with
//! `recv_timeout`, and status queries ([`NodeStatus`]) are answered inline by the
//! loop between events.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration as StdDuration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hoplite_core::prelude::*;
use hoplite_transport::fabric::FabricSender;

use crate::driver::{DriverPort, NodeEvent, NodeRuntime};

/// Commands delivered to a node's event loop besides fabric messages.
enum NodeCommand {
    Client { op_id: OpId, op: ClientOp, reply: Sender<ClientReply> },
    PeerFailed(NodeId),
    PeerRecovered(NodeId),
    Status { reply: Sender<NodeStatus> },
    Shutdown,
}

/// Everything a node's unified event queue can carry.
enum LoopEvent {
    Fabric(NodeId, Message),
    Command(NodeCommand),
}

/// A point-in-time snapshot of a hosted node, answered by its event loop.
#[derive(Clone, Debug)]
pub struct NodeStatus {
    /// The node's id.
    pub node: NodeId,
    /// The incarnation this process runs at (0 for a cold boot, bumped per restart).
    pub incarnation: u64,
    /// `true` while any directory shard replica on this node is still resyncing.
    pub resyncing: bool,
    /// The node's counters.
    pub metrics: NodeMetrics,
}

/// Blocking client bound to one hosted node.
#[derive(Clone)]
pub struct HopliteClient {
    node: NodeId,
    events: Sender<LoopEvent>,
    next_op: Arc<AtomicU64>,
}

impl HopliteClient {
    /// The node this client talks to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    fn submit(&self, op: ClientOp) -> Receiver<ClientReply> {
        let (tx, rx) = unbounded();
        let op_id = OpId(self.next_op.fetch_add(1, Ordering::Relaxed));
        // A send failure means the node was shut down; the disconnected receiver will
        // surface that as an error to the caller below.
        let _ = self.events.send(LoopEvent::Command(NodeCommand::Client { op_id, op, reply: tx }));
        rx
    }

    fn wait<F: Fn(&ClientReply) -> bool>(
        rx: Receiver<ClientReply>,
        accept: F,
    ) -> Result<ClientReply> {
        loop {
            match rx.recv() {
                Ok(ClientReply::Error { error }) => return Err(error),
                Ok(reply) if accept(&reply) => return Ok(reply),
                Ok(_) => continue,
                Err(_) => {
                    return Err(HopliteError::Transport("node shut down".to_string()));
                }
            }
        }
    }

    /// Store an object (Table 1 `Put`): blocks until the local store holds it.
    pub fn put(&self, object: ObjectId, payload: Payload) -> Result<()> {
        Self::wait(self.submit(ClientOp::Put { object, payload }), |r| {
            matches!(r, ClientReply::PutDone { .. })
        })
        .map(|_| ())
    }

    /// Fetch an object (Table 1 `Get`): blocks until a complete copy is local.
    pub fn get(&self, object: ObjectId) -> Result<Payload> {
        match Self::wait(self.submit(ClientOp::Get { object }), |r| {
            matches!(r, ClientReply::GetDone { .. })
        })? {
            ClientReply::GetDone { payload, .. } => Ok(payload),
            _ => unreachable!("wait() only accepts GetDone"),
        }
    }

    /// Reduce `num_objects` of `sources` into `target` (Table 1 `Reduce`); returns once
    /// the reduce has been accepted. Combine with [`HopliteClient::get`] on the target
    /// to obtain the result (that is also how the paper measures reduce latency).
    pub fn reduce(
        &self,
        target: ObjectId,
        sources: Vec<ObjectId>,
        num_objects: Option<usize>,
        spec: ReduceSpec,
    ) -> Result<()> {
        Self::wait(
            self.submit(ClientOp::Reduce { target, sources, num_objects, spec, degree: None }),
            |r| matches!(r, ClientReply::ReduceAccepted { .. }),
        )
        .map(|_| ())
    }

    /// Delete every copy of an object cluster-wide (Table 1 `Delete`).
    pub fn delete(&self, object: ObjectId) -> Result<()> {
        Self::wait(self.submit(ClientOp::Delete { object }), |r| {
            matches!(r, ClientReply::DeleteDone { .. })
        })
        .map(|_| ())
    }
}

/// One node's event-loop thread plus the handles to talk to it.
pub struct NodeHost {
    id: NodeId,
    events: Sender<LoopEvent>,
    next_op: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl NodeHost {
    /// Spawn the pump + event-loop threads for `node`. `recovering` selects whether
    /// the node starts cold or as a restarted process that must resync its directory
    /// replicas before leading again. `next_op` is the op-id source shared by every
    /// client of this process (clusters share one across all their hosts).
    pub fn spawn<S: FabricSender>(
        node: ObjectStoreNode,
        rx_fabric: Receiver<(NodeId, Message)>,
        fabric_tx: S,
        recovering: bool,
        next_op: Arc<AtomicU64>,
    ) -> NodeHost {
        let id = node.id();
        let (events_tx, events_rx) = unbounded();
        // Pump fabric messages into the unified event queue; exits when either the
        // fabric or the node loop goes away.
        let pump_tx = events_tx.clone();
        thread::Builder::new()
            .name(format!("hoplite-fabric-pump-{}", id.0))
            .spawn(move || {
                for (from, msg) in rx_fabric.iter() {
                    if pump_tx.send(LoopEvent::Fabric(from, msg)).is_err() {
                        return;
                    }
                }
            })
            .expect("spawn fabric pump thread");
        let handle = thread::Builder::new()
            .name(format!("hoplite-node-{}", id.0))
            .spawn(move || node_event_loop(node, events_rx, fabric_tx, recovering))
            .expect("spawn node thread");
        NodeHost { id, events: events_tx, next_op, handle: Some(handle) }
    }

    /// The hosted node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// `true` while the event-loop thread is running (not yet shut down).
    pub fn is_running(&self) -> bool {
        self.handle.is_some()
    }

    /// A blocking client bound to this node.
    pub fn client(&self) -> HopliteClient {
        HopliteClient { node: self.id, events: self.events.clone(), next_op: self.next_op.clone() }
    }

    /// Ask the event loop for a status snapshot. `None` if the node shut down.
    pub fn status(&self) -> Option<NodeStatus> {
        let (tx, rx) = unbounded();
        self.events.send(LoopEvent::Command(NodeCommand::Status { reply: tx })).ok()?;
        rx.recv().ok()
    }

    /// Inject a protocol message as if it arrived over the fabric from `from`.
    /// Control servers use this to deliver incarnation-stamped
    /// [`Message::PeerFailureNotice`]s the supervisor relays.
    pub fn inject_message(&self, from: NodeId, msg: Message) {
        let _ = self.events.send(LoopEvent::Fabric(from, msg));
    }

    /// Deliver a failure-detector verdict: `peer` is dead.
    pub fn notify_peer_failed(&self, peer: NodeId) {
        let _ = self.events.send(LoopEvent::Command(NodeCommand::PeerFailed(peer)));
    }

    /// Deliver a failure-detector verdict: `peer` is back.
    pub fn notify_peer_recovered(&self, peer: NodeId) {
        let _ = self.events.send(LoopEvent::Command(NodeCommand::PeerRecovered(peer)));
    }

    /// Stop the event loop and join its thread. Idempotent.
    pub fn shutdown(&mut self) {
        let _ = self.events.send(LoopEvent::Command(NodeCommand::Shutdown));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NodeHost {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// [`DriverPort`] over a real fabric: messages go out through the fabric sender,
/// replies to the per-op channels, and timers into the loop's deadline heap.
struct RealPort<'a, S: FabricSender> {
    me: NodeId,
    fabric: &'a S,
    pending_replies: &'a mut HashMap<OpId, Sender<ClientReply>>,
    timers: &'a mut BinaryHeap<Reverse<(Instant, TimerToken)>>,
}

impl<S: FabricSender> DriverPort for RealPort<'_, S> {
    fn send(&mut self, to: NodeId, msg: Message) {
        self.fabric.send(self.me, to, msg);
    }

    fn reply(&mut self, op: OpId, reply: ClientReply) {
        // `ReduceAccepted` is the only non-terminal reply (`ReduceComplete` follows);
        // everything else finishes the op, so its sender can be dropped to keep the
        // map from growing with every operation ever submitted.
        let terminal = !matches!(reply, ClientReply::ReduceAccepted { .. });
        if terminal {
            if let Some(tx) = self.pending_replies.remove(&op) {
                let _ = tx.send(reply);
            }
        } else if let Some(tx) = self.pending_replies.get(&op) {
            let _ = tx.send(reply);
        }
    }

    fn set_timer(&mut self, token: TimerToken, delay: Duration) {
        self.timers.push(Reverse((Instant::now() + delay.to_std(), token)));
    }

    fn peer_down(&mut self, node: NodeId) {
        // The node's own failure machinery (detector verdict, gossiped death,
        // digest) declared `node` dead: tear down cached connections toward it,
        // exactly as when a supervisor-relayed notice arrives over the fabric.
        self.fabric.peer_down(node);
    }
}

fn node_event_loop<S: FabricSender>(
    node: ObjectStoreNode,
    events: Receiver<LoopEvent>,
    fabric_tx: S,
    recovering: bool,
) {
    let epoch = Instant::now();
    let me = node.id();
    let mut runtime = NodeRuntime::new(node);
    let mut pending_replies: HashMap<OpId, Sender<ClientReply>> = HashMap::new();
    let mut timers: BinaryHeap<Reverse<(Instant, TimerToken)>> = BinaryHeap::new();
    // With no timers armed, sleep in generous slices so shutdown stays responsive even
    // if a sender leaks.
    const IDLE_SLICE: StdDuration = StdDuration::from_secs(3600);

    if recovering {
        // First order of business for a restarted node: request directory snapshots
        // so it can be re-admitted to its replica sets.
        let mut port = RealPort {
            me,
            fabric: &fabric_tx,
            pending_replies: &mut pending_replies,
            timers: &mut timers,
        };
        runtime.handle(Time(0), NodeEvent::Restarted, &mut port);
    }
    {
        // Cold boot or restart alike: the loop is live, so arm self-driven
        // machinery (the SWIM probe timer, when a detector is configured).
        let mut port = RealPort {
            me,
            fabric: &fabric_tx,
            pending_replies: &mut pending_replies,
            timers: &mut timers,
        };
        runtime.handle(Time(epoch.elapsed().as_nanos() as u64), NodeEvent::Started, &mut port);
    }

    loop {
        // Fire every due timer first.
        let now_wall = Instant::now();
        while let Some(&Reverse((deadline, token))) = timers.peek() {
            if deadline > now_wall {
                break;
            }
            timers.pop();
            let now = Time(epoch.elapsed().as_nanos() as u64);
            let mut port = RealPort {
                me,
                fabric: &fabric_tx,
                pending_replies: &mut pending_replies,
                timers: &mut timers,
            };
            runtime.handle(now, NodeEvent::Timer(token), &mut port);
        }
        let timeout = timers
            .peek()
            .map(|&Reverse((deadline, _))| deadline.saturating_duration_since(Instant::now()))
            .unwrap_or(IDLE_SLICE);
        let event = match events.recv_timeout(timeout) {
            Ok(LoopEvent::Fabric(from, msg)) => {
                // A failure notice names a dead peer: give the transport its cue to
                // tear down cached connections toward it (writes into a SIGKILLed
                // process's socket can succeed silently, so the transport cannot
                // detect this on its own).
                if let Message::PeerFailureNotice { node: dead, .. } = &msg {
                    fabric_tx.peer_down(*dead);
                }
                NodeEvent::Message { from, msg }
            }
            Ok(LoopEvent::Command(NodeCommand::Client { op_id, op, reply })) => {
                pending_replies.insert(op_id, reply);
                NodeEvent::Client { op: op_id, request: op }
            }
            Ok(LoopEvent::Command(NodeCommand::PeerFailed(peer))) => {
                fabric_tx.peer_down(peer);
                NodeEvent::PeerFailed(peer)
            }
            Ok(LoopEvent::Command(NodeCommand::PeerRecovered(peer))) => {
                NodeEvent::PeerRecovered(peer)
            }
            Ok(LoopEvent::Command(NodeCommand::Status { reply })) => {
                let node = runtime.node();
                let _ = reply.send(NodeStatus {
                    node: me,
                    incarnation: node.incarnation(),
                    resyncing: node.directory_is_resyncing(),
                    metrics: node.metrics().clone(),
                });
                continue;
            }
            Ok(LoopEvent::Command(NodeCommand::Shutdown)) => return,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let now = Time(epoch.elapsed().as_nanos() as u64);
        let mut port = RealPort {
            me,
            fabric: &fabric_tx,
            pending_replies: &mut pending_replies,
            timers: &mut timers,
        };
        runtime.handle(now, event, &mut port);
    }
}
