//! Topology generators for the scenario sweep harness.
//!
//! Each generator produces a [`GeneratedTopology`]: a named [`NetworkConfig`] that the
//! simulator executes, plus an explicit [`TopologyGraph`] (hosts + switches + edges)
//! that property tests can check structurally — connectivity, degree bounds, and the
//! oversubscription ratio actually realized by the shared uplinks.
//!
//! Four families cover the axes the Hoplite paper's uniform 16-node testbed never
//! exercises:
//!
//! * [`uniform`] — the paper's flat full-bisection network at any size;
//! * [`fat_tree`] — racks behind shared ToR uplinks with a configurable
//!   oversubscription factor at the spine layer;
//! * [`hetero_nics`] — per-node NIC speeds drawn from a seeded mix of 10/25/50 Gbps;
//! * [`wan_tiers`] — multi-site deployments with µs intra-site and ms inter-site
//!   latency tiers.

use hoplite_simnet::prelude::*;

/// A deterministic seeded value stream (SplitMix64). Shared by the topology and fault
/// generators so every sweep cell replays byte-identically for the same seed.
#[derive(Clone, Debug)]
pub struct SweepRng {
    state: u64,
}

impl SweepRng {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SweepRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The physical wiring of a generated topology: `hosts` host vertices (ids
/// `0..hosts`), `switches` switch vertices (ids `hosts..hosts+switches`), and
/// undirected edges between vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopologyGraph {
    /// Number of host vertices (the simulated Hoplite nodes).
    pub hosts: usize,
    /// Number of switch vertices (ToRs, spines, site routers).
    pub switches: usize,
    /// Undirected edges between vertices.
    pub edges: Vec<(usize, usize)>,
}

impl TopologyGraph {
    /// Total vertex count.
    pub fn num_vertices(&self) -> usize {
        self.hosts + self.switches
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.edges.iter().filter(|&&(a, b)| a == v || b == v).count()
    }

    /// Whether every vertex is reachable from vertex 0 (BFS).
    pub fn is_connected(&self) -> bool {
        let n = self.num_vertices();
        if n == 0 {
            return true;
        }
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; n];
        let mut frontier = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = frontier.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    frontier.push(w);
                }
            }
        }
        count == n
    }
}

/// A generated topology: the network configuration the simulator runs plus the
/// structural graph that property tests inspect.
#[derive(Clone, Debug, PartialEq)]
pub struct GeneratedTopology {
    /// Short stable name used in sweep cell ids (e.g. `fat32`).
    pub name: String,
    /// Number of simulated Hoplite nodes.
    pub n: usize,
    /// The network the simulator executes.
    pub net: NetworkConfig,
    /// The explicit wiring behind `net`.
    pub graph: TopologyGraph,
}

impl GeneratedTopology {
    /// Oversubscription factor realized at the rack layer: aggregate host bandwidth
    /// per group divided by the shared uplink bandwidth. `1.0` without uplinks
    /// (full bisection).
    pub fn oversubscription(&self) -> f64 {
        let Some(up) = &self.net.uplinks else { return 1.0 };
        let mut worst = 1.0f64;
        for g in 0..up.num_groups() {
            let agg: f64 =
                (0..self.n).filter(|&i| up.group(i) == g).map(|i| self.net.node_bandwidth(i)).sum();
            worst = worst.max(agg / up.bandwidth);
        }
        worst
    }
}

/// The paper's flat network at size `n`: every host hangs off one non-blocking
/// switch, uniform 10 Gbps NICs, uniform 85 µs latency.
pub fn uniform(n: usize) -> GeneratedTopology {
    let edges = (0..n).map(|h| (h, n)).collect();
    GeneratedTopology {
        name: format!("uniform{n}"),
        n,
        net: NetworkConfig::paper_testbed(),
        graph: TopologyGraph { hosts: n, switches: 1, edges },
    }
}

/// An oversubscribed fat-tree: `racks` racks of `per_rack` hosts behind ToR switches,
/// each ToR wired to every spine. The spine layer provides
/// `per_rack / oversubscription` host-equivalents of uplink capacity per rack, modeled
/// in the simulator as a shared per-rack uplink of `per_rack · B / oversubscription`
/// bytes/second that cross-rack bulk traffic serializes through.
pub fn fat_tree(racks: usize, per_rack: usize, oversubscription: f64) -> GeneratedTopology {
    assert!(racks >= 1 && per_rack >= 1);
    assert!(oversubscription >= 1.0, "oversubscription factor must be >= 1");
    let n = racks * per_rack;
    let spines = ((per_rack as f64 / oversubscription).ceil() as usize).max(1);
    let tor = |r: usize| n + r;
    let spine = |s: usize| n + racks + s;
    let mut edges = Vec::with_capacity(n + racks * spines);
    for h in 0..n {
        edges.push((h, tor(h / per_rack)));
    }
    for r in 0..racks {
        for s in 0..spines {
            edges.push((tor(r), spine(s)));
        }
    }
    let base = NetworkConfig::paper_testbed();
    let uplink_bw = per_rack as f64 * base.bandwidth / oversubscription;
    let group_of = (0..n).map(|h| (h / per_rack) as u32).collect();
    GeneratedTopology {
        name: format!("fat{n}"),
        n,
        net: NetworkConfig { uplinks: Some(UplinkSpec { group_of, bandwidth: uplink_bw }), ..base },
        graph: TopologyGraph { hosts: n, switches: racks + spines, edges },
    }
}

/// A flat cluster with heterogeneous NIC speeds: each node draws 10, 25, or
/// 50 Gbps from a seeded stream (weighted toward the paper's 10 Gbps baseline).
pub fn hetero_nics(n: usize, seed: u64) -> GeneratedTopology {
    let mut rng = SweepRng::new(seed ^ 0x7E7E_0001);
    let speeds = [1.25e9, 3.125e9, 6.25e9]; // 10 / 25 / 50 Gbps in bytes/s
    let weights = [2, 1, 1];
    let total: u64 = weights.iter().sum();
    let node_bandwidth = (0..n)
        .map(|_| {
            let mut draw = rng.below(total);
            for (i, &w) in weights.iter().enumerate() {
                if draw < w {
                    return speeds[i];
                }
                draw -= w;
            }
            speeds[0]
        })
        .collect();
    let edges = (0..n).map(|h| (h, n)).collect();
    GeneratedTopology {
        name: format!("hetero{n}"),
        n,
        net: NetworkConfig { node_bandwidth, ..NetworkConfig::paper_testbed() },
        graph: TopologyGraph { hosts: n, switches: 1, edges },
    }
}

/// A multi-site WAN deployment: `sites` sites of `per_site` hosts. Intra-site latency
/// is the paper's 85 µs; each inter-site latency is drawn from a seeded 10–40 ms
/// range (symmetric). Site routers form a star on site 0's router.
pub fn wan_tiers(sites: usize, per_site: usize, seed: u64) -> GeneratedTopology {
    assert!(sites >= 1 && per_site >= 1);
    let n = sites * per_site;
    let mut rng = SweepRng::new(seed ^ 0x7E7E_0002);
    let intra = SimDuration::from_micros(85);
    let mut latency = vec![vec![intra; sites]; sites];
    // Symmetric upper-triangle fill; index pairs are clearer than a split_at_mut dance.
    #[allow(clippy::needless_range_loop)]
    for a in 0..sites {
        for b in (a + 1)..sites {
            let ms = 10 + rng.below(31); // 10–40 ms one-way
            let l = SimDuration::from_millis(ms);
            latency[a][b] = l;
            latency[b][a] = l;
        }
    }
    let tier_of = (0..n).map(|h| (h / per_site) as u32).collect();
    let router = |s: usize| n + s;
    let mut edges: Vec<(usize, usize)> = (0..n).map(|h| (h, router(h / per_site))).collect();
    for s in 1..sites {
        edges.push((router(0), router(s)));
    }
    GeneratedTopology {
        name: format!("wan{n}"),
        n,
        net: NetworkConfig {
            latency_tiers: Some(LatencyTiers { tier_of, latency }),
            ..NetworkConfig::paper_testbed()
        },
        graph: TopologyGraph { hosts: n, switches: sites, edges },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_rng_is_deterministic() {
        let mut a = SweepRng::new(42);
        let mut b = SweepRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SweepRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_is_a_star_on_one_switch() {
        let t = uniform(8);
        assert_eq!(t.n, 8);
        assert!(t.graph.is_connected());
        assert_eq!(t.graph.degree(8), 8); // the switch
        assert_eq!(t.oversubscription(), 1.0);
    }

    #[test]
    fn fat_tree_realizes_requested_oversubscription() {
        let t = fat_tree(4, 8, 4.0);
        assert_eq!(t.n, 32);
        assert!(t.graph.is_connected());
        let over = t.oversubscription();
        assert!((over - 4.0).abs() < 1e-9, "oversubscription = {over}");
        // Each ToR: per_rack hosts below + spines above.
        let spines = t.graph.switches - 4;
        assert_eq!(t.graph.degree(32), 8 + spines);
    }

    #[test]
    fn hetero_nics_only_draws_known_speeds() {
        let t = hetero_nics(16, 3);
        assert_eq!(t.net.node_bandwidth.len(), 16);
        for &b in &t.net.node_bandwidth {
            assert!([1.25e9, 3.125e9, 6.25e9].contains(&b));
        }
        assert_eq!(t, hetero_nics(16, 3));
    }

    #[test]
    fn wan_tiers_are_symmetric_and_slower_across_sites() {
        let t = wan_tiers(3, 4, 9);
        let tiers = t.net.latency_tiers.as_ref().unwrap();
        for a in 0..3 {
            assert_eq!(tiers.latency[a][a], SimDuration::from_micros(85));
            for b in 0..3 {
                assert_eq!(tiers.latency[a][b], tiers.latency[b][a]);
                if a != b {
                    assert!(tiers.latency[a][b] >= SimDuration::from_millis(10));
                }
            }
        }
        assert!(t.graph.is_connected());
    }
}
