//! Collective-communication measurement scenarios on the simulated cluster.
//!
//! These functions reproduce the microbenchmark methodology of §5.1 of the paper:
//! input objects are created first (`Put`), and the measured phase starts once they are
//! ready. For the asynchrony experiments (Figure 8) the participants instead arrive
//! sequentially with a fixed interval and the measurement starts at the first arrival.

use hoplite_core::prelude::*;
use hoplite_simnet::prelude::*;

use crate::sim_cluster::{OpHandle, SimCluster};

/// Parameters shared by every scenario.
#[derive(Clone, Debug)]
pub struct ScenarioEnv {
    /// Hoplite configuration (block size, inline threshold, degree candidates, ...).
    pub hoplite: HopliteConfig,
    /// Simulated network characteristics.
    pub network: NetworkConfig,
}

impl Default for ScenarioEnv {
    fn default() -> Self {
        ScenarioEnv {
            hoplite: HopliteConfig::paper_testbed(),
            network: NetworkConfig::paper_testbed(),
        }
    }
}

impl ScenarioEnv {
    /// The paper's testbed environment.
    pub fn paper_testbed() -> Self {
        ScenarioEnv::default()
    }

    fn cluster(&self, n: usize) -> SimCluster {
        SimCluster::new(n, self.hoplite.clone(), self.network.clone())
    }
}

/// Outcome of one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Latency of the measured phase in seconds.
    pub latency_s: f64,
    /// Total data-plane bytes sent across the cluster during the whole run.
    pub data_bytes_sent: u64,
    /// Total protocol messages delivered by the simulator.
    pub messages: u64,
}

const SETTLE: f64 = 1.0;

fn settle(cluster: &mut SimCluster) -> SimTime {
    let end = cluster.run();
    // Start the measured phase strictly after the preparation phase has quiesced.
    SimTime::from_secs_f64(end.as_secs_f64().max(0.0) + SETTLE)
}

fn result(cluster: &SimCluster, latency_s: f64) -> ScenarioResult {
    ScenarioResult {
        latency_s,
        data_bytes_sent: cluster.total_metrics().data_bytes_sent,
        messages: cluster.sim_stats().messages_delivered,
    }
}

fn object(name: &str, i: usize) -> ObjectId {
    ObjectId::from_name(&format!("{name}-{i}"))
}

/// Round-trip latency of point-to-point communication (Figure 6): node 0 sends an
/// object to node 1, node 1 sends an equally-sized object back.
pub fn p2p_rtt(env: &ScenarioEnv, size: u64) -> ScenarioResult {
    let mut cluster = env.cluster(2);
    let a = ObjectId::from_name("p2p-a");
    let b = ObjectId::from_name("p2p-b");
    cluster.submit_at(
        SimTime::ZERO,
        0,
        ClientOp::Put { object: a, payload: Payload::synthetic(size) },
    );
    let start = settle(&mut cluster);
    let get_a = cluster.submit_at(start, 1, ClientOp::Get { object: a });
    cluster.run();
    let mid = cluster.done_time(get_a).expect("forward transfer completed");
    // The reply object is created only once the forward transfer is done, mirroring a
    // request/response exchange.
    cluster.submit_at(mid, 1, ClientOp::Put { object: b, payload: Payload::synthetic(size) });
    let get_b = cluster.submit_at(mid, 0, ClientOp::Get { object: b });
    cluster.run();
    let done = cluster.done_time(get_b).expect("return transfer completed");
    result(&cluster, (done - start).as_secs_f64())
}

/// Broadcast latency (Figures 7, 8, 14): node 0 owns the object, nodes `1..n` `Get` it.
/// Receivers arrive `interval_s` apart (0 = all at once); latency is measured from the
/// first arrival to the last completion.
pub fn broadcast_latency(
    env: &ScenarioEnv,
    n: usize,
    size: u64,
    interval_s: f64,
) -> ScenarioResult {
    assert!(n >= 2);
    let mut cluster = env.cluster(n);
    let obj = ObjectId::from_name("bcast");
    cluster.submit_at(
        SimTime::ZERO,
        0,
        ClientOp::Put { object: obj, payload: Payload::synthetic(size) },
    );
    let start = settle(&mut cluster);
    let gets: Vec<OpHandle> = (1..n)
        .map(|node| {
            let at = SimTime::from_secs_f64(start.as_secs_f64() + (node - 1) as f64 * interval_s);
            cluster.submit_at(at, node, ClientOp::Get { object: obj })
        })
        .collect();
    cluster.run();
    let last = gets
        .iter()
        .map(|&h| cluster.done_time(h).expect("broadcast receiver finished"))
        .max()
        .unwrap();
    result(&cluster, (last - start).as_secs_f64())
}

/// Gather latency (Figures 7, 14): every node `Put`s one object, node 0 `Get`s them all.
pub fn gather_latency(env: &ScenarioEnv, n: usize, size: u64) -> ScenarioResult {
    assert!(n >= 2);
    let mut cluster = env.cluster(n);
    let objects: Vec<ObjectId> = (1..n).map(|i| object("gather", i)).collect();
    for (i, &obj) in objects.iter().enumerate() {
        cluster.submit_at(
            SimTime::ZERO,
            i + 1,
            ClientOp::Put { object: obj, payload: Payload::synthetic(size) },
        );
    }
    let start = settle(&mut cluster);
    let gets: Vec<OpHandle> = objects
        .iter()
        .map(|&obj| cluster.submit_at(start, 0, ClientOp::Get { object: obj }))
        .collect();
    cluster.run();
    let last =
        gets.iter().map(|&h| cluster.done_time(h).expect("gather get finished")).max().unwrap();
    result(&cluster, (last - start).as_secs_f64())
}

/// Reduce latency (Figures 7, 8, 14, 15): every node `Put`s one object, node 0 calls
/// `Reduce` over all of them and `Get`s the result. `degree` forces the tree degree
/// (used by the Appendix-B ablation); `interval_s > 0` staggers the input arrivals and
/// starts the measurement at the `Reduce` call instead.
pub fn reduce_latency(
    env: &ScenarioEnv,
    n: usize,
    size: u64,
    degree: Option<usize>,
    interval_s: f64,
) -> ScenarioResult {
    assert!(n >= 2);
    let mut cluster = env.cluster(n);
    let sources: Vec<ObjectId> = (0..n).map(|i| object("reduce", i)).collect();
    let target = ObjectId::from_name("reduce-result");
    let start = if interval_s == 0.0 {
        for (i, &src) in sources.iter().enumerate() {
            cluster.submit_at(
                SimTime::ZERO,
                i,
                ClientOp::Put { object: src, payload: Payload::synthetic(size) },
            );
        }
        settle(&mut cluster)
    } else {
        let start = SimTime::from_secs_f64(SETTLE);
        for (i, &src) in sources.iter().enumerate() {
            let at = SimTime::from_secs_f64(start.as_secs_f64() + i as f64 * interval_s);
            cluster.submit_at(
                at,
                i,
                ClientOp::Put { object: src, payload: Payload::synthetic(size) },
            );
        }
        start
    };
    cluster.submit_at(
        start,
        0,
        ClientOp::Reduce {
            target,
            sources,
            num_objects: None,
            spec: ReduceSpec::sum_f32(),
            degree,
        },
    );
    let get = cluster.submit_at(start, 0, ClientOp::Get { object: target });
    cluster.run();
    let done = cluster.done_time(get).expect("reduce result fetched");
    result(&cluster, (done - start).as_secs_f64())
}

/// AllReduce latency (Figures 7, 8, 14): a `Reduce` followed by every node `Get`ting the
/// result (§3.4.3), which is exactly how Hoplite expresses allreduce.
pub fn allreduce_latency(
    env: &ScenarioEnv,
    n: usize,
    size: u64,
    interval_s: f64,
) -> ScenarioResult {
    assert!(n >= 2);
    let mut cluster = env.cluster(n);
    let sources: Vec<ObjectId> = (0..n).map(|i| object("allreduce", i)).collect();
    let target = ObjectId::from_name("allreduce-result");
    let start = if interval_s == 0.0 {
        for (i, &src) in sources.iter().enumerate() {
            cluster.submit_at(
                SimTime::ZERO,
                i,
                ClientOp::Put { object: src, payload: Payload::synthetic(size) },
            );
        }
        settle(&mut cluster)
    } else {
        let start = SimTime::from_secs_f64(SETTLE);
        for (i, &src) in sources.iter().enumerate() {
            let at = SimTime::from_secs_f64(start.as_secs_f64() + i as f64 * interval_s);
            cluster.submit_at(
                at,
                i,
                ClientOp::Put { object: src, payload: Payload::synthetic(size) },
            );
        }
        start
    };
    cluster.submit_at(
        start,
        0,
        ClientOp::Reduce {
            target,
            sources,
            num_objects: None,
            spec: ReduceSpec::sum_f32(),
            degree: None,
        },
    );
    let gets: Vec<OpHandle> = (0..n)
        .map(|node| cluster.submit_at(start, node, ClientOp::Get { object: target }))
        .collect();
    cluster.run();
    let last = gets
        .iter()
        .map(|&h| cluster.done_time(h).expect("allreduce receiver finished"))
        .max()
        .unwrap();
    result(&cluster, (last - start).as_secs_f64())
}

/// Outcome of the directory-failover scenario.
#[derive(Clone, Debug)]
pub struct DirectoryFailoverResult {
    /// Latency of the measured broadcast phase in seconds (first arrival → last
    /// completion), with the primary killed mid-broadcast.
    pub latency_s: f64,
    /// Receivers that completed despite the directory failure.
    pub completed_receivers: usize,
    /// Nodes recorded as complete-copy holders at the promoted backup after the run.
    pub locations_at_new_primary: Vec<NodeId>,
    /// Outstanding directory queries re-issued at the new primary.
    pub directory_failovers: u64,
}

/// Kill the *directory primary* of the broadcast object mid-broadcast (§3.5: the
/// directory is replicated, so metadata must survive). The cluster dedicates its last
/// node to hosting the shard primary — it holds no object data — so the kill isolates
/// the metadata plane: every receiver must still complete, and the promoted backup
/// must hold every location record. One receiver arrives *after* the primary died but
/// before the failure is detected, exercising the client's query re-drive.
pub fn directory_failover_broadcast(
    env: &ScenarioEnv,
    n: usize,
    size: u64,
    fail_at_s: f64,
) -> DirectoryFailoverResult {
    assert!(n >= 4, "need a source, two receivers, and a dedicated directory node");
    let mut cluster = env.cluster(n);
    let dir_node = n - 1;
    // An object whose shard is primaried by the dedicated directory node.
    let obj = (0u64..)
        .map(|k| ObjectId::from_name(&format!("dir-failover-{k}")))
        .find(|&o| ClusterView::of_size(n).shard_node(o).index() == dir_node)
        .unwrap();
    cluster.submit_at(
        SimTime::ZERO,
        0,
        ClientOp::Put { object: obj, payload: Payload::synthetic(size) },
    );
    let start = settle(&mut cluster);
    let fail_at = SimTime::from_secs_f64(start.as_secs_f64() + fail_at_s);
    // All receivers but the last arrive with the broadcast; the last one arrives just
    // after the primary died, so its query races the failure detector.
    let late_at = SimTime::from_secs_f64(fail_at.as_secs_f64() + 0.05);
    let gets: Vec<OpHandle> = (1..n - 1)
        .map(|node| {
            let at = if node == n - 2 { late_at } else { start };
            cluster.submit_at(at, node, ClientOp::Get { object: obj })
        })
        .collect();
    cluster.fail_node_at(fail_at, dir_node);
    cluster.run();
    let done: Vec<SimTime> = gets.iter().filter_map(|&h| cluster.done_time(h)).collect();
    let latency_s = done.iter().map(|t| (*t - start).as_secs_f64()).fold(0.0, f64::max);
    // The ring successor of the dead primary is its backup; read the surviving
    // replica's records there.
    let backup = (dir_node + 1) % n;
    let locations_at_new_primary = cluster.directory_locations(backup, obj).unwrap_or_default();
    DirectoryFailoverResult {
        latency_s,
        completed_receivers: done.len(),
        locations_at_new_primary,
        directory_failovers: cluster.total_metrics().directory_failovers,
    }
}

/// Directory microbenchmark (§5.1.1): latency of fetching a small (inline-cached)
/// object from another node, which is one location query round trip.
pub fn directory_fetch_latency(env: &ScenarioEnv, size: u64) -> ScenarioResult {
    let mut cluster = env.cluster(2);
    let obj = ObjectId::from_name("dir-small");
    cluster.submit_at(
        SimTime::ZERO,
        0,
        ClientOp::Put { object: obj, payload: Payload::synthetic(size) },
    );
    let start = settle(&mut cluster);
    let get = cluster.submit_at(start, 1, ClientOp::Get { object: obj });
    cluster.run();
    let done = cluster.done_time(get).expect("small object fetched");
    result(&cluster, (done - start).as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;
    const GB: u64 = 1024 * 1024 * 1024;

    #[test]
    fn p2p_rtt_tracks_bandwidth_for_large_objects() {
        let env = ScenarioEnv::paper_testbed();
        let r = p2p_rtt(&env, GB);
        let optimal = 2.0 * GB as f64 / 1.25e9;
        assert!(r.latency_s > optimal * 0.95, "cannot beat the wire: {}", r.latency_s);
        assert!(r.latency_s < optimal * 1.6, "pipelining keeps overhead bounded: {}", r.latency_s);
    }

    #[test]
    fn p2p_rtt_small_objects_latency_bound() {
        let env = ScenarioEnv::paper_testbed();
        let r = p2p_rtt(&env, 1024);
        // Two directory-served (inline) fetches: a handful of RPC latencies, well under
        // a millisecond on the simulated network.
        assert!(r.latency_s < 2e-3, "{}", r.latency_s);
    }

    #[test]
    fn broadcast_beats_sender_fanout_and_loses_to_nothing() {
        let env = ScenarioEnv::paper_testbed();
        let r = broadcast_latency(&env, 8, 256 * MB, 0.0);
        let one_copy = 256.0 * MB as f64 / 1.25e9;
        assert!(r.latency_s >= one_copy, "at least one copy time");
        assert!(r.latency_s < 3.0 * one_copy, "roughly bandwidth-optimal, got {}", r.latency_s);
    }

    #[test]
    fn reduce_degree_override_changes_behaviour() {
        let env = ScenarioEnv::paper_testbed();
        let chain = reduce_latency(&env, 8, 64 * MB, Some(1), 0.0);
        let star = reduce_latency(&env, 8, 64 * MB, Some(0), 0.0);
        // For large objects the chain must beat the star (Appendix B).
        assert!(
            chain.latency_s < star.latency_s,
            "chain {} vs star {}",
            chain.latency_s,
            star.latency_s
        );
    }

    #[test]
    fn staggered_broadcast_overlaps_arrivals() {
        let env = ScenarioEnv::paper_testbed();
        let sync = broadcast_latency(&env, 8, 256 * MB, 0.0);
        let staggered = broadcast_latency(&env, 8, 256 * MB, 0.1);
        // Receivers arriving 0.1 s apart: the last arrives 0.6 s in; total latency grows
        // by far less than 0.6 s because earlier receivers finish and serve later ones.
        assert!(staggered.latency_s < sync.latency_s + 0.65);
        assert!(staggered.latency_s >= sync.latency_s * 0.8);
    }

    #[test]
    fn allreduce_completes_everywhere() {
        let env = ScenarioEnv::paper_testbed();
        let r = allreduce_latency(&env, 4, 16 * MB, 0.0);
        assert!(r.latency_s > 0.0 && r.latency_s < 1.0);
    }

    #[test]
    fn directory_primary_kill_mid_broadcast_loses_no_metadata() {
        let env = ScenarioEnv::paper_testbed();
        let n = 8;
        let r = directory_failover_broadcast(&env, n, 512 * MB, 0.05);
        assert_eq!(r.completed_receivers, n - 2, "every receiver completed");
        // Zero lost object-location records: the promoted backup knows the source and
        // every receiver as a complete-copy holder (the killed node held no data).
        let mut holders = r.locations_at_new_primary.clone();
        holders.sort_by_key(|h| h.0);
        let expected: Vec<NodeId> = (0..(n - 1) as u32).map(NodeId).collect();
        assert_eq!(holders, expected, "location records survived the primary kill");
        // The late receiver's query vanished with the old primary and was re-driven.
        assert!(r.directory_failovers >= 1, "at least one query re-issued after failover");
        // Completion is not held hostage by the metadata failover: the late receiver
        // pays at most the detection delay on top of its own transfer.
        let one_copy = 512.0 * MB as f64 / 1.25e9;
        assert!(
            r.latency_s < 3.0 * one_copy + 0.05 + 0.05 + 0.74 + 0.5,
            "failover latency bounded by detection delay, got {}",
            r.latency_s
        );
    }

    #[test]
    fn directory_fetch_is_a_couple_of_rpcs() {
        let env = ScenarioEnv::paper_testbed();
        let r = directory_fetch_latency(&env, 1024);
        assert!(r.latency_s < 1e-3, "{}", r.latency_s);
        assert!(r.latency_s >= 150e-6, "{}", r.latency_s);
    }
}
