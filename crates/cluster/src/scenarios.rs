//! Collective-communication measurement scenarios on the simulated cluster.
//!
//! These functions reproduce the microbenchmark methodology of §5.1 of the paper:
//! input objects are created first (`Put`), and the measured phase starts once they are
//! ready. For the asynchrony experiments (Figure 8) the participants instead arrive
//! sequentially with a fixed interval and the measurement starts at the first arrival.

use hoplite_core::prelude::*;
use hoplite_simnet::prelude::*;

use crate::sim_cluster::{OpHandle, SimCluster};

/// Parameters shared by every scenario.
#[derive(Clone, Debug)]
pub struct ScenarioEnv {
    /// Hoplite configuration (block size, inline threshold, degree candidates, ...).
    pub hoplite: HopliteConfig,
    /// Simulated network characteristics.
    pub network: NetworkConfig,
}

impl Default for ScenarioEnv {
    fn default() -> Self {
        ScenarioEnv {
            hoplite: HopliteConfig::paper_testbed(),
            network: NetworkConfig::paper_testbed(),
        }
    }
}

impl ScenarioEnv {
    /// The paper's testbed environment.
    pub fn paper_testbed() -> Self {
        ScenarioEnv::default()
    }

    fn cluster(&self, n: usize) -> SimCluster {
        SimCluster::new(n, self.hoplite.clone(), self.network.clone())
    }
}

/// Outcome of one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Latency of the measured phase in seconds.
    pub latency_s: f64,
    /// Total data-plane bytes sent across the cluster during the whole run.
    pub data_bytes_sent: u64,
    /// Total protocol messages delivered by the simulator.
    pub messages: u64,
}

const SETTLE: f64 = 1.0;

fn settle(cluster: &mut SimCluster) -> SimTime {
    let end = cluster.run();
    // Start the measured phase strictly after the preparation phase has quiesced.
    SimTime::from_secs_f64(end.as_secs_f64().max(0.0) + SETTLE)
}

fn result(cluster: &SimCluster, latency_s: f64) -> ScenarioResult {
    ScenarioResult {
        latency_s,
        data_bytes_sent: cluster.total_metrics().data_bytes_sent,
        messages: cluster.sim_stats().messages_delivered,
    }
}

fn object(name: &str, i: usize) -> ObjectId {
    ObjectId::from_name(&format!("{name}-{i}"))
}

/// Round-trip latency of point-to-point communication (Figure 6): node 0 sends an
/// object to node 1, node 1 sends an equally-sized object back.
pub fn p2p_rtt(env: &ScenarioEnv, size: u64) -> ScenarioResult {
    let mut cluster = env.cluster(2);
    let a = ObjectId::from_name("p2p-a");
    let b = ObjectId::from_name("p2p-b");
    cluster.submit_at(
        SimTime::ZERO,
        0,
        ClientOp::Put { object: a, payload: Payload::synthetic(size) },
    );
    let start = settle(&mut cluster);
    let get_a = cluster.submit_at(start, 1, ClientOp::Get { object: a });
    cluster.run();
    let mid = cluster.done_time(get_a).expect("forward transfer completed");
    // The reply object is created only once the forward transfer is done, mirroring a
    // request/response exchange.
    cluster.submit_at(mid, 1, ClientOp::Put { object: b, payload: Payload::synthetic(size) });
    let get_b = cluster.submit_at(mid, 0, ClientOp::Get { object: b });
    cluster.run();
    let done = cluster.done_time(get_b).expect("return transfer completed");
    result(&cluster, (done - start).as_secs_f64())
}

/// Broadcast latency (Figures 7, 8, 14): node 0 owns the object, nodes `1..n` `Get` it.
/// Receivers arrive `interval_s` apart (0 = all at once); latency is measured from the
/// first arrival to the last completion.
pub fn broadcast_latency(
    env: &ScenarioEnv,
    n: usize,
    size: u64,
    interval_s: f64,
) -> ScenarioResult {
    assert!(n >= 2);
    let mut cluster = env.cluster(n);
    let obj = ObjectId::from_name("bcast");
    cluster.submit_at(
        SimTime::ZERO,
        0,
        ClientOp::Put { object: obj, payload: Payload::synthetic(size) },
    );
    let start = settle(&mut cluster);
    let gets: Vec<OpHandle> = (1..n)
        .map(|node| {
            let at = SimTime::from_secs_f64(start.as_secs_f64() + (node - 1) as f64 * interval_s);
            cluster.submit_at(at, node, ClientOp::Get { object: obj })
        })
        .collect();
    cluster.run();
    let last = gets
        .iter()
        .map(|&h| cluster.done_time(h).expect("broadcast receiver finished"))
        .max()
        .unwrap();
    result(&cluster, (last - start).as_secs_f64())
}

/// Gather latency (Figures 7, 14): every node `Put`s one object, node 0 `Get`s them all.
pub fn gather_latency(env: &ScenarioEnv, n: usize, size: u64) -> ScenarioResult {
    assert!(n >= 2);
    let mut cluster = env.cluster(n);
    let objects: Vec<ObjectId> = (1..n).map(|i| object("gather", i)).collect();
    for (i, &obj) in objects.iter().enumerate() {
        cluster.submit_at(
            SimTime::ZERO,
            i + 1,
            ClientOp::Put { object: obj, payload: Payload::synthetic(size) },
        );
    }
    let start = settle(&mut cluster);
    let gets: Vec<OpHandle> = objects
        .iter()
        .map(|&obj| cluster.submit_at(start, 0, ClientOp::Get { object: obj }))
        .collect();
    cluster.run();
    let last =
        gets.iter().map(|&h| cluster.done_time(h).expect("gather get finished")).max().unwrap();
    result(&cluster, (last - start).as_secs_f64())
}

/// Reduce latency (Figures 7, 8, 14, 15): every node `Put`s one object, node 0 calls
/// `Reduce` over all of them and `Get`s the result. `degree` forces the tree degree
/// (used by the Appendix-B ablation); `interval_s > 0` staggers the input arrivals and
/// starts the measurement at the `Reduce` call instead.
pub fn reduce_latency(
    env: &ScenarioEnv,
    n: usize,
    size: u64,
    degree: Option<usize>,
    interval_s: f64,
) -> ScenarioResult {
    assert!(n >= 2);
    let mut cluster = env.cluster(n);
    let sources: Vec<ObjectId> = (0..n).map(|i| object("reduce", i)).collect();
    let target = ObjectId::from_name("reduce-result");
    let start = if interval_s == 0.0 {
        for (i, &src) in sources.iter().enumerate() {
            cluster.submit_at(
                SimTime::ZERO,
                i,
                ClientOp::Put { object: src, payload: Payload::synthetic(size) },
            );
        }
        settle(&mut cluster)
    } else {
        let start = SimTime::from_secs_f64(SETTLE);
        for (i, &src) in sources.iter().enumerate() {
            let at = SimTime::from_secs_f64(start.as_secs_f64() + i as f64 * interval_s);
            cluster.submit_at(
                at,
                i,
                ClientOp::Put { object: src, payload: Payload::synthetic(size) },
            );
        }
        start
    };
    cluster.submit_at(
        start,
        0,
        ClientOp::Reduce {
            target,
            sources,
            num_objects: None,
            spec: ReduceSpec::sum_f32(),
            degree,
        },
    );
    let get = cluster.submit_at(start, 0, ClientOp::Get { object: target });
    cluster.run();
    let done = cluster.done_time(get).expect("reduce result fetched");
    result(&cluster, (done - start).as_secs_f64())
}

/// AllReduce latency (Figures 7, 8, 14): a `Reduce` followed by every node `Get`ting the
/// result (§3.4.3), which is exactly how Hoplite expresses allreduce.
pub fn allreduce_latency(
    env: &ScenarioEnv,
    n: usize,
    size: u64,
    interval_s: f64,
) -> ScenarioResult {
    assert!(n >= 2);
    let mut cluster = env.cluster(n);
    let sources: Vec<ObjectId> = (0..n).map(|i| object("allreduce", i)).collect();
    let target = ObjectId::from_name("allreduce-result");
    let start = if interval_s == 0.0 {
        for (i, &src) in sources.iter().enumerate() {
            cluster.submit_at(
                SimTime::ZERO,
                i,
                ClientOp::Put { object: src, payload: Payload::synthetic(size) },
            );
        }
        settle(&mut cluster)
    } else {
        let start = SimTime::from_secs_f64(SETTLE);
        for (i, &src) in sources.iter().enumerate() {
            let at = SimTime::from_secs_f64(start.as_secs_f64() + i as f64 * interval_s);
            cluster.submit_at(
                at,
                i,
                ClientOp::Put { object: src, payload: Payload::synthetic(size) },
            );
        }
        start
    };
    cluster.submit_at(
        start,
        0,
        ClientOp::Reduce {
            target,
            sources,
            num_objects: None,
            spec: ReduceSpec::sum_f32(),
            degree: None,
        },
    );
    let gets: Vec<OpHandle> = (0..n)
        .map(|node| cluster.submit_at(start, node, ClientOp::Get { object: target }))
        .collect();
    cluster.run();
    let last = gets
        .iter()
        .map(|&h| cluster.done_time(h).expect("allreduce receiver finished"))
        .max()
        .unwrap();
    result(&cluster, (last - start).as_secs_f64())
}

/// Outcome of the directory-failover scenario.
#[derive(Clone, Debug)]
pub struct DirectoryFailoverResult {
    /// Latency of the measured broadcast phase in seconds (first arrival → last
    /// completion), with the primary killed mid-broadcast.
    pub latency_s: f64,
    /// Receivers that completed despite the directory failure.
    pub completed_receivers: usize,
    /// Nodes recorded as complete-copy holders at the promoted backup after the run.
    pub locations_at_new_primary: Vec<NodeId>,
    /// Outstanding directory queries re-issued at the new primary.
    pub directory_failovers: u64,
}

/// Kill the *directory primary* of the broadcast object mid-broadcast (§3.5: the
/// directory is replicated, so metadata must survive). The cluster dedicates its last
/// node to hosting the shard primary — it holds no object data — so the kill isolates
/// the metadata plane: every receiver must still complete, and the promoted backup
/// must hold every location record. One receiver arrives *after* the primary died but
/// before the failure is detected, exercising the client's query re-drive.
pub fn directory_failover_broadcast(
    env: &ScenarioEnv,
    n: usize,
    size: u64,
    fail_at_s: f64,
) -> DirectoryFailoverResult {
    assert!(n >= 4, "need a source, two receivers, and a dedicated directory node");
    let mut cluster = env.cluster(n);
    let dir_node = n - 1;
    // An object whose shard is primaried by the dedicated directory node.
    let obj = (0u64..)
        .map(|k| ObjectId::from_name(&format!("dir-failover-{k}")))
        .find(|&o| ClusterView::of_size(n).shard_node(o).index() == dir_node)
        .unwrap();
    cluster.submit_at(
        SimTime::ZERO,
        0,
        ClientOp::Put { object: obj, payload: Payload::synthetic(size) },
    );
    let start = settle(&mut cluster);
    let fail_at = SimTime::from_secs_f64(start.as_secs_f64() + fail_at_s);
    // All receivers but the last arrive with the broadcast; the last one arrives just
    // after the primary died, so its query races the failure detector.
    let late_at = SimTime::from_secs_f64(fail_at.as_secs_f64() + 0.05);
    let gets: Vec<OpHandle> = (1..n - 1)
        .map(|node| {
            let at = if node == n - 2 { late_at } else { start };
            cluster.submit_at(at, node, ClientOp::Get { object: obj })
        })
        .collect();
    cluster.fail_node_at(fail_at, dir_node);
    cluster.run();
    let done: Vec<SimTime> = gets.iter().filter_map(|&h| cluster.done_time(h)).collect();
    let latency_s = done.iter().map(|t| (*t - start).as_secs_f64()).fold(0.0, f64::max);
    // The ring successor of the dead primary is its backup; read the surviving
    // replica's records there.
    let backup = (dir_node + 1) % n;
    let locations_at_new_primary = cluster.directory_locations(backup, obj).unwrap_or_default();
    DirectoryFailoverResult {
        latency_s,
        completed_receivers: done.len(),
        locations_at_new_primary,
        directory_failovers: cluster.total_metrics().directory_failovers,
    }
}

/// Outcome of the rolling-restart scenario.
#[derive(Clone, Debug)]
pub struct RollingRestartResult {
    /// Cluster size.
    pub n: usize,
    /// Broadcast-wave `Get`s that completed (one wave is launched inside every kill
    /// window, so traffic is live across every failure and restart).
    pub waves_completed: usize,
    /// Waves launched.
    pub waves_expected: usize,
    /// Restarted nodes whose post-restart re-`Get` of the long-lived object completed.
    pub refetches_completed: usize,
    /// Holders of the long-lived object recorded at its shard's final primary.
    pub holders: Vec<NodeId>,
    /// Shards (one probed per node) whose final primary is the original owner — i.e.
    /// a node that was killed, restarted, resynced, and re-admitted mid-run.
    pub primaries_restored: usize,
    /// Whether the mid-sequence reduce completed with live traffic during a restart.
    pub reduce_ok: bool,
    /// Total directory snapshots installed by restarted nodes.
    pub resyncs: u64,
    /// Total journaled intents re-driven after failovers (the unacked windows).
    pub redrives: u64,
}

/// Kill **and restart** every node in sequence under live broadcast/reduce traffic
/// (the §3.5 availability story completed: replication for failover, snapshot +
/// acked-log resync for fail-back). A long-lived object `W` is broadcast everywhere
/// up front; each kill window also runs a fresh broadcast wave (exercising the
/// unacked-window re-drive when the wave's shard primary is the dying node), one
/// window runs a reduce, and every restarted node re-fetches `W` (restoring its
/// purged location record). At the end the cluster must agree that the original
/// owners lead their shards again and that `W`'s location records are complete.
///
/// `kill_gap_s` is the spacing between consecutive kills; it must comfortably exceed
/// the failure-detection delay so each node is restarted, resynced, and re-admitted
/// before the next kill.
pub fn rolling_restart_collectives(
    env: &ScenarioEnv,
    n: usize,
    size: u64,
    kill_gap_s: f64,
) -> RollingRestartResult {
    assert!(n >= 4, "need enough nodes to keep replicas and traffic alive");
    let detection = env.network.failure_detection_delay.as_secs_f64();
    assert!(
        kill_gap_s > 2.0 * detection + 1.0,
        "kill gap {kill_gap_s}s too tight for detection delay {detection}s"
    );
    let mut cluster = env.cluster(n);
    let w = ObjectId::from_name("rolling-w");
    cluster.submit_at(
        SimTime::ZERO,
        0,
        ClientOp::Put { object: w, payload: Payload::synthetic(size) },
    );
    let start = settle(&mut cluster);
    let first_wave: Vec<OpHandle> =
        (1..n).map(|node| cluster.submit_at(start, node, ClientOp::Get { object: w })).collect();
    let base = SimTime::from_secs_f64(start.as_secs_f64() + 2.0);

    let mut wave_gets: Vec<OpHandle> = Vec::new();
    let mut refetches: Vec<OpHandle> = Vec::new();
    let mut reduce_get = None;
    for k in 0..n {
        let t_k = SimTime::from_secs_f64(base.as_secs_f64() + k as f64 * kill_gap_s);
        cluster.fail_node_at(t_k, k);
        // Live traffic inside the kill window: a fresh broadcast wave between two
        // surviving nodes. When the dying node primaries the wave object's shard,
        // the putter's unconfirmed registration and the getter's outstanding query
        // are exactly the unacked window the failover re-drives.
        let wave_at = SimTime::from_secs_f64(t_k.as_secs_f64() + 0.1);
        let putter = (k + 1) % n;
        let getter = (k + 2) % n;
        let wk = ObjectId::from_name(&format!("rolling-wave-{k}"));
        cluster.submit_at(
            wave_at,
            putter,
            ClientOp::Put { object: wk, payload: Payload::synthetic(size) },
        );
        wave_gets.push(cluster.submit_at(wave_at, getter, ClientOp::Get { object: wk }));
        if k == n / 2 {
            // One window also runs a reduce, so tree traffic crosses a restart.
            let sources: Vec<ObjectId> =
                (1..4).map(|i| ObjectId::from_name(&format!("rolling-red-{i}"))).collect();
            for (i, &src) in sources.iter().enumerate() {
                cluster.submit_at(
                    wave_at,
                    (k + 1 + i) % n,
                    ClientOp::Put { object: src, payload: Payload::synthetic(size) },
                );
            }
            let target = ObjectId::from_name("rolling-red-sum");
            let red_at = SimTime::from_secs_f64(wave_at.as_secs_f64() + 0.3);
            cluster.submit_at(
                red_at,
                (k + 1) % n,
                ClientOp::Reduce {
                    target,
                    sources,
                    num_objects: None,
                    spec: ReduceSpec::sum_f32(),
                    degree: None,
                },
            );
            reduce_get =
                Some(cluster.submit_at(red_at, (k + 1) % n, ClientOp::Get { object: target }));
        }
        // Restart after the survivors detected the failure; the fresh node resyncs
        // (snapshot + log catch-up) and announces itself re-admitted.
        let restart_at = SimTime::from_secs_f64(t_k.as_secs_f64() + detection + 0.3);
        cluster.restart_node_at(restart_at, k);
        // The restarted node lost its copy of W (and its location record was purged
        // with the failure); re-fetch it so the directory must re-learn the holder.
        let refetch_at = SimTime::from_secs_f64(restart_at.as_secs_f64() + detection + 0.5);
        refetches.push(cluster.submit_at(refetch_at, k, ClientOp::Get { object: w }));
    }
    cluster.run();

    let waves_completed = first_wave
        .iter()
        .chain(wave_gets.iter())
        .filter(|&&h| cluster.done_time(h).is_some())
        .count();
    let refetches_completed = refetches.iter().filter(|&&h| cluster.done_time(h).is_some()).count();
    // W's location records at its shard's final primary.
    let primary = cluster.directory_primary(0, w).expect("W's shard has a primary");
    let mut holders = cluster.directory_locations(primary.index(), w).unwrap_or_default();
    holders.sort_by_key(|h| h.0);
    holders.dedup();
    // For every node j, probe one object whose shard j originally owned: after the
    // full cycle the original owner must lead it again (observed from a peer).
    let view = ClusterView::of_size(n);
    let primaries_restored = (0..n)
        .filter(|&j| {
            let o = (0u64..)
                .map(|s| ObjectId::from_name(&format!("probe-{j}-{s}")))
                .find(|&o| view.shard_node(o).index() == j)
                .unwrap();
            cluster.directory_primary((j + 1) % n, o) == Some(NodeId(j as u32))
        })
        .count();
    let totals = cluster.total_metrics();
    RollingRestartResult {
        n,
        waves_completed,
        waves_expected: first_wave.len() + wave_gets.len(),
        refetches_completed,
        holders,
        primaries_restored,
        reduce_ok: reduce_get.map(|h| cluster.done_time(h).is_some()).unwrap_or(false),
        resyncs: totals.directory_resyncs,
        redrives: totals.directory_redrives,
    }
}

/// Outcome of the gossip-detector partition drill.
#[derive(Clone, Debug)]
pub struct SuspicionRefutationResult {
    /// Direct probes sent cluster-wide (the detector was actually running).
    pub probes_sent: u64,
    /// Suspicion verdicts raised or learned across the cluster.
    pub suspicions_raised: u64,
    /// Incarnation-bumping refutations sent by suspected-but-alive nodes.
    pub refutations_sent: u64,
    /// Death verdicts declared by any detector (the zero-false-positive target).
    pub deaths_declared: u64,
    /// Deaths learned via gossip (must also stay zero).
    pub deaths_learned: u64,
    /// Gossip entries piggybacked on probe traffic.
    pub gossip_entries: u64,
    /// `Get`s that completed across both traffic waves.
    pub gets_completed: usize,
    /// `Get`s submitted.
    pub gets_expected: usize,
}

/// Drive the SWIM failure detector through a transient partition plus a straggler
/// window, and require **zero deaths**: the partitioned node is suspected (its acks
/// stall at the cut), the partition heals inside the suspicion window, the suspect
/// learns of the suspicion from the destination-priority gossip entry on the next
/// probe it receives, refutes by bumping its incarnation, and the refutation gossips
/// back before any suspicion expires. A second node is meanwhile slowed 4–10× with
/// bulk traffic on its NIC — slow must never be mistaken for dead. `seed` jitters the
/// victim choice, partition timing, and straggler factor.
pub fn partition_suspicion_refuted(
    env: &ScenarioEnv,
    n: usize,
    seed: u64,
) -> SuspicionRefutationResult {
    assert!(n >= 4, "need a victim, a straggler, and quorum traffic");
    let mut hoplite = env.hoplite.clone();
    let detector = DetectorConfig {
        probe_period: Duration::from_millis(100),
        ack_timeout: Duration::from_millis(40),
        suspicion_multiplier: 30, // 3 s window: partitions below heal inside it
        indirect_fanout: 3,
        gossip_budget: 6,
    };
    hoplite.detector = Some(detector.clone());
    let mut cluster = SimCluster::new(n, hoplite, env.network.clone());

    let mut lcg = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        lcg >> 33
    };
    let victim = (next() as usize) % n;
    let straggler = (victim + 1) % n;
    let source = (victim + 2) % n;

    // Pre-partition traffic: a broadcast everyone finishes before the cut lands.
    let obj = ObjectId::from_name(&format!("suspicion-pre-{seed}"));
    cluster.submit_at(
        SimTime::ZERO,
        source,
        ClientOp::Put { object: obj, payload: Payload::synthetic(8 * 1024 * 1024) },
    );
    let mut gets: Vec<OpHandle> = (0..n)
        .filter(|&node| node != source)
        .map(|node| {
            cluster.submit_at(SimTime::from_secs_f64(0.3), node, ClientOp::Get { object: obj })
        })
        .collect();

    // The cut: the victim alone on one side, from inside the probe cadence, healing
    // well inside the 3 s suspicion window. Messages stall at the cut (TCP
    // retransmits); suspicion arises from the *local* ack timeout on both sides.
    let cut_at = 0.8 + (next() % 20) as f64 * 0.01;
    let heal_at = cut_at + 0.4 + (next() % 20) as f64 * 0.01;
    let side: Vec<bool> = (0..n).map(|node| node == victim).collect();
    cluster.partition_between(
        SimTime::from_secs_f64(cut_at),
        SimTime::from_secs_f64(heal_at),
        side,
    );

    // The straggler window: 4–10× NIC slow-down overlapping the partition, with bulk
    // bytes on its queue. Probes are control-sized and must keep flowing.
    let factor = 4.0 + (next() % 7) as f64;
    cluster.slow_node_between(
        straggler,
        SimTime::from_secs_f64(0.5),
        SimTime::from_secs_f64(heal_at + 2.0),
        factor,
    );

    // Post-heal traffic, including from the refuted victim: the cluster must still
    // serve everyone once suspicions have been cleared.
    let post = ObjectId::from_name(&format!("suspicion-post-{seed}"));
    let post_at = heal_at + 2.5;
    cluster.submit_at(
        SimTime::from_secs_f64(post_at),
        victim,
        ClientOp::Put { object: post, payload: Payload::synthetic(4 * 1024 * 1024) },
    );
    gets.extend((0..n).filter(|&node| node != victim).map(|node| {
        cluster.submit_at(
            SimTime::from_secs_f64(post_at + 0.2),
            node,
            ClientOp::Get { object: post },
        )
    }));

    // Run past every possible suspicion expiry (last suspicion starts before the
    // heal; window is 3 s): if any refutation failed to land, a death would be
    // declared inside this horizon and the assertions below would catch it.
    cluster.run_until(SimTime::from_secs_f64(
        post_at + detector.suspicion_window().as_nanos() as f64 * 1e-9 + 2.0,
    ));

    let totals = cluster.total_metrics();
    SuspicionRefutationResult {
        probes_sent: totals.probes_sent,
        suspicions_raised: totals.suspicions_raised,
        refutations_sent: totals.refutations_sent,
        deaths_declared: totals.deaths_declared,
        deaths_learned: totals.membership_deaths_learned,
        gossip_entries: totals.gossip_entries_piggybacked,
        gets_completed: gets.iter().filter(|&&h| cluster.done_time(h).is_some()).count(),
        gets_expected: gets.len(),
    }
}

/// Directory microbenchmark (§5.1.1): latency of fetching a small (inline-cached)
/// object from another node, which is one location query round trip.
pub fn directory_fetch_latency(env: &ScenarioEnv, size: u64) -> ScenarioResult {
    let mut cluster = env.cluster(2);
    let obj = ObjectId::from_name("dir-small");
    cluster.submit_at(
        SimTime::ZERO,
        0,
        ClientOp::Put { object: obj, payload: Payload::synthetic(size) },
    );
    let start = settle(&mut cluster);
    let get = cluster.submit_at(start, 1, ClientOp::Get { object: obj });
    cluster.run();
    let done = cluster.done_time(get).expect("small object fetched");
    result(&cluster, (done - start).as_secs_f64())
}

/// Outcome of the replication fan-out scenario.
#[derive(Clone, Debug)]
pub struct ReplicationFanoutResult {
    /// `DirReplicate` frames shipped by the measured shard's primary (its
    /// replication egress).
    pub primary_replicates: u64,
    /// Cumulative acks folded and relayed upstream by chain middles, cluster-wide
    /// (zero under star fan-out).
    pub chain_ack_depth: u64,
    /// Objects whose location record is present at the shard primary afterwards.
    pub recorded: usize,
}

/// Register a stream of objects into one dedicated directory shard replicated at
/// `r = 3`, and measure the shard primary's replication egress (§3.5). Under star
/// fan-out the primary ships every op `r - 1 = 2` times; under chain replication it
/// ships once to the chain head, which relays — so the primary's egress halves while
/// the same durability information flows (the tail's cumulative ack walks back up).
pub fn directory_replication_fanout(
    env: &ScenarioEnv,
    n: usize,
    objects: usize,
    chain: bool,
) -> ReplicationFanoutResult {
    assert!(n >= 5, "need three chain members plus writers");
    let mut hoplite = env.hoplite.clone();
    hoplite.directory_replication = 3;
    hoplite.directory_chain_replication = chain;
    let mut cluster = SimCluster::new(n, hoplite, env.network.clone());
    // The last node primaries the measured shard; its chain runs [n-1, 0, 1].
    let dir_node = n - 1;
    let view = ClusterView::of_size(n);
    let objs: Vec<ObjectId> = (0u64..)
        .map(|k| ObjectId::from_name(&format!("fanout-{k}")))
        .filter(|&o| view.shard_node(o).index() == dir_node)
        .take(objects)
        .collect();
    // Writers are nodes outside the chain, so the only `DirReplicate` traffic in the
    // run is the measured shard's. 128 KiB payloads stay above the inline threshold.
    for (i, &o) in objs.iter().enumerate() {
        let at = SimTime::from_secs_f64(0.01 * i as f64);
        let writer = 2 + (i % (n - 3));
        cluster.submit_at(
            at,
            writer,
            ClientOp::Put { object: o, payload: Payload::synthetic(128 * 1024) },
        );
    }
    cluster.run();
    let recorded = objs
        .iter()
        .filter(|&&o| {
            cluster.directory_locations(dir_node, o).map(|l| !l.is_empty()).unwrap_or(false)
        })
        .count();
    ReplicationFanoutResult {
        primary_replicates: cluster.node_metrics(dir_node).directory_replicates_sent,
        chain_ack_depth: cluster.total_metrics().chain_ack_depth,
        recorded,
    }
}

/// Which member of the three-node replication chain (primary → b1 → b2) a kill
/// drill takes down mid-replication.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainKill {
    /// The primary itself: a surviving member promotes and clients re-drive their
    /// unconfirmed window at it.
    Head,
    /// The first backup: the primary re-splices the chain around it and re-ships
    /// the unacked suffix.
    Middle,
    /// The last backup: the new tail re-anchors the cumulative ack flow so stuck
    /// confirms release.
    Tail,
}

/// Outcome of a chain kill drill.
#[derive(Clone, Debug)]
pub struct ChainKillResult {
    /// Objects whose location record survived at the shard's final primary.
    pub surviving_records: usize,
    /// Objects registered (the zero-loss target).
    pub expected_records: usize,
    /// Cumulative acks relayed by chain middles over the run.
    pub chain_ack_depth: u64,
}

/// Kill one member of an `r = 3` replication chain while a stream of registrations
/// is in flight through it (§3.5 under chain replication). Whatever the position —
/// head, middle, or tail — the surviving members must re-splice and converge with
/// zero lost location records: client re-drive covers the unconfirmed window when
/// the primary dies, and the primary's unacked-suffix re-ship plus the re-anchored
/// cumulative ack cover in-flight ops when a relay dies.
pub fn chain_kill_drill(
    env: &ScenarioEnv,
    n: usize,
    kill: ChainKill,
    objects: usize,
    fail_at_s: f64,
) -> ChainKillResult {
    assert!(n >= 5, "need three chain members plus writers");
    let mut hoplite = env.hoplite.clone();
    hoplite.directory_replication = 3;
    hoplite.directory_chain_replication = true;
    let mut cluster = SimCluster::new(n, hoplite, env.network.clone());
    let dir_node = n - 1;
    let victim = match kill {
        ChainKill::Head => dir_node,
        ChainKill::Middle => 0,
        ChainKill::Tail => 1,
    };
    let view = ClusterView::of_size(n);
    let objs: Vec<ObjectId> = (0u64..)
        .map(|k| ObjectId::from_name(&format!("chain-drill-{k}")))
        .filter(|&o| view.shard_node(o).index() == dir_node)
        .take(objects)
        .collect();
    // Writers (and therefore holders) are nodes outside the chain, so the victim's
    // death purges no holder records — any record loss is a replication bug.
    for (i, &o) in objs.iter().enumerate() {
        let at = SimTime::from_secs_f64(0.01 * i as f64);
        let writer = 2 + (i % (n - 3));
        cluster.submit_at(
            at,
            writer,
            ClientOp::Put { object: o, payload: Payload::synthetic(128 * 1024) },
        );
    }
    cluster.fail_node_at(SimTime::from_secs_f64(fail_at_s), victim);
    cluster.run();
    // Read the records at the shard's final primary, as seen by a live writer.
    let probe = 2;
    let primary = cluster.directory_primary(probe, objs[0]).expect("shard has a primary");
    let surviving_records = objs
        .iter()
        .filter(|&&o| {
            cluster.directory_locations(primary.index(), o).map(|l| !l.is_empty()).unwrap_or(false)
        })
        .count();
    ChainKillResult {
        surviving_records,
        expected_records: objects,
        chain_ack_depth: cluster.total_metrics().chain_ack_depth,
    }
}

/// Outcome of the mid-chain resync drill.
#[derive(Clone, Debug)]
pub struct MidChainResyncResult {
    /// Objects registered through the chain over the whole drill.
    pub expected_records: usize,
    /// Registrations whose `Put` completed (live traffic was never blocked by the
    /// catch-up — the source keeps serving throughout).
    pub puts_completed: usize,
    /// Records present at the shard primary / chain tail / restarted middle at the
    /// end (all three must equal `expected_records` for zero loss + convergence).
    pub records_at_primary: usize,
    /// See [`MidChainResyncResult::records_at_primary`].
    pub records_at_tail: usize,
    /// See [`MidChainResyncResult::records_at_primary`].
    pub records_at_middle: usize,
    /// Cumulative acks relayed upstream by chain middles (the chain stayed live).
    pub chain_ack_depth: u64,
    /// Directory resyncs completed by the restarted node.
    pub resyncs: u64,
    /// Bounded snapshot chunks shipped by resync sources.
    pub snapshot_chunks_sent: u64,
    /// Snapshot-entry bytes those chunks carried.
    pub snapshot_bytes: u64,
    /// The configured per-chunk byte budget (for bound assertions).
    pub chunk_budget: u64,
}

/// Kill **and restart** the middle member of an `r = 3` replication chain while a
/// stream of registrations flows through it, with a chunk budget and retained-log
/// window tight enough that the restarted replica must catch up via the cursor-driven
/// chunk stream — not a single monolithic snapshot and not a log-replay delta. Live
/// ops keep landing at the primary the whole time (it is never paused to serialize
/// state), the re-spliced chain keeps acking, and at the end the tail *and* the
/// re-admitted middle must both hold every record.
pub fn mid_chain_resync_under_load(
    env: &ScenarioEnv,
    n: usize,
    fail_at_s: f64,
    seed: u64,
) -> MidChainResyncResult {
    assert!(n >= 5, "need three chain members plus writers");
    assert!(fail_at_s >= 0.1, "kill must land inside the registration stream");
    let mut hoplite = env.hoplite.clone();
    hoplite.directory_replication = 3;
    hoplite.directory_chain_replication = true;
    // A tight chunk budget (a handful of entries per frame) and a short retained log
    // force the restarted middle down the chunked-stream path: by restart time far
    // more ops have been acked than the log retains, so the gap is not bridgeable.
    hoplite.snapshot_chunk_bytes = 512;
    hoplite.directory_log_retention = 4;
    let chunk_budget = hoplite.snapshot_chunk_bytes;
    let detection = env.network.failure_detection_delay.as_secs_f64();
    let mut cluster = SimCluster::new(n, hoplite, env.network.clone());
    // The last node primaries the measured shard; its chain runs [n-1, 0, 1], so
    // node 0 is the middle relay and node 1 the tail.
    let dir_node = n - 1;
    let (middle, tail) = (0usize, 1usize);
    let restart_at = fail_at_s + detection + 0.3;
    // Registrations every 40 ms from before the kill until well after the restarted
    // middle has resynced and been re-admitted.
    let spacing = 0.04;
    let objects = ((restart_at + detection + 1.5) / spacing).ceil() as usize;
    let view = ClusterView::of_size(n);
    let objs: Vec<ObjectId> = (0u64..)
        .map(|k| ObjectId::from_name(&format!("mid-chain-{seed}-{k}")))
        .filter(|&o| view.shard_node(o).index() == dir_node)
        .take(objects)
        .collect();
    // Writers (and therefore holders) are nodes outside the chain, so the middle's
    // death purges no holder records — any record loss is a resync bug. The seed
    // jitters submission times and writer choice without reordering the stream.
    let mut lcg = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        lcg >> 33
    };
    let puts: Vec<OpHandle> = objs
        .iter()
        .enumerate()
        .map(|(i, &o)| {
            let jitter = (next() % 20) as f64 * 1e-3;
            let at = SimTime::from_secs_f64(i as f64 * spacing + jitter);
            let writer = 2 + (next() as usize % (n - 3));
            cluster.submit_at(
                at,
                writer,
                ClientOp::Put { object: o, payload: Payload::synthetic(128 * 1024) },
            )
        })
        .collect();
    cluster.fail_node_at(SimTime::from_secs_f64(fail_at_s), middle);
    cluster.restart_node_at(SimTime::from_secs_f64(restart_at), middle);
    cluster.run();
    let records_at = |node: usize| {
        objs.iter()
            .filter(|&&o| {
                cluster.directory_locations(node, o).map(|l| !l.is_empty()).unwrap_or(false)
            })
            .count()
    };
    MidChainResyncResult {
        expected_records: objects,
        puts_completed: puts.iter().filter(|&&h| cluster.done_time(h).is_some()).count(),
        records_at_primary: records_at(dir_node),
        records_at_tail: records_at(tail),
        records_at_middle: records_at(middle),
        chain_ack_depth: cluster.total_metrics().chain_ack_depth,
        resyncs: cluster.node_metrics(middle).directory_resyncs,
        snapshot_chunks_sent: cluster.total_metrics().snapshot_chunks_sent,
        snapshot_bytes: cluster.total_metrics().snapshot_bytes,
        chunk_budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;
    const GB: u64 = 1024 * 1024 * 1024;

    #[test]
    fn p2p_rtt_tracks_bandwidth_for_large_objects() {
        let env = ScenarioEnv::paper_testbed();
        let r = p2p_rtt(&env, GB);
        let optimal = 2.0 * GB as f64 / 1.25e9;
        assert!(r.latency_s > optimal * 0.95, "cannot beat the wire: {}", r.latency_s);
        assert!(r.latency_s < optimal * 1.6, "pipelining keeps overhead bounded: {}", r.latency_s);
    }

    #[test]
    fn p2p_rtt_small_objects_latency_bound() {
        let env = ScenarioEnv::paper_testbed();
        let r = p2p_rtt(&env, 1024);
        // Two directory-served (inline) fetches: a handful of RPC latencies, well under
        // a millisecond on the simulated network.
        assert!(r.latency_s < 2e-3, "{}", r.latency_s);
    }

    #[test]
    fn broadcast_beats_sender_fanout_and_loses_to_nothing() {
        let env = ScenarioEnv::paper_testbed();
        let r = broadcast_latency(&env, 8, 256 * MB, 0.0);
        let one_copy = 256.0 * MB as f64 / 1.25e9;
        assert!(r.latency_s >= one_copy, "at least one copy time");
        assert!(r.latency_s < 3.0 * one_copy, "roughly bandwidth-optimal, got {}", r.latency_s);
    }

    #[test]
    fn reduce_degree_override_changes_behaviour() {
        let env = ScenarioEnv::paper_testbed();
        let chain = reduce_latency(&env, 8, 64 * MB, Some(1), 0.0);
        let star = reduce_latency(&env, 8, 64 * MB, Some(0), 0.0);
        // For large objects the chain must beat the star (Appendix B).
        assert!(
            chain.latency_s < star.latency_s,
            "chain {} vs star {}",
            chain.latency_s,
            star.latency_s
        );
    }

    #[test]
    fn staggered_broadcast_overlaps_arrivals() {
        let env = ScenarioEnv::paper_testbed();
        let sync = broadcast_latency(&env, 8, 256 * MB, 0.0);
        let staggered = broadcast_latency(&env, 8, 256 * MB, 0.1);
        // Receivers arriving 0.1 s apart: the last arrives 0.6 s in; total latency grows
        // by far less than 0.6 s because earlier receivers finish and serve later ones.
        assert!(staggered.latency_s < sync.latency_s + 0.65);
        assert!(staggered.latency_s >= sync.latency_s * 0.8);
    }

    #[test]
    fn allreduce_completes_everywhere() {
        let env = ScenarioEnv::paper_testbed();
        let r = allreduce_latency(&env, 4, 16 * MB, 0.0);
        assert!(r.latency_s > 0.0 && r.latency_s < 1.0);
    }

    #[test]
    fn directory_primary_kill_mid_broadcast_loses_no_metadata() {
        let env = ScenarioEnv::paper_testbed();
        let n = 8;
        let r = directory_failover_broadcast(&env, n, 512 * MB, 0.05);
        assert_eq!(r.completed_receivers, n - 2, "every receiver completed");
        // Zero lost object-location records: the promoted backup knows the source and
        // every receiver as a complete-copy holder (the killed node held no data).
        let mut holders = r.locations_at_new_primary.clone();
        holders.sort_by_key(|h| h.0);
        let expected: Vec<NodeId> = (0..(n - 1) as u32).map(NodeId).collect();
        assert_eq!(holders, expected, "location records survived the primary kill");
        // The late receiver's query vanished with the old primary and was re-driven.
        assert!(r.directory_failovers >= 1, "at least one query re-issued after failover");
        // Completion is not held hostage by the metadata failover: the late receiver
        // pays at most the detection delay on top of its own transfer.
        let one_copy = 512.0 * MB as f64 / 1.25e9;
        assert!(
            r.latency_s < 3.0 * one_copy + 0.05 + 0.05 + 0.74 + 0.5,
            "failover latency bounded by detection delay, got {}",
            r.latency_s
        );
    }

    #[test]
    fn rolling_restart_loses_no_records_and_restores_primaries() {
        let env = ScenarioEnv::paper_testbed();
        let n = 6;
        let r = rolling_restart_collectives(&env, n, 8 * MB, 3.0);
        assert_eq!(r.waves_completed, r.waves_expected, "every live-traffic wave completed");
        assert_eq!(r.refetches_completed, n, "every restarted node re-fetched W");
        assert!(r.reduce_ok, "mid-sequence reduce completed");
        // Zero lost location records: every node holds W again and the final primary
        // knows all of them.
        let expected: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        assert_eq!(r.holders, expected, "W's location records are complete");
        // Killing node j's backup *after* node j cycles leadership of shard j back to
        // j — so after the full 0..n sweep every shard except the wrap-around one
        // (shard n-1, whose backup node 0 died before its owner) is led by its
        // original killed-and-restarted owner again. The wrap shard is led by node 0,
        // itself a restarted node, so every final primary went through kill → restart
        // → resync → re-admission.
        assert!(
            r.primaries_restored >= n - 1,
            "restarted nodes serve as primaries again ({} of {n} shards)",
            r.primaries_restored
        );
        // Each restarted node resynced both replicas it hosts (r = 2).
        assert!(r.resyncs >= n as u64, "snapshot-based resync ran, got {}", r.resyncs);
    }

    #[test]
    fn acked_prefix_survives_primary_kill_without_client_redrive() {
        // The replication guarantee is client-independent: once registrations are
        // confirmed (acked by the backup), killing the primary must preserve them at
        // the promoted backup with the clients having *nothing* to re-drive — the
        // `directory_redrives` metric stays zero cluster-wide.
        let env = ScenarioEnv::paper_testbed();
        let n = 6;
        let mut cluster = SimCluster::new(n, env.hoplite.clone(), env.network.clone());
        let dir_node = n - 1;
        let obj = (0u64..)
            .map(|k| ObjectId::from_name(&format!("acked-{k}")))
            .find(|&o| ClusterView::of_size(n).shard_node(o).index() == dir_node)
            .unwrap();
        cluster.submit_at(
            SimTime::ZERO,
            0,
            ClientOp::Put { object: obj, payload: Payload::synthetic(32 * MB) },
        );
        let start = settle(&mut cluster);
        let gets: Vec<OpHandle> = (1..n - 1)
            .map(|node| cluster.submit_at(start, node, ClientOp::Get { object: obj }))
            .collect();
        // Let the broadcast finish and every registration get confirmed, then kill
        // the shard primary with no client traffic in flight at all.
        cluster.run();
        for &h in &gets {
            assert!(cluster.done_time(h).is_some());
        }
        for node in 0..n - 1 {
            assert_eq!(
                cluster.node_metrics(node).directory_failovers,
                0,
                "no queries outstanding before the kill"
            );
        }
        let quiesced = cluster.now();
        cluster.fail_node_at(SimTime::from_secs_f64(quiesced.as_secs_f64() + 0.5), dir_node);
        cluster.run();
        // The promoted backup holds every acked registration...
        let backup = (dir_node + 1) % n;
        let mut holders = cluster.directory_locations(backup, obj).unwrap_or_default();
        holders.sort_by_key(|h| h.0);
        let expected: Vec<NodeId> = (0..(n - 1) as u32).map(NodeId).collect();
        assert_eq!(holders, expected, "acked prefix preserved every location record");
        // ...and no client re-drove anything: the acked prefix alone carried them.
        assert_eq!(
            cluster.total_metrics().directory_redrives,
            0,
            "replication guarantee held without client re-drive"
        );
    }

    #[test]
    fn chain_replication_halves_primary_fanout_and_relays_acks() {
        let env = ScenarioEnv::paper_testbed();
        let (n, objects) = (8, 24);
        let star = directory_replication_fanout(&env, n, objects, false);
        let chain = directory_replication_fanout(&env, n, objects, true);
        assert_eq!(star.recorded, objects, "star run registered everything");
        assert_eq!(chain.recorded, objects, "chain run registered everything");
        // Star ships every op to both backups; the chain primary ships each op once.
        assert!(
            star.primary_replicates >= 2 * objects as u64,
            "star egress is r-1 per op, got {}",
            star.primary_replicates
        );
        assert!(
            chain.primary_replicates <= star.primary_replicates / 2,
            "chain halves the primary's replication egress: {} vs {}",
            chain.primary_replicates,
            star.primary_replicates
        );
        // The durability signal still flows — as cumulative acks relayed upstream.
        assert!(chain.chain_ack_depth > 0, "chain middles relayed acks");
        assert_eq!(star.chain_ack_depth, 0, "no ack relaying under star fan-out");
    }

    #[test]
    fn chain_kill_drills_lose_no_records_at_any_position() {
        let env = ScenarioEnv::paper_testbed();
        for kill in [ChainKill::Head, ChainKill::Middle, ChainKill::Tail] {
            let r = chain_kill_drill(&env, 8, kill, 20, 0.1);
            assert_eq!(
                r.surviving_records, r.expected_records,
                "zero lost location records with the {kill:?} killed mid-stream"
            );
        }
    }

    #[test]
    fn mid_chain_resync_converges_under_live_traffic() {
        let env = ScenarioEnv::paper_testbed();
        let r = mid_chain_resync_under_load(&env, 8, 0.5, 0);
        // The source was never paused: every registration submitted before, during,
        // and after the outage completed.
        assert_eq!(r.puts_completed, r.expected_records, "live traffic never blocked");
        // Zero lost records, and both the tail and the restarted middle converged.
        assert_eq!(r.records_at_primary, r.expected_records, "primary holds every record");
        assert_eq!(r.records_at_tail, r.expected_records, "tail converged");
        assert_eq!(r.records_at_middle, r.expected_records, "restarted middle caught up");
        // The chain kept relaying acks across the outage and the catch-up.
        assert!(r.chain_ack_depth > 0, "chain acks relayed");
        assert!(r.resyncs >= 1, "the restarted middle resynced");
        // The catch-up really was chunked, and no frame blew the budget: each chunk
        // carries at most `chunk_budget` bytes of entries (no entry here is oversized).
        assert!(r.snapshot_chunks_sent >= 2, "chunked stream, got {}", r.snapshot_chunks_sent);
        assert!(
            r.snapshot_bytes <= r.snapshot_chunks_sent * r.chunk_budget,
            "chunk bound held: {} bytes over {} chunks of budget {}",
            r.snapshot_bytes,
            r.snapshot_chunks_sent,
            r.chunk_budget
        );
    }

    #[test]
    fn partition_suspicion_is_refuted_with_zero_deaths() {
        let env = ScenarioEnv::paper_testbed();
        let r = partition_suspicion_refuted(&env, 6, 0);
        assert!(r.probes_sent > 0, "the detector was probing");
        assert!(r.suspicions_raised >= 1, "the cut drove at least one suspicion");
        assert!(r.refutations_sent >= 1, "the suspect refuted with an incarnation bump");
        assert_eq!(r.deaths_declared, 0, "transient partition must not kill anyone");
        assert_eq!(r.deaths_learned, 0, "no death gossip either");
        assert!(r.gossip_entries > 0, "membership rode piggybacked on probes");
        assert_eq!(r.gets_completed, r.gets_expected, "traffic completed across the cut");
    }

    #[test]
    fn directory_fetch_is_a_couple_of_rpcs() {
        let env = ScenarioEnv::paper_testbed();
        let r = directory_fetch_latency(&env, 1024);
        assert!(r.latency_s < 1e-3, "{}", r.latency_s);
        assert!(r.latency_s >= 150e-6, "{}", r.latency_s);
    }
}
