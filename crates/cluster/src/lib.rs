//! # hoplite-cluster
//!
//! Drivers that turn the sans-IO `hoplite-core` state machines into running clusters:
//!
//! * [`sim_cluster::SimCluster`] — every node on the deterministic discrete-event
//!   network of `hoplite-simnet`, with synthetic payloads and pipelined put modelling.
//!   This is the environment in which the paper's figures are regenerated.
//! * [`local::LocalCluster`] — one OS thread per node over in-process channels or
//!   localhost TCP, moving real bytes. This is the environment used by the examples,
//!   the task framework, and the data-plane correctness tests.
//! * [`scenarios`] — the §5.1 microbenchmark methodology (point-to-point, broadcast,
//!   gather, reduce, allreduce, asynchronous arrivals, directory fast path) packaged as
//!   reusable functions for the benchmark harness.
//!
//! Both cluster flavours drive their nodes through the shared [`driver::NodeRuntime`]:
//! backends only implement a [`driver::DriverPort`] (how to move a message, complete a
//! client op, and arm a timer on *their* fabric) and feed [`driver::NodeEvent`]s in.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod actor;
pub mod driver;
pub mod faults;
pub mod host;
pub mod local;
pub mod process;
pub mod scenarios;
pub mod sim_cluster;
pub mod sweep;
pub mod topology;

pub use actor::HopliteActor;
pub use driver::{DriverPort, NodeEvent, NodeRuntime};
pub use faults::{FaultSchedule, ScheduleKind};
pub use host::{HopliteClient, NodeHost, NodeStatus};
pub use local::{LocalCluster, LocalFabric};
pub use process::{ControlClient, DaemonSpec, ProcessCluster};
pub use scenarios::{ScenarioEnv, ScenarioResult};
pub use sim_cluster::{OpHandle, SimCluster};
pub use sweep::{run_cell, CellOutcome, Collective};
pub use topology::{GeneratedTopology, SweepRng, TopologyGraph};
