//! # hoplite-cluster
//!
//! Drivers that turn the sans-IO `hoplite-core` state machines into running clusters:
//!
//! * [`sim_cluster::SimCluster`] — every node on the deterministic discrete-event
//!   network of `hoplite-simnet`, with synthetic payloads and pipelined put modelling.
//!   This is the environment in which the paper's figures are regenerated.
//! * [`local::LocalCluster`] — one OS thread per node over in-process channels or
//!   localhost TCP, moving real bytes. This is the environment used by the examples,
//!   the task framework, and the data-plane correctness tests.
//! * [`scenarios`] — the §5.1 microbenchmark methodology (point-to-point, broadcast,
//!   gather, reduce, allreduce, asynchronous arrivals, directory fast path) packaged as
//!   reusable functions for the benchmark harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod actor;
pub mod local;
pub mod scenarios;
pub mod sim_cluster;

pub use actor::HopliteActor;
pub use local::{HopliteClient, LocalCluster, LocalFabric};
pub use scenarios::{ScenarioEnv, ScenarioResult};
pub use sim_cluster::{OpHandle, SimCluster};
