//! Execute one sweep cell: a (topology × fault schedule × collective) combination on
//! a [`SimCluster`], reduced to a machine-readable [`CellOutcome`].
//!
//! This generalizes the hand-written drills of [`crate::scenarios`] into a
//! parameterized runner the `sweep` benchmark binary drives over a whole matrix. The
//! contract per cell: every *required* client operation either completes within the
//! simulated deadline (the cell **converged**, and `completion_s` is the time the last
//! one finished) or the cell reports a named failure — never a hang, never a panic.
//!
//! Required operations are chosen so convergence is achievable under every schedule:
//! collective roots and reduce sources are protected from kills (see
//! [`crate::faults::generate`]), and a killed broadcast/multicast receiver's fetch is
//! re-issued after its restart + directory resync, replacing the original in the
//! required set — exactly what a restarted worker process would do.

use hoplite_core::prelude::*;
use hoplite_simnet::prelude::*;

use crate::faults::{self, FaultSchedule, ScheduleKind};
use crate::sim_cluster::{OpHandle, SimCluster};
use crate::topology::GeneratedTopology;

/// The collective operation a cell exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Collective {
    /// One source object on node 0, fetched by every other node.
    Broadcast,
    /// One gradient per source node, tree-reduced into a target read on node 0.
    Reduce,
    /// One source object on node 0, fetched by a third of the cluster.
    Multicast,
}

impl Collective {
    /// Every collective, in sweep order.
    pub fn all() -> [Collective; 3] {
        [Collective::Broadcast, Collective::Reduce, Collective::Multicast]
    }

    /// Short stable name used in sweep cell ids.
    pub fn name(&self) -> &'static str {
        match self {
            Collective::Broadcast => "broadcast",
            Collective::Reduce => "reduce",
            Collective::Multicast => "multicast",
        }
    }
}

/// The machine-readable result of one cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellOutcome {
    /// Whether every required operation completed within the simulated deadline.
    pub converged: bool,
    /// Named failure when `converged` is false.
    pub failure: Option<String>,
    /// Simulated seconds from workload start to the last required completion
    /// (0 when not converged).
    pub completion_s: f64,
    /// Total payload bytes sent on the wire (per-node metrics, summed).
    pub data_bytes_sent: u64,
    /// Messages delivered by the simulator.
    pub messages: u64,
    /// Simulator events processed.
    pub events: u64,
    /// Directory failovers observed.
    pub failovers: u64,
    /// Directory redrives observed.
    pub redrives: u64,
    /// Directory resyncs completed.
    pub resyncs: u64,
    /// Messages whose first transmission was lost (LossReorder schedules).
    pub lost: u64,
    /// Messages delayed by reordering jitter (LossReorder schedules).
    pub reordered: u64,
}

/// Workload start: puts settle for this long before the collective is issued and the
/// fault schedule begins.
const START_S: f64 = 1.0;
/// Simulated-time budget per cell after the workload start. A cell that has not
/// completed by then is reported as a named non-convergence, never a hang.
const DEADLINE_S: f64 = 120.0;
/// How long after its restart a killed receiver re-issues its fetch (covers directory
/// resync and the recovery notice fan-out).
const REFETCH_AFTER_RESTART_S: f64 = 2.0;

/// Run one cell: generate the seeded `kind` schedule for `topo`, execute `collective`
/// with `object_bytes` objects, and reduce the run to a [`CellOutcome`]. Returns the
/// schedule alongside so callers can report exactly what was injected.
pub fn run_cell(
    topo: &GeneratedTopology,
    kind: ScheduleKind,
    collective: Collective,
    object_bytes: u64,
    seed: u64,
) -> (FaultSchedule, CellOutcome) {
    let n = topo.n;
    assert!(n >= 4, "sweep cells need at least 4 nodes");

    // Receivers (for broadcast/multicast) and the protected set kills must avoid.
    let receivers: Vec<usize> = match collective {
        Collective::Broadcast => (1..n).collect(),
        Collective::Multicast => {
            let r: Vec<usize> = (1..n).filter(|i| i % 3 == 0).collect();
            if r.is_empty() {
                vec![1]
            } else {
                r
            }
        }
        Collective::Reduce => Vec::new(),
    };
    let sources: Vec<usize> = match collective {
        Collective::Reduce => (0..n).step_by(2).collect(),
        _ => vec![0],
    };
    let mut protected = sources.clone();
    protected.push(0);

    let detection_s = topo.net.failure_detection_delay.as_secs_f64();
    let schedule = faults::generate(kind, n, &protected, detection_s, seed);

    let mut net = topo.net.clone();
    net.faults = schedule.link_faults.clone();
    let mut cluster = SimCluster::new(n, HopliteConfig::paper_testbed(), net);

    let start = SimTime::from_secs_f64(START_S);
    let killed = schedule.killed_nodes();
    // (handle, description) pairs that must all complete for the cell to converge.
    let mut required: Vec<(OpHandle, String)> = Vec::new();

    match collective {
        Collective::Broadcast | Collective::Multicast => {
            let object = ObjectId::from_name("sweep-object");
            cluster.submit_at(
                SimTime::ZERO,
                0,
                ClientOp::Put { object, payload: Payload::synthetic(object_bytes) },
            );
            for &node in &receivers {
                let get = cluster.submit_at(start, node, ClientOp::Get { object });
                if let Some(restart_off) = schedule.restart_offset(node) {
                    // The node dies mid-run: its original fetch may be lost with the
                    // process. Require the refetch a restarted worker would issue.
                    let refetch_at =
                        SimTime::from_secs_f64(START_S + restart_off + REFETCH_AFTER_RESTART_S);
                    let re = cluster.submit_at(refetch_at, node, ClientOp::Get { object });
                    required.push((re, format!("refetch on restarted node {node}")));
                } else {
                    required.push((get, format!("get on node {node}")));
                }
            }
        }
        Collective::Reduce => {
            let objs: Vec<ObjectId> =
                sources.iter().map(|i| ObjectId::from_name(&format!("grad-{i}"))).collect();
            for (&node, &obj) in sources.iter().zip(&objs) {
                cluster.submit_at(
                    SimTime::ZERO,
                    node,
                    ClientOp::Put { object: obj, payload: Payload::synthetic(object_bytes) },
                );
            }
            let target = ObjectId::from_name("sweep-sum");
            cluster.submit_at(
                start,
                0,
                ClientOp::Reduce {
                    target,
                    sources: objs,
                    num_objects: None,
                    spec: ReduceSpec::sum_f32(),
                    degree: None,
                },
            );
            let get = cluster.submit_at(start, 0, ClientOp::Get { object: target });
            required.push((get, "reduce-target get on node 0".to_string()));
        }
    }

    schedule.apply(&mut cluster, START_S);
    cluster.run_until(SimTime::from_secs_f64(START_S + DEADLINE_S));

    let mut missing: Vec<&str> = Vec::new();
    let mut last_done = start;
    for (handle, what) in &required {
        match cluster.done_time(*handle) {
            Some(t) => last_done = last_done.max(t),
            None => missing.push(what.as_str()),
        }
    }

    let metrics = cluster.total_metrics();
    let stats = cluster.sim_stats();
    let converged = missing.is_empty();
    let outcome = CellOutcome {
        converged,
        failure: if converged {
            None
        } else {
            Some(format!(
                "{} of {} required ops incomplete after {DEADLINE_S}s (first: {}){}",
                missing.len(),
                required.len(),
                missing[0],
                if killed.is_empty() { String::new() } else { format!("; killed {killed:?}") },
            ))
        },
        completion_s: if converged { (last_done - start).as_secs_f64() } else { 0.0 },
        data_bytes_sent: metrics.data_bytes_sent,
        messages: stats.messages_delivered,
        events: stats.events_processed,
        failovers: metrics.directory_failovers,
        redrives: metrics.directory_redrives,
        resyncs: metrics.directory_resyncs,
        lost: stats.messages_lost,
        reordered: stats.messages_reordered,
    };
    (schedule, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn baseline_broadcast_cell_converges() {
        let topo = topology::uniform(8);
        let (_, out) = run_cell(&topo, ScheduleKind::None, Collective::Broadcast, 8 * MB, 0);
        assert!(out.converged, "failure: {:?}", out.failure);
        assert!(out.completion_s > 0.0 && out.completion_s < 5.0);
        assert!(out.data_bytes_sent >= 7 * 8 * MB);
    }

    #[test]
    fn correlated_kills_cell_converges_with_failovers() {
        let topo = topology::uniform(8);
        let (schedule, out) =
            run_cell(&topo, ScheduleKind::CorrelatedKills, Collective::Multicast, 8 * MB, 1);
        assert!(out.converged, "failure: {:?}", out.failure);
        assert_eq!(schedule.kills.len(), 2);
        // The kills force directory work: failover of the victims' shards and a
        // resync when they return.
        assert!(out.resyncs >= 1, "resyncs = {}", out.resyncs);
    }

    #[test]
    fn loss_reorder_cell_converges_and_counts_faults() {
        let topo = topology::uniform(8);
        let (schedule, out) =
            run_cell(&topo, ScheduleKind::LossReorder, Collective::Reduce, 8 * MB, 2);
        assert!(schedule.link_faults.is_some());
        assert!(out.converged, "failure: {:?}", out.failure);
        assert!(out.lost + out.reordered > 0, "faults should have fired");
    }

    #[test]
    fn partition_cell_converges_on_fat_tree() {
        let topo = topology::fat_tree(4, 2, 2.0);
        let (_, out) = run_cell(&topo, ScheduleKind::Partition, Collective::Broadcast, 8 * MB, 3);
        assert!(out.converged, "failure: {:?}", out.failure);
    }

    #[test]
    fn same_cell_same_seed_is_byte_deterministic() {
        let topo = topology::hetero_nics(8, 4);
        let a = run_cell(&topo, ScheduleKind::Straggler, Collective::Broadcast, 8 * MB, 5);
        let b = run_cell(&topo, ScheduleKind::Straggler, Collective::Broadcast, 8 * MB, 5);
        assert_eq!(a.0.canonical_bytes(), b.0.canonical_bytes());
        assert_eq!(a.1, b.1);
    }
}
