//! A simulated Hoplite deployment: `n` object-store nodes on the discrete-event
//! network, with helpers for submitting client operations at chosen times and reading
//! back completion timestamps.

use hoplite_core::prelude::*;
use hoplite_simnet::prelude::*;

use crate::actor::{Completion, HopliteActor};

/// Handle for a submitted client operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OpHandle {
    /// Node the operation was submitted on.
    pub node: usize,
    /// Operation id on that node.
    pub op: OpId,
}

/// A cluster of Hoplite nodes running on the simulator.
pub struct SimCluster {
    sim: Simulation<HopliteActor>,
    next_op: u64,
}

impl SimCluster {
    /// Build a simulated cluster of `n` nodes. Payloads are synthetic (length-only) and
    /// `Put`s model the pipelined worker→store copy, exactly as the paper's evaluation
    /// environment would behave.
    pub fn new(n: usize, cfg: HopliteConfig, net: NetworkConfig) -> Self {
        let cluster = ClusterView::of_size(n);
        let opts = NodeOptions { synthetic_data: true, pipelined_put: true, incarnation: 0 };
        let actors = cluster
            .nodes
            .iter()
            .map(|&id| HopliteActor::new(id, cfg.clone(), cluster.clone(), opts.clone()))
            .collect();
        SimCluster { sim: Simulation::new(net, actors), next_op: 1 }
    }

    /// Build a cluster with the paper's testbed parameters.
    pub fn paper_testbed(n: usize) -> Self {
        SimCluster::new(n, HopliteConfig::paper_testbed(), NetworkConfig::paper_testbed())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.sim.len()
    }

    /// `true` for an empty cluster.
    pub fn is_empty(&self) -> bool {
        self.sim.is_empty()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Submit a client operation to `node` at simulated time `at`.
    pub fn submit_at(&mut self, at: SimTime, node: usize, op: ClientOp) -> OpHandle {
        let op_id = OpId(self.next_op);
        self.next_op += 1;
        self.sim.call_at(at, node, move |actor, ctx| actor.submit(op_id, op, ctx));
        OpHandle { node, op: op_id }
    }

    /// Schedule a node failure.
    pub fn fail_node_at(&mut self, at: SimTime, node: usize) {
        self.sim.fail_node_at(at, node);
    }

    /// Schedule a node restart: the node comes back as a fresh process (empty store,
    /// empty directory replicas) and immediately begins directory recovery — snapshot
    /// requests, log catch-up, and the `DirResynced` re-admission announcement.
    pub fn restart_node_at(&mut self, at: SimTime, node: usize) {
        self.sim.recover_node_at(at, node);
    }

    /// Schedule a node recovery (alias of [`SimCluster::restart_node_at`], kept for
    /// symmetry with the simulator's vocabulary).
    pub fn recover_node_at(&mut self, at: SimTime, node: usize) {
        self.sim.recover_node_at(at, node);
    }

    /// Schedule a transient network partition between `from` and `until`: `side[i]`
    /// assigns node `i` to one half. Cross-cut messages stall until the heal (TCP
    /// retransmits across the cut); no message is lost.
    pub fn partition_between(&mut self, from: SimTime, until: SimTime, side: Vec<bool>) {
        self.sim.partition_between(from, until, side);
    }

    /// Schedule a straggler window: `node`'s NIC drains `factor`× slower between
    /// `from` and `until`.
    pub fn slow_node_between(&mut self, node: usize, from: SimTime, until: SimTime, factor: f64) {
        self.sim.slow_node_between(node, from, until, factor);
    }

    /// Whether a node is currently alive.
    pub fn is_alive(&self, node: usize) -> bool {
        self.sim.is_alive(node)
    }

    /// Whether `node` has finished (or never needed) directory resync.
    pub fn directory_resync_done(&self, node: usize) -> bool {
        !self.sim.actor(node).node().directory_is_resyncing()
    }

    /// Run until no events remain; returns the final simulated time.
    pub fn run(&mut self) -> SimTime {
        self.sim.run_to_completion()
    }

    /// Run until no events remain or `deadline` passes.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.sim.run_until_idle(deadline)
    }

    /// All completions recorded for a handle.
    pub fn completions(&self, handle: OpHandle) -> &[Completion] {
        self.sim.actor(handle.node).completions(handle.op)
    }

    /// Time of the first completion matching `pred`, if any.
    pub fn completion_time_where<F>(&self, handle: OpHandle, pred: F) -> Option<SimTime>
    where
        F: Fn(&ClientReply) -> bool,
    {
        self.completions(handle).iter().find(|c| pred(&c.reply)).map(|c| c.at)
    }

    /// Time at which a `Get` finished (or a `Put` completed, etc.): the first
    /// non-error completion.
    pub fn done_time(&self, handle: OpHandle) -> Option<SimTime> {
        self.completion_time_where(handle, |r| !matches!(r, ClientReply::Error { .. }))
    }

    /// `true` if any completion for the handle was an error.
    pub fn failed(&self, handle: OpHandle) -> bool {
        self.completions(handle).iter().any(|c| matches!(c.reply, ClientReply::Error { .. }))
    }

    /// Aggregated metrics over every node.
    pub fn total_metrics(&self) -> NodeMetrics {
        let mut total = NodeMetrics::default();
        for i in 0..self.sim.len() {
            total.merge(self.sim.actor(i).node().metrics());
        }
        total
    }

    /// Metrics of a single node.
    pub fn node_metrics(&self, node: usize) -> NodeMetrics {
        self.sim.actor(node).node().metrics().clone()
    }

    /// Whether `node` currently holds a complete copy of `object`.
    pub fn node_has_complete(&self, node: usize, object: ObjectId) -> bool {
        self.sim.actor(node).node().has_complete(object)
    }

    /// Object locations recorded in `node`'s replica of `object`'s directory shard
    /// (`None` when that node hosts no replica of the shard). Failover scenarios use
    /// this to assert zero metadata loss across a primary kill.
    pub fn directory_locations(&self, node: usize, object: ObjectId) -> Option<Vec<NodeId>> {
        self.sim
            .actor(node)
            .node()
            .directory_locations(object)
            .map(|locs| locs.into_iter().map(|(n, _)| n).collect())
    }

    /// The node that `viewer` currently believes is the primary of `object`'s
    /// directory shard.
    pub fn directory_primary(&self, viewer: usize, object: ObjectId) -> Option<NodeId> {
        self.sim.actor(viewer).node().directory_primary_for(object)
    }

    /// Simulator statistics (message/byte counts).
    pub fn sim_stats(&self) -> &SimStats {
        self.sim.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn put_get_on_sim_cluster() {
        let mut cluster = SimCluster::paper_testbed(4);
        let object = ObjectId::from_name("x");
        let put = cluster.submit_at(
            SimTime::ZERO,
            0,
            ClientOp::Put { object, payload: Payload::synthetic(64 * MB) },
        );
        let get = cluster.submit_at(SimTime::from_secs_f64(0.5), 3, ClientOp::Get { object });
        cluster.run();
        let put_done = cluster.done_time(put).expect("put completed");
        let get_done = cluster.done_time(get).expect("get completed");
        assert!(put_done < get_done);
        // 64 MB at 10 Gbps is ~51 ms of wire time; the get should take roughly that
        // (plus latency), not multiples of it.
        let transfer = get_done.as_secs_f64() - 0.5;
        assert!(transfer > 0.045 && transfer < 0.2, "transfer = {transfer}");
        assert!(cluster.node_has_complete(3, object));
    }

    #[test]
    fn broadcast_scales_better_than_naive_sender_fanout() {
        // 8 receivers × 64 MB: receiver-driven broadcast must beat 8 × S/B at the
        // sender, because receivers chain off each other.
        let mut cluster = SimCluster::paper_testbed(9);
        let object = ObjectId::from_name("model");
        cluster.submit_at(
            SimTime::ZERO,
            0,
            ClientOp::Put { object, payload: Payload::synthetic(64 * MB) },
        );
        let start = SimTime::from_secs_f64(0.5);
        let gets: Vec<OpHandle> =
            (1..9).map(|node| cluster.submit_at(start, node, ClientOp::Get { object })).collect();
        cluster.run();
        let last =
            gets.iter().map(|&h| cluster.done_time(h).expect("get completed")).max().unwrap();
        let elapsed = last.as_secs_f64() - 0.5;
        let naive = 8.0 * 64.0 * 1024.0 * 1024.0 / 1.25e9;
        assert!(
            elapsed < naive * 0.6,
            "broadcast took {elapsed:.3}s, naive sender fan-out would take {naive:.3}s"
        );
    }

    #[test]
    fn reduce_on_sim_cluster_completes() {
        let n = 8;
        let mut cluster = SimCluster::paper_testbed(n);
        let sources: Vec<ObjectId> =
            (0..n).map(|i| ObjectId::from_name(&format!("g{i}"))).collect();
        for (i, &src) in sources.iter().enumerate() {
            cluster.submit_at(
                SimTime::ZERO,
                i,
                ClientOp::Put { object: src, payload: Payload::synthetic(32 * MB) },
            );
        }
        let target = ObjectId::from_name("sum");
        let start = SimTime::from_secs_f64(0.5);
        cluster.submit_at(
            start,
            0,
            ClientOp::Reduce {
                target,
                sources,
                num_objects: None,
                spec: ReduceSpec::sum_f32(),
                degree: None,
            },
        );
        let get = cluster.submit_at(start, 0, ClientOp::Get { object: target });
        cluster.run();
        let done = cluster.done_time(get).expect("reduce result fetched");
        let elapsed = done.as_secs_f64() - 0.5;
        // Naive: everyone sends to node 0 → 8·S/B ≈ 0.21 s. The tree reduce should be
        // well under that; allow generous slack for latency terms.
        assert!(elapsed < 0.15, "reduce took {elapsed:.3}s");
    }
}
