//! A real (threaded) Hoplite deployment: one event-loop thread per node, connected by
//! an in-process channel fabric or by localhost TCP, moving real bytes.
//!
//! `LocalCluster` is what the examples, the task framework and the data-plane
//! correctness tests use. It exposes a blocking client API ([`HopliteClient`]) with the
//! paper's four calls: `Put`, `Get`, `Reduce`, `Delete` (Table 1).
//!
//! Each node thread drives its state machine through the shared
//! [`NodeRuntime`](crate::driver::NodeRuntime) — the same runtime the simulator
//! uses — over a single unified event queue: fabric messages are forwarded into it by
//! a small pump thread, client commands and failure notices are enqueued directly, and
//! timers are kept in a local deadline heap serviced with `recv_timeout`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration as StdDuration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hoplite_core::prelude::*;
use hoplite_transport::fabric::{ChannelFabric, Fabric, FabricSender};
use hoplite_transport::tcp::TcpFabric;

use crate::driver::{DriverPort, NodeEvent, NodeRuntime};

/// Commands delivered to a node's event loop besides fabric messages.
enum NodeCommand {
    Client { op_id: OpId, op: ClientOp, reply: Sender<ClientReply> },
    PeerFailed(NodeId),
    PeerRecovered(NodeId),
    Shutdown,
}

/// Everything a node's unified event queue can carry.
enum LoopEvent {
    Fabric(NodeId, Message),
    Command(NodeCommand),
}

/// Blocking client bound to one node of a [`LocalCluster`].
#[derive(Clone)]
pub struct HopliteClient {
    node: NodeId,
    events: Sender<LoopEvent>,
    next_op: Arc<AtomicU64>,
}

impl HopliteClient {
    /// The node this client talks to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    fn submit(&self, op: ClientOp) -> Receiver<ClientReply> {
        let (tx, rx) = unbounded();
        let op_id = OpId(self.next_op.fetch_add(1, Ordering::Relaxed));
        // A send failure means the node was shut down; the disconnected receiver will
        // surface that as an error to the caller below.
        let _ = self.events.send(LoopEvent::Command(NodeCommand::Client { op_id, op, reply: tx }));
        rx
    }

    fn wait<F: Fn(&ClientReply) -> bool>(
        rx: Receiver<ClientReply>,
        accept: F,
    ) -> Result<ClientReply> {
        loop {
            match rx.recv() {
                Ok(ClientReply::Error { error }) => return Err(error),
                Ok(reply) if accept(&reply) => return Ok(reply),
                Ok(_) => continue,
                Err(_) => {
                    return Err(HopliteError::Transport("node shut down".to_string()));
                }
            }
        }
    }

    /// Store an object (Table 1 `Put`): blocks until the local store holds it.
    pub fn put(&self, object: ObjectId, payload: Payload) -> Result<()> {
        Self::wait(self.submit(ClientOp::Put { object, payload }), |r| {
            matches!(r, ClientReply::PutDone { .. })
        })
        .map(|_| ())
    }

    /// Fetch an object (Table 1 `Get`): blocks until a complete copy is local.
    pub fn get(&self, object: ObjectId) -> Result<Payload> {
        match Self::wait(self.submit(ClientOp::Get { object }), |r| {
            matches!(r, ClientReply::GetDone { .. })
        })? {
            ClientReply::GetDone { payload, .. } => Ok(payload),
            _ => unreachable!("wait() only accepts GetDone"),
        }
    }

    /// Reduce `num_objects` of `sources` into `target` (Table 1 `Reduce`); returns once
    /// the reduce has been accepted. Combine with [`HopliteClient::get`] on the target
    /// to obtain the result (that is also how the paper measures reduce latency).
    pub fn reduce(
        &self,
        target: ObjectId,
        sources: Vec<ObjectId>,
        num_objects: Option<usize>,
        spec: ReduceSpec,
    ) -> Result<()> {
        Self::wait(
            self.submit(ClientOp::Reduce { target, sources, num_objects, spec, degree: None }),
            |r| matches!(r, ClientReply::ReduceAccepted { .. }),
        )
        .map(|_| ())
    }

    /// Delete every copy of an object cluster-wide (Table 1 `Delete`).
    pub fn delete(&self, object: ObjectId) -> Result<()> {
        Self::wait(self.submit(ClientOp::Delete { object }), |r| {
            matches!(r, ClientReply::DeleteDone { .. })
        })
        .map(|_| ())
    }
}

struct NodeThread {
    events: Sender<LoopEvent>,
    handle: Option<JoinHandle<()>>,
}

/// Object-safe view of a [`Fabric`], so [`LocalCluster`] can keep it around for node
/// restarts without being generic over the fabric type.
trait ClusterFabric: Send {
    fn take_receiver(&mut self, node: NodeId) -> Receiver<(NodeId, Message)>;
    fn reset_receiver(&mut self, node: NodeId) -> Option<Receiver<(NodeId, Message)>>;
    fn dyn_sender(&self) -> Box<dyn FabricSender>;
    fn transport_metrics(&self) -> NodeMetrics;
}

impl<F: Fabric + Send> ClusterFabric for F {
    fn take_receiver(&mut self, node: NodeId) -> Receiver<(NodeId, Message)> {
        Fabric::take_receiver(self, node)
    }
    fn reset_receiver(&mut self, node: NodeId) -> Option<Receiver<(NodeId, Message)>> {
        Fabric::reset_receiver(self, node)
    }
    fn dyn_sender(&self) -> Box<dyn FabricSender> {
        Box::new(self.sender())
    }
    fn transport_metrics(&self) -> NodeMetrics {
        Fabric::transport_metrics(self)
    }
}

/// A Hoplite cluster running on OS threads in this process, moving real bytes.
pub struct LocalCluster {
    nodes: Vec<NodeThread>,
    next_op: Arc<AtomicU64>,
    cfg: HopliteConfig,
    cluster_view: ClusterView,
    fabric: Box<dyn ClusterFabric>,
}

/// Which fabric a [`LocalCluster`] should use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalFabric {
    /// In-process crossbeam channels (fast, no sockets).
    Channels,
    /// Localhost TCP with framed messages (exercises the real wire format).
    Tcp,
}

impl LocalCluster {
    /// Start `n` nodes over in-process channels with the given configuration.
    pub fn new(n: usize, cfg: HopliteConfig) -> Self {
        Self::with_fabric(n, cfg, LocalFabric::Channels)
    }

    /// Start `n` nodes over the chosen fabric.
    pub fn with_fabric(n: usize, cfg: HopliteConfig, fabric: LocalFabric) -> Self {
        match fabric {
            LocalFabric::Channels => Self::start(n, cfg, ChannelFabric::new(n)),
            LocalFabric::Tcp => {
                Self::start(n, cfg, TcpFabric::new(n).expect("bind localhost listeners"))
            }
        }
    }

    fn start<F: Fabric + Send + 'static>(n: usize, cfg: HopliteConfig, fabric: F) -> Self {
        let cluster_view = ClusterView::of_size(n);
        let next_op = Arc::new(AtomicU64::new(1));
        let mut cluster = LocalCluster {
            nodes: Vec::with_capacity(n),
            next_op,
            cfg,
            cluster_view: cluster_view.clone(),
            fabric: Box::new(fabric),
        };
        for id in cluster_view.nodes {
            let rx_fabric = cluster.fabric.take_receiver(id);
            let node_thread = cluster.spawn_node(id, rx_fabric, false);
            cluster.nodes.push(node_thread);
        }
        cluster
    }

    /// Spawn the pump + event-loop threads for one node. `recovering` selects whether
    /// the node starts cold or as a restarted process that must resync its directory
    /// replicas before leading again.
    fn spawn_node(
        &self,
        id: NodeId,
        rx_fabric: Receiver<(NodeId, Message)>,
        recovering: bool,
    ) -> NodeThread {
        let tx_fabric = self.fabric.dyn_sender();
        let (events_tx, events_rx) = unbounded();
        // Pump fabric messages into the unified event queue; exits when either the
        // fabric or the node loop goes away.
        let pump_tx = events_tx.clone();
        thread::Builder::new()
            .name(format!("hoplite-fabric-pump-{}", id.0))
            .spawn(move || {
                for (from, msg) in rx_fabric.iter() {
                    if pump_tx.send(LoopEvent::Fabric(from, msg)).is_err() {
                        return;
                    }
                }
            })
            .expect("spawn fabric pump thread");
        let node = ObjectStoreNode::new(
            id,
            self.cfg.clone(),
            self.cluster_view.clone(),
            NodeOptions { synthetic_data: false, pipelined_put: false },
        );
        let handle = thread::Builder::new()
            .name(format!("hoplite-node-{}", id.0))
            .spawn(move || node_event_loop(node, events_rx, tx_fabric, recovering))
            .expect("spawn node thread");
        NodeThread { events: events_tx, handle: Some(handle) }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for an empty cluster.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Cluster-wide transport counters (`recv_slab_reuse`, `corked_frames_per_write`),
    /// read live from the fabric. Zeros over the channels fabric — messages move by
    /// ownership there, so there are no receive slabs and nothing to cork.
    pub fn transport_metrics(&self) -> NodeMetrics {
        self.fabric.transport_metrics()
    }

    /// A blocking client bound to `node`.
    pub fn client(&self, node: usize) -> HopliteClient {
        HopliteClient {
            node: NodeId(node as u32),
            events: self.nodes[node].events.clone(),
            next_op: self.next_op.clone(),
        }
    }

    /// Kill a node's event loop and notify every other node, as a real failure detector
    /// (socket liveness in the paper, §5.5) eventually would.
    pub fn kill_node(&mut self, node: usize) {
        let _ = self.nodes[node].events.send(LoopEvent::Command(NodeCommand::Shutdown));
        if let Some(handle) = self.nodes[node].handle.take() {
            let _ = handle.join();
        }
        for (i, other) in self.nodes.iter().enumerate() {
            if i != node {
                let _ = other
                    .events
                    .send(LoopEvent::Command(NodeCommand::PeerFailed(NodeId(node as u32))));
            }
        }
    }

    /// Restart a previously-killed node as a fresh process: a new event loop over a
    /// new fabric queue, an empty store, and empty directory replicas. The node
    /// immediately begins directory recovery (snapshot requests + log catch-up) and
    /// announces `DirResynced` once caught up; every other node receives a recovery
    /// notice. Clients bound to the old incarnation error out — call
    /// [`LocalCluster::client`] again for a fresh handle.
    ///
    /// Panics when the fabric does not support restarts (the TCP fabric does not,
    /// yet) or when the node was not killed first.
    pub fn restart_node(&mut self, node: usize) {
        assert!(self.nodes[node].handle.is_none(), "restart_node requires a killed node");
        let id = NodeId(node as u32);
        let rx_fabric =
            self.fabric.reset_receiver(id).expect("this fabric does not support node restarts");
        self.nodes[node] = self.spawn_node(id, rx_fabric, true);
        for (i, other) in self.nodes.iter().enumerate() {
            if i != node {
                let _ = other.events.send(LoopEvent::Command(NodeCommand::PeerRecovered(id)));
            }
        }
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        for node in &self.nodes {
            let _ = node.events.send(LoopEvent::Command(NodeCommand::Shutdown));
        }
        for node in &mut self.nodes {
            if let Some(handle) = node.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// [`DriverPort`] over a real fabric: messages go out through the fabric sender,
/// replies to the per-op channels, and timers into the loop's deadline heap.
struct RealPort<'a, S: FabricSender> {
    me: NodeId,
    fabric: &'a S,
    pending_replies: &'a mut HashMap<OpId, Sender<ClientReply>>,
    timers: &'a mut BinaryHeap<Reverse<(Instant, TimerToken)>>,
}

impl<S: FabricSender> DriverPort for RealPort<'_, S> {
    fn send(&mut self, to: NodeId, msg: Message) {
        self.fabric.send(self.me, to, msg);
    }

    fn reply(&mut self, op: OpId, reply: ClientReply) {
        // `ReduceAccepted` is the only non-terminal reply (`ReduceComplete` follows);
        // everything else finishes the op, so its sender can be dropped to keep the
        // map from growing with every operation ever submitted.
        let terminal = !matches!(reply, ClientReply::ReduceAccepted { .. });
        if terminal {
            if let Some(tx) = self.pending_replies.remove(&op) {
                let _ = tx.send(reply);
            }
        } else if let Some(tx) = self.pending_replies.get(&op) {
            let _ = tx.send(reply);
        }
    }

    fn set_timer(&mut self, token: TimerToken, delay: Duration) {
        self.timers.push(Reverse((Instant::now() + delay.to_std(), token)));
    }
}

fn node_event_loop<S: FabricSender>(
    node: ObjectStoreNode,
    events: Receiver<LoopEvent>,
    fabric_tx: S,
    recovering: bool,
) {
    let epoch = Instant::now();
    let me = node.id();
    let mut runtime = NodeRuntime::new(node);
    let mut pending_replies: HashMap<OpId, Sender<ClientReply>> = HashMap::new();
    let mut timers: BinaryHeap<Reverse<(Instant, TimerToken)>> = BinaryHeap::new();
    // With no timers armed, sleep in generous slices so shutdown stays responsive even
    // if a sender leaks.
    const IDLE_SLICE: StdDuration = StdDuration::from_secs(3600);

    if recovering {
        // First order of business for a restarted node: request directory snapshots
        // so it can be re-admitted to its replica sets.
        let mut port = RealPort {
            me,
            fabric: &fabric_tx,
            pending_replies: &mut pending_replies,
            timers: &mut timers,
        };
        runtime.handle(Time(0), NodeEvent::Restarted, &mut port);
    }

    loop {
        // Fire every due timer first.
        let now_wall = Instant::now();
        while let Some(&Reverse((deadline, token))) = timers.peek() {
            if deadline > now_wall {
                break;
            }
            timers.pop();
            let now = Time(epoch.elapsed().as_nanos() as u64);
            let mut port = RealPort {
                me,
                fabric: &fabric_tx,
                pending_replies: &mut pending_replies,
                timers: &mut timers,
            };
            runtime.handle(now, NodeEvent::Timer(token), &mut port);
        }
        let timeout = timers
            .peek()
            .map(|&Reverse((deadline, _))| deadline.saturating_duration_since(Instant::now()))
            .unwrap_or(IDLE_SLICE);
        let event = match events.recv_timeout(timeout) {
            Ok(LoopEvent::Fabric(from, msg)) => NodeEvent::Message { from, msg },
            Ok(LoopEvent::Command(NodeCommand::Client { op_id, op, reply })) => {
                pending_replies.insert(op_id, reply);
                NodeEvent::Client { op: op_id, request: op }
            }
            Ok(LoopEvent::Command(NodeCommand::PeerFailed(peer))) => NodeEvent::PeerFailed(peer),
            Ok(LoopEvent::Command(NodeCommand::PeerRecovered(peer))) => {
                NodeEvent::PeerRecovered(peer)
            }
            Ok(LoopEvent::Command(NodeCommand::Shutdown)) => return,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let now = Time(epoch.elapsed().as_nanos() as u64);
        let mut port = RealPort {
            me,
            fabric: &fabric_tx,
            pending_replies: &mut pending_replies,
            timers: &mut timers,
        };
        runtime.handle(now, event, &mut port);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_over_channels() {
        let cluster = LocalCluster::new(3, HopliteConfig::small_for_tests());
        let obj = ObjectId::from_name("local-x");
        let data: Vec<u8> = (0..9000u32).map(|i| (i % 251) as u8).collect();
        cluster.client(0).put(obj, Payload::from_vec(data.clone())).unwrap();
        let got = cluster.client(2).get(obj).unwrap();
        assert_eq!(got.as_bytes().unwrap().as_ref(), data.as_slice());
    }

    #[test]
    fn reduce_over_channels_produces_exact_sums() {
        let cluster = LocalCluster::new(4, HopliteConfig::small_for_tests());
        let sources: Vec<ObjectId> =
            (0..4).map(|i| ObjectId::from_name(&format!("lg{i}"))).collect();
        for (i, &src) in sources.iter().enumerate() {
            let values = vec![i as f32 + 1.0; 500];
            cluster.client(i).put(src, Payload::from_f32s(&values)).unwrap();
        }
        let target = ObjectId::from_name("lsum");
        let client = cluster.client(0);
        client.reduce(target, sources, None, ReduceSpec::sum_f32()).unwrap();
        let result = client.get(target).unwrap();
        for v in result.to_f32s() {
            assert!((v - 10.0).abs() < 1e-4, "1+2+3+4 = 10, got {v}");
        }
    }

    #[test]
    fn put_get_roundtrip_over_tcp() {
        let cluster =
            LocalCluster::with_fabric(2, HopliteConfig::small_for_tests(), LocalFabric::Tcp);
        let obj = ObjectId::from_name("tcp-x");
        let data: Vec<u8> = (0..30_000u32).map(|i| (i % 256) as u8).collect();
        cluster.client(0).put(obj, Payload::from_vec(data.clone())).unwrap();
        let got = cluster.client(1).get(obj).unwrap();
        assert_eq!(got.as_bytes().unwrap().as_ref(), data.as_slice());
    }

    #[test]
    fn tcp_cluster_reports_transport_metrics() {
        // The transport counters surface through the cluster facade: bulk traffic
        // over the TCP fabric recycles receive slabs (`recv_slab_reuse`). Each round
        // deletes its object so the store drops its slab views and the reader's pool
        // can recycle the slab for the next round.
        let cluster =
            LocalCluster::with_fabric(2, HopliteConfig::small_for_tests(), LocalFabric::Tcp);
        for i in 0..8u32 {
            let obj = ObjectId::from_name(&format!("slab-{i}"));
            cluster.client(0).put(obj, Payload::zeros(2 * 1024 * 1024)).unwrap();
            let got = cluster.client(1).get(obj).unwrap();
            assert_eq!(got.len(), 2 * 1024 * 1024);
            drop(got);
            cluster.client(0).delete(obj).unwrap();
            // Deletion fans out asynchronously; the views must drop before the next
            // round's frames arrive for the pool to see the slab as free.
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        let metrics = cluster.transport_metrics();
        assert!(
            metrics.recv_slab_reuse > 0,
            "bulk TCP traffic should recycle receive slabs, got {}",
            metrics.recv_slab_reuse
        );
    }

    #[test]
    fn delete_then_get_errors() {
        let cluster = LocalCluster::new(3, HopliteConfig::small_for_tests());
        let obj = ObjectId::from_name("gone");
        cluster.client(0).put(obj, Payload::zeros(5000)).unwrap();
        cluster.client(0).delete(obj).unwrap();
        // Deletion fans out asynchronously (DirDelete → StoreRelease); give it a moment
        // to propagate, then a Get from a node that never held the object must fail
        // with `ObjectDeleted` instead of hanging.
        std::thread::sleep(std::time::Duration::from_millis(300));
        let err = cluster.client(2).get(obj);
        assert!(err.is_err(), "expected deleted-object error, got {err:?}");
    }

    #[test]
    fn kill_node_then_survivors_keep_working() {
        let mut cluster = LocalCluster::new(4, HopliteConfig::small_for_tests());
        let obj = ObjectId::from_name("pre-kill");
        cluster.client(0).put(obj, Payload::zeros(3000)).unwrap();
        cluster.kill_node(3);
        // The survivors still serve traffic through the shared runtime.
        let got = cluster.client(1).get(obj).unwrap();
        assert_eq!(got.len(), 3000);
    }

    #[test]
    fn rolling_restart_over_channels_preserves_data_and_metadata() {
        // Real-byte counterpart of the simulated rolling-restart scenario: every node
        // is killed and restarted in sequence with live traffic in each window. The
        // long-lived object stays fetchable throughout (its location records survive
        // each primary failover via the acked log), fresh objects created mid-window
        // resolve even when their shard primary is the dying node (unacked-window
        // re-drive), and each restarted node comes back as a working replica that
        // serves Gets again.
        let n = 4;
        let mut cluster = LocalCluster::new(n, HopliteConfig::small_for_tests());
        let w = ObjectId::from_name("rolling-local-w");
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 241) as u8).collect();
        cluster.client(0).put(w, Payload::from_vec(data.clone())).unwrap();
        for node in 1..n {
            assert_eq!(cluster.client(node).get(w).unwrap().as_bytes().unwrap(), &data[..]);
        }
        // Let the replication acks and confirms settle before the first kill.
        std::thread::sleep(std::time::Duration::from_millis(200));
        for k in 0..n {
            cluster.kill_node(k);
            std::thread::sleep(std::time::Duration::from_millis(100));
            // Live traffic while the node is down.
            let wk = ObjectId::from_name(&format!("rolling-local-{k}"));
            let wave: Vec<u8> = (0..8000u32).map(|i| ((i + k as u32) % 239) as u8).collect();
            cluster.client((k + 1) % n).put(wk, Payload::from_vec(wave.clone())).unwrap();
            let got = cluster.client((k + 2) % n).get(wk).unwrap();
            assert_eq!(got.as_bytes().unwrap(), &wave[..], "wave {k} served during the outage");
            cluster.restart_node(k);
            // Give the fresh node time to resync (snapshot + catch-up) and everyone
            // time to process the recovery notice and re-admission broadcast.
            std::thread::sleep(std::time::Duration::from_millis(300));
            // The restarted node serves traffic again, including re-fetching the
            // long-lived object it lost with its store.
            let refetched = cluster.client(k).get(w).unwrap();
            assert_eq!(refetched.as_bytes().unwrap(), &data[..], "restart {k} re-fetched W");
        }
        // After the full sweep every node answers for every object.
        for node in 0..n {
            assert_eq!(cluster.client(node).get(w).unwrap().len(), data.len() as u64);
        }
    }

    #[test]
    fn kill_directory_primary_then_get_still_resolves() {
        // Real-byte counterpart of the simulated directory-failover scenario: the
        // object's location record was replicated to the shard's backup before the
        // primary died, so a Get issued afterwards resolves through the promoted
        // backup instead of hanging.
        let mut cluster = LocalCluster::new(4, HopliteConfig::small_for_tests());
        let obj = (0u64..)
            .map(|k| ObjectId::from_name(&format!("dir-kill-{k}")))
            .find(|&o| ClusterView::of_size(4).shard_node(o).index() == 3)
            .unwrap();
        let data: Vec<u8> = (0..6000u32).map(|i| (i % 251) as u8).collect();
        cluster.client(1).put(obj, Payload::from_vec(data.clone())).unwrap();
        // Give the async log shipment a moment to reach the backup, then kill the
        // primary (node 3 holds no copy of the object itself).
        std::thread::sleep(std::time::Duration::from_millis(200));
        cluster.kill_node(3);
        std::thread::sleep(std::time::Duration::from_millis(200));
        let got = cluster.client(2).get(obj).unwrap();
        assert_eq!(got.as_bytes().unwrap().as_ref(), data.as_slice());
    }
}
