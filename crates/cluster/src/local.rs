//! A real (threaded) Hoplite deployment: one event-loop thread per node, connected by
//! an in-process channel fabric or by localhost TCP, moving real bytes.
//!
//! `LocalCluster` is what the examples, the task framework and the data-plane
//! correctness tests use. It exposes a blocking client API
//! ([`HopliteClient`](crate::host::HopliteClient)) with the paper's four calls:
//! `Put`, `Get`, `Reduce`, `Delete` (Table 1).
//!
//! Each node runs inside a [`NodeHost`](crate::host::NodeHost) — the same event loop
//! a `hoplited` daemon uses for its single node — driving the shared
//! [`NodeRuntime`](crate::driver::NodeRuntime) over a unified event queue.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use crossbeam_channel::Receiver;
use hoplite_core::prelude::*;
use hoplite_transport::fabric::{ChannelFabric, Fabric, FabricSender};
use hoplite_transport::tcp::TcpFabric;

use crate::host::{HopliteClient, NodeHost, NodeStatus};

/// Object-safe view of a [`Fabric`], so [`LocalCluster`] can keep it around for node
/// restarts without being generic over the fabric type.
trait ClusterFabric: Send {
    fn take_receiver(&mut self, node: NodeId) -> Receiver<(NodeId, Message)>;
    fn reset_receiver(&mut self, node: NodeId) -> Option<Receiver<(NodeId, Message)>>;
    fn note_restart(&mut self, node: NodeId, incarnation: u64);
    fn dyn_sender(&self) -> Box<dyn FabricSender>;
    fn transport_metrics(&self) -> NodeMetrics;
}

impl<F: Fabric + Send> ClusterFabric for F {
    fn take_receiver(&mut self, node: NodeId) -> Receiver<(NodeId, Message)> {
        Fabric::take_receiver(self, node)
    }
    fn reset_receiver(&mut self, node: NodeId) -> Option<Receiver<(NodeId, Message)>> {
        Fabric::reset_receiver(self, node)
    }
    fn note_restart(&mut self, node: NodeId, incarnation: u64) {
        Fabric::note_restart(self, node, incarnation)
    }
    fn dyn_sender(&self) -> Box<dyn FabricSender> {
        Box::new(self.sender())
    }
    fn transport_metrics(&self) -> NodeMetrics {
        Fabric::transport_metrics(self)
    }
}

/// A Hoplite cluster running on OS threads in this process, moving real bytes.
pub struct LocalCluster {
    nodes: Vec<NodeHost>,
    incarnations: Vec<u64>,
    next_op: Arc<AtomicU64>,
    cfg: HopliteConfig,
    cluster_view: ClusterView,
    fabric: Box<dyn ClusterFabric>,
}

/// Which fabric a [`LocalCluster`] should use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalFabric {
    /// In-process crossbeam channels (fast, no sockets).
    Channels,
    /// Localhost TCP with framed messages (exercises the real wire format).
    Tcp,
}

impl LocalCluster {
    /// Start `n` nodes over in-process channels with the given configuration.
    pub fn new(n: usize, cfg: HopliteConfig) -> Self {
        Self::with_fabric(n, cfg, LocalFabric::Channels)
    }

    /// Start `n` nodes over the chosen fabric.
    pub fn with_fabric(n: usize, cfg: HopliteConfig, fabric: LocalFabric) -> Self {
        match fabric {
            LocalFabric::Channels => Self::start(n, cfg, ChannelFabric::new(n)),
            LocalFabric::Tcp => {
                Self::start(n, cfg, TcpFabric::new(n).expect("bind localhost listeners"))
            }
        }
    }

    fn start<F: Fabric + Send + 'static>(n: usize, cfg: HopliteConfig, fabric: F) -> Self {
        let cluster_view = ClusterView::of_size(n);
        let next_op = Arc::new(AtomicU64::new(1));
        let mut cluster = LocalCluster {
            nodes: Vec::with_capacity(n),
            incarnations: vec![0; n],
            next_op,
            cfg,
            cluster_view: cluster_view.clone(),
            fabric: Box::new(fabric),
        };
        for id in cluster_view.nodes {
            let rx_fabric = cluster.fabric.take_receiver(id);
            let host = cluster.spawn_node(id, rx_fabric, false);
            cluster.nodes.push(host);
        }
        cluster
    }

    /// Spawn the host for one node. `recovering` selects whether the node starts cold
    /// or as a restarted process that must resync its directory replicas before
    /// leading again.
    fn spawn_node(
        &self,
        id: NodeId,
        rx_fabric: Receiver<(NodeId, Message)>,
        recovering: bool,
    ) -> NodeHost {
        let node = ObjectStoreNode::new(
            id,
            self.cfg.clone(),
            self.cluster_view.clone(),
            NodeOptions {
                synthetic_data: false,
                pipelined_put: false,
                incarnation: self.incarnations[id.index()],
            },
        );
        NodeHost::spawn(node, rx_fabric, self.fabric.dyn_sender(), recovering, self.next_op.clone())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for an empty cluster.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Cluster-wide transport counters (`recv_slab_reuse`, `corked_frames_per_write`),
    /// read live from the fabric. Zeros over the channels fabric — messages move by
    /// ownership there, so there are no receive slabs and nothing to cork.
    pub fn transport_metrics(&self) -> NodeMetrics {
        self.fabric.transport_metrics()
    }

    /// A blocking client bound to `node`.
    pub fn client(&self, node: usize) -> HopliteClient {
        self.nodes[node].client()
    }

    /// A status snapshot of `node` (incarnation, resync state, counters), answered
    /// by its event loop. `None` for a killed node.
    pub fn status(&self, node: usize) -> Option<NodeStatus> {
        self.nodes[node].status()
    }

    /// Kill a node's event loop and notify every other node, as a real failure detector
    /// (socket liveness in the paper, §5.5) eventually would.
    pub fn kill_node(&mut self, node: usize) {
        self.nodes[node].shutdown();
        for (i, other) in self.nodes.iter().enumerate() {
            if i != node {
                other.notify_peer_failed(NodeId(node as u32));
            }
        }
    }

    /// Restart a previously-killed node as a fresh process at the next incarnation:
    /// a new event loop over a new fabric queue, an empty store, and empty directory
    /// replicas. The node immediately begins directory recovery (snapshot requests +
    /// log catch-up) and announces `DirResynced` once caught up; every other node
    /// receives a recovery notice. Clients bound to the old incarnation error out —
    /// call [`LocalCluster::client`] again for a fresh handle.
    ///
    /// Works over both fabrics: the channels fabric swaps the node's queue, the TCP
    /// fabric additionally reroutes live connections to the new queue and advertises
    /// the new incarnation in future `Hello` greetings.
    ///
    /// Panics when the node was not killed first.
    pub fn restart_node(&mut self, node: usize) {
        assert!(!self.nodes[node].is_running(), "restart_node requires a killed node");
        let id = NodeId(node as u32);
        self.incarnations[node] += 1;
        self.fabric.note_restart(id, self.incarnations[node]);
        let rx_fabric =
            self.fabric.reset_receiver(id).expect("this fabric does not support node restarts");
        self.nodes[node] = self.spawn_node(id, rx_fabric, true);
        for (i, other) in self.nodes.iter().enumerate() {
            if i != node {
                other.notify_peer_recovered(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_over_channels() {
        let cluster = LocalCluster::new(3, HopliteConfig::small_for_tests());
        let obj = ObjectId::from_name("local-x");
        let data: Vec<u8> = (0..9000u32).map(|i| (i % 251) as u8).collect();
        cluster.client(0).put(obj, Payload::from_vec(data.clone())).unwrap();
        let got = cluster.client(2).get(obj).unwrap();
        assert_eq!(got.as_bytes().unwrap().as_ref(), data.as_slice());
    }

    #[test]
    fn reduce_over_channels_produces_exact_sums() {
        let cluster = LocalCluster::new(4, HopliteConfig::small_for_tests());
        let sources: Vec<ObjectId> =
            (0..4).map(|i| ObjectId::from_name(&format!("lg{i}"))).collect();
        for (i, &src) in sources.iter().enumerate() {
            let values = vec![i as f32 + 1.0; 500];
            cluster.client(i).put(src, Payload::from_f32s(&values)).unwrap();
        }
        let target = ObjectId::from_name("lsum");
        let client = cluster.client(0);
        client.reduce(target, sources, None, ReduceSpec::sum_f32()).unwrap();
        let result = client.get(target).unwrap();
        for v in result.to_f32s() {
            assert!((v - 10.0).abs() < 1e-4, "1+2+3+4 = 10, got {v}");
        }
    }

    #[test]
    fn put_get_roundtrip_over_tcp() {
        let cluster =
            LocalCluster::with_fabric(2, HopliteConfig::small_for_tests(), LocalFabric::Tcp);
        let obj = ObjectId::from_name("tcp-x");
        let data: Vec<u8> = (0..30_000u32).map(|i| (i % 256) as u8).collect();
        cluster.client(0).put(obj, Payload::from_vec(data.clone())).unwrap();
        let got = cluster.client(1).get(obj).unwrap();
        assert_eq!(got.as_bytes().unwrap().as_ref(), data.as_slice());
    }

    #[test]
    fn tcp_cluster_reports_transport_metrics() {
        // The transport counters surface through the cluster facade: bulk traffic
        // over the TCP fabric recycles receive slabs (`recv_slab_reuse`). Each round
        // deletes its object so the store drops its slab views and the reader's pool
        // can recycle the slab for the next round.
        let cluster =
            LocalCluster::with_fabric(2, HopliteConfig::small_for_tests(), LocalFabric::Tcp);
        for i in 0..8u32 {
            let obj = ObjectId::from_name(&format!("slab-{i}"));
            cluster.client(0).put(obj, Payload::zeros(2 * 1024 * 1024)).unwrap();
            let got = cluster.client(1).get(obj).unwrap();
            assert_eq!(got.len(), 2 * 1024 * 1024);
            drop(got);
            cluster.client(0).delete(obj).unwrap();
            // Deletion fans out asynchronously; the views must drop before the next
            // round's frames arrive for the pool to see the slab as free.
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        let metrics = cluster.transport_metrics();
        assert!(
            metrics.recv_slab_reuse > 0,
            "bulk TCP traffic should recycle receive slabs, got {}",
            metrics.recv_slab_reuse
        );
    }

    #[test]
    fn delete_then_get_errors() {
        let cluster = LocalCluster::new(3, HopliteConfig::small_for_tests());
        let obj = ObjectId::from_name("gone");
        cluster.client(0).put(obj, Payload::zeros(5000)).unwrap();
        cluster.client(0).delete(obj).unwrap();
        // Deletion fans out asynchronously (DirDelete → StoreRelease); give it a moment
        // to propagate, then a Get from a node that never held the object must fail
        // with `ObjectDeleted` instead of hanging.
        std::thread::sleep(std::time::Duration::from_millis(300));
        let err = cluster.client(2).get(obj);
        assert!(err.is_err(), "expected deleted-object error, got {err:?}");
    }

    #[test]
    fn kill_node_then_survivors_keep_working() {
        let mut cluster = LocalCluster::new(4, HopliteConfig::small_for_tests());
        let obj = ObjectId::from_name("pre-kill");
        cluster.client(0).put(obj, Payload::zeros(3000)).unwrap();
        cluster.kill_node(3);
        // The survivors still serve traffic through the shared runtime.
        let got = cluster.client(1).get(obj).unwrap();
        assert_eq!(got.len(), 3000);
    }

    #[test]
    fn rolling_restart_over_channels_preserves_data_and_metadata() {
        // Real-byte counterpart of the simulated rolling-restart scenario: every node
        // is killed and restarted in sequence with live traffic in each window. The
        // long-lived object stays fetchable throughout (its location records survive
        // each primary failover via the acked log), fresh objects created mid-window
        // resolve even when their shard primary is the dying node (unacked-window
        // re-drive), and each restarted node comes back as a working replica that
        // serves Gets again.
        let n = 4;
        let mut cluster = LocalCluster::new(n, HopliteConfig::small_for_tests());
        let w = ObjectId::from_name("rolling-local-w");
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 241) as u8).collect();
        cluster.client(0).put(w, Payload::from_vec(data.clone())).unwrap();
        for node in 1..n {
            assert_eq!(cluster.client(node).get(w).unwrap().as_bytes().unwrap(), &data[..]);
        }
        // Let the replication acks and confirms settle before the first kill.
        std::thread::sleep(std::time::Duration::from_millis(200));
        for k in 0..n {
            cluster.kill_node(k);
            std::thread::sleep(std::time::Duration::from_millis(100));
            // Live traffic while the node is down.
            let wk = ObjectId::from_name(&format!("rolling-local-{k}"));
            let wave: Vec<u8> = (0..8000u32).map(|i| ((i + k as u32) % 239) as u8).collect();
            cluster.client((k + 1) % n).put(wk, Payload::from_vec(wave.clone())).unwrap();
            let got = cluster.client((k + 2) % n).get(wk).unwrap();
            assert_eq!(got.as_bytes().unwrap(), &wave[..], "wave {k} served during the outage");
            cluster.restart_node(k);
            // Give the fresh node time to resync (snapshot + catch-up) and everyone
            // time to process the recovery notice and re-admission broadcast.
            std::thread::sleep(std::time::Duration::from_millis(300));
            // The restarted node serves traffic again, including re-fetching the
            // long-lived object it lost with its store.
            let refetched = cluster.client(k).get(w).unwrap();
            assert_eq!(refetched.as_bytes().unwrap(), &data[..], "restart {k} re-fetched W");
        }
        // After the full sweep every node answers for every object.
        for node in 0..n {
            assert_eq!(cluster.client(node).get(w).unwrap().len(), data.len() as u64);
        }
    }

    #[test]
    fn restart_over_tcp_rebinds_and_resyncs_at_a_new_incarnation() {
        // The TCP counterpart of the rolling restart, which used to panic: the fabric
        // now swaps the dead node's ingress queue, reroutes surviving connections,
        // and advertises the bumped incarnation. The restarted node must resync and
        // serve traffic again, and its status must show incarnation 1.
        let mut cluster =
            LocalCluster::with_fabric(3, HopliteConfig::small_for_tests(), LocalFabric::Tcp);
        let obj = ObjectId::from_name("tcp-restart-w");
        let data: Vec<u8> = (0..12_000u32).map(|i| (i % 249) as u8).collect();
        cluster.client(0).put(obj, Payload::from_vec(data.clone())).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(200));

        cluster.kill_node(2);
        std::thread::sleep(std::time::Duration::from_millis(100));
        // Traffic during the outage still works.
        let mid = ObjectId::from_name("tcp-restart-mid");
        cluster.client(1).put(mid, Payload::zeros(4000)).unwrap();
        assert_eq!(cluster.client(0).get(mid).unwrap().len(), 4000);

        cluster.restart_node(2);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let status = cluster.status(2).expect("restarted node answers status");
            if !status.resyncing {
                assert_eq!(status.incarnation, 1, "restart must bump the incarnation");
                break;
            }
            assert!(std::time::Instant::now() < deadline, "node 2 never finished resyncing");
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
        let got = cluster.client(2).get(obj).unwrap();
        assert_eq!(got.as_bytes().unwrap(), &data[..], "restarted node re-fetched over TCP");
    }

    #[test]
    fn kill_directory_primary_then_get_still_resolves() {
        // Real-byte counterpart of the simulated directory-failover scenario: the
        // object's location record was replicated to the shard's backup before the
        // primary died, so a Get issued afterwards resolves through the promoted
        // backup instead of hanging.
        let mut cluster = LocalCluster::new(4, HopliteConfig::small_for_tests());
        let obj = (0u64..)
            .map(|k| ObjectId::from_name(&format!("dir-kill-{k}")))
            .find(|&o| ClusterView::of_size(4).shard_node(o).index() == 3)
            .unwrap();
        let data: Vec<u8> = (0..6000u32).map(|i| (i % 251) as u8).collect();
        cluster.client(1).put(obj, Payload::from_vec(data.clone())).unwrap();
        // Give the async log shipment a moment to reach the backup, then kill the
        // primary (node 3 holds no copy of the object itself).
        std::thread::sleep(std::time::Duration::from_millis(200));
        cluster.kill_node(3);
        std::thread::sleep(std::time::Duration::from_millis(200));
        let got = cluster.client(2).get(obj).unwrap();
        assert_eq!(got.as_bytes().unwrap().as_ref(), data.as_slice());
    }
}
