//! A real (threaded) Hoplite deployment: one event-loop thread per node, connected by
//! an in-process channel fabric or by localhost TCP, moving real bytes.
//!
//! `LocalCluster` is what the examples, the task framework and the data-plane
//! correctness tests use. It exposes a blocking client API ([`HopliteClient`]) with the
//! paper's four calls: `Put`, `Get`, `Reduce`, `Delete` (Table 1).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

use crossbeam_channel::{unbounded, Receiver, Sender};
use hoplite_core::prelude::*;
use hoplite_transport::fabric::{ChannelFabric, Fabric, FabricSender};
use hoplite_transport::tcp::TcpFabric;

/// Commands delivered to a node's event loop besides fabric messages.
enum NodeCommand {
    Client { op_id: OpId, op: ClientOp, reply: Sender<ClientReply> },
    PeerFailed(NodeId),
    Shutdown,
}

/// Blocking client bound to one node of a [`LocalCluster`].
#[derive(Clone)]
pub struct HopliteClient {
    node: NodeId,
    commands: Sender<NodeCommand>,
    next_op: Arc<AtomicU64>,
}

impl HopliteClient {
    /// The node this client talks to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    fn submit(&self, op: ClientOp) -> Receiver<ClientReply> {
        let (tx, rx) = unbounded();
        let op_id = OpId(self.next_op.fetch_add(1, Ordering::Relaxed));
        // A send failure means the node was shut down; the disconnected receiver will
        // surface that as an error to the caller below.
        let _ = self.commands.send(NodeCommand::Client { op_id, op, reply: tx });
        rx
    }

    fn wait<F: Fn(&ClientReply) -> bool>(rx: Receiver<ClientReply>, accept: F) -> Result<ClientReply> {
        loop {
            match rx.recv() {
                Ok(ClientReply::Error { error }) => return Err(error),
                Ok(reply) if accept(&reply) => return Ok(reply),
                Ok(_) => continue,
                Err(_) => {
                    return Err(HopliteError::Transport("node shut down".to_string()));
                }
            }
        }
    }

    /// Store an object (Table 1 `Put`): blocks until the local store holds it.
    pub fn put(&self, object: ObjectId, payload: Payload) -> Result<()> {
        Self::wait(
            self.submit(ClientOp::Put { object, payload }),
            |r| matches!(r, ClientReply::PutDone { .. }),
        )
        .map(|_| ())
    }

    /// Fetch an object (Table 1 `Get`): blocks until a complete copy is local.
    pub fn get(&self, object: ObjectId) -> Result<Payload> {
        match Self::wait(
            self.submit(ClientOp::Get { object }),
            |r| matches!(r, ClientReply::GetDone { .. }),
        )? {
            ClientReply::GetDone { payload, .. } => Ok(payload),
            _ => unreachable!("wait() only accepts GetDone"),
        }
    }

    /// Reduce `num_objects` of `sources` into `target` (Table 1 `Reduce`); returns once
    /// the reduce has been accepted. Combine with [`HopliteClient::get`] on the target
    /// to obtain the result (that is also how the paper measures reduce latency).
    pub fn reduce(
        &self,
        target: ObjectId,
        sources: Vec<ObjectId>,
        num_objects: Option<usize>,
        spec: ReduceSpec,
    ) -> Result<()> {
        Self::wait(
            self.submit(ClientOp::Reduce { target, sources, num_objects, spec, degree: None }),
            |r| matches!(r, ClientReply::ReduceAccepted { .. }),
        )
        .map(|_| ())
    }

    /// Delete every copy of an object cluster-wide (Table 1 `Delete`).
    pub fn delete(&self, object: ObjectId) -> Result<()> {
        Self::wait(
            self.submit(ClientOp::Delete { object }),
            |r| matches!(r, ClientReply::DeleteDone { .. }),
        )
        .map(|_| ())
    }
}

struct NodeThread {
    commands: Sender<NodeCommand>,
    handle: Option<JoinHandle<()>>,
}

/// A Hoplite cluster running on OS threads in this process, moving real bytes.
pub struct LocalCluster {
    nodes: Vec<NodeThread>,
    next_op: Arc<AtomicU64>,
}

/// Which fabric a [`LocalCluster`] should use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalFabric {
    /// In-process crossbeam channels (fast, no sockets).
    Channels,
    /// Localhost TCP with framed messages (exercises the real wire format).
    Tcp,
}

impl LocalCluster {
    /// Start `n` nodes over in-process channels with the given configuration.
    pub fn new(n: usize, cfg: HopliteConfig) -> Self {
        Self::with_fabric(n, cfg, LocalFabric::Channels)
    }

    /// Start `n` nodes over the chosen fabric.
    pub fn with_fabric(n: usize, cfg: HopliteConfig, fabric: LocalFabric) -> Self {
        match fabric {
            LocalFabric::Channels => Self::start(n, cfg, ChannelFabric::new(n)),
            LocalFabric::Tcp => {
                Self::start(n, cfg, TcpFabric::new(n).expect("bind localhost listeners"))
            }
        }
    }

    fn start<F: Fabric>(n: usize, cfg: HopliteConfig, mut fabric: F) -> Self {
        let cluster_view = ClusterView::of_size(n);
        let next_op = Arc::new(AtomicU64::new(1));
        let mut nodes = Vec::with_capacity(n);
        for id in cluster_view.nodes.clone() {
            let rx_fabric = fabric.take_receiver(id);
            let tx_fabric = fabric.sender();
            let (cmd_tx, cmd_rx) = unbounded();
            let node = ObjectStoreNode::new(
                id,
                cfg.clone(),
                cluster_view.clone(),
                NodeOptions { synthetic_data: false, pipelined_put: false },
            );
            let handle = thread::Builder::new()
                .name(format!("hoplite-node-{}", id.0))
                .spawn(move || node_event_loop(node, rx_fabric, cmd_rx, tx_fabric))
                .expect("spawn node thread");
            nodes.push(NodeThread { commands: cmd_tx, handle: Some(handle) });
        }
        LocalCluster { nodes, next_op }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for an empty cluster.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A blocking client bound to `node`.
    pub fn client(&self, node: usize) -> HopliteClient {
        HopliteClient {
            node: NodeId(node as u32),
            commands: self.nodes[node].commands.clone(),
            next_op: self.next_op.clone(),
        }
    }

    /// Kill a node's event loop and notify every other node, as a real failure detector
    /// (socket liveness in the paper, §5.5) eventually would.
    pub fn kill_node(&mut self, node: usize) {
        let _ = self.nodes[node].commands.send(NodeCommand::Shutdown);
        if let Some(handle) = self.nodes[node].handle.take() {
            let _ = handle.join();
        }
        for (i, other) in self.nodes.iter().enumerate() {
            if i != node {
                let _ = other.commands.send(NodeCommand::PeerFailed(NodeId(node as u32)));
            }
        }
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        for node in &self.nodes {
            let _ = node.commands.send(NodeCommand::Shutdown);
        }
        for node in &mut self.nodes {
            if let Some(handle) = node.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

fn node_event_loop<S: FabricSender>(
    mut node: ObjectStoreNode,
    fabric_rx: Receiver<(NodeId, Message)>,
    cmd_rx: Receiver<NodeCommand>,
    fabric_tx: S,
) {
    let epoch = Instant::now();
    let me = node.id();
    let mut pending_replies: HashMap<OpId, Sender<ClientReply>> = HashMap::new();
    let now = |epoch: Instant| Time(epoch.elapsed().as_nanos() as u64);

    loop {
        let mut effects = Vec::new();
        crossbeam_channel::select! {
            recv(fabric_rx) -> msg => match msg {
                Ok((from, msg)) => node.handle_message(now(epoch), from, msg, &mut effects),
                Err(_) => return,
            },
            recv(cmd_rx) -> cmd => match cmd {
                Ok(NodeCommand::Client { op_id, op, reply }) => {
                    pending_replies.insert(op_id, reply);
                    node.handle_client(now(epoch), op_id, op, &mut effects);
                }
                Ok(NodeCommand::PeerFailed(peer)) => {
                    node.handle_peer_failed(now(epoch), peer, &mut effects);
                }
                Ok(NodeCommand::Shutdown) | Err(_) => return,
            },
        }
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => fabric_tx.send(me, to, msg),
                Effect::Reply { op, reply } => {
                    if let Some(tx) = pending_replies.get(&op) {
                        let _ = tx.send(reply);
                    }
                }
                // LocalCluster runs with pipelined puts disabled, so the core never
                // arms timers; LocalProgress is only needed by drivers that model
                // worker-side streaming.
                Effect::SetTimer { .. } | Effect::LocalProgress { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_over_channels() {
        let cluster = LocalCluster::new(3, HopliteConfig::small_for_tests());
        let obj = ObjectId::from_name("local-x");
        let data: Vec<u8> = (0..9000u32).map(|i| (i % 251) as u8).collect();
        cluster.client(0).put(obj, Payload::from_vec(data.clone())).unwrap();
        let got = cluster.client(2).get(obj).unwrap();
        assert_eq!(got.as_bytes().unwrap().as_ref(), data.as_slice());
    }

    #[test]
    fn reduce_over_channels_produces_exact_sums() {
        let cluster = LocalCluster::new(4, HopliteConfig::small_for_tests());
        let sources: Vec<ObjectId> = (0..4).map(|i| ObjectId::from_name(&format!("lg{i}"))).collect();
        for (i, &src) in sources.iter().enumerate() {
            let values = vec![i as f32 + 1.0; 500];
            cluster.client(i).put(src, Payload::from_f32s(&values)).unwrap();
        }
        let target = ObjectId::from_name("lsum");
        let client = cluster.client(0);
        client.reduce(target, sources, None, ReduceSpec::sum_f32()).unwrap();
        let result = client.get(target).unwrap();
        for v in result.to_f32s() {
            assert!((v - 10.0).abs() < 1e-4, "1+2+3+4 = 10, got {v}");
        }
    }

    #[test]
    fn put_get_roundtrip_over_tcp() {
        let cluster =
            LocalCluster::with_fabric(2, HopliteConfig::small_for_tests(), LocalFabric::Tcp);
        let obj = ObjectId::from_name("tcp-x");
        let data: Vec<u8> = (0..30_000u32).map(|i| (i % 256) as u8).collect();
        cluster.client(0).put(obj, Payload::from_vec(data.clone())).unwrap();
        let got = cluster.client(1).get(obj).unwrap();
        assert_eq!(got.as_bytes().unwrap().as_ref(), data.as_slice());
    }

    #[test]
    fn delete_then_get_errors() {
        let cluster = LocalCluster::new(3, HopliteConfig::small_for_tests());
        let obj = ObjectId::from_name("gone");
        cluster.client(0).put(obj, Payload::zeros(5000)).unwrap();
        cluster.client(0).delete(obj).unwrap();
        // Deletion fans out asynchronously (DirDelete → StoreRelease); give it a moment
        // to propagate, then a Get from a node that never held the object must fail
        // with `ObjectDeleted` instead of hanging.
        std::thread::sleep(std::time::Duration::from_millis(300));
        let err = cluster.client(2).get(obj);
        assert!(err.is_err(), "expected deleted-object error, got {err:?}");
    }
}
