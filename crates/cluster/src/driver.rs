//! The shared node driver runtime.
//!
//! Every cluster backend — the discrete-event simulator behind
//! [`crate::sim_cluster::SimCluster`], the threaded real-byte deployment behind
//! [`crate::local::LocalCluster`], and any future fabric — drives its
//! [`ObjectStoreNode`]s through one [`NodeRuntime`]: events go in as [`NodeEvent`]s,
//! and the effects the sans-IO core emits come back out through a backend-provided
//! [`DriverPort`] (send a message, complete a client op, arm a timer, report local
//! progress).
//!
//! This is the seam that keeps the per-backend code down to "how do I move a message
//! and wake a timer on *my* fabric": protocol dispatch, effect routing, and the event
//! vocabulary live here, once.

use hoplite_core::prelude::*;

/// Everything that can happen to a node, in driver-neutral vocabulary.
#[derive(Clone, Debug)]
pub enum NodeEvent {
    /// A local client submitted an operation.
    Client {
        /// Correlation id for the eventual [`ClientReply`].
        op: OpId,
        /// The operation.
        request: ClientOp,
    },
    /// A protocol message arrived from a peer.
    Message {
        /// Sending node.
        from: NodeId,
        /// The message.
        msg: Message,
    },
    /// A timer armed via [`DriverPort::set_timer`] fired.
    Timer(TimerToken),
    /// The failure detector declared a peer dead.
    PeerFailed(NodeId),
    /// The failure detector declared a previously-dead peer recovered.
    PeerRecovered(NodeId),
    /// This node itself was just restarted with empty state: begin directory
    /// recovery (snapshot requests + log catch-up + `DirResynced` announcement).
    /// Backends deliver this exactly once, as the first event of a restarted node.
    Restarted,
    /// This node's event loop is live (cold boot, or right after
    /// [`NodeEvent::Restarted`] on a restart): arm self-driven machinery — today
    /// the SWIM failure detector's probe timer, when one is configured. Backends
    /// deliver this once per process lifetime, before any other traffic.
    Started,
}

/// How a backend executes the effects the core requests. One implementation per
/// fabric (simulated network, in-process channels, TCP, ...).
pub trait DriverPort {
    /// Deliver `msg` to peer `to`.
    fn send(&mut self, to: NodeId, msg: Message);

    /// Complete (one step of) client operation `op`.
    fn reply(&mut self, op: OpId, reply: ClientReply);

    /// Arrange for [`NodeEvent::Timer`] with `token` to be delivered after `delay`.
    fn set_timer(&mut self, token: TimerToken, delay: Duration);

    /// Advisory: `object`'s local watermark advanced. Backends that stream data to
    /// workers before an object completes use this; others ignore it.
    fn local_progress(&mut self, _object: ObjectId, _watermark: u64, _total_size: u64) {}

    /// The node's failure machinery declared `node` dead (detector verdict,
    /// gossiped death, or digest): backends holding real per-peer transport state
    /// tear it down, exactly as on a supervisor-issued failure command. Default
    /// no-op for backends without per-peer connections (the simulator).
    fn peer_down(&mut self, _node: NodeId) {}
}

/// One node plus the event/effect pump every backend shares.
pub struct NodeRuntime {
    node: ObjectStoreNode,
    /// Scratch buffer reused across events to avoid re-allocating per message.
    effects: Vec<Effect>,
}

impl NodeRuntime {
    /// Wrap a freshly-created node.
    pub fn new(node: ObjectStoreNode) -> Self {
        NodeRuntime { node, effects: Vec::new() }
    }

    /// The underlying node (metrics, store inspection).
    pub fn node(&self) -> &ObjectStoreNode {
        &self.node
    }

    /// Feed one event into the node at time `now` and route every resulting effect
    /// through `port`.
    pub fn handle<P: DriverPort>(&mut self, now: Time, event: NodeEvent, port: &mut P) {
        self.effects.clear();
        match event {
            NodeEvent::Client { op, request } => {
                self.node.handle_client(now, op, request, &mut self.effects)
            }
            NodeEvent::Message { from, msg } => {
                self.node.handle_message(now, from, msg, &mut self.effects)
            }
            NodeEvent::Timer(token) => self.node.handle_timer(now, token, &mut self.effects),
            NodeEvent::PeerFailed(peer) => {
                self.node.handle_peer_failed(now, peer, &mut self.effects)
            }
            NodeEvent::PeerRecovered(peer) => {
                self.node.handle_peer_recovered(now, peer, &mut self.effects)
            }
            NodeEvent::Restarted => self.node.begin_recovery(now, &mut self.effects),
            NodeEvent::Started => self.node.handle_started(now, &mut self.effects),
        }
        for effect in self.effects.drain(..) {
            match effect {
                Effect::Send { to, msg } => port.send(to, msg),
                Effect::Reply { op, reply } => port.reply(op, reply),
                Effect::SetTimer { token, delay } => port.set_timer(token, delay),
                Effect::LocalProgress { object, watermark, total_size } => {
                    port.local_progress(object, watermark, total_size)
                }
                Effect::PeerDown { node } => port.peer_down(node),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A port that records everything, for asserting effect routing.
    #[derive(Default)]
    struct RecordingPort {
        sent: Vec<(NodeId, Message)>,
        replies: Vec<(OpId, ClientReply)>,
        timers: Vec<(TimerToken, Duration)>,
        progress: Vec<(ObjectId, u64, u64)>,
    }

    impl DriverPort for RecordingPort {
        fn send(&mut self, to: NodeId, msg: Message) {
            self.sent.push((to, msg));
        }
        fn reply(&mut self, op: OpId, reply: ClientReply) {
            self.replies.push((op, reply));
        }
        fn set_timer(&mut self, token: TimerToken, delay: Duration) {
            self.timers.push((token, delay));
        }
        fn local_progress(&mut self, object: ObjectId, watermark: u64, total_size: u64) {
            self.progress.push((object, watermark, total_size));
        }
    }

    fn runtime_of(n: usize, id: u32, opts: NodeOptions) -> NodeRuntime {
        let cluster = ClusterView::of_size(n);
        let cfg = HopliteConfig::small_for_tests();
        NodeRuntime::new(ObjectStoreNode::new(NodeId(id), cfg, cluster, opts))
    }

    #[test]
    fn client_put_routes_reply_and_directory_traffic() {
        let mut rt = runtime_of(2, 0, NodeOptions::default());
        let mut port = RecordingPort::default();
        let object = ObjectId::from_name("driver-put");
        rt.handle(
            Time::ZERO,
            NodeEvent::Client {
                op: OpId(1),
                request: ClientOp::Put { object, payload: Payload::zeros(5000) },
            },
            &mut port,
        );
        assert!(port
            .replies
            .iter()
            .any(|(op, r)| *op == OpId(1) && matches!(r, ClientReply::PutDone { .. })));
        // The directory registration went somewhere (possibly loopback, in which case
        // no external send is needed) and the local store holds the object.
        assert!(rt.node().has_complete(object));
    }

    #[test]
    fn two_runtimes_complete_a_get_through_their_ports() {
        let cluster = ClusterView::of_size(2);
        let cfg = HopliteConfig::small_for_tests();
        let mut runtimes: Vec<NodeRuntime> = (0..2u32)
            .map(|id| {
                NodeRuntime::new(ObjectStoreNode::new(
                    NodeId(id),
                    cfg.clone(),
                    cluster.clone(),
                    NodeOptions::default(),
                ))
            })
            .collect();
        let object = ObjectId::from_name("driver-get");
        let data: Vec<u8> = (0..4000u32).map(|i| (i % 250) as u8).collect();

        // A miniature backend: a queue of (from, to, msg) plus recorded replies.
        let mut port0 = RecordingPort::default();
        let mut port1 = RecordingPort::default();
        runtimes[0].handle(
            Time::ZERO,
            NodeEvent::Client {
                op: OpId(1),
                request: ClientOp::Put { object, payload: Payload::from_vec(data.clone()) },
            },
            &mut port0,
        );
        runtimes[1].handle(
            Time::ZERO,
            NodeEvent::Client { op: OpId(2), request: ClientOp::Get { object } },
            &mut port1,
        );
        // Shuttle messages until quiescent.
        let mut steps = 0;
        loop {
            let moved0: Vec<_> = port0.sent.drain(..).collect();
            let moved1: Vec<_> = port1.sent.drain(..).collect();
            if moved0.is_empty() && moved1.is_empty() {
                break;
            }
            for (to, msg) in moved0 {
                assert_eq!(to, NodeId(1));
                runtimes[1].handle(
                    Time::ZERO,
                    NodeEvent::Message { from: NodeId(0), msg },
                    &mut port1,
                );
            }
            for (to, msg) in moved1 {
                assert_eq!(to, NodeId(0));
                runtimes[0].handle(
                    Time::ZERO,
                    NodeEvent::Message { from: NodeId(1), msg },
                    &mut port0,
                );
            }
            steps += 1;
            assert!(steps < 1000, "ping-pong did not quiesce");
        }
        let got = port1
            .replies
            .iter()
            .find_map(|(op, r)| match (op, r) {
                (OpId(2), ClientReply::GetDone { payload, .. }) => Some(payload.clone()),
                _ => None,
            })
            .expect("get completed through the runtime");
        assert_eq!(got.as_bytes().unwrap().as_ref(), data.as_slice());
        // Local progress advisories were surfaced to the receiving port.
        assert!(!port1.progress.is_empty());
    }

    #[test]
    fn pipelined_put_arms_timers_through_the_port() {
        let mut rt = runtime_of(
            1,
            0,
            NodeOptions { synthetic_data: true, pipelined_put: true, incarnation: 0 },
        );
        let mut port = RecordingPort::default();
        let object = ObjectId::from_name("driver-pipelined");
        rt.handle(
            Time::ZERO,
            NodeEvent::Client {
                op: OpId(1),
                request: ClientOp::Put { object, payload: Payload::synthetic(10_000) },
            },
            &mut port,
        );
        assert_eq!(port.timers.len(), 1, "first copy step armed");
        // Firing the timer advances the copy and arms the next step.
        let (token, _) = port.timers[0];
        rt.handle(Time::ZERO, NodeEvent::Timer(token), &mut port);
        assert_eq!(port.timers.len(), 2);
    }
}
