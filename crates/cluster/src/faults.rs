//! Seeded fault-schedule generation for the scenario sweep harness.
//!
//! A [`FaultSchedule`] is a fully materialized, deterministic list of scheduled
//! degradations — kills + restarts, transient partitions, straggler windows, and link
//! faults — generated from a [`ScheduleKind`] and a seed. Generation is pure: the same
//! `(kind, n, protected, seed)` inputs always produce a byte-identical schedule
//! ([`FaultSchedule::canonical_bytes`]), which is what makes every sweep cell
//! reproducible from its JSON row alone.
//!
//! Kill victims are drawn from outside the `protected` set (collective roots and
//! reduce participants) and are never ring-adjacent, so with the default directory
//! replication factor of 2 (shard `s` on nodes `s, s+1 mod n`) no shard ever loses
//! both replicas — §3.5's failover machinery is exercised without making metadata
//! unrecoverable.

use hoplite_simnet::prelude::*;

use crate::sim_cluster::SimCluster;
use crate::topology::SweepRng;

/// The fault-schedule families swept by the harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// No faults: the baseline row every other schedule is compared against.
    None,
    /// Two correlated (near-simultaneous) node kills, restarted after detection.
    CorrelatedKills,
    /// A transient network partition isolating roughly a quarter of the cluster.
    Partition,
    /// One or two straggler nodes whose NICs degrade 4–10× for a window.
    Straggler,
    /// Seeded link-level message loss and reordering for the whole run.
    LossReorder,
}

impl ScheduleKind {
    /// Every schedule kind, in sweep order.
    pub fn all() -> [ScheduleKind; 5] {
        [
            ScheduleKind::None,
            ScheduleKind::CorrelatedKills,
            ScheduleKind::Partition,
            ScheduleKind::Straggler,
            ScheduleKind::LossReorder,
        ]
    }

    /// Short stable name used in sweep cell ids.
    pub fn name(&self) -> &'static str {
        match self {
            ScheduleKind::None => "none",
            ScheduleKind::CorrelatedKills => "kills",
            ScheduleKind::Partition => "partition",
            ScheduleKind::Straggler => "straggler",
            ScheduleKind::LossReorder => "loss",
        }
    }
}

/// A materialized fault schedule. All times are offsets in seconds relative to the
/// workload start passed to [`FaultSchedule::apply`].
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSchedule {
    /// The kind's stable name (also the id segment in sweep cells).
    pub name: String,
    /// Seed the schedule was generated from.
    pub seed: u64,
    /// `(offset_s, node)` kill events.
    pub kills: Vec<(f64, usize)>,
    /// `(offset_s, node)` restart events (one per kill).
    pub restarts: Vec<(f64, usize)>,
    /// `(from_s, until_s, side)` transient partitions.
    pub partitions: Vec<(f64, f64, Vec<bool>)>,
    /// `(from_s, until_s, node, factor)` straggler windows.
    pub slowdowns: Vec<(f64, f64, usize, f64)>,
    /// Link faults applied to the whole run (loss/reorder), when any.
    pub link_faults: Option<LinkFaults>,
}

/// Ring distance between two nodes on an `n`-ring.
fn ring_distance(a: usize, b: usize, n: usize) -> usize {
    let d = (a + n - b) % n;
    d.min(n - d)
}

/// Generate the schedule of `kind` for an `n`-node cluster, drawing every decision
/// from `seed`. `protected` nodes are never killed; `detection_s` is the cluster's
/// failure-detection delay (restarts are scheduled after kill + detection + margin).
pub fn generate(
    kind: ScheduleKind,
    n: usize,
    protected: &[usize],
    detection_s: f64,
    seed: u64,
) -> FaultSchedule {
    let mut rng = SweepRng::new(seed ^ 0xFA17_0000 ^ ((n as u64) << 32));
    let mut schedule = FaultSchedule {
        name: kind.name().to_string(),
        seed,
        kills: Vec::new(),
        restarts: Vec::new(),
        partitions: Vec::new(),
        slowdowns: Vec::new(),
        link_faults: None,
    };
    match kind {
        ScheduleKind::None => {}
        ScheduleKind::CorrelatedKills => {
            let killable: Vec<usize> = (0..n).filter(|i| !protected.contains(i)).collect();
            if killable.is_empty() {
                // Nothing safe to kill: degrade to a straggler so the cell still
                // exercises a fault.
                schedule.slowdowns.push((0.05, 1.55, n.saturating_sub(1), 6.0));
                return schedule;
            }
            let first = killable[rng.below(killable.len() as u64) as usize];
            // A correlated second kill, at ring distance >= 2 from the first so the
            // two victims never hold both replicas of any directory shard.
            let second = killable
                .iter()
                .copied()
                .filter(|&b| b != first && ring_distance(first, b, n) >= 2)
                .min_by_key(|&b| ring_distance(first, b, n));
            let restart_at = 0.10 + detection_s + 0.5;
            schedule.kills.push((0.05, first));
            schedule.restarts.push((restart_at, first));
            if let Some(b) = second {
                schedule.kills.push((0.10, b));
                schedule.restarts.push((restart_at + 0.1, b));
            }
        }
        ScheduleKind::Partition => {
            // Isolate a contiguous quarter (at least one node) for 0.3–0.6 s, starting
            // exactly at the workload start so the cut lands on in-flight transfers.
            let m = (n / 4).max(1);
            let start = rng.below(n as u64) as usize;
            let mut side = vec![false; n];
            for k in 0..m {
                side[(start + k) % n] = true;
            }
            let until = 0.3 + rng.unit() * 0.3;
            schedule.partitions.push((0.0, until, side));
        }
        ScheduleKind::Straggler => {
            // Degrade from the workload start so the slow NIC sits on the collective's
            // critical path, not in its wake.
            let count = 1 + rng.below(2) as usize;
            for _ in 0..count {
                let node = rng.below(n as u64) as usize;
                let factor = 4.0 + rng.below(7) as f64; // 4–10×
                let until = 1.0 + rng.unit();
                schedule.slowdowns.push((0.0, until, node, factor));
            }
        }
        ScheduleKind::LossReorder => {
            schedule.link_faults = Some(LinkFaults {
                loss: 0.005 + rng.unit() * 0.015,  // 0.5–2 % first-tx loss
                reorder: 0.05 + rng.unit() * 0.05, // 5–10 % jitter-delayed
                jitter: SimDuration::from_micros(200 + rng.below(800)),
                retransmit: SimDuration::from_millis(200),
                seed,
            });
        }
    }
    schedule
}

impl FaultSchedule {
    /// Nodes this schedule kills (and later restarts).
    pub fn killed_nodes(&self) -> Vec<usize> {
        self.kills.iter().map(|&(_, node)| node).collect()
    }

    /// Offset at which `node` restarts, if this schedule kills it.
    pub fn restart_offset(&self, node: usize) -> Option<f64> {
        self.restarts.iter().find(|&&(_, k)| k == node).map(|&(at, _)| at)
    }

    /// Schedule every event of this schedule onto `cluster`, offset by `start_s`.
    /// Link faults are not applied here — they must be merged into the
    /// [`hoplite_simnet::prelude::NetworkConfig`] before the cluster is built.
    pub fn apply(&self, cluster: &mut SimCluster, start_s: f64) {
        let t = |off: f64| SimTime::from_secs_f64(start_s + off);
        for &(at, node) in &self.kills {
            cluster.fail_node_at(t(at), node);
        }
        for &(at, node) in &self.restarts {
            cluster.restart_node_at(t(at), node);
        }
        for (from, until, side) in &self.partitions {
            cluster.partition_between(t(*from), t(*until), side.clone());
        }
        for &(from, until, node, factor) in &self.slowdowns {
            cluster.slow_node_between(node, t(from), t(until), factor);
        }
    }

    /// A canonical byte serialization of the whole schedule. Two schedules are
    /// byte-identical iff every field matches exactly — the replay property the
    /// sweep's reproducibility rests on.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(self.name.as_bytes());
        out.push(0);
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.kills.len() as u64).to_le_bytes());
        for &(at, node) in &self.kills {
            out.extend_from_slice(&at.to_le_bytes());
            out.extend_from_slice(&(node as u64).to_le_bytes());
        }
        out.extend_from_slice(&(self.restarts.len() as u64).to_le_bytes());
        for &(at, node) in &self.restarts {
            out.extend_from_slice(&at.to_le_bytes());
            out.extend_from_slice(&(node as u64).to_le_bytes());
        }
        out.extend_from_slice(&(self.partitions.len() as u64).to_le_bytes());
        for (from, until, side) in &self.partitions {
            out.extend_from_slice(&from.to_le_bytes());
            out.extend_from_slice(&until.to_le_bytes());
            out.extend_from_slice(&(side.len() as u64).to_le_bytes());
            out.extend(side.iter().map(|&b| b as u8));
        }
        out.extend_from_slice(&(self.slowdowns.len() as u64).to_le_bytes());
        for &(from, until, node, factor) in &self.slowdowns {
            out.extend_from_slice(&from.to_le_bytes());
            out.extend_from_slice(&until.to_le_bytes());
            out.extend_from_slice(&(node as u64).to_le_bytes());
            out.extend_from_slice(&factor.to_le_bytes());
        }
        match &self.link_faults {
            None => out.push(0),
            Some(f) => {
                out.push(1);
                out.extend_from_slice(&f.loss.to_le_bytes());
                out.extend_from_slice(&f.reorder.to_le_bytes());
                out.extend_from_slice(&f.jitter.as_nanos().to_le_bytes());
                out.extend_from_slice(&f.retransmit.as_nanos().to_le_bytes());
                out.extend_from_slice(&f.seed.to_le_bytes());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_byte_identically() {
        for kind in ScheduleKind::all() {
            let a = generate(kind, 16, &[0, 2, 4], 0.74, 11);
            let b = generate(kind, 16, &[0, 2, 4], 0.74, 11);
            assert_eq!(a.canonical_bytes(), b.canonical_bytes(), "{kind:?}");
        }
    }

    #[test]
    fn kills_avoid_protected_and_ring_adjacency() {
        for seed in 0..32 {
            let protected = [0usize, 3, 7];
            let s = generate(ScheduleKind::CorrelatedKills, 16, &protected, 0.74, seed);
            let killed = s.killed_nodes();
            for &k in &killed {
                assert!(!protected.contains(&k), "seed {seed}: killed protected {k}");
            }
            if killed.len() == 2 {
                assert!(
                    ring_distance(killed[0], killed[1], 16) >= 2,
                    "seed {seed}: ring-adjacent kills {killed:?}"
                );
            }
            assert_eq!(s.kills.len(), s.restarts.len());
        }
    }

    #[test]
    fn all_protected_degrades_to_straggler() {
        let all: Vec<usize> = (0..4).collect();
        let s = generate(ScheduleKind::CorrelatedKills, 4, &all, 0.74, 5);
        assert!(s.kills.is_empty());
        assert_eq!(s.slowdowns.len(), 1);
    }

    #[test]
    fn loss_schedule_parameters_stay_in_range() {
        for seed in 0..16 {
            let s = generate(ScheduleKind::LossReorder, 32, &[], 0.74, seed);
            let f = s.link_faults.expect("loss schedule sets link faults");
            assert!(f.loss >= 0.005 && f.loss < 0.02 + 1e-9);
            assert!(f.reorder >= 0.05 && f.reorder < 0.10 + 1e-9);
            assert_eq!(f.seed, seed);
        }
    }
}
