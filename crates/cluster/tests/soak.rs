//! Seeded fault-injection soak lane.
//!
//! Every test here sweeps the failure scenarios across a bank of fixed seeds, each
//! seed deriving a different cluster size, object size, and fault timing from a tiny
//! deterministic LCG. The simulator itself is deterministic, so a failing seed
//! reproduces exactly: the failure message names it, and re-running
//! `cargo test -p hoplite-cluster --release soak_ -- --ignored` locally replays the
//! identical schedule.
//!
//! The tests are `#[ignore]`d so the regular `cargo test` tier stays fast; CI runs
//! them as the dedicated `scenario-soak` step.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use hoplite_cluster::scenarios::{
    chain_kill_drill, directory_failover_broadcast, mid_chain_resync_under_load,
    partition_suspicion_refuted, rolling_restart_collectives, ChainKill, ScenarioEnv,
};
use hoplite_core::prelude::NodeId;

const MB: u64 = 1024 * 1024;
const SEEDS: u64 = 32;
/// The chain kill drills are light (small cluster, small objects), so they sweep a
/// wider seed bank.
const CHAIN_SEEDS: u64 = 64;

/// Minimal deterministic parameter generator (64-bit LCG, MMIX constants).
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// Wall-clock budget per seed. Each scenario runs in well under a second in release,
/// so a seed hitting this ceiling means a livelock (event loop or protocol), not a
/// slow machine — the watchdog turns such hangs into a named failure instead of a
/// 6-hour CI timeout with no culprit.
const SEED_WALL_CLOCK_BUDGET: Duration = Duration::from_secs(120);

fn with_seed(name: &'static str, seed: u64, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let worker = thread::spawn(move || {
        let _ = tx.send(catch_unwind(AssertUnwindSafe(f)));
    });
    match rx.recv_timeout(SEED_WALL_CLOCK_BUDGET) {
        Ok(Ok(())) => {
            let _ = worker.join();
        }
        Ok(Err(e)) => {
            let _ = worker.join();
            eprintln!(
                "SOAK FAILURE: scenario `{name}` failed at seed {seed} — rerun this seed to \
                 reproduce"
            );
            resume_unwind(e);
        }
        Err(_) => {
            // The worker is stuck; leak it (the test harness exits the process) and
            // fail loudly with the seed that hung.
            eprintln!(
                "SOAK TIMEOUT: scenario `{name}` exceeded the {}s wall-clock budget at seed \
                 {seed} — likely livelock; rerun this seed to reproduce",
                SEED_WALL_CLOCK_BUDGET.as_secs()
            );
            panic!(
                "soak watchdog: `{name}` seed {seed} exceeded {}s",
                SEED_WALL_CLOCK_BUDGET.as_secs()
            );
        }
    }
}

/// Primary-kill failover under varying cluster sizes, object sizes, and kill times:
/// the broadcast must complete, the promoted backup must hold every location record,
/// and the late receiver's query must have been re-driven.
#[test]
#[ignore = "soak lane: run via the CI scenario-soak step or with -- --ignored"]
fn soak_directory_failover_seeds() {
    for seed in 0..SEEDS {
        with_seed("directory_failover_broadcast", seed, move || {
            let mut lcg = Lcg::new(seed);
            let n = lcg.pick(4, 9) as usize;
            let size = lcg.pick(2, 64) * MB;
            let fail_at = 0.01 + lcg.pick(0, 12) as f64 * 0.01;
            let env = ScenarioEnv::paper_testbed();
            let r = directory_failover_broadcast(&env, n, size, fail_at);
            assert_eq!(
                r.completed_receivers,
                n - 2,
                "seed {seed}: every receiver completed (n={n} size={size} fail_at={fail_at})"
            );
            let mut holders = r.locations_at_new_primary.clone();
            holders.sort_by_key(|h| h.0);
            holders.dedup();
            let expected: Vec<NodeId> = (0..(n - 1) as u32).map(NodeId).collect();
            assert_eq!(holders, expected, "seed {seed}: location records survived the kill");
            assert!(r.directory_failovers >= 1, "seed {seed}: late query re-driven");
        });
    }
    eprintln!("soak_directory_failover_seeds: {SEEDS} seeds green");
}

/// Rolling restart of the whole cluster under live traffic, across seeds: zero lost
/// location records, every wave and re-fetch completes, and the restarted nodes are
/// re-admitted and lead shards again.
#[test]
#[ignore = "soak lane: run via the CI scenario-soak step or with -- --ignored"]
fn soak_rolling_restart_seeds() {
    for seed in 0..SEEDS {
        with_seed("rolling_restart_collectives", seed, move || {
            let mut lcg = Lcg::new(seed ^ 0xDEADBEEF);
            let n = lcg.pick(4, 8) as usize;
            let size = lcg.pick(2, 16) * MB;
            let kill_gap = 2.6 + lcg.pick(0, 7) as f64 * 0.2;
            let env = ScenarioEnv::paper_testbed();
            let r = rolling_restart_collectives(&env, n, size, kill_gap);
            assert_eq!(
                r.waves_completed, r.waves_expected,
                "seed {seed}: live-traffic waves completed (n={n} size={size} gap={kill_gap})"
            );
            assert_eq!(r.refetches_completed, n, "seed {seed}: restarted nodes re-fetched W");
            assert!(r.reduce_ok, "seed {seed}: mid-sequence reduce completed");
            let expected: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
            assert_eq!(r.holders, expected, "seed {seed}: zero lost location records");
            assert!(
                r.primaries_restored >= n - 1,
                "seed {seed}: original owners lead again ({} of {n})",
                r.primaries_restored
            );
            assert!(r.resyncs >= n as u64, "seed {seed}: snapshot resync ran per restart");
        });
    }
    eprintln!("soak_rolling_restart_seeds: {SEEDS} seeds green");
}

/// Mid-chain resync drill across seeds: kill and restart the middle chain member
/// under a continuous registration stream, with chunked catch-up forced. Every seed
/// must converge — no lost records, no blocked traffic, tail and middle complete —
/// with the chunk budget respected throughout.
#[test]
#[ignore = "soak lane: run via the CI scenario-soak step or with -- --ignored"]
fn soak_mid_chain_resync_seeds() {
    for seed in 0..SEEDS {
        with_seed("mid_chain_resync_under_load", seed, move || {
            let mut lcg = Lcg::new(seed ^ 0x5EED_CAFE);
            let n = lcg.pick(5, 9) as usize;
            let fail_at = 0.3 + lcg.pick(0, 20) as f64 * 0.05;
            let env = ScenarioEnv::paper_testbed();
            let r = mid_chain_resync_under_load(&env, n, fail_at, seed);
            assert_eq!(
                r.puts_completed, r.expected_records,
                "seed {seed}: live traffic never blocked (n={n} fail_at={fail_at})"
            );
            assert_eq!(r.records_at_primary, r.expected_records, "seed {seed}: primary complete");
            assert_eq!(r.records_at_tail, r.expected_records, "seed {seed}: tail converged");
            assert_eq!(r.records_at_middle, r.expected_records, "seed {seed}: middle caught up");
            assert!(r.chain_ack_depth > 0, "seed {seed}: chain acks relayed");
            assert!(r.resyncs >= 1, "seed {seed}: the restarted middle resynced");
            assert!(r.snapshot_chunks_sent >= 2, "seed {seed}: catch-up was chunked");
            assert!(
                r.snapshot_bytes <= r.snapshot_chunks_sent * r.chunk_budget,
                "seed {seed}: chunk bound held ({} bytes / {} chunks / budget {})",
                r.snapshot_bytes,
                r.snapshot_chunks_sent,
                r.chunk_budget
            );
        });
    }
    eprintln!("soak_mid_chain_resync_seeds: {SEEDS} seeds green");
}

/// SWIM-detector false-positive sweep: at every seed, a transient partition drives
/// suspicion and a 4–10× straggler carries bulk traffic while being probed. The
/// detector must end every seed with zero deaths — the suspect's incarnation-bump
/// refutation lands inside the suspicion window, and slow is never mistaken for
/// dead — while traffic on both sides of the cut completes.
#[test]
#[ignore = "soak lane: run via the CI scenario-soak step or with -- --ignored"]
fn soak_detector_false_positive_seeds() {
    for seed in 0..SEEDS {
        with_seed("partition_suspicion_refuted", seed, move || {
            let mut lcg = Lcg::new(seed ^ 0x5A11_D0C7);
            let n = lcg.pick(4, 9) as usize;
            let env = ScenarioEnv::paper_testbed();
            let r = partition_suspicion_refuted(&env, n, seed);
            assert!(r.probes_sent > 0, "seed {seed}: detector probing (n={n})");
            assert!(r.suspicions_raised >= 1, "seed {seed}: the cut drove suspicion (n={n})");
            assert!(r.refutations_sent >= 1, "seed {seed}: refutation sent (n={n})");
            assert_eq!(r.deaths_declared, 0, "seed {seed}: zero false-positive deaths (n={n})");
            assert_eq!(r.deaths_learned, 0, "seed {seed}: no death gossip (n={n})");
            assert_eq!(
                r.gets_completed, r.gets_expected,
                "seed {seed}: traffic completed on both sides of the cut (n={n})"
            );
        });
    }
    eprintln!("soak_detector_false_positive_seeds: {SEEDS} seeds green");
}

/// Chain-replication kill drills (r = 3): at every seed, kill the head, the middle,
/// and the tail of the replication chain mid-stream under varying cluster sizes,
/// registration counts, and kill times. Whatever dies, the survivors must re-splice
/// and converge with zero lost location records.
#[test]
#[ignore = "soak lane: run via the CI scenario-soak step or with -- --ignored"]
fn soak_chain_kill_drill_seeds() {
    for seed in 0..CHAIN_SEEDS {
        with_seed("chain_kill_drill", seed, move || {
            let mut lcg = Lcg::new(seed ^ 0xC0FFEE);
            let n = lcg.pick(5, 9) as usize;
            let objects = lcg.pick(12, 32) as usize;
            let fail_at = 0.02 + lcg.pick(0, 20) as f64 * 0.01;
            let env = ScenarioEnv::paper_testbed();
            for kill in [ChainKill::Head, ChainKill::Middle, ChainKill::Tail] {
                let r = chain_kill_drill(&env, n, kill, objects, fail_at);
                assert_eq!(
                    r.surviving_records, r.expected_records,
                    "seed {seed}: zero lost records with the {kill:?} killed \
                     (n={n} objects={objects} fail_at={fail_at})"
                );
            }
        });
    }
    eprintln!("soak_chain_kill_drill_seeds: {CHAIN_SEEDS} seeds x 3 positions green");
}
