//! Property tests for the sweep harness's topology and fault-schedule generators:
//! structural invariants over seeded families rather than single examples.

use hoplite_cluster::faults::{self, ScheduleKind};
use hoplite_cluster::topology::{self, SweepRng};

/// Ring distance on an `n`-ring (mirrors the generator's adjacency rule).
fn ring_distance(a: usize, b: usize, n: usize) -> usize {
    let d = (a + n - b) % n;
    d.min(n - d)
}

#[test]
fn fat_trees_are_connected_across_the_family() {
    for &(racks, per_rack, over) in
        &[(2usize, 2usize, 1.0f64), (4, 8, 2.0), (4, 8, 4.0), (8, 8, 4.0), (16, 16, 8.0)]
    {
        let t = topology::fat_tree(racks, per_rack, over);
        assert_eq!(t.n, racks * per_rack);
        assert!(t.graph.is_connected(), "fat_tree({racks},{per_rack},{over}) disconnected");
    }
}

#[test]
fn fat_tree_degree_bounds_hold() {
    for &(racks, per_rack, over) in &[(4usize, 8usize, 4.0f64), (8, 4, 2.0), (16, 16, 8.0)] {
        let t = topology::fat_tree(racks, per_rack, over);
        let n = t.n;
        let spines = t.graph.switches - racks;
        // Hosts hang off exactly one ToR.
        for h in 0..n {
            assert_eq!(t.graph.degree(h), 1, "host {h}");
        }
        // Every ToR: per_rack hosts below, every spine above.
        for r in 0..racks {
            assert_eq!(t.graph.degree(n + r), per_rack + spines, "tor {r}");
        }
        // Every spine: one link per ToR.
        for s in 0..spines {
            assert_eq!(t.graph.degree(n + racks + s), racks, "spine {s}");
        }
    }
}

#[test]
fn fat_tree_oversubscription_matches_request() {
    for &over in &[1.0f64, 2.0, 4.0, 8.0] {
        let t = topology::fat_tree(4, 8, over);
        assert!(
            (t.oversubscription() - over).abs() < 1e-9,
            "requested {over}, realized {}",
            t.oversubscription()
        );
        // The uplink never exceeds the rack's aggregate host bandwidth.
        let up = t.net.uplinks.as_ref().unwrap();
        assert!(up.bandwidth <= 8.0 * t.net.bandwidth + 1e-6);
    }
}

#[test]
fn hetero_and_wan_generators_replay_identically_per_seed() {
    for seed in 0..16u64 {
        assert_eq!(topology::hetero_nics(16, seed), topology::hetero_nics(16, seed));
        assert_eq!(topology::wan_tiers(3, 8, seed), topology::wan_tiers(3, 8, seed));
    }
    // And distinct seeds actually explore the space somewhere in the band.
    assert!((0..16u64).any(|s| topology::hetero_nics(16, s) != topology::hetero_nics(16, s + 16)));
}

#[test]
fn wan_matrices_are_square_symmetric_and_tiered() {
    for seed in 0..8u64 {
        let t = topology::wan_tiers(4, 4, seed);
        let tiers = t.net.latency_tiers.as_ref().unwrap();
        assert_eq!(tiers.latency.len(), 4);
        for (a, row) in tiers.latency.iter().enumerate() {
            assert_eq!(row.len(), 4);
            for (b, &l) in row.iter().enumerate() {
                assert_eq!(l, tiers.latency[b][a], "asymmetric at ({a},{b})");
                if a == b {
                    assert!(l < tiers.latency[a][(a + 1) % 4], "intra not cheaper at {a}");
                }
            }
        }
        assert!(t.graph.is_connected());
    }
}

#[test]
fn fault_schedules_replay_byte_identically_per_seed() {
    let protected = [0usize, 2, 4, 6];
    for kind in ScheduleKind::all() {
        for seed in 0..32u64 {
            let a = faults::generate(kind, 16, &protected, 0.74, seed);
            let b = faults::generate(kind, 16, &protected, 0.74, seed);
            assert_eq!(
                a.canonical_bytes(),
                b.canonical_bytes(),
                "{kind:?} seed {seed} not byte-identical"
            );
        }
        // Seeds must matter for every randomized kind.
        if kind != ScheduleKind::None {
            assert!(
                (0..32u64).any(|s| {
                    faults::generate(kind, 16, &protected, 0.74, s).canonical_bytes()
                        != faults::generate(kind, 16, &protected, 0.74, s + 32).canonical_bytes()
                }),
                "{kind:?} ignores its seed"
            );
        }
    }
}

#[test]
fn kill_schedules_respect_protection_and_replication_safety() {
    for n in [8usize, 16, 64] {
        let protected: Vec<usize> = (0..n).step_by(2).collect();
        for seed in 0..64u64 {
            let s = faults::generate(ScheduleKind::CorrelatedKills, n, &protected, 0.74, seed);
            let killed = s.killed_nodes();
            for &k in &killed {
                assert!(!protected.contains(&k), "n={n} seed={seed}: protected {k} killed");
                assert!(
                    s.restart_offset(k).is_some(),
                    "n={n} seed={seed}: {k} killed without restart"
                );
            }
            // r=2 directory replication: the two victims may never be ring-adjacent,
            // or some shard would lose both replicas at once.
            if killed.len() == 2 {
                assert!(
                    ring_distance(killed[0], killed[1], n) >= 2,
                    "n={n} seed={seed}: adjacent kills {killed:?}"
                );
            }
        }
    }
}

#[test]
fn sweep_rng_streams_are_stable() {
    // Pin the first few draws so an accidental algorithm change (which would silently
    // re-randomize every committed baseline) fails loudly.
    let mut rng = SweepRng::new(0);
    let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    assert_eq!(
        first,
        vec![0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F, 0xF88BB8A8724C81EC]
    );
}
