//! Reduce primitives: operators, the degree model, and the dynamic reduce tree.

pub mod degree;
pub mod op;
pub mod tree;

pub use degree::DegreeModel;
pub use op::{DType, ReduceOp, ReduceSpec};
pub use tree::{PlanDelta, ReduceInput, ReduceTreePlan, SlotShape, SlotView, TreeShape};
