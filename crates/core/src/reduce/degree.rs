//! Reduce-tree degree selection (§3.4.2, Eq. 1, and Appendix B of the paper).
//!
//! Reducing `n` objects of size `S` over links with one-way latency `L` and per-node
//! bandwidth `B` using a `d`-ary tree costs approximately
//!
//! ```text
//! T(1) = n·L + S/B                  (a chain; pipelining pays the payload only once)
//! T(d) = L·log_d(n) + d·S/B         (1 < d < n)
//! T(n) = L + n·S/B                  (a star rooted at the receiver)
//! ```
//!
//! The paper restricts the candidate set to `{1, 2, n}` because those already cover the
//! optimum across the sizes it evaluates (§4); the candidate set is configurable here so
//! the Appendix-B ablation can sweep other degrees too.

use crate::time::Duration;

/// A candidate degree: a concrete `d`, where `0` denotes `n` (star).
pub type DegreeCandidate = usize;

/// Network/topology parameters fed to the cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeModel {
    /// One-way message latency between two nodes.
    pub latency: Duration,
    /// Per-node NIC bandwidth in bytes/second (uplink == downlink, per the paper's
    /// uniform-network assumption, §6).
    pub bandwidth: f64,
}

impl DegreeModel {
    /// Model with the paper's testbed characteristics (10 Gbps, ~170 µs RPC latency).
    pub fn paper_testbed() -> Self {
        DegreeModel { latency: Duration::from_micros(170), bandwidth: 1.25e9 }
    }

    /// Predicted completion time of reducing `n` objects of `object_size` bytes with a
    /// `d`-ary tree (`d == 0` or `d >= n` means a star).
    pub fn predict(&self, degree: DegreeCandidate, n: usize, object_size: u64) -> Duration {
        let n = n.max(1);
        let l = self.latency.as_secs_f64();
        let transfer = object_size as f64 / self.bandwidth;
        let d = if degree == 0 || degree >= n { n } else { degree };
        let secs = if n == 1 {
            // A single object: the "reduce" is a no-op plus one transfer to the caller.
            l + transfer
        } else if d == 1 {
            n as f64 * l + transfer
        } else if d >= n {
            l + n as f64 * transfer
        } else {
            let depth = (n as f64).ln() / (d as f64).ln();
            l * depth + d as f64 * transfer
        };
        Duration::from_secs_f64(secs)
    }

    /// Choose the candidate with the lowest predicted completion time. Candidates use
    /// `0` to denote `n`; the returned value is the *resolved* degree (so `n`, not 0).
    /// Ties favour the earlier candidate, matching the paper's preference order
    /// `{1, 2, n}`.
    pub fn choose(&self, candidates: &[DegreeCandidate], n: usize, object_size: u64) -> usize {
        let n = n.max(1);
        let mut best: Option<(usize, Duration)> = None;
        for &c in candidates {
            let resolved = if c == 0 || c >= n { n } else { c };
            let t = self.predict(c, n, object_size);
            match best {
                Some((_, bt)) if t >= bt => {}
                _ => best = Some((resolved, t)),
            }
        }
        best.map(|(d, _)| d).unwrap_or(n).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    fn model() -> DegreeModel {
        DegreeModel::paper_testbed()
    }

    #[test]
    fn small_objects_prefer_star() {
        // 4 KB over 16 nodes: latency dominates, so the star (d = n) wins (Appendix B).
        let d = model().choose(&[1, 2, 0], 16, 4 * KB);
        assert_eq!(d, 16);
    }

    #[test]
    fn large_objects_prefer_chain() {
        // 32 MB over 16 nodes: bandwidth dominates, so the chain (d = 1) wins.
        let d = model().choose(&[1, 2, 0], 16, 32 * MB);
        assert_eq!(d, 1);
    }

    #[test]
    fn medium_objects_can_prefer_binary_tree() {
        // Around a few MB with many participants the binary tree can win: latency term
        // of the chain (n·L) exceeds the extra bandwidth term of d = 2.
        let m = DegreeModel { latency: Duration::from_micros(500), bandwidth: 1.25e9 };
        let d = m.choose(&[1, 2, 0], 64, 4 * MB);
        assert_eq!(d, 2);
    }

    #[test]
    fn prediction_matches_formula() {
        let m = DegreeModel { latency: Duration::from_millis(1), bandwidth: 1e9 };
        let n = 8;
        let s = 100 * MB;
        let chain = m.predict(1, n, s).as_secs_f64();
        assert!((chain - (8.0 * 0.001 + s as f64 / 1e9)).abs() < 1e-6);
        let star = m.predict(0, n, s).as_secs_f64();
        assert!((star - (0.001 + 8.0 * s as f64 / 1e9)).abs() < 1e-6);
        let binary = m.predict(2, n, s).as_secs_f64();
        assert!((binary - (0.001 * 3.0 + 2.0 * s as f64 / 1e9)).abs() < 1e-6);
    }

    #[test]
    fn single_object_degenerate_case() {
        let d = model().choose(&[1, 2, 0], 1, MB);
        assert_eq!(d, 1);
        assert!(model().predict(2, 1, MB) > Duration::ZERO);
    }

    #[test]
    fn choose_never_returns_zero() {
        for n in 1..20 {
            for size in [1u64, KB, MB, 64 * MB] {
                let d = model().choose(&[1, 2, 0], n, size);
                assert!(d >= 1 && d <= n.max(1));
            }
        }
    }
}
