//! Reduce operations (the paper's `ReduceOp`: sum, min, max) over typed element arrays.
//!
//! The `Reduce` API requires the operation to be commutative and associative (§3.1),
//! which is what allows Hoplite to reduce objects in arrival order rather than rank
//! order. Real payloads are combined element-wise; synthetic payloads (simulator mode)
//! are combined by length only.
//!
//! The hot path is [`ReduceSpec::combine_into`]: in-place accumulation of one incoming
//! block into a reusable accumulator, written so the per-element work is a pair of
//! native-endian loads, one arithmetic op, and one store (`from_le_bytes` /
//! `to_le_bytes` over exact-width chunks compile to plain unaligned loads and stores on
//! little-endian targets, and the loop autovectorizes). Incoming blocks may be
//! segmented ([`Payload::Segments`]); segments whose boundaries fall mid-element are
//! handled by a small carry buffer on a safe fallback path.

use crate::buffer::Payload;
use crate::error::{HopliteError, Result};
use crate::object::ObjectId;

/// Element type of the arrays being reduced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit IEEE-754 floats (the paper's microbenchmarks use arrays of these).
    F32,
    /// 64-bit IEEE-754 floats.
    F64,
    /// 32-bit signed integers.
    I32,
    /// 64-bit signed integers.
    I64,
}

impl DType {
    /// Size of one element in bytes.
    pub fn element_size(self) -> u64 {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F64 | DType::I64 => 8,
        }
    }
}

/// Commutative, associative reduction operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Element-wise addition (`ray.ADD` in the paper's pseudo-code).
    Sum,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
}

/// A fully-specified reduction: operator plus element type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ReduceSpec {
    /// Operator.
    pub op: ReduceOp,
    /// Element type of every input object.
    pub dtype: DType,
}

impl ReduceSpec {
    /// Element-wise sum of `f32` arrays — the common case for gradient aggregation.
    pub fn sum_f32() -> Self {
        ReduceSpec { op: ReduceOp::Sum, dtype: DType::F32 }
    }

    /// Validate that `len` can hold whole elements of this spec's dtype.
    fn check_multiple(&self, target: ObjectId, len: u64) -> Result<()> {
        if !len.is_multiple_of(self.dtype.element_size()) {
            return Err(HopliteError::ReduceShapeMismatch {
                target,
                detail: format!(
                    "length {len} not a multiple of element size {}",
                    self.dtype.element_size()
                ),
            });
        }
        Ok(())
    }

    /// Combine `block` element-wise **into** `acc` (little-endian bytes), in place:
    /// `acc[i] = op(acc[i], block[i])` with no allocation and no output copy. Lengths
    /// must match exactly and be a whole number of elements — a trailing partial
    /// element is an error, never a silent truncation. `block` may be contiguous or
    /// segmented; an element split across two segments goes through the carry-buffer
    /// fallback. Synthetic blocks are rejected (the caller short-circuits those).
    pub fn combine_into(&self, target: ObjectId, acc: &mut [u8], block: &Payload) -> Result<()> {
        if block.is_synthetic() {
            return Err(HopliteError::ReduceShapeMismatch {
                target,
                detail: "cannot accumulate a synthetic block in place".to_string(),
            });
        }
        if acc.len() as u64 != block.len() {
            return Err(HopliteError::ReduceShapeMismatch {
                target,
                detail: format!("length mismatch: {} vs {}", acc.len(), block.len()),
            });
        }
        self.check_multiple(target, acc.len() as u64)?;
        match self.dtype {
            DType::F32 => combine_into_typed::<f32, 4>(acc, block, self.op),
            DType::F64 => combine_into_typed::<f64, 8>(acc, block, self.op),
            DType::I32 => combine_into_typed::<i32, 4>(acc, block, self.op),
            DType::I64 => combine_into_typed::<i64, 8>(acc, block, self.op),
        }
        Ok(())
    }

    /// Combine two payloads element-wise into a fresh payload. Inputs must have equal
    /// length; synthetic payloads short-circuit to a synthetic result of the same
    /// length. This is the convenience form — the streaming engines use
    /// [`ReduceSpec::combine_into`] so only the first input of an accumulation chain
    /// is ever copied.
    pub fn combine(&self, target: ObjectId, a: &Payload, b: &Payload) -> Result<Payload> {
        if a.len() != b.len() {
            return Err(HopliteError::ReduceShapeMismatch {
                target,
                detail: format!("length mismatch: {} vs {}", a.len(), b.len()),
            });
        }
        if a.is_synthetic() || b.is_synthetic() {
            // Simulator mode: no arithmetic, only sizes.
            return Ok(Payload::synthetic(a.len()));
        }
        self.check_multiple(target, a.len())?;
        let mut acc = a.to_owned_vec().expect("real payload");
        self.combine_into(target, &mut acc, b)?;
        Ok(Payload::from_vec(acc))
    }
}

/// Element trait implemented for the supported numeric types.
trait Element: Copy {
    fn from_le(bytes: &[u8]) -> Self;
    fn write_le(self, out: &mut [u8]);
    fn apply(self, other: Self, op: ReduceOp) -> Self;
}

macro_rules! impl_element {
    ($t:ty, $sum:expr) => {
        impl Element for $t {
            #[inline(always)]
            fn from_le(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("element width"))
            }
            #[inline(always)]
            fn write_le(self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }
            #[inline(always)]
            fn apply(self, other: Self, op: ReduceOp) -> Self {
                // `self` is the accumulated element, `other` the incoming one. Min/Max
                // keep the accumulator only when it compares *strictly* less/greater,
                // matching the historical combine: on ties — and on incomparable
                // floats — the incoming element wins, so an arriving NaN propagates
                // into the result instead of being silently masked.
                match op {
                    // Integer sums wrap (two's complement): combine runs on bytes
                    // straight off the wire, so overflow must never be a
                    // data-dependent debug panic.
                    ReduceOp::Sum => ($sum)(self, other),
                    ReduceOp::Min => {
                        if self < other {
                            self
                        } else {
                            other
                        }
                    }
                    ReduceOp::Max => {
                        if self > other {
                            self
                        } else {
                            other
                        }
                    }
                }
            }
        }
    };
}

impl_element!(f32, |a: f32, b: f32| a + b);
impl_element!(f64, |a: f64, b: f64| a + b);
impl_element!(i32, i32::wrapping_add);
impl_element!(i64, i64::wrapping_add);

/// The aligned fast path: both sides are whole elements. On little-endian targets the
/// `from_le_bytes`/`to_le_bytes` pairs are plain (unaligned-tolerant) loads and stores,
/// so the loop reduces to load-op-store per element and autovectorizes.
fn combine_slices<T: Element, const W: usize>(acc: &mut [u8], block: &[u8], op: ReduceOp) {
    debug_assert_eq!(acc.len(), block.len());
    debug_assert!(acc.len().is_multiple_of(W));
    for (ca, cb) in acc.chunks_exact_mut(W).zip(block.chunks_exact(W)) {
        T::from_le(ca).apply(T::from_le(cb), op).write_le(ca);
    }
}

/// Dispatch on the block's shape: contiguous blocks take the fast path whole;
/// segmented blocks take it per aligned segment run, with elements that straddle a
/// segment boundary staged through a `W`-byte carry buffer (the safe unaligned
/// fallback).
fn combine_into_typed<T: Element, const W: usize>(acc: &mut [u8], block: &Payload, op: ReduceOp) {
    if let Some(b) = block.as_bytes() {
        combine_slices::<T, W>(acc, b.as_slice(), op);
        return;
    }
    let mut at = 0usize; // byte offset into `acc`, always element-aligned
    let mut carry = [0u8; 8];
    let mut carry_len = 0usize;
    for seg in block.segments() {
        let mut s = seg.as_slice();
        if carry_len > 0 {
            // Finish the element started by the previous segment.
            let take = (W - carry_len).min(s.len());
            carry[carry_len..carry_len + take].copy_from_slice(&s[..take]);
            carry_len += take;
            s = &s[take..];
            if carry_len == W {
                let ca = &mut acc[at..at + W];
                T::from_le(ca).apply(T::from_le(&carry[..W]), op).write_le(ca);
                at += W;
                carry_len = 0;
            }
        }
        let bulk = s.len() - s.len() % W;
        combine_slices::<T, W>(&mut acc[at..at + bulk], &s[..bulk], op);
        at += bulk;
        if s.len() > bulk {
            carry[..s.len() - bulk].copy_from_slice(&s[bulk..]);
            carry_len = s.len() - bulk;
        }
    }
    // Total length is a validated multiple of W, so no element can be left dangling.
    // (The carry buffer stages at most W-1 bytes per boundary: bookkeeping, not a
    // payload materialization, so it does not hit the debug copy tally.)
    debug_assert_eq!(carry_len, 0);
    debug_assert_eq!(at, acc.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn target() -> ObjectId {
        ObjectId::from_name("reduce-target")
    }

    #[test]
    fn sum_f32_elementwise() {
        let a = Payload::from_f32s(&[1.0, 2.0, 3.0]);
        let b = Payload::from_f32s(&[0.5, -2.0, 10.0]);
        let spec = ReduceSpec::sum_f32();
        let out = spec.combine(target(), &a, &b).unwrap();
        assert_eq!(out.to_f32s(), vec![1.5, 0.0, 13.0]);
    }

    #[test]
    fn min_max_i64() {
        let enc = |vals: &[i64]| {
            let mut v = Vec::new();
            for x in vals {
                v.extend_from_slice(&x.to_le_bytes());
            }
            Payload::from_vec(v)
        };
        let a = enc(&[3, -7, 100]);
        let b = enc(&[5, -2, 50]);
        let min = ReduceSpec { op: ReduceOp::Min, dtype: DType::I64 };
        let max = ReduceSpec { op: ReduceOp::Max, dtype: DType::I64 };
        let min_out = min.combine(target(), &a, &b).unwrap();
        let max_out = max.combine(target(), &a, &b).unwrap();
        let dec = |p: &Payload| {
            p.as_bytes()
                .unwrap()
                .chunks_exact(8)
                .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                .collect::<Vec<_>>()
        };
        assert_eq!(dec(&min_out), vec![3, -7, 50]);
        assert_eq!(dec(&max_out), vec![5, -2, 100]);
    }

    #[test]
    fn combine_into_accumulates_in_place() {
        let spec = ReduceSpec::sum_f32();
        let mut acc = Payload::from_f32s(&[1.0, 2.0, 3.0]).to_owned_vec().unwrap();
        let acc_ptr = acc.as_ptr();
        spec.combine_into(target(), &mut acc, &Payload::from_f32s(&[10.0, 20.0, 30.0])).unwrap();
        spec.combine_into(target(), &mut acc, &Payload::from_f32s(&[0.5, 0.5, 0.5])).unwrap();
        assert_eq!(acc.as_ptr(), acc_ptr, "no reallocation");
        assert_eq!(Payload::from_vec(acc).to_f32s(), vec![11.5, 22.5, 33.5]);
    }

    #[test]
    fn combine_into_rejects_partial_trailing_element() {
        // 6 bytes is one and a half f32s: must error, not silently truncate. A
        // truncating implementation (chunks_exact drops the tail) would "succeed" and
        // corrupt the last element.
        let spec = ReduceSpec::sum_f32();
        let mut acc = vec![0u8; 6];
        let block = Payload::from_vec(vec![1u8; 6]);
        assert!(matches!(
            spec.combine_into(target(), &mut acc, &block),
            Err(HopliteError::ReduceShapeMismatch { .. })
        ));
        assert_eq!(acc, vec![0u8; 6], "failed combine must not modify the accumulator");
        // Same through the payload-level API.
        assert!(spec
            .combine(target(), &Payload::zeros(6), &Payload::from_vec(vec![1u8; 6]))
            .is_err());
    }

    #[test]
    fn combine_into_rejects_length_mismatch_and_synthetic() {
        let spec = ReduceSpec::sum_f32();
        let mut acc = vec![0u8; 8];
        assert!(spec.combine_into(target(), &mut acc, &Payload::zeros(4)).is_err());
        assert!(spec.combine_into(target(), &mut acc, &Payload::synthetic(8)).is_err());
    }

    #[test]
    fn segmented_block_with_element_spanning_boundary() {
        // Two f32s whose byte boundary falls mid-element: segment 1 carries 6 bytes
        // (element 0 plus half of element 1), segment 2 the remaining 2 bytes. The
        // carry-buffer fallback must reassemble element 1 exactly.
        let spec = ReduceSpec::sum_f32();
        let flat = Payload::from_f32s(&[3.0, 5.0]).to_owned_vec().unwrap();
        let block = Payload::from_segments(vec![
            Bytes::from(flat[..6].to_vec()),
            Bytes::from(flat[6..].to_vec()),
        ]);
        let mut acc = Payload::from_f32s(&[1.0, 2.0]).to_owned_vec().unwrap();
        spec.combine_into(target(), &mut acc, &block).unwrap();
        assert_eq!(Payload::from_vec(acc).to_f32s(), vec![4.0, 7.0]);
    }

    #[test]
    fn segmented_block_exercises_every_split_point() {
        // Sweep the split point across a 4-element f64 array (element width 8): every
        // possible two-segment split, including element-aligned ones, must agree with
        // the contiguous result.
        let spec = ReduceSpec { op: ReduceOp::Sum, dtype: DType::F64 };
        let vals: Vec<u8> = (0..4u64).flat_map(|i| (i as f64 + 0.5).to_le_bytes()).collect();
        let base: Vec<u8> = (0..4u64).flat_map(|i| (i as f64 * 10.0).to_le_bytes()).collect();
        let want = {
            let mut acc = base.clone();
            spec.combine_into(target(), &mut acc, &Payload::from_vec(vals.clone())).unwrap();
            acc
        };
        for split in 1..vals.len() {
            let block = Payload::from_segments(vec![
                Bytes::from(vals[..split].to_vec()),
                Bytes::from(vals[split..].to_vec()),
            ]);
            let mut acc = base.clone();
            spec.combine_into(target(), &mut acc, &block).unwrap();
            assert_eq!(acc, want, "split at byte {split}");
        }
        // Pathological segmentation: every byte its own segment.
        let block = Payload::from_segments(vals.iter().map(|&b| Bytes::from(vec![b])).collect());
        let mut acc = base.clone();
        spec.combine_into(target(), &mut acc, &block).unwrap();
        assert_eq!(acc, want, "per-byte segmentation");
    }

    #[test]
    fn segmented_combine_matches_contiguous_for_all_dtypes_and_ops() {
        let mut raw = Vec::new();
        for i in 0..64u8 {
            raw.push(i.wrapping_mul(37).wrapping_add(11));
        }
        for dtype in [DType::F32, DType::F64, DType::I32, DType::I64] {
            for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
                let spec = ReduceSpec { op, dtype };
                let mut flat_acc = raw.clone();
                spec.combine_into(target(), &mut flat_acc, &Payload::from_vec(raw.clone()))
                    .unwrap();
                let block = Payload::from_segments(vec![
                    Bytes::from(raw[..13].to_vec()),
                    Bytes::from(raw[13..30].to_vec()),
                    Bytes::from(raw[30..].to_vec()),
                ]);
                let mut seg_acc = raw.clone();
                spec.combine_into(target(), &mut seg_acc, &block).unwrap();
                assert_eq!(flat_acc, seg_acc, "{dtype:?} {op:?}");
            }
        }
    }

    #[test]
    fn min_max_nan_propagation_matches_historical_combine() {
        // On incomparable floats the incoming element wins (same rule as ties): an
        // arriving NaN must surface in the reduce output, not be silently masked by a
        // finite accumulator — and an accumulated NaN is replaced by a later finite
        // incoming element, exactly as the pre-in-place combine behaved.
        let spec = ReduceSpec { op: ReduceOp::Min, dtype: DType::F32 };
        let mut acc = Payload::from_f32s(&[1.0, f32::NAN]).to_owned_vec().unwrap();
        spec.combine_into(target(), &mut acc, &Payload::from_f32s(&[f32::NAN, 2.0])).unwrap();
        let got = Payload::from_vec(acc).to_f32s();
        assert!(got[0].is_nan(), "incoming NaN propagates");
        assert_eq!(got[1], 2.0, "accumulated NaN is replaced by the incoming element");
        let max = ReduceSpec { op: ReduceOp::Max, dtype: DType::F32 };
        let out = max
            .combine(target(), &Payload::from_f32s(&[5.0]), &Payload::from_f32s(&[f32::NAN]))
            .unwrap()
            .to_f32s();
        assert!(out[0].is_nan());
    }

    #[test]
    fn mismatched_lengths_error() {
        let a = Payload::from_f32s(&[1.0, 2.0]);
        let b = Payload::from_f32s(&[1.0]);
        assert!(matches!(
            ReduceSpec::sum_f32().combine(target(), &a, &b),
            Err(HopliteError::ReduceShapeMismatch { .. })
        ));
    }

    #[test]
    fn synthetic_combine_keeps_length() {
        let a = Payload::synthetic(1024);
        let b = Payload::synthetic(1024);
        let out = ReduceSpec::sum_f32().combine(target(), &a, &b).unwrap();
        assert!(out.is_synthetic());
        assert_eq!(out.len(), 1024);
    }

    #[test]
    fn mixed_real_and_synthetic_degrades_to_synthetic() {
        let a = Payload::zeros(16);
        let b = Payload::synthetic(16);
        let out = ReduceSpec::sum_f32().combine(target(), &a, &b).unwrap();
        assert!(out.is_synthetic());
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.element_size(), 4);
        assert_eq!(DType::F64.element_size(), 8);
        assert_eq!(DType::I32.element_size(), 4);
        assert_eq!(DType::I64.element_size(), 8);
    }

    #[test]
    fn commutativity_and_associativity_sum() {
        let spec = ReduceSpec::sum_f32();
        let a = Payload::from_f32s(&[1.0, 2.0]);
        let b = Payload::from_f32s(&[3.0, 4.0]);
        let c = Payload::from_f32s(&[5.0, 6.0]);
        let ab_c =
            spec.combine(target(), &spec.combine(target(), &a, &b).unwrap(), &c).unwrap().to_f32s();
        let a_bc =
            spec.combine(target(), &a, &spec.combine(target(), &b, &c).unwrap()).unwrap().to_f32s();
        let ba_c =
            spec.combine(target(), &spec.combine(target(), &b, &a).unwrap(), &c).unwrap().to_f32s();
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c, ba_c);
    }
}
