//! Reduce operations (the paper's `ReduceOp`: sum, min, max) over typed element arrays.
//!
//! The `Reduce` API requires the operation to be commutative and associative (§3.1),
//! which is what allows Hoplite to reduce objects in arrival order rather than rank
//! order. Real payloads are combined element-wise; synthetic payloads (simulator mode)
//! are combined by length only.

use crate::buffer::Payload;
use crate::error::{HopliteError, Result};
use crate::object::ObjectId;

/// Element type of the arrays being reduced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit IEEE-754 floats (the paper's microbenchmarks use arrays of these).
    F32,
    /// 64-bit IEEE-754 floats.
    F64,
    /// 32-bit signed integers.
    I32,
    /// 64-bit signed integers.
    I64,
}

impl DType {
    /// Size of one element in bytes.
    pub fn element_size(self) -> u64 {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F64 | DType::I64 => 8,
        }
    }
}

/// Commutative, associative reduction operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Element-wise addition (`ray.ADD` in the paper's pseudo-code).
    Sum,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
}

/// A fully-specified reduction: operator plus element type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ReduceSpec {
    /// Operator.
    pub op: ReduceOp,
    /// Element type of every input object.
    pub dtype: DType,
}

impl ReduceSpec {
    /// Element-wise sum of `f32` arrays — the common case for gradient aggregation.
    pub fn sum_f32() -> Self {
        ReduceSpec { op: ReduceOp::Sum, dtype: DType::F32 }
    }

    /// Combine two payloads element-wise. Inputs must have equal length; synthetic
    /// payloads short-circuit to a synthetic result of the same length.
    pub fn combine(&self, target: ObjectId, a: &Payload, b: &Payload) -> Result<Payload> {
        if a.len() != b.len() {
            return Err(HopliteError::ReduceShapeMismatch {
                target,
                detail: format!("length mismatch: {} vs {}", a.len(), b.len()),
            });
        }
        let (abytes, bbytes) = match (a.as_bytes(), b.as_bytes()) {
            (Some(x), Some(y)) => (x, y),
            // Simulator mode: no arithmetic, only sizes.
            _ => return Ok(Payload::synthetic(a.len())),
        };
        if !a.len().is_multiple_of(self.dtype.element_size()) {
            return Err(HopliteError::ReduceShapeMismatch {
                target,
                detail: format!(
                    "length {} not a multiple of element size {}",
                    a.len(),
                    self.dtype.element_size()
                ),
            });
        }
        let out = match self.dtype {
            DType::F32 => combine_typed::<f32, 4>(abytes, bbytes, self.op),
            DType::F64 => combine_typed::<f64, 8>(abytes, bbytes, self.op),
            DType::I32 => combine_typed::<i32, 4>(abytes, bbytes, self.op),
            DType::I64 => combine_typed::<i64, 8>(abytes, bbytes, self.op),
        };
        Ok(Payload::from_vec(out))
    }
}

/// Element trait implemented for the supported numeric types.
trait Element: Copy {
    fn from_le(bytes: &[u8]) -> Self;
    fn to_le(self, out: &mut Vec<u8>);
    fn sum(self, other: Self) -> Self;
    fn min_v(self, other: Self) -> Self;
    fn max_v(self, other: Self) -> Self;
}

macro_rules! impl_element {
    ($t:ty, $n:expr) => {
        impl Element for $t {
            fn from_le(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("element width"))
            }
            fn to_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn sum(self, other: Self) -> Self {
                self + other
            }
            fn min_v(self, other: Self) -> Self {
                if self < other {
                    self
                } else {
                    other
                }
            }
            fn max_v(self, other: Self) -> Self {
                if self > other {
                    self
                } else {
                    other
                }
            }
        }
    };
}

impl_element!(f32, 4);
impl_element!(f64, 8);
impl_element!(i32, 4);
impl_element!(i64, 8);

fn combine_typed<T: Element, const W: usize>(a: &[u8], b: &[u8], op: ReduceOp) -> Vec<u8> {
    let mut out = Vec::with_capacity(a.len());
    for (ca, cb) in a.chunks_exact(W).zip(b.chunks_exact(W)) {
        let x = T::from_le(ca);
        let y = T::from_le(cb);
        let v = match op {
            ReduceOp::Sum => x.sum(y),
            ReduceOp::Min => x.min_v(y),
            ReduceOp::Max => x.max_v(y),
        };
        v.to_le(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target() -> ObjectId {
        ObjectId::from_name("reduce-target")
    }

    #[test]
    fn sum_f32_elementwise() {
        let a = Payload::from_f32s(&[1.0, 2.0, 3.0]);
        let b = Payload::from_f32s(&[0.5, -2.0, 10.0]);
        let spec = ReduceSpec::sum_f32();
        let out = spec.combine(target(), &a, &b).unwrap();
        assert_eq!(out.to_f32s(), vec![1.5, 0.0, 13.0]);
    }

    #[test]
    fn min_max_i64() {
        let enc = |vals: &[i64]| {
            let mut v = Vec::new();
            for x in vals {
                v.extend_from_slice(&x.to_le_bytes());
            }
            Payload::from_vec(v)
        };
        let a = enc(&[3, -7, 100]);
        let b = enc(&[5, -2, 50]);
        let min = ReduceSpec { op: ReduceOp::Min, dtype: DType::I64 };
        let max = ReduceSpec { op: ReduceOp::Max, dtype: DType::I64 };
        let min_out = min.combine(target(), &a, &b).unwrap();
        let max_out = max.combine(target(), &a, &b).unwrap();
        let dec = |p: &Payload| {
            p.as_bytes()
                .unwrap()
                .chunks_exact(8)
                .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                .collect::<Vec<_>>()
        };
        assert_eq!(dec(&min_out), vec![3, -7, 50]);
        assert_eq!(dec(&max_out), vec![5, -2, 100]);
    }

    #[test]
    fn mismatched_lengths_error() {
        let a = Payload::from_f32s(&[1.0, 2.0]);
        let b = Payload::from_f32s(&[1.0]);
        assert!(matches!(
            ReduceSpec::sum_f32().combine(target(), &a, &b),
            Err(HopliteError::ReduceShapeMismatch { .. })
        ));
    }

    #[test]
    fn synthetic_combine_keeps_length() {
        let a = Payload::synthetic(1024);
        let b = Payload::synthetic(1024);
        let out = ReduceSpec::sum_f32().combine(target(), &a, &b).unwrap();
        assert!(out.is_synthetic());
        assert_eq!(out.len(), 1024);
    }

    #[test]
    fn mixed_real_and_synthetic_degrades_to_synthetic() {
        let a = Payload::zeros(16);
        let b = Payload::synthetic(16);
        let out = ReduceSpec::sum_f32().combine(target(), &a, &b).unwrap();
        assert!(out.is_synthetic());
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.element_size(), 4);
        assert_eq!(DType::F64.element_size(), 8);
        assert_eq!(DType::I32.element_size(), 4);
        assert_eq!(DType::I64.element_size(), 8);
    }

    #[test]
    fn commutativity_and_associativity_sum() {
        let spec = ReduceSpec::sum_f32();
        let a = Payload::from_f32s(&[1.0, 2.0]);
        let b = Payload::from_f32s(&[3.0, 4.0]);
        let c = Payload::from_f32s(&[5.0, 6.0]);
        let ab_c =
            spec.combine(target(), &spec.combine(target(), &a, &b).unwrap(), &c).unwrap().to_f32s();
        let a_bc =
            spec.combine(target(), &a, &spec.combine(target(), &b, &c).unwrap()).unwrap().to_f32s();
        let ba_c =
            spec.combine(target(), &spec.combine(target(), &b, &a).unwrap(), &c).unwrap().to_f32s();
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c, ba_c);
    }
}
