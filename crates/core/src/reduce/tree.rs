//! Dynamic d-ary reduce trees (§3.4.2 and §3.5.2 of the paper).
//!
//! The *shape* of a reduce tree over `n` objects with degree `d` is fixed: it is the
//! most balanced `d`-ary tree with `n` slots, and slots are numbered by the paper's
//! generalized in-order traversal (first child subtree, the node itself, remaining
//! child subtrees). What is dynamic is the *assignment* of arriving objects to slots:
//! the `k`-th object to become ready takes slot `k`, which lets early arrivals start
//! streaming into their parent before later participants even exist.
//!
//! Failure handling follows §3.5.2: a failed slot is vacated and refilled by the next
//! ready object (possibly the same object recreated elsewhere by the task framework),
//! and every ancestor of the failed slot bumps its *epoch*, which instructs it to clear
//! its partial accumulation and its children to re-send.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use crate::object::{NodeId, ObjectId};

/// Static description of one slot in the tree shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotShape {
    /// In-order rank of this slot (also its index).
    pub index: usize,
    /// Parent slot, `None` for the root.
    pub parent: Option<usize>,
    /// Child slots (at most `d`).
    pub children: Vec<usize>,
    /// Depth below the root (root = 0).
    pub depth: usize,
}

/// The static shape of a reduce tree: `n` slots arranged as a balanced `d`-ary tree and
/// numbered by generalized in-order traversal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeShape {
    slots: Vec<SlotShape>,
    degree: usize,
    root: usize,
}

impl TreeShape {
    /// Build the shape for `n` slots and degree `d` (`d >= 1`; `d >= n` produces a
    /// star).
    pub fn new(n: usize, degree: usize) -> TreeShape {
        assert!(n >= 1, "a reduce tree needs at least one slot");
        let degree = degree.max(1);
        // Recursively build raw nodes, then renumber by in-order rank.
        #[derive(Debug)]
        struct Raw {
            children: Vec<usize>,
        }
        let mut raw: Vec<Raw> = Vec::with_capacity(n);
        // Returns the raw id of the subtree root for a subtree of `count` nodes.
        fn build(raw: &mut Vec<Raw>, count: usize, degree: usize) -> usize {
            debug_assert!(count >= 1);
            let id = raw.len();
            raw.push(Raw { children: Vec::new() });
            let remaining = count - 1;
            if remaining == 0 {
                return id;
            }
            let child_count = remaining.min(degree);
            // Distribute the remaining nodes across child subtrees as evenly as
            // possible; earlier subtrees get the extras so that in-order ranks of the
            // left-most subtree stay small.
            let base = remaining / child_count;
            let extra = remaining % child_count;
            let mut children = Vec::with_capacity(child_count);
            for c in 0..child_count {
                let sz = base + usize::from(c < extra);
                debug_assert!(sz >= 1);
                let child = build(raw, sz, degree);
                children.push(child);
            }
            raw[id].children = children;
            id
        }
        let raw_root = build(&mut raw, n, degree);

        // Generalized in-order traversal: first child subtree, the node, remaining
        // child subtrees.
        fn traverse(raw: &[Raw], node: usize, order: &mut Vec<usize>) {
            let children = &raw[node].children;
            if let Some(&first) = children.first() {
                traverse(raw, first, order);
            }
            order.push(node);
            for &c in children.iter().skip(1) {
                traverse(raw, c, order);
            }
        }
        let mut order = Vec::with_capacity(n);
        traverse(&raw, raw_root, &mut order);
        debug_assert_eq!(order.len(), n);
        let mut rank_of = vec![usize::MAX; n];
        for (rank, &raw_id) in order.iter().enumerate() {
            rank_of[raw_id] = rank;
        }

        let mut slots: Vec<SlotShape> = (0..n)
            .map(|i| SlotShape { index: i, parent: None, children: Vec::new(), depth: 0 })
            .collect();
        for (raw_id, node) in raw.iter().enumerate() {
            let rank = rank_of[raw_id];
            for &child in &node.children {
                let crank = rank_of[child];
                slots[crank].parent = Some(rank);
                slots[rank].children.push(crank);
            }
        }
        for s in &mut slots {
            s.children.sort_unstable();
        }
        let root = rank_of[raw_root];
        // Compute depths with an explicit stack (the tree may be a chain of length n).
        let mut stack = vec![(root, 0usize)];
        while let Some((slot, depth)) = stack.pop() {
            slots[slot].depth = depth;
            for &c in slots[slot].children.clone().iter() {
                stack.push((c, depth + 1));
            }
        }
        TreeShape { slots, degree, root }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the tree has no slots (never constructed; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Requested degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Root slot index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Shape of one slot.
    pub fn slot(&self, index: usize) -> &SlotShape {
        &self.slots[index]
    }

    /// All slots.
    pub fn slots(&self) -> &[SlotShape] {
        &self.slots
    }

    /// All ancestors of `index`, nearest first (excluding `index` itself).
    pub fn ancestors(&self, index: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.slots[index].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.slots[p].parent;
        }
        out
    }

    /// Height of the tree (maximum depth).
    pub fn height(&self) -> usize {
        self.slots.iter().map(|s| s.depth).max().unwrap_or(0)
    }
}

/// A ready reduce input: an object and the node that holds (or is creating) it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReduceInput {
    /// Source object.
    pub object: ObjectId,
    /// Node holding the source object.
    pub node: NodeId,
}

/// Dynamic assignment state layered over a [`TreeShape`].
///
/// The ready pool is a FIFO over object ids plus a membership map, so offering an
/// input, updating its holder, and popping the next pooled input are all O(1) —
/// assigning `n` arrivals is linear instead of the O(n²) that `Vec::remove(0)` plus a
/// linear membership scan used to cost (`tree_assignment/1024` in `BENCH_NOTES.md`).
/// An id can appear in the FIFO more than once (re-offered after a failure); the
/// membership map is authoritative and stale FIFO entries are skipped on pop.
#[derive(Clone, Debug)]
pub struct ReduceTreePlan {
    shape: TreeShape,
    /// Slot -> assigned input.
    assignment: Vec<Option<ReduceInput>>,
    /// Accumulation epoch per slot (bumped when the slot must clear partial results).
    epoch: Vec<u64>,
    /// Arrival order of pooled (offered, not yet assigned) objects, as
    /// (object, admission generation) pairs.
    ready_queue: VecDeque<(ObjectId, u64)>,
    /// Pooled object -> (current holder, admission generation). Membership here is
    /// what "in the pool" means; `ready_queue` entries whose generation does not
    /// match are stale (left behind by a failure + re-offer) and skipped on pop, so a
    /// re-admitted object queues at the back like any fresh arrival.
    pooled: HashMap<ObjectId, (NodeId, u64)>,
    /// Monotonic counter feeding admission generations.
    admissions: u64,
    /// Unassigned slots, in in-order rank order, so refilling does not rescan the
    /// whole assignment vector per offer.
    vacant: BTreeSet<usize>,
    /// Objects currently assigned to a slot.
    assigned_objects: HashMap<ObjectId, usize>,
    /// Objects that were offered but are currently unusable (their holder failed).
    lost_objects: HashSet<ObjectId>,
}

/// The view of a slot that the coordinator turns into a participant instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotView {
    /// Slot index.
    pub slot: usize,
    /// Input assigned to this slot.
    pub input: ReduceInput,
    /// This slot's accumulation epoch.
    pub epoch: u64,
    /// Total number of inputs this slot combines: its own object plus one stream per
    /// child slot (whether or not those child slots are assigned yet).
    pub num_inputs: usize,
    /// Parent slot owner, its slot index, and its current epoch; `None` for the root.
    pub parent: Option<(usize, ReduceInput, u64)>,
    /// Currently-assigned children (slot, input).
    pub children: Vec<(usize, ReduceInput)>,
    /// `true` when this slot is the tree root (it materializes the reduce result).
    pub is_root: bool,
}

/// Result of feeding an event into the plan: the set of slots whose instructions must
/// be (re-)issued to participants.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanDelta {
    /// Slots whose instructions changed.
    pub affected_slots: Vec<usize>,
}

impl ReduceTreePlan {
    /// Create a plan for `num_objects` inputs using `degree` (resolved, i.e. `>= 1`).
    pub fn new(num_objects: usize, degree: usize) -> ReduceTreePlan {
        let shape = TreeShape::new(num_objects, degree);
        let n = shape.len();
        ReduceTreePlan {
            shape,
            assignment: vec![None; n],
            epoch: vec![0; n],
            ready_queue: VecDeque::new(),
            pooled: HashMap::new(),
            admissions: 0,
            vacant: (0..n).collect(),
            assigned_objects: HashMap::new(),
            lost_objects: HashSet::new(),
        }
    }

    /// The underlying static shape.
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// Current assignment of a slot.
    pub fn assignment(&self, slot: usize) -> Option<ReduceInput> {
        self.assignment[slot]
    }

    /// Current epoch of a slot.
    pub fn epoch(&self, slot: usize) -> u64 {
        self.epoch[slot]
    }

    /// Number of assigned slots.
    pub fn assigned_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// `true` once every slot has an input.
    pub fn fully_assigned(&self) -> bool {
        self.assigned_count() == self.shape.len()
    }

    /// Slot that materializes the final result, with its owner (if assigned).
    pub fn root_input(&self) -> Option<ReduceInput> {
        self.assignment[self.shape.root()]
    }

    /// Offer a ready input (an object that now has a partial or complete copy at
    /// `node`). Returns the slots whose instructions changed. Offering an object that
    /// is already assigned or already pooled is a no-op (duplicate directory
    /// publications are expected).
    pub fn offer_input(&mut self, input: ReduceInput) -> PlanDelta {
        if self.assigned_objects.contains_key(&input.object) {
            return PlanDelta::default();
        }
        self.lost_objects.remove(&input.object);
        // Insert-or-move-holder in O(1); only a new pool admission takes a FIFO slot
        // (an object already pooled just updates its holder in place).
        match self.pooled.get_mut(&input.object) {
            Some((holder, _)) => *holder = input.node,
            None => {
                self.admissions += 1;
                self.pooled.insert(input.object, (input.node, self.admissions));
                self.ready_queue.push_back((input.object, self.admissions));
            }
        }
        self.fill_vacancies()
    }

    /// Handle the failure of `node`: vacate every slot it owned, drop it from the ready
    /// pool, bump ancestor epochs, and refill vacancies from the pool. Returns all
    /// affected slots (vacated ancestors and any refills).
    pub fn on_node_failed(&mut self, node: NodeId) -> PlanDelta {
        let mut affected = HashSet::new();
        // Drop pooled inputs that lived on the failed node (their FIFO entries go
        // stale and are skipped on pop).
        self.pooled.retain(|object, (holder, _)| {
            if *holder == node {
                self.lost_objects.insert(*object);
                false
            } else {
                true
            }
        });
        // Vacate slots owned by the failed node.
        let vacated: Vec<usize> = self
            .assignment
            .iter()
            .enumerate()
            .filter_map(|(slot, a)| match a {
                Some(input) if input.node == node => Some(slot),
                _ => None,
            })
            .collect();
        for slot in vacated {
            let input = self.assignment[slot].take().expect("slot was assigned");
            self.vacant.insert(slot);
            self.assigned_objects.remove(&input.object);
            self.lost_objects.insert(input.object);
            affected.insert(slot);
            // Every ancestor clears its partial result (§3.5.2: at most log_d n nodes).
            for anc in self.shape.ancestors(slot) {
                self.epoch[anc] += 1;
                affected.insert(anc);
                // The ancestor's other children must re-send, so their instructions
                // change too (new parent epoch).
                for &c in &self.shape.slot(anc).children {
                    affected.insert(c);
                }
            }
            // Children of the vacated slot will need to point at the replacement owner
            // once one is found; include them so instructions are refreshed.
            for &c in &self.shape.slot(slot).children {
                affected.insert(c);
            }
        }
        let refill = self.fill_vacancies();
        affected.extend(refill.affected_slots);
        let mut affected: Vec<usize> =
            affected.into_iter().filter(|&s| self.assignment[s].is_some()).collect();
        affected.sort_unstable();
        PlanDelta { affected_slots: affected }
    }

    /// Number of inputs that are known to be unusable (holder failed and not yet
    /// recreated). The coordinator uses this to decide whether `num_objects` can still
    /// be satisfied from the remaining source list.
    pub fn lost_count(&self) -> usize {
        self.lost_objects.len()
    }

    /// The view of a slot used to build its participant instruction. `None` if the slot
    /// has no assignment yet.
    pub fn slot_view(&self, slot: usize) -> Option<SlotView> {
        let input = self.assignment[slot]?;
        let shape = self.shape.slot(slot);
        let parent = shape.parent.and_then(|p| self.assignment[p].map(|pi| (p, pi, self.epoch[p])));
        let children =
            shape.children.iter().filter_map(|&c| self.assignment[c].map(|ci| (c, ci))).collect();
        Some(SlotView {
            slot,
            input,
            epoch: self.epoch[slot],
            num_inputs: shape.children.len() + 1,
            parent,
            children,
            is_root: shape.parent.is_none(),
        })
    }

    /// Assign pooled inputs to vacant slots in in-order-rank order.
    fn fill_vacancies(&mut self) -> PlanDelta {
        let mut affected = HashSet::new();
        while let Some(&slot) = self.vacant.first() {
            debug_assert!(self.assignment[slot].is_none());
            let Some(next) = self.next_pooled() else { break };
            self.vacant.remove(&slot);
            self.assignment[slot] = Some(next);
            self.assigned_objects.insert(next.object, slot);
            affected.insert(slot);
            // The parent and the already-assigned children see a new counterpart.
            if let Some(p) = self.shape.slot(slot).parent {
                if self.assignment[p].is_some() {
                    affected.insert(p);
                }
            }
            for &c in &self.shape.slot(slot).children {
                if self.assignment[c].is_some() {
                    affected.insert(c);
                }
            }
        }
        let mut affected: Vec<usize> = affected.into_iter().collect();
        affected.sort_unstable();
        PlanDelta { affected_slots: affected }
    }

    fn next_pooled(&mut self) -> Option<ReduceInput> {
        while let Some((object, generation)) = self.ready_queue.pop_front() {
            // Stale FIFO entries (dropped by a failure, possibly re-admitted later
            // under a newer generation) are skipped; only the live admission counts.
            match self.pooled.get(&object) {
                Some(&(node, live)) if live == generation => {
                    self.pooled.remove(&object);
                    return Some(ReduceInput { object, node });
                }
                _ => continue,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(i: u32) -> ReduceInput {
        ReduceInput { object: ObjectId::from_name(&format!("obj-{i}")), node: NodeId(i) }
    }

    #[test]
    fn chain_shape_in_order() {
        // d = 1: slot k's parent is slot k + 1; the root is the last slot.
        let shape = TreeShape::new(5, 1);
        assert_eq!(shape.root(), 4);
        for k in 0..4 {
            assert_eq!(shape.slot(k).parent, Some(k + 1));
        }
        assert_eq!(shape.slot(4).parent, None);
        assert_eq!(shape.height(), 4);
    }

    #[test]
    fn star_shape_in_order() {
        // d >= n: the root is the *second* arrival (first child subtree is traversed
        // before the root in generalized in-order traversal).
        let shape = TreeShape::new(6, 6);
        assert_eq!(shape.root(), 1);
        assert_eq!(shape.slot(1).children.len(), 5);
        assert_eq!(shape.height(), 1);
    }

    #[test]
    fn binary_tree_of_six_matches_paper_figure() {
        // Figure 5a: arrivals R1..R6; R2 reduces {R1, R2, R3}; the root is R4; R6
        // reduces {R5, R6}.
        let shape = TreeShape::new(6, 2);
        assert_eq!(shape.root(), 3, "R4 (index 3) is the root");
        let root = shape.slot(3);
        assert_eq!(root.children, vec![1, 5]);
        assert_eq!(shape.slot(1).children, vec![0, 2]);
        assert_eq!(shape.slot(5).children, vec![4]);
        assert_eq!(shape.ancestors(1), vec![3]);
        assert_eq!(shape.ancestors(0), vec![1, 3]);
    }

    #[test]
    fn every_slot_has_at_most_degree_children() {
        for n in 1..40 {
            for d in [1usize, 2, 3, 4, 7, n.max(1)] {
                let shape = TreeShape::new(n, d);
                assert_eq!(shape.len(), n);
                let mut seen_children = 0;
                for s in shape.slots() {
                    assert!(s.children.len() <= d.max(1));
                    seen_children += s.children.len();
                    for &c in &s.children {
                        assert_eq!(shape.slot(c).parent, Some(s.index));
                    }
                }
                assert_eq!(seen_children, n - 1, "every non-root slot has a parent");
            }
        }
    }

    #[test]
    fn assignment_follows_arrival_order() {
        let mut plan = ReduceTreePlan::new(6, 2);
        for i in 0..6 {
            let delta = plan.offer_input(input(i));
            assert!(delta.affected_slots.contains(&(i as usize)));
        }
        assert!(plan.fully_assigned());
        // Slot k is owned by the k-th arrival.
        for k in 0..6 {
            assert_eq!(plan.assignment(k).unwrap().node, NodeId(k as u32));
        }
        assert_eq!(plan.root_input().unwrap().node, NodeId(3));
    }

    #[test]
    fn duplicate_offers_are_ignored() {
        let mut plan = ReduceTreePlan::new(3, 2);
        plan.offer_input(input(0));
        let delta = plan.offer_input(input(0));
        assert!(delta.affected_slots.is_empty());
        assert_eq!(plan.assigned_count(), 1);
    }

    #[test]
    fn subset_reduce_takes_first_arrivals() {
        // Reduce 3 out of 5 offered objects: only the first three get slots.
        let mut plan = ReduceTreePlan::new(3, 2);
        for i in 0..5 {
            plan.offer_input(input(i));
        }
        assert!(plan.fully_assigned());
        let assigned: Vec<NodeId> = (0..3).map(|k| plan.assignment(k).unwrap().node).collect();
        assert_eq!(assigned, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn failure_vacates_bumps_ancestors_and_refills() {
        // Mirror of Figure 5b: R2 (slot 1) fails, R7 replaces it, ancestors clear.
        let mut plan = ReduceTreePlan::new(6, 2);
        for i in 0..6 {
            plan.offer_input(input(i));
        }
        let root_epoch_before = plan.epoch(3);
        let delta = plan.on_node_failed(NodeId(1));
        // Slot 1 is vacated; no replacement is available yet.
        assert_eq!(plan.assignment(1), None);
        assert_eq!(plan.epoch(3), root_epoch_before + 1, "the root clears its result");
        assert_eq!(plan.epoch(5), 0, "the sibling subtree is untouched");
        assert!(delta.affected_slots.contains(&3));
        // R7 arrives and takes the vacated slot.
        let delta = plan.offer_input(input(7));
        assert!(delta.affected_slots.contains(&1));
        assert_eq!(plan.assignment(1).unwrap().node, NodeId(7));
        assert!(plan.fully_assigned());
    }

    #[test]
    fn recovered_object_can_rejoin() {
        let mut plan = ReduceTreePlan::new(3, 2);
        for i in 0..3 {
            plan.offer_input(input(i));
        }
        plan.on_node_failed(NodeId(0));
        assert_eq!(plan.lost_count(), 1);
        // The failed object is recreated on another node and rejoins the same slot.
        let rejoined = ReduceInput { object: input(0).object, node: NodeId(9) };
        let delta = plan.offer_input(rejoined);
        assert!(delta.affected_slots.contains(&0));
        assert_eq!(plan.assignment(0).unwrap().node, NodeId(9));
        assert_eq!(plan.lost_count(), 0);
    }

    #[test]
    fn slot_view_reports_parent_and_children() {
        let mut plan = ReduceTreePlan::new(6, 2);
        for i in 0..4 {
            plan.offer_input(input(i));
        }
        let v = plan.slot_view(1).unwrap();
        assert_eq!(v.num_inputs, 3);
        assert!(!v.is_root);
        assert_eq!(v.parent.unwrap().0, 3);
        assert_eq!(v.children.len(), 2);
        let root = plan.slot_view(3).unwrap();
        assert!(root.is_root);
        assert_eq!(root.parent, None);
        // Slot 5 is unassigned so far.
        assert!(plan.slot_view(5).is_none());
        assert_eq!(root.children.len(), 1, "only the assigned child is listed");
    }

    #[test]
    fn failure_of_pooled_input_is_tracked() {
        let mut plan = ReduceTreePlan::new(2, 2);
        plan.offer_input(input(0));
        plan.offer_input(input(1));
        plan.offer_input(input(2)); // pooled, unassigned
        plan.on_node_failed(NodeId(2));
        assert_eq!(plan.lost_count(), 1);
        assert!(plan.fully_assigned());
    }
}
