//! Debug-build accounting of payload memcpys.
//!
//! The zero-copy invariant of the data plane — a block flows receive → store →
//! forward/combine → send without its bytes being copied (§3.4) — is easy to regress
//! silently: one `to_vec()` in a hot path and throughput quietly drops by a memcpy.
//! This module gives the invariant teeth. Every place in `hoplite-core` and
//! `hoplite-transport` that genuinely copies payload bytes (coalescing a segmented
//! buffer, gathering a payload into a contiguous frame, seeding a reduce accumulator)
//! calls [`record`], and forward-path tests assert the tally stays **zero** across a
//! full receive → append → read → re-encode hop.
//!
//! The counters are **thread-local** so concurrently-running tests cannot pollute each
//! other, and compile to nothing outside `debug_assertions` (release builds pay no
//! atomics, no TLS access, nothing).

#[cfg(debug_assertions)]
use std::cell::Cell;

#[cfg(debug_assertions)]
thread_local! {
    static PAYLOAD_BYTES_COPIED: Cell<u64> = const { Cell::new(0) };
    static PAYLOAD_COPIES: Cell<u64> = const { Cell::new(0) };
}

/// Record one payload memcpy of `bytes` bytes. No-op in release builds; empty copies
/// are not counted.
#[inline]
pub fn record(bytes: usize) {
    #[cfg(debug_assertions)]
    if bytes > 0 {
        PAYLOAD_BYTES_COPIED.with(|c| c.set(c.get() + bytes as u64));
        PAYLOAD_COPIES.with(|c| c.set(c.get() + 1));
    }
    #[cfg(not(debug_assertions))]
    let _ = bytes;
}

/// Reset this thread's counters (call at the start of a measured region).
pub fn reset() {
    #[cfg(debug_assertions)]
    {
        PAYLOAD_BYTES_COPIED.with(|c| c.set(0));
        PAYLOAD_COPIES.with(|c| c.set(0));
    }
}

/// Payload bytes memcpy'd on this thread since the last [`reset`]. Always `0` in
/// release builds (the instrumentation compiles out), so tests asserting on it must
/// assert **zero** — any other expectation would be vacuously wrong under `--release`.
pub fn bytes_copied() -> u64 {
    #[cfg(debug_assertions)]
    {
        PAYLOAD_BYTES_COPIED.with(|c| c.get())
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

/// Number of distinct payload memcpys on this thread since the last [`reset`].
/// Always `0` in release builds.
pub fn copies() -> u64 {
    #[cfg(debug_assertions)]
    {
        PAYLOAD_COPIES.with(|c| c.get())
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        record(0); // empty copies are free and not counted
        assert_eq!(bytes_copied(), 0);
        assert_eq!(copies(), 0);
        record(10);
        record(32);
        if cfg!(debug_assertions) {
            assert_eq!(bytes_copied(), 42);
            assert_eq!(copies(), 2);
        }
        reset();
        assert_eq!(bytes_copied(), 0);
        assert_eq!(copies(), 0);
    }
}
