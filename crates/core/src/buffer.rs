//! Object payloads and streaming (partially-received) buffers.
//!
//! Hoplite moves objects as sequences of fixed-size blocks. Three payload kinds exist:
//!
//! * [`Payload::Bytes`] carries real data in one contiguous shared buffer. The real
//!   transports and the data-plane correctness tests use this kind, and reduce
//!   operations perform real arithmetic on it.
//! * [`Payload::Segments`] carries real data as an ordered list of shared segments
//!   viewed as one logical byte string. It is what the forward path produces when a
//!   read spans several received blocks: the segments are passed through the store,
//!   the node engines, the channels fabric, and the scatter-gather frame encoder
//!   **without ever being coalesced** — the only full materialization happens at the
//!   final consumer ([`ProgressBuffer::to_payload`]).
//! * [`Payload::Synthetic`] carries only a length. The discrete-event simulator uses it
//!   so that cluster-scale experiments (16 nodes × 1 GiB objects) model timing without
//!   allocating or copying gigabytes of memory.
//!
//! Every protocol path treats the kinds identically; only the arithmetic differs, and
//! two real payloads compare equal when their logical bytes agree regardless of how
//! they are segmented.

use std::fmt;

use bytes::Bytes;

use crate::copytrace;

/// The contents (or modelled contents) of an object or of a single transferred block.
#[derive(Clone)]
pub enum Payload {
    /// Real bytes in one contiguous shared buffer.
    Bytes(Bytes),
    /// Real bytes as two or more non-empty shared segments (zero-copy views, usually
    /// straight out of a [`ProgressBuffer`]'s segment list). Constructed through
    /// [`Payload::from_segments`], which normalizes the degenerate cases to
    /// [`Payload::Bytes`] so this variant always means "genuinely scattered".
    Segments {
        /// The segments, in order. Invariant: at least two, none empty.
        segments: Vec<Bytes>,
        /// Total length in bytes (the sum of the segment lengths, cached).
        len: u64,
    },
    /// A length-only stand-in used by the simulator.
    Synthetic {
        /// Modelled length in bytes.
        len: u64,
    },
}

impl Payload {
    /// A real payload from a byte vector.
    pub fn from_vec(data: Vec<u8>) -> Payload {
        Payload::Bytes(Bytes::from(data))
    }

    /// A real payload of `len` zero bytes (useful in tests).
    pub fn zeros(len: usize) -> Payload {
        Payload::Bytes(Bytes::from(vec![0u8; len]))
    }

    /// A synthetic payload of `len` modelled bytes.
    pub fn synthetic(len: u64) -> Payload {
        Payload::Synthetic { len }
    }

    /// A real payload viewing `segments` as one logical byte string, zero-copy.
    /// Empty segments are dropped; zero or one survivors collapse to
    /// [`Payload::Bytes`].
    pub fn from_segments(segments: Vec<Bytes>) -> Payload {
        let mut segments: Vec<Bytes> = segments.into_iter().filter(|s| !s.is_empty()).collect();
        match segments.len() {
            0 => Payload::Bytes(Bytes::new()),
            1 => Payload::Bytes(segments.pop().expect("one segment")),
            _ => {
                let len = segments.iter().map(|s| s.len() as u64).sum();
                Payload::Segments { segments, len }
            }
        }
    }

    /// A real payload encoding a slice of `f32`s in little-endian order.
    pub fn from_f32s(values: &[f32]) -> Payload {
        let mut out = Vec::with_capacity(values.len() * 4);
        for v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        Payload::from_vec(out)
    }

    /// Decode a real payload as little-endian `f32`s. Panics on synthetic payloads or
    /// lengths not divisible by four (callers check [`Payload::is_synthetic`] first).
    pub fn to_f32s(&self) -> Vec<f32> {
        assert!(!self.is_synthetic(), "cannot decode a synthetic payload");
        assert!(self.len().is_multiple_of(4), "payload length {} not a multiple of 4", self.len());
        fn decode(b: &[u8]) -> Vec<f32> {
            b.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
        }
        match self {
            // Contiguous payloads decode straight from the borrow — no staging copy,
            // nothing in the debug copy tally.
            Payload::Bytes(b) => decode(b),
            _ => decode(&self.to_owned_vec().expect("real payload")),
        }
    }

    /// Length in (real or modelled) bytes.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Bytes(b) => b.len() as u64,
            Payload::Segments { len, .. } => *len,
            Payload::Synthetic { len } => *len,
        }
    }

    /// `true` when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` for simulator (length-only) payloads.
    pub fn is_synthetic(&self) -> bool {
        matches!(self, Payload::Synthetic { .. })
    }

    /// Borrow the real bytes **when they are contiguous**. Returns `None` for
    /// segmented and synthetic payloads; callers that can consume scattered data
    /// should iterate [`Payload::segments`] instead, and callers that genuinely need
    /// one flat buffer pay the coalesce via [`Payload::to_owned_vec`].
    pub fn as_bytes(&self) -> Option<&Bytes> {
        match self {
            Payload::Bytes(b) => Some(b),
            Payload::Segments { .. } | Payload::Synthetic { .. } => None,
        }
    }

    /// Iterate the real segments of this payload in order (one segment for
    /// [`Payload::Bytes`], none for synthetic payloads). Zero-copy: the forward path
    /// and the frame encoder consume payloads through this.
    pub fn segments(&self) -> impl Iterator<Item = &Bytes> {
        let slice: &[Bytes] = match self {
            Payload::Bytes(b) => std::slice::from_ref(b),
            Payload::Segments { segments, .. } => segments,
            Payload::Synthetic { .. } => &[],
        };
        slice.iter()
    }

    /// Copy the real bytes into one owned vector (`None` for synthetic payloads).
    /// This is a genuine materialization — it shows up in the debug copy tally.
    pub fn to_owned_vec(&self) -> Option<Vec<u8>> {
        match self {
            Payload::Bytes(b) => {
                copytrace::record(b.len());
                Some(b.to_vec())
            }
            Payload::Segments { segments, len } => {
                copytrace::record(*len as usize);
                let mut v = Vec::with_capacity(*len as usize);
                for s in segments {
                    v.extend_from_slice(s);
                }
                Some(v)
            }
            Payload::Synthetic { .. } => None,
        }
    }

    /// Sub-range `[offset, offset + len)` of this payload. Zero-copy for real
    /// payloads — a sub-range of a segmented payload is a (possibly shorter) list of
    /// segment sub-views — and trivial for synthetic ones.
    pub fn slice(&self, offset: u64, len: u64) -> Payload {
        let end = (offset + len).min(self.len());
        let offset = offset.min(end);
        match self {
            Payload::Bytes(b) => Payload::Bytes(b.slice(offset as usize..end as usize)),
            Payload::Segments { segments, .. } => {
                let mut out = Vec::new();
                let mut seg_start = 0u64;
                for seg in segments {
                    let seg_end = seg_start + seg.len() as u64;
                    if seg_end > offset && seg_start < end {
                        let a = offset.saturating_sub(seg_start) as usize;
                        let b = (end.min(seg_end) - seg_start) as usize;
                        out.push(seg.slice(a..b));
                    }
                    seg_start = seg_end;
                    if seg_start >= end {
                        break;
                    }
                }
                Payload::from_segments(out)
            }
            Payload::Synthetic { .. } => Payload::Synthetic { len: end - offset },
        }
    }

    /// Concatenate two payloads, zero-copy: the result shares both inputs' segments.
    /// Mixing real and synthetic payloads degrades to a synthetic result (only the
    /// simulator ever does this).
    pub fn concat(&self, other: &Payload) -> Payload {
        if self.is_synthetic() || other.is_synthetic() {
            return Payload::Synthetic { len: self.len() + other.len() };
        }
        Payload::from_segments(self.segments().chain(other.segments()).cloned().collect())
    }
}

impl PartialEq for Payload {
    /// Logical equality: two real payloads are equal when their bytes agree,
    /// regardless of segmentation; synthetic payloads are equal only to synthetic
    /// payloads of the same length.
    fn eq(&self, other: &Payload) -> bool {
        match (self.is_synthetic(), other.is_synthetic()) {
            (true, true) => return self.len() == other.len(),
            (false, false) => {}
            _ => return false,
        }
        if self.len() != other.len() {
            return false;
        }
        // Walk both segment lists in lockstep without materializing either side
        // (empty segments contribute nothing and are skipped).
        let mut ours = self.segments().map(|s| s.as_slice()).filter(|s| !s.is_empty());
        let mut theirs = other.segments().map(|s| s.as_slice()).filter(|s| !s.is_empty());
        let (mut a, mut b) = (&[][..], &[][..]);
        loop {
            if a.is_empty() {
                a = match ours.next() {
                    Some(s) => s,
                    None => return b.is_empty() && theirs.next().is_none(),
                };
                continue;
            }
            if b.is_empty() {
                b = match theirs.next() {
                    Some(s) => s,
                    None => return false,
                };
                continue;
            }
            let n = a.len().min(b.len());
            if a[..n] != b[..n] {
                return false;
            }
            a = &a[n..];
            b = &b[n..];
        }
    }
}

impl Eq for Payload {}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Bytes(b) => write!(f, "Payload::Bytes({} bytes)", b.len()),
            Payload::Segments { segments, len } => {
                write!(f, "Payload::Segments({len} bytes in {} segments)", segments.len())
            }
            Payload::Synthetic { len } => write!(f, "Payload::Synthetic({len} bytes)"),
        }
    }
}

/// An object that is being created or received block by block.
///
/// The buffer tracks a *watermark*: the number of contiguous bytes available from the
/// start of the object. Pipelining (§3.3) works by letting other parties read up to the
/// watermark while the rest of the object is still in flight.
///
/// Real data is stored as a sequence of contiguous **segments** adopted zero-copy
/// from the incoming blocks (which are themselves zero-copy views into receive
/// frames): an append is a refcount bump, not a memcpy. Every read below the
/// watermark is zero-copy too — a range inside one segment comes back as a shared
/// sub-slice, and a range spanning segments comes back as a [`Payload::Segments`]
/// view, so the forward path (receiver → chained receiver, participant → parent)
/// never coalesces. The one remaining copy is the single coalesce the first time the
/// complete payload is materialized for a local consumer
/// ([`ProgressBuffer::to_payload`]).
#[derive(Clone, Debug)]
pub struct ProgressBuffer {
    total_size: u64,
    watermark: u64,
    data: PayloadAccum,
}

#[derive(Clone, Debug)]
enum PayloadAccum {
    /// In-order contiguous segments; `starts[i]` is the object offset of
    /// `segments[i]`, and the segments jointly cover `0..watermark`.
    Real {
        segments: Vec<Bytes>,
        starts: Vec<u64>,
    },
    Synthetic,
}

impl ProgressBuffer {
    /// Start an empty buffer for an object of `total_size` bytes. `synthetic` selects
    /// the length-only representation used by the simulator.
    pub fn new(total_size: u64, synthetic: bool) -> Self {
        let data = if synthetic {
            PayloadAccum::Synthetic
        } else {
            PayloadAccum::Real { segments: Vec::new(), starts: Vec::new() }
        };
        ProgressBuffer { total_size, watermark: 0, data }
    }

    /// Build an already-complete buffer from a payload (the `Put` path). Zero-copy:
    /// the payload's segments become the buffer's segments.
    pub fn complete_from(payload: Payload) -> Self {
        let total = payload.len();
        let data = if payload.is_synthetic() {
            PayloadAccum::Synthetic
        } else {
            let mut segments = Vec::new();
            let mut starts = Vec::new();
            let mut at = 0u64;
            for seg in payload.segments() {
                if !seg.is_empty() {
                    starts.push(at);
                    at += seg.len() as u64;
                    segments.push(seg.clone());
                }
            }
            PayloadAccum::Real { segments, starts }
        };
        ProgressBuffer { total_size: total, watermark: total, data }
    }

    /// Total object size in bytes.
    pub fn total_size(&self) -> u64 {
        self.total_size
    }

    /// Contiguous bytes available from the start of the object.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// `true` once every byte has been appended.
    pub fn is_complete(&self) -> bool {
        self.watermark >= self.total_size
    }

    /// `true` if the buffer stores only modelled lengths.
    pub fn is_synthetic(&self) -> bool {
        matches!(self.data, PayloadAccum::Synthetic)
    }

    /// Append a block at `offset`. Blocks must arrive in order (offset == watermark);
    /// out-of-order appends indicate a protocol bug and return `false` without
    /// modifying the buffer. Duplicate (already-covered) blocks are ignored and return
    /// `true`, which makes retransmission after sender failover idempotent.
    ///
    /// Real blocks are adopted as shared segments — no per-block memcpy, whether the
    /// block arrives contiguous or already segmented.
    pub fn append_at(&mut self, offset: u64, payload: &Payload) -> bool {
        let len = payload.len();
        if offset + len <= self.watermark {
            return true; // duplicate block, e.g. replayed after a failover
        }
        if offset > self.watermark {
            return false; // gap: the protocol only ever streams contiguously
        }
        // Possibly overlapping head; keep only the new suffix.
        let skip = self.watermark - offset;
        let fresh = payload.slice(skip, len - skip);
        if let PayloadAccum::Real { segments, starts } = &mut self.data {
            if fresh.is_synthetic() {
                // A synthetic block arriving into a real buffer would corrupt it.
                // This only happens if a driver mixes modes, which is a bug.
                return false;
            }
            let mut at = self.watermark;
            for seg in fresh.segments() {
                if !seg.is_empty() {
                    starts.push(at);
                    at += seg.len() as u64;
                    segments.push(seg.clone());
                }
            }
        }
        self.watermark = (offset + len).min(self.total_size);
        true
    }

    /// Read `[offset, offset+len)` if it is already below the watermark. Always
    /// zero-copy: a range inside one received segment (the common, block-aligned
    /// case) is a shared sub-slice; a range spanning segments is a
    /// [`Payload::Segments`] view over the covered pieces.
    pub fn read(&self, offset: u64, len: u64) -> Option<Payload> {
        let end = (offset + len).min(self.total_size);
        if end > self.watermark || offset > end {
            return None;
        }
        match &self.data {
            PayloadAccum::Real { segments, starts } => {
                if offset == end {
                    return Some(Payload::Bytes(Bytes::new()));
                }
                // Last segment starting at or before `offset`.
                let idx = starts.partition_point(|&s| s <= offset) - 1;
                let seg_start = starts[idx];
                let seg = &segments[idx];
                if end <= seg_start + seg.len() as u64 {
                    let a = (offset - seg_start) as usize;
                    let b = (end - seg_start) as usize;
                    return Some(Payload::Bytes(seg.slice(a..b)));
                }
                // Range spans segments: a zero-copy view over the covered pieces.
                let mut views = Vec::new();
                let mut at = offset;
                for (i, seg) in segments.iter().enumerate().skip(idx) {
                    if at >= end {
                        break;
                    }
                    let seg_start = starts[i];
                    let a = (at - seg_start) as usize;
                    let b = ((end - seg_start) as usize).min(seg.len());
                    views.push(seg.slice(a..b));
                    at = seg_start + b as u64;
                }
                Some(Payload::from_segments(views))
            }
            PayloadAccum::Synthetic => Some(Payload::Synthetic { len: end - offset }),
        }
    }

    /// The complete payload; `None` until [`ProgressBuffer::is_complete`]. The first
    /// call on a multi-segment buffer coalesces it into one segment — the **single**
    /// full materialization of the receive path, paid by the final consumer —
    /// subsequent calls are zero-copy clones.
    pub fn to_payload(&mut self) -> Option<Payload> {
        if !self.is_complete() {
            return None;
        }
        Some(match &mut self.data {
            PayloadAccum::Real { segments, starts } => {
                if segments.len() > 1 {
                    let total: usize = segments.iter().map(|s| s.len()).sum();
                    copytrace::record(total);
                    let mut v = Vec::with_capacity(total);
                    for seg in segments.iter() {
                        v.extend_from_slice(seg);
                    }
                    *segments = vec![Bytes::from(v)];
                    *starts = vec![0];
                }
                match segments.first() {
                    Some(seg) => Payload::Bytes(seg.clone()),
                    None => Payload::Bytes(Bytes::new()),
                }
            }
            PayloadAccum::Synthetic => Payload::Synthetic { len: self.total_size },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_slice_and_concat() {
        let p = Payload::from_vec(vec![1, 2, 3, 4, 5]);
        assert_eq!(p.slice(1, 3).as_bytes().unwrap().as_ref(), &[2, 3, 4]);
        assert_eq!(p.slice(4, 10).len(), 1);
        let q = Payload::from_vec(vec![6, 7]);
        assert_eq!(p.concat(&q).len(), 7);
        let s = Payload::synthetic(100);
        assert_eq!(s.slice(90, 20).len(), 10);
        assert!(p.concat(&s).is_synthetic());
    }

    #[test]
    fn f32_roundtrip() {
        let values = vec![1.0f32, -2.5, 3.25, 0.0];
        let p = Payload::from_f32s(&values);
        assert_eq!(p.len(), 16);
        assert_eq!(p.to_f32s(), values);
    }

    #[test]
    fn segmented_payload_equals_contiguous() {
        let seg = Payload::from_segments(vec![
            Bytes::from(vec![1, 2]),
            Bytes::from(vec![3]),
            Bytes::from(vec![4, 5, 6]),
        ]);
        assert!(matches!(seg, Payload::Segments { .. }));
        assert_eq!(seg.len(), 6);
        assert_eq!(seg, Payload::from_vec(vec![1, 2, 3, 4, 5, 6]));
        assert_ne!(seg, Payload::from_vec(vec![1, 2, 3, 4, 5, 7]));
        assert_ne!(seg, Payload::from_vec(vec![1, 2, 3, 4, 5]));
        assert_ne!(seg, Payload::synthetic(6));
        // Differently-split segmentations of the same bytes are equal too.
        let other = Payload::from_segments(vec![
            Bytes::from(vec![1]),
            Bytes::from(vec![2, 3, 4, 5]),
            Bytes::from(vec![6]),
        ]);
        assert_eq!(seg, other);
    }

    #[test]
    fn from_segments_normalizes() {
        assert!(matches!(Payload::from_segments(vec![]), Payload::Bytes(_)));
        let one = Payload::from_segments(vec![Bytes::new(), Bytes::from(vec![9])]);
        assert_eq!(one.as_bytes().unwrap().as_ref(), &[9]);
        let two = Payload::from_segments(vec![Bytes::from(vec![1]), Bytes::from(vec![2])]);
        assert!(two.as_bytes().is_none());
        assert_eq!(two.segments().count(), 2);
    }

    #[test]
    fn segmented_slice_is_zero_copy() {
        let a = Bytes::from(vec![0, 1, 2, 3]);
        let b = Bytes::from(vec![4, 5, 6, 7]);
        let p = Payload::from_segments(vec![a.clone(), b.clone()]);
        // Slice inside the second segment collapses to a contiguous shared view.
        let tail = p.slice(5, 3);
        let tail_bytes = tail.as_bytes().unwrap();
        assert_eq!(tail_bytes.as_ref(), &[5, 6, 7]);
        assert_eq!(tail_bytes.as_slice().as_ptr(), b.as_slice()[1..].as_ptr());
        // Slice spanning the boundary keeps both views, still sharing storage.
        let span = p.slice(2, 4);
        assert_eq!(span, Payload::from_vec(vec![2, 3, 4, 5]));
        let ptrs: Vec<_> = span.segments().map(|s| s.as_slice().as_ptr()).collect();
        assert_eq!(ptrs, vec![a.as_slice()[2..].as_ptr(), b.as_slice().as_ptr()]);
    }

    #[test]
    fn concat_shares_segments() {
        let a = Payload::from_vec(vec![1, 2]);
        let b = Payload::from_vec(vec![3]);
        let joined = a.concat(&b);
        assert_eq!(joined, Payload::from_vec(vec![1, 2, 3]));
        let a_ptr = a.as_bytes().unwrap().as_slice().as_ptr();
        assert_eq!(joined.segments().next().unwrap().as_slice().as_ptr(), a_ptr);
    }

    #[test]
    fn progress_buffer_in_order() {
        let mut b = ProgressBuffer::new(10, false);
        assert!(!b.is_complete());
        assert!(b.append_at(0, &Payload::from_vec(vec![0, 1, 2, 3])));
        assert_eq!(b.watermark(), 4);
        // Gap is rejected.
        assert!(!b.append_at(6, &Payload::from_vec(vec![9])));
        // Duplicate is accepted and ignored.
        assert!(b.append_at(0, &Payload::from_vec(vec![0, 1])));
        assert_eq!(b.watermark(), 4);
        // Overlapping append keeps only the new suffix.
        assert!(b.append_at(2, &Payload::from_vec(vec![2, 3, 4, 5])));
        assert_eq!(b.watermark(), 6);
        assert!(b.append_at(6, &Payload::from_vec(vec![6, 7, 8, 9])));
        assert!(b.is_complete());
        let all = b.to_payload().unwrap();
        assert_eq!(all.as_bytes().unwrap().as_ref(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn progress_buffer_read_respects_watermark() {
        let mut b = ProgressBuffer::new(8, false);
        b.append_at(0, &Payload::from_vec(vec![1, 2, 3, 4]));
        assert!(b.read(2, 4).is_none());
        assert_eq!(b.read(1, 3).unwrap().as_bytes().unwrap().as_ref(), &[2, 3, 4]);
        assert!(b.to_payload().is_none());
    }

    #[test]
    fn spanning_read_is_a_zero_copy_segment_view() {
        let mut b = ProgressBuffer::new(8, false);
        let first = Bytes::from(vec![0, 1, 2, 3]);
        let second = Bytes::from(vec![4, 5, 6, 7]);
        b.append_at(0, &Payload::Bytes(first.clone()));
        b.append_at(4, &Payload::Bytes(second.clone()));
        copytrace::reset();
        let spanning = b.read(2, 4).unwrap();
        assert_eq!(spanning, Payload::from_vec(vec![2, 3, 4, 5]));
        let ptrs: Vec<_> = spanning.segments().map(|s| s.as_slice().as_ptr()).collect();
        assert_eq!(ptrs, vec![first.as_slice()[2..].as_ptr(), second.as_slice().as_ptr()]);
        assert_eq!(crate::copytrace::bytes_copied(), 0, "spanning reads must not copy");
    }

    #[test]
    fn segmented_append_adopts_each_segment() {
        let mut b = ProgressBuffer::new(6, false);
        let block = Payload::from_segments(vec![Bytes::from(vec![0, 1]), Bytes::from(vec![2, 3])]);
        copytrace::reset();
        assert!(b.append_at(0, &block));
        assert_eq!(crate::copytrace::bytes_copied(), 0, "segmented appends must not copy");
        assert_eq!(b.watermark(), 4);
        assert!(b.append_at(4, &Payload::from_vec(vec![4, 5])));
        assert_eq!(b.to_payload().unwrap(), Payload::from_vec(vec![0, 1, 2, 3, 4, 5]));
    }

    #[test]
    fn synthetic_progress_buffer() {
        let mut b = ProgressBuffer::new(1000, true);
        assert!(b.append_at(0, &Payload::synthetic(400)));
        assert!(b.append_at(400, &Payload::synthetic(600)));
        assert!(b.is_complete());
        assert!(b.to_payload().unwrap().is_synthetic());
        assert_eq!(b.read(100, 50).unwrap().len(), 50);
    }

    #[test]
    fn complete_from_payload() {
        let b = ProgressBuffer::complete_from(Payload::from_vec(vec![9; 32]));
        assert!(b.is_complete());
        assert_eq!(b.total_size(), 32);
        assert_eq!(b.read(30, 10).unwrap().len(), 2);
        // A segmented payload is adopted segment-by-segment, zero-copy.
        let seg = Payload::from_segments(vec![Bytes::from(vec![1, 2]), Bytes::from(vec![3, 4])]);
        copytrace::reset();
        let mut b = ProgressBuffer::complete_from(seg);
        assert_eq!(crate::copytrace::bytes_copied(), 0);
        assert_eq!(b.read(1, 2).unwrap(), Payload::from_vec(vec![2, 3]));
        assert_eq!(b.to_payload().unwrap().as_bytes().unwrap().as_ref(), &[1, 2, 3, 4]);
    }
}
