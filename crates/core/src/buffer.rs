//! Object payloads and streaming (partially-received) buffers.
//!
//! Hoplite moves objects as sequences of fixed-size blocks. Two payload kinds exist:
//!
//! * [`Payload::Bytes`] carries real data. The real transports and the data-plane
//!   correctness tests use this kind, and reduce operations perform real arithmetic on
//!   it.
//! * [`Payload::Synthetic`] carries only a length. The discrete-event simulator uses it
//!   so that cluster-scale experiments (16 nodes × 1 GiB objects) model timing without
//!   allocating or copying gigabytes of memory. Every protocol path treats the two
//!   kinds identically; only the arithmetic differs.

use std::fmt;

use bytes::Bytes;

/// The contents (or modelled contents) of an object or of a single transferred block.
#[derive(Clone, PartialEq, Eq)]
pub enum Payload {
    /// Real bytes.
    Bytes(Bytes),
    /// A length-only stand-in used by the simulator.
    Synthetic {
        /// Modelled length in bytes.
        len: u64,
    },
}

impl Payload {
    /// A real payload from a byte vector.
    pub fn from_vec(data: Vec<u8>) -> Payload {
        Payload::Bytes(Bytes::from(data))
    }

    /// A real payload of `len` zero bytes (useful in tests).
    pub fn zeros(len: usize) -> Payload {
        Payload::Bytes(Bytes::from(vec![0u8; len]))
    }

    /// A synthetic payload of `len` modelled bytes.
    pub fn synthetic(len: u64) -> Payload {
        Payload::Synthetic { len }
    }

    /// A real payload encoding a slice of `f32`s in little-endian order.
    pub fn from_f32s(values: &[f32]) -> Payload {
        let mut out = Vec::with_capacity(values.len() * 4);
        for v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        Payload::from_vec(out)
    }

    /// Decode a real payload as little-endian `f32`s. Panics on synthetic payloads or
    /// lengths not divisible by four (callers check [`Payload::is_synthetic`] first).
    pub fn to_f32s(&self) -> Vec<f32> {
        match self {
            Payload::Bytes(b) => {
                assert!(b.len() % 4 == 0, "payload length {} not a multiple of 4", b.len());
                b.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
            }
            Payload::Synthetic { .. } => panic!("cannot decode a synthetic payload"),
        }
    }

    /// Length in (real or modelled) bytes.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Bytes(b) => b.len() as u64,
            Payload::Synthetic { len } => *len,
        }
    }

    /// `true` when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` for simulator (length-only) payloads.
    pub fn is_synthetic(&self) -> bool {
        matches!(self, Payload::Synthetic { .. })
    }

    /// Borrow the real bytes, if any.
    pub fn as_bytes(&self) -> Option<&Bytes> {
        match self {
            Payload::Bytes(b) => Some(b),
            Payload::Synthetic { .. } => None,
        }
    }

    /// Sub-range `[offset, offset + len)` of this payload. Cheap (zero-copy) for real
    /// payloads, trivial for synthetic ones.
    pub fn slice(&self, offset: u64, len: u64) -> Payload {
        let end = (offset + len).min(self.len());
        let offset = offset.min(end);
        match self {
            Payload::Bytes(b) => Payload::Bytes(b.slice(offset as usize..end as usize)),
            Payload::Synthetic { .. } => Payload::Synthetic { len: end - offset },
        }
    }

    /// Concatenate two payloads. Mixing real and synthetic payloads degrades to a
    /// synthetic result (only the simulator ever does this).
    pub fn concat(&self, other: &Payload) -> Payload {
        match (self, other) {
            (Payload::Bytes(a), Payload::Bytes(b)) => {
                let mut v = Vec::with_capacity(a.len() + b.len());
                v.extend_from_slice(a);
                v.extend_from_slice(b);
                Payload::from_vec(v)
            }
            _ => Payload::Synthetic { len: self.len() + other.len() },
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Bytes(b) => write!(f, "Payload::Bytes({} bytes)", b.len()),
            Payload::Synthetic { len } => write!(f, "Payload::Synthetic({len} bytes)"),
        }
    }
}

/// An object that is being created or received block by block.
///
/// The buffer tracks a *watermark*: the number of contiguous bytes available from the
/// start of the object. Pipelining (§3.3) works by letting other parties read up to the
/// watermark while the rest of the object is still in flight.
///
/// Real data is stored as a sequence of contiguous **segments** adopted zero-copy
/// from the incoming blocks (which are themselves zero-copy views into receive
/// frames): an append is a refcount bump, not a memcpy. Reads that fall inside one
/// segment — the common case, since blocks are appended and forwarded at the same
/// block granularity — are zero-copy slices too. The one remaining copy is a single
/// coalesce the first time the complete payload is materialized.
#[derive(Clone, Debug)]
pub struct ProgressBuffer {
    total_size: u64,
    watermark: u64,
    data: PayloadAccum,
}

#[derive(Clone, Debug)]
enum PayloadAccum {
    /// In-order contiguous segments; `starts[i]` is the object offset of
    /// `segments[i]`, and the segments jointly cover `0..watermark`.
    Real {
        segments: Vec<Bytes>,
        starts: Vec<u64>,
    },
    Synthetic,
}

impl ProgressBuffer {
    /// Start an empty buffer for an object of `total_size` bytes. `synthetic` selects
    /// the length-only representation used by the simulator.
    pub fn new(total_size: u64, synthetic: bool) -> Self {
        let data = if synthetic {
            PayloadAccum::Synthetic
        } else {
            PayloadAccum::Real { segments: Vec::new(), starts: Vec::new() }
        };
        ProgressBuffer { total_size, watermark: 0, data }
    }

    /// Build an already-complete buffer from a payload (the `Put` path). Zero-copy:
    /// the payload becomes the buffer's single segment.
    pub fn complete_from(payload: Payload) -> Self {
        let total = payload.len();
        let data = match payload {
            Payload::Bytes(b) => PayloadAccum::Real { segments: vec![b], starts: vec![0] },
            Payload::Synthetic { .. } => PayloadAccum::Synthetic,
        };
        ProgressBuffer { total_size: total, watermark: total, data }
    }

    /// Total object size in bytes.
    pub fn total_size(&self) -> u64 {
        self.total_size
    }

    /// Contiguous bytes available from the start of the object.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// `true` once every byte has been appended.
    pub fn is_complete(&self) -> bool {
        self.watermark >= self.total_size
    }

    /// `true` if the buffer stores only modelled lengths.
    pub fn is_synthetic(&self) -> bool {
        matches!(self.data, PayloadAccum::Synthetic)
    }

    /// Append a block at `offset`. Blocks must arrive in order (offset == watermark);
    /// out-of-order appends indicate a protocol bug and return `false` without
    /// modifying the buffer. Duplicate (already-covered) blocks are ignored and return
    /// `true`, which makes retransmission after sender failover idempotent.
    ///
    /// Real blocks are adopted as shared segments — no per-block memcpy.
    pub fn append_at(&mut self, offset: u64, payload: &Payload) -> bool {
        let len = payload.len();
        if offset + len <= self.watermark {
            return true; // duplicate block, e.g. replayed after a failover
        }
        if offset > self.watermark {
            return false; // gap: the protocol only ever streams contiguously
        }
        // Possibly overlapping head; keep only the new suffix.
        let skip = self.watermark - offset;
        let fresh = payload.slice(skip, len - skip);
        if let PayloadAccum::Real { segments, starts } = &mut self.data {
            match fresh.as_bytes() {
                Some(b) => {
                    if !b.is_empty() {
                        starts.push(self.watermark);
                        segments.push(b.clone());
                    }
                }
                None => {
                    // A synthetic block arriving into a real buffer would corrupt it.
                    // This only happens if a driver mixes modes, which is a bug.
                    return false;
                }
            }
        }
        self.watermark = (offset + len).min(self.total_size);
        true
    }

    /// Read `[offset, offset+len)` if it is already below the watermark. Zero-copy
    /// when the range falls inside one received segment (the common, block-aligned
    /// case); otherwise the spanned segments are copied into a fresh payload.
    pub fn read(&self, offset: u64, len: u64) -> Option<Payload> {
        let end = (offset + len).min(self.total_size);
        if end > self.watermark || offset > end {
            return None;
        }
        match &self.data {
            PayloadAccum::Real { segments, starts } => {
                if offset == end {
                    return Some(Payload::Bytes(Bytes::new()));
                }
                // Last segment starting at or before `offset`.
                let idx = starts.partition_point(|&s| s <= offset) - 1;
                let seg_start = starts[idx];
                let seg = &segments[idx];
                if end <= seg_start + seg.len() as u64 {
                    let a = (offset - seg_start) as usize;
                    let b = (end - seg_start) as usize;
                    return Some(Payload::Bytes(seg.slice(a..b)));
                }
                // Range spans segments: copy the covered pieces out.
                let mut v = Vec::with_capacity((end - offset) as usize);
                let mut at = offset;
                for (i, seg) in segments.iter().enumerate().skip(idx) {
                    if at >= end {
                        break;
                    }
                    let seg_start = starts[i];
                    let a = (at - seg_start) as usize;
                    let b = ((end - seg_start) as usize).min(seg.len());
                    v.extend_from_slice(&seg.as_slice()[a..b]);
                    at = seg_start + b as u64;
                }
                Some(Payload::Bytes(Bytes::from(v)))
            }
            PayloadAccum::Synthetic => Some(Payload::Synthetic { len: end - offset }),
        }
    }

    /// The complete payload; `None` until [`ProgressBuffer::is_complete`]. The first
    /// call on a multi-segment buffer coalesces it into one segment (the single
    /// remaining copy on the receive path); subsequent calls are zero-copy clones.
    pub fn to_payload(&mut self) -> Option<Payload> {
        if !self.is_complete() {
            return None;
        }
        Some(match &mut self.data {
            PayloadAccum::Real { segments, starts } => {
                if segments.len() > 1 {
                    let total: usize = segments.iter().map(|s| s.len()).sum();
                    let mut v = Vec::with_capacity(total);
                    for seg in segments.iter() {
                        v.extend_from_slice(seg);
                    }
                    *segments = vec![Bytes::from(v)];
                    *starts = vec![0];
                }
                match segments.first() {
                    Some(seg) => Payload::Bytes(seg.clone()),
                    None => Payload::Bytes(Bytes::new()),
                }
            }
            PayloadAccum::Synthetic => Payload::Synthetic { len: self.total_size },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_slice_and_concat() {
        let p = Payload::from_vec(vec![1, 2, 3, 4, 5]);
        assert_eq!(p.slice(1, 3).as_bytes().unwrap().as_ref(), &[2, 3, 4]);
        assert_eq!(p.slice(4, 10).len(), 1);
        let q = Payload::from_vec(vec![6, 7]);
        assert_eq!(p.concat(&q).len(), 7);
        let s = Payload::synthetic(100);
        assert_eq!(s.slice(90, 20).len(), 10);
        assert!(p.concat(&s).is_synthetic());
    }

    #[test]
    fn f32_roundtrip() {
        let values = vec![1.0f32, -2.5, 3.25, 0.0];
        let p = Payload::from_f32s(&values);
        assert_eq!(p.len(), 16);
        assert_eq!(p.to_f32s(), values);
    }

    #[test]
    fn progress_buffer_in_order() {
        let mut b = ProgressBuffer::new(10, false);
        assert!(!b.is_complete());
        assert!(b.append_at(0, &Payload::from_vec(vec![0, 1, 2, 3])));
        assert_eq!(b.watermark(), 4);
        // Gap is rejected.
        assert!(!b.append_at(6, &Payload::from_vec(vec![9])));
        // Duplicate is accepted and ignored.
        assert!(b.append_at(0, &Payload::from_vec(vec![0, 1])));
        assert_eq!(b.watermark(), 4);
        // Overlapping append keeps only the new suffix.
        assert!(b.append_at(2, &Payload::from_vec(vec![2, 3, 4, 5])));
        assert_eq!(b.watermark(), 6);
        assert!(b.append_at(6, &Payload::from_vec(vec![6, 7, 8, 9])));
        assert!(b.is_complete());
        let all = b.to_payload().unwrap();
        assert_eq!(all.as_bytes().unwrap().as_ref(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn progress_buffer_read_respects_watermark() {
        let mut b = ProgressBuffer::new(8, false);
        b.append_at(0, &Payload::from_vec(vec![1, 2, 3, 4]));
        assert!(b.read(2, 4).is_none());
        assert_eq!(b.read(1, 3).unwrap().as_bytes().unwrap().as_ref(), &[2, 3, 4]);
        assert!(b.to_payload().is_none());
    }

    #[test]
    fn synthetic_progress_buffer() {
        let mut b = ProgressBuffer::new(1000, true);
        assert!(b.append_at(0, &Payload::synthetic(400)));
        assert!(b.append_at(400, &Payload::synthetic(600)));
        assert!(b.is_complete());
        assert!(b.to_payload().unwrap().is_synthetic());
        assert_eq!(b.read(100, 50).unwrap().len(), 50);
    }

    #[test]
    fn complete_from_payload() {
        let b = ProgressBuffer::complete_from(Payload::from_vec(vec![9; 32]));
        assert!(b.is_complete());
        assert_eq!(b.total_size(), 32);
        assert_eq!(b.read(30, 10).unwrap().len(), 2);
    }
}
