//! The replicated object directory (§3.2 storage model, §3.5 fault tolerance).
//!
//! The directory is a sharded hash table mapping each `ObjectID` to its size and the
//! set of node locations holding a partial or complete copy. The seed implemented it
//! as one unreplicated [`DirectoryShard`] per node; this module layers the paper's
//! fault-tolerance story on top of that state machine:
//!
//! | Layer | Module | Responsibility |
//! |---|---|---|
//! | shard | [`shard`] | One shard as a pure, deterministic state machine (unchanged semantics: leases, pull-edge cycle avoidance, parked queries, inline cache) |
//! | replication | [`replication`] | Primary/backup replicas of a shard: op-log shipping, suppressed replies on backups, epoch-stamped promotion |
//! | service | [`service`] | Placement (shard → replica set), op routing, and promotion when a primary dies |
//! | client | [`client`] | The failover-aware façade every engine calls: resolves the current primary, journals registrations/subscriptions, and computes the re-drive set after a failover |
//!
//! Shard state flows through the system exactly once on the happy path: a client op
//! reaches the shard's primary, the primary applies it and log-ships the op to its
//! backups, and because the shard is deterministic the backups converge to the same
//! state — including leases and parked queries, so a promoted backup can answer a
//! query that parked on its predecessor.

pub mod client;
pub mod replication;
pub mod service;
pub mod shard;

pub use client::{DirectoryClient, FailoverRedrive, Registration};
pub use replication::{ReplicaRole, ShardReplica};
pub use service::{DirectoryPlacement, DirectoryService};
pub use shard::DirectoryShard;
