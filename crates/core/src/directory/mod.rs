//! The replicated object directory (§3.2 storage model, §3.5 fault tolerance).
//!
//! The directory is a sharded hash table mapping each `ObjectID` to its size and the
//! set of node locations holding a partial or complete copy. The seed implemented it
//! as one unreplicated [`DirectoryShard`] per node; this module layers the paper's
//! fault-tolerance story on top of that state machine:
//!
//! | Layer | Module | Responsibility |
//! |---|---|---|
//! | shard | [`shard`] | One shard as a pure, deterministic state machine (leases, pull-edge cycle avoidance, parked queries, inline cache), plus snapshot capture/restore for state transfer |
//! | replication | [`replication`] | Primary/backup replicas of a shard: sequenced op-log shipping with cumulative acks, origin confirms once an entry is fully acked, epoch-stamped promotion, and snapshot-based resync for replicas with unbridgeable gaps |
//! | service | [`service`] | The epoch-versioned placement view (per-shard rank cursor + failover epochs), op routing, snapshot serving, and promotion when a primary dies |
//! | client | [`client`] | The failover-aware façade every engine calls: resolves the current primary, journals registrations/subscriptions with their confirmation state, and re-drives only the genuinely-unacked window after a failover |
//!
//! Shard state flows through the system exactly once on the happy path: a client op
//! reaches the shard's primary, the primary applies it and log-ships the op (with a
//! sequence number) to its backups, the backups ack the applied prefix, and the
//! primary confirms the op to its origin once every tracked backup acked — at which
//! point the op is durable with no client participation. Because the shard is
//! deterministic the backups converge to the same state — including leases and
//! parked queries, so a promoted backup can answer a query that parked on its
//! predecessor. A restarted replica rejoins through a snapshot + log catch-up and a
//! cluster-wide `DirResynced` re-admission announcement, so placement is no longer
//! failure-monotonic: after a rolling restart the original owners lead their shards
//! again.

pub mod client;
pub mod replication;
pub mod service;
pub mod shard;

pub use client::{DirectoryClient, FailoverRedrive, Registration};
pub use replication::{ReplayOutcome, ReplicaRole, ShardReplica};
pub use service::{DirectoryPlacement, DirectoryService, PlacementView};
pub use shard::DirectoryShard;
