//! Primary/backup replication of one directory shard (§3.5).
//!
//! The paper keeps the object directory available across node failures by
//! replicating it; this module implements the per-replica half of that design as a
//! pure state machine layered on [`DirectoryShard`]:
//!
//! * the **primary** applies every client op, emits the replies, and log-ships the op
//!   to its backups (the op stream *is* the log — [`DirectoryShard`] is deterministic,
//!   so replaying it reproduces the full shard state including leases, parked queries
//!   and subscriptions);
//! * a **backup** replays shipped ops against its mirror shard with replies
//!   suppressed — only the primary talks to clients;
//! * on promotion the new primary bumps its **epoch**; replicated ops stamped with a
//!   lower epoch (stragglers from a deposed primary) are rejected, which keeps a
//!   once-demoted primary from rewinding a promoted replica's state.
//!
//! Which replica *is* the primary is decided by the placement layer in
//! [`super::service`]; this module only implements the mechanics.

use crate::object::{NodeId, ObjectId, ObjectStatus};
use crate::protocol::{DirOp, Message};

use super::shard::DirectoryShard;

/// The role a replica currently plays for its shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaRole {
    /// Applies client ops, sends replies, ships the op log to backups.
    Primary,
    /// Mirrors the primary by replaying its op log; replies are suppressed.
    Backup,
}

/// One replica of one directory shard: the shard state machine plus its replication
/// role and promotion epoch.
#[derive(Debug)]
pub struct ShardReplica {
    shard: DirectoryShard,
    role: ReplicaRole,
    epoch: u64,
}

impl ShardReplica {
    /// Create an empty replica with the given starting role.
    pub fn new(shard: DirectoryShard, role: ReplicaRole) -> Self {
        ShardReplica { shard, role, epoch: 0 }
    }

    /// Current role.
    pub fn role(&self) -> ReplicaRole {
        self.role
    }

    /// Current promotion epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Read-only view of the underlying shard (introspection and tests).
    pub fn shard(&self) -> &DirectoryShard {
        &self.shard
    }

    /// Promote this replica to primary at `epoch`, so stragglers from any deposed
    /// predecessor are recognizably stale. The caller derives `epoch` from the
    /// replica's rank in the replica set (rank k becomes primary only after all k
    /// predecessors died, and predecessor k-1 never shipped above epoch k-1), which
    /// keeps epochs strictly increasing along the promotion chain even when an
    /// intermediate primary lived too briefly for its shipments to arrive. A `+1`
    /// bump instead would collide: two successive primaries could both ship at the
    /// same epoch, letting the deposed one's stragglers rewind the promoted replica.
    /// Never lowers an epoch already learned from the replication stream.
    pub fn promote_to(&mut self, epoch: u64) {
        self.role = ReplicaRole::Primary;
        self.epoch = self.epoch.max(epoch);
    }

    /// Apply a client op as the primary: mutate the shard, collect the replies it
    /// wants delivered, and return the op so the caller can ship it to the backups.
    ///
    /// Panics in debug builds if called on a backup — the service layer routes ops to
    /// the primary before applying.
    pub fn apply_primary(&mut self, op: &DirOp, out: &mut Vec<(NodeId, Message)>) {
        debug_assert_eq!(self.role, ReplicaRole::Primary, "client ops apply on the primary");
        apply_op(&mut self.shard, op, out);
    }

    /// Replay a replicated op shipped by the shard's primary. Returns `false` (and
    /// applies nothing) when the op's epoch is below this replica's — a deposed
    /// primary's straggler. Replies are discarded: only the primary talks to clients.
    pub fn apply_replicated(&mut self, epoch: u64, op: &DirOp) -> bool {
        if epoch < self.epoch {
            return false;
        }
        self.epoch = epoch;
        let mut suppressed = Vec::new();
        apply_op(&mut self.shard, op, &mut suppressed);
        true
    }

    /// Purge everything the shard knows about a failed node. Applied directly on
    /// every replica (the failure detector notifies all nodes, and the purge is
    /// deterministic), so it does not travel through the replication log.
    pub fn node_failed(&mut self, node: NodeId) {
        self.shard.node_failed(node);
    }

    /// Known locations of an object (introspection for failover assertions).
    pub fn locations(&self, object: ObjectId) -> Vec<(NodeId, ObjectStatus)> {
        self.shard.locations(object)
    }
}

/// Dispatch one op into a shard.
fn apply_op(shard: &mut DirectoryShard, op: &DirOp, out: &mut Vec<(NodeId, Message)>) {
    match op {
        DirOp::Register { object, holder, status, size } => {
            shard.register(*object, *holder, *status, *size, out)
        }
        DirOp::PutInline { object, holder, payload } => {
            shard.put_inline(*object, *holder, payload.clone(), out)
        }
        DirOp::Unregister { object, holder } => shard.unregister(*object, *holder),
        DirOp::Query { object, requester, query_id, exclude } => {
            shard.query(*object, *requester, *query_id, exclude.clone(), out)
        }
        DirOp::Subscribe { object, subscriber } => shard.subscribe(*object, *subscriber, out),
        DirOp::Unsubscribe { object, subscriber } => shard.unsubscribe(*object, *subscriber),
        DirOp::TransferDone { object, receiver, sender } => {
            shard.transfer_done(*object, *receiver, *sender)
        }
        DirOp::Delete { object } => shard.delete(*object, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HopliteConfig;
    use crate::protocol::QueryResult;

    fn obj(name: &str) -> ObjectId {
        ObjectId::from_name(name)
    }

    fn pair() -> (ShardReplica, ShardReplica) {
        let cfg = HopliteConfig::small_for_tests();
        (
            ShardReplica::new(DirectoryShard::new(0, cfg.clone()), ReplicaRole::Primary),
            ShardReplica::new(DirectoryShard::new(0, cfg), ReplicaRole::Backup),
        )
    }

    #[test]
    fn backup_mirrors_the_primary_through_the_op_log() {
        let (mut primary, mut backup) = pair();
        let ops = vec![
            DirOp::Register {
                object: obj("a"),
                holder: NodeId(1),
                status: ObjectStatus::Complete,
                size: 100,
            },
            DirOp::Query { object: obj("a"), requester: NodeId(2), query_id: 7, exclude: vec![] },
            DirOp::Register {
                object: obj("a"),
                holder: NodeId(2),
                status: ObjectStatus::Partial,
                size: 100,
            },
            DirOp::Subscribe { object: obj("b"), subscriber: NodeId(3) },
        ];
        let mut replies = Vec::new();
        for op in &ops {
            primary.apply_primary(op, &mut replies);
            assert!(backup.apply_replicated(primary.epoch(), op));
        }
        // The primary answered the query; the backup replayed it silently but holds
        // the identical post-query state: same locations, same lease on node 1.
        assert!(replies.iter().any(|(to, m)| *to == NodeId(2)
            && matches!(
                m,
                Message::DirQueryReply {
                    result: QueryResult::Location { node: NodeId(1), .. },
                    ..
                }
            )));
        let sorted = |mut v: Vec<(NodeId, ObjectStatus)>| {
            v.sort_by_key(|(n, _)| n.0);
            v
        };
        assert_eq!(sorted(primary.locations(obj("a"))), sorted(backup.locations(obj("a"))));
        assert_eq!(backup.shard().subscriber_count(obj("b")), 1);
    }

    #[test]
    fn promotion_bumps_epoch_and_rejects_stragglers() {
        let (mut primary, mut backup) = pair();
        let op = DirOp::Register {
            object: obj("x"),
            holder: NodeId(0),
            status: ObjectStatus::Complete,
            size: 10,
        };
        let mut out = Vec::new();
        primary.apply_primary(&op, &mut out);
        assert!(backup.apply_replicated(primary.epoch(), &op));

        // The primary dies; the backup (rank 1 in the replica set) is promoted.
        backup.promote_to(1);
        assert_eq!(backup.role(), ReplicaRole::Primary);
        assert_eq!(backup.epoch(), 1);

        // A straggler shipped by the deposed primary (epoch 0) must be rejected.
        let stale = DirOp::Delete { object: obj("x") };
        assert!(!backup.apply_replicated(0, &stale));
        assert_eq!(backup.locations(obj("x")).len(), 1, "stale delete was not applied");

        // Promotion is idempotent and never lowers an epoch.
        backup.promote_to(1);
        assert_eq!(backup.epoch(), 1);
    }

    #[test]
    fn rank_epochs_reject_a_short_lived_predecessors_stragglers() {
        // Replicas [A, B, C]. A dies; B (rank 1) promotes and ships an op at epoch 1
        // that C never receives before B dies too. C (rank 2) promotes to its rank —
        // epoch 2, not epoch 1 — so B's straggler is recognizably stale. A naive
        // `+1` promotion would have put C at epoch 1 and accepted the straggler.
        let cfg = HopliteConfig::small_for_tests();
        let mut c = ShardReplica::new(DirectoryShard::new(0, cfg), ReplicaRole::Backup);
        let register = DirOp::Register {
            object: obj("x"),
            holder: NodeId(3),
            status: ObjectStatus::Complete,
            size: 10,
        };
        assert!(c.apply_replicated(0, &register), "A's shipment at epoch 0");
        c.promote_to(2);
        assert_eq!(c.epoch(), 2);
        let straggler = DirOp::Delete { object: obj("x") };
        assert!(!c.apply_replicated(1, &straggler), "B's epoch-1 straggler rejected");
        assert_eq!(c.locations(obj("x")).len(), 1);
    }

    #[test]
    fn promoted_backup_answers_parked_queries() {
        // A query parks on the primary, is replicated, the primary dies, and the
        // promoted backup answers it when a location finally registers: no metadata —
        // not even parked queries — is lost with the primary.
        let (mut primary, mut backup) = pair();
        let query =
            DirOp::Query { object: obj("w"), requester: NodeId(5), query_id: 3, exclude: vec![] };
        let mut out = Vec::new();
        primary.apply_primary(&query, &mut out);
        assert!(out.is_empty(), "no location yet; the query parks");
        assert!(backup.apply_replicated(primary.epoch(), &query));

        backup.promote_to(1);
        backup.node_failed(NodeId(0));
        let register = DirOp::Register {
            object: obj("w"),
            holder: NodeId(4),
            status: ObjectStatus::Complete,
            size: 50,
        };
        let mut replies = Vec::new();
        backup.apply_primary(&register, &mut replies);
        assert!(replies
            .iter()
            .any(|(to, m)| *to == NodeId(5)
                && matches!(m, Message::DirQueryReply { query_id: 3, .. })));
    }
}
