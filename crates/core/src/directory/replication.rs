//! Primary/backup replication of one directory shard (§3.5), with a sequenced,
//! acknowledged op log and snapshot-based state transfer.
//!
//! The paper keeps the object directory available across node failures by
//! replicating it; this module implements the per-replica half of that design as a
//! pure state machine layered on [`DirectoryShard`]:
//!
//! * the **primary** applies every client op, emits the replies, stamps the op with a
//!   contiguous per-shard **sequence number**, and log-ships it to its backups. It
//!   retains the *unacked suffix* of the log; once every tracked backup has
//!   cumulatively acked a sequence number, the prefix up to it is trimmed and the
//!   contained ops are **confirmed** back to their origins — which is what makes the
//!   replication guarantee independent of client re-drive;
//! * a **backup** replays shipped ops in sequence order against its mirror shard with
//!   replies suppressed, acking the contiguously-applied prefix. A gap in the sequence
//!   (ops lost while the replica was down or deposed) cannot be bridged from the log
//!   alone: the replica asks for a **snapshot** ([`DirectoryShard::snapshot`]) from
//!   the current primary, installs it, replays whatever shipped ops it buffered past
//!   the snapshot point, and re-enters the replica set;
//! * on promotion the new primary bumps its **epoch**; replicated ops stamped with a
//!   lower epoch (stragglers from a deposed primary) are rejected, and any buffered
//!   out-of-order suffix beyond the contiguously-applied prefix is discarded —
//!   promotion only ever builds on the acked prefix.
//!
//! Which replica *is* the primary is decided by the epoch-versioned placement in
//! [`super::service`]; this module only implements the mechanics.

use std::collections::{BTreeMap, VecDeque};

use crate::object::{NodeId, ObjectId, ObjectStatus};
use crate::protocol::{DirOp, Message, ShardSnapshot, SnapshotEntry};

use super::shard::DirectoryShard;

/// The role a replica currently plays for its shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaRole {
    /// Applies client ops, sends replies, ships the sequenced op log to backups.
    Primary,
    /// Mirrors the primary by replaying its op log in order; replies are suppressed.
    Backup,
}

/// What a backup should do after replaying one shipped op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// The op was applied (or was an already-applied duplicate): acknowledge the
    /// contained contiguously-applied sequence number back to the shipper. Re-acking
    /// duplicates is what makes acks idempotent across a snapshot catch-up.
    Acked(u64),
    /// The op arrived while a snapshot is in flight and was buffered for replay after
    /// the snapshot installs. No ack yet.
    Buffered,
    /// The op exposes a sequence gap (or an epoch jump over lost state) that the log
    /// alone cannot bridge: the replica buffered it and must request a snapshot from
    /// the shipper.
    NeedsResync,
    /// A deposed primary's straggler (stale epoch): discarded.
    Rejected,
}

/// One retained log entry on the primary: the op at a sequence number, plus the
/// confirmation to emit once every tracked backup has acked past it. The op itself
/// is retained so a chain primary can re-ship the unacked suffix to a new chain
/// head after a re-splice (see [`ShardReplica::unacked_suffix`]).
#[derive(Clone, Debug)]
struct LogEntry {
    seq: u64,
    op: DirOp,
    confirm: Option<(NodeId, Message)>,
}

/// One replica of one directory shard: the shard state machine plus its replication
/// role, promotion epoch, and the sequenced/acked log machinery.
#[derive(Debug)]
pub struct ShardReplica {
    shard: DirectoryShard,
    role: ReplicaRole,
    epoch: u64,
    /// Highest contiguously-applied log sequence number (the acked prefix boundary on
    /// a backup; `next assigned - 1` on the primary).
    applied_seq: u64,
    /// Primary: entries not yet acked by every tracked backup (the unacked suffix).
    log: VecDeque<LogEntry>,
    /// Primary: cumulative ack per tracked backup. A tracked backup with no ack yet
    /// holds the trim watermark at 0, which keeps confirms conservative during a
    /// backup's catch-up.
    acks: BTreeMap<NodeId, u64>,
    /// Backup: out-of-order shipments buffered while a snapshot is in flight.
    pending: BTreeMap<u64, (u64, DirOp)>,
    /// Backup: a snapshot has been requested and not yet installed.
    resyncing: bool,
    /// Bounded ring of *acked* (trimmed) `(seq, op)` pairs, contiguous with the
    /// front of `log`, retained so a gapped replica can be caught up by replaying
    /// ops (the delta resync path) instead of shipping state. Maintained on every
    /// replica — a promoted backup can serve deltas too.
    retained: VecDeque<(u64, DirOp)>,
    /// How many acked ops to retain (from `directory_log_retention`).
    retention: usize,
    /// While resyncing via a chunk stream: the highest object id installed so far.
    /// A re-targeted request after source death resumes from here.
    resync_cursor: Option<ObjectId>,
}

impl ShardReplica {
    /// Create an empty replica with the given starting role.
    pub fn new(shard: DirectoryShard, role: ReplicaRole) -> Self {
        let retention = shard.config().directory_log_retention;
        ShardReplica {
            shard,
            role,
            epoch: 0,
            applied_seq: 0,
            log: VecDeque::new(),
            acks: BTreeMap::new(),
            pending: BTreeMap::new(),
            resyncing: false,
            retained: VecDeque::new(),
            retention,
            resync_cursor: None,
        }
    }

    /// Current role.
    pub fn role(&self) -> ReplicaRole {
        self.role
    }

    /// Current promotion epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Highest contiguously-applied log sequence number.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Number of retained (not fully acked) log entries — the unacked suffix.
    pub fn unacked_len(&self) -> usize {
        self.log.len()
    }

    /// Whether this replica is waiting for a snapshot.
    pub fn is_resyncing(&self) -> bool {
        self.resyncing
    }

    /// Read-only view of the underlying shard (introspection and tests).
    pub fn shard(&self) -> &DirectoryShard {
        &self.shard
    }

    /// Promote this replica to primary at `epoch` (the caller derives it from the
    /// shard's failover-epoch counter, which every node advances on the same
    /// failure/re-admission events — so it is strictly greater than anything a deposed
    /// predecessor shipped at). Never lowers an epoch already learned from the
    /// replication stream. Promotion builds only on the contiguously-applied (acked)
    /// prefix: any buffered out-of-order suffix is discarded, and sequence numbering
    /// continues from the applied prefix.
    pub fn promote_to(&mut self, epoch: u64) {
        if self.role == ReplicaRole::Backup {
            self.pending.clear();
            self.resyncing = false;
            self.log.clear();
            self.acks.clear();
        }
        self.role = ReplicaRole::Primary;
        self.epoch = self.epoch.max(epoch);
    }

    /// Enter resync: this replica detected (or was told) that its state is behind the
    /// log in a way catch-up cannot bridge. It demotes to backup and buffers shipments
    /// until a snapshot installs.
    pub fn begin_resync(&mut self) {
        self.role = ReplicaRole::Backup;
        self.resyncing = true;
        self.log.clear();
        self.acks.clear();
    }

    /// Abandon an in-flight resync with no surviving snapshot source (the whole
    /// replica set died): the replica stays a backup over whatever state it has
    /// (possibly a partial chunk stream — a later resync replaces it wholesale).
    pub fn abort_resync(&mut self) {
        self.resyncing = false;
        self.pending.clear();
        self.resync_cursor = None;
    }

    /// Declare the set of backups whose acks gate log trimming (live replica-set
    /// members, including ones still catching up). Present acks are kept; newly
    /// tracked backups start at 0; untracked ones are dropped. Returns confirms that
    /// became due because a laggard left the tracked set. Called on the per-op hot
    /// path, so an unchanged set (the overwhelmingly common case) is a no-op — the
    /// trim watermark cannot have moved without a membership change or an ack.
    pub fn set_tracked_backups(&mut self, backups: &[NodeId]) -> Vec<(NodeId, Message)> {
        if backups.len() == self.acks.len() && backups.iter().all(|b| self.acks.contains_key(b)) {
            return Vec::new();
        }
        self.acks.retain(|n, _| backups.contains(n));
        for &b in backups {
            self.acks.entry(b).or_insert(0);
        }
        self.collect_durable()
    }

    /// Apply a client op as the primary: mutate the shard, collect the replies it
    /// wants delivered, and assign the op its log sequence number (returned so the
    /// caller ships `DirReplicate { seq, .. }` to the backups). `confirm` is emitted
    /// to the op's origin once every tracked backup acks past this entry.
    ///
    /// Panics in debug builds if called on a backup — the service layer routes ops to
    /// the primary before applying.
    pub fn apply_primary(
        &mut self,
        op: &DirOp,
        confirm: Option<(NodeId, Message)>,
        out: &mut Vec<(NodeId, Message)>,
    ) -> u64 {
        debug_assert_eq!(self.role, ReplicaRole::Primary, "client ops apply on the primary");
        apply_op(&mut self.shard, op, out);
        self.applied_seq += 1;
        self.log.push_back(LogEntry { seq: self.applied_seq, op: op.clone(), confirm });
        self.applied_seq
    }

    /// The retained ops with sequence numbers strictly greater than `after`, in log
    /// order. A chain primary re-ships this suffix to the (possibly new) chain head
    /// after a membership change, so ops that were in flight through a dead or
    /// restarted chain member are not lost — the head's duplicate detection makes
    /// re-shipping idempotent.
    pub fn unacked_suffix(&self, after: u64) -> Vec<(u64, DirOp)> {
        self.log.iter().filter(|e| e.seq > after).map(|e| (e.seq, e.op.clone())).collect()
    }

    /// Record a backup's cumulative ack and return the confirms whose entries became
    /// fully acked. Acks from an older epoch (a backup that has not yet learned of a
    /// promotion) are still valid — sequence numbers only restart through a snapshot,
    /// which re-baselines the acker — but acks from untracked nodes are ignored.
    pub fn record_ack(&mut self, backup: NodeId, seq: u64) -> Vec<(NodeId, Message)> {
        if self.role != ReplicaRole::Primary {
            return Vec::new();
        }
        match self.acks.get_mut(&backup) {
            Some(acked) => *acked = (*acked).max(seq),
            None => return Vec::new(),
        }
        self.collect_durable()
    }

    /// The sequence number through which every tracked backup has acked (equals the
    /// applied prefix when no backups are tracked — a lone replica is trivially
    /// durable).
    pub fn min_acked(&self) -> u64 {
        self.acks.values().copied().min().unwrap_or(self.applied_seq)
    }

    /// Trim the fully-acked log prefix and return its confirms. The service calls
    /// this directly when a lone replica (no tracked backups) applies an op, which
    /// is durable immediately.
    pub fn take_durable_confirms(&mut self) -> Vec<(NodeId, Message)> {
        self.collect_durable()
    }

    fn collect_durable(&mut self) -> Vec<(NodeId, Message)> {
        let durable_through = self.min_acked();
        let mut confirms = Vec::new();
        while self.log.front().map(|e| e.seq <= durable_through).unwrap_or(false) {
            let entry = self.log.pop_front().expect("front checked");
            self.push_retained(entry.seq, entry.op);
            if let Some(confirm) = entry.confirm {
                confirms.push(confirm);
            }
        }
        confirms
    }

    /// Feed the bounded delta ring. The ring stays contiguous with the front of
    /// `log` on a primary (entries move log → ring as they are trimmed) and with
    /// `applied_seq` on a backup (entries are pushed as they apply).
    fn push_retained(&mut self, seq: u64, op: DirOp) {
        if self.retention == 0 {
            return;
        }
        self.retained.push_back((seq, op));
        while self.retained.len() > self.retention {
            self.retained.pop_front();
        }
    }

    /// Replay an op shipped by the shard's primary. See [`ReplayOutcome`] for what the
    /// caller must do with the result. Replies are discarded: only the primary talks
    /// to clients.
    pub fn apply_replicated(&mut self, epoch: u64, seq: u64, op: &DirOp) -> ReplayOutcome {
        if epoch < self.epoch {
            return ReplayOutcome::Rejected;
        }
        if self.resyncing {
            self.pending.insert(seq, (epoch, op.clone()));
            return ReplayOutcome::Buffered;
        }
        if seq <= self.applied_seq && epoch == self.epoch {
            // Duplicate of something already in the applied prefix: re-ack so the
            // primary's bookkeeping converges even if the original ack was lost.
            return ReplayOutcome::Acked(self.applied_seq);
        }
        if seq == self.applied_seq + 1 {
            // The happy path — including a seamless epoch handover, where the promoted
            // primary continues the sequence right where this replica's prefix ends.
            self.epoch = epoch;
            self.apply_in_order(op);
            self.drain_pending();
            return ReplayOutcome::Acked(self.applied_seq);
        }
        // A gap (same epoch: shipments lost while this node was isolated; higher
        // epoch: a promoted primary whose prefix diverges from ours). The log cannot
        // bridge it; buffer the op and ask for a snapshot.
        self.pending.insert(seq, (epoch, op.clone()));
        ReplayOutcome::NeedsResync
    }

    /// Capture this replica's state for transfer: `(epoch, applied_seq, state)`.
    pub fn snapshot(&self) -> (u64, u64, ShardSnapshot) {
        (self.epoch, self.applied_seq, self.shard.snapshot())
    }

    /// Install a snapshot captured by the current primary, discarding local state
    /// wholesale (including a deposed primary's unacked suffix), then replay whatever
    /// buffered shipments extend the snapshot contiguously. Returns the sequence
    /// number to ack, or `None` when the snapshot is itself a deposed primary's
    /// straggler (stale epoch) and was discarded.
    pub fn install_snapshot(&mut self, epoch: u64, seq: u64, state: &ShardSnapshot) -> Option<u64> {
        if epoch < self.epoch {
            return None;
        }
        self.shard.restore(state);
        self.role = ReplicaRole::Backup;
        self.epoch = epoch;
        self.applied_seq = seq;
        self.resyncing = false;
        self.resync_cursor = None;
        self.log.clear();
        self.acks.clear();
        // The re-baselined sequence numbering invalidates the retained delta ring.
        self.retained.clear();
        // Everything at or below the snapshot point is already included in it.
        self.pending = self.pending.split_off(&(seq + 1));
        self.drain_pending();
        Some(self.applied_seq)
    }

    /// Install one chunk of a cursor-driven resync stream. The first chunk of a
    /// stream (no cursor yet) replaces local state wholesale, exactly like
    /// [`Self::install_snapshot`]; subsequent chunks extend the partial state and
    /// advance the cursor. `seq` is the stream's consistency point (the source's
    /// applied prefix when the stream opened, with entries mutated past it re-shipped
    /// as dirty by the source). Returns `None` for a deposed source's stale-epoch
    /// chunk (discarded), `Some(None)` for an accepted mid-stream chunk, and
    /// `Some(Some(ack))` when `done` — the caller acks and re-enters the replica set.
    pub fn install_chunk(
        &mut self,
        epoch: u64,
        seq: u64,
        entries: &[SnapshotEntry],
        done: bool,
    ) -> Option<Option<u64>> {
        if epoch < self.epoch {
            return None;
        }
        if self.resync_cursor.is_none() {
            self.shard.clear();
            self.retained.clear();
        }
        self.epoch = self.epoch.max(epoch);
        self.shard.install_entries(entries);
        if let Some(last) = entries.last() {
            let cursor = self.resync_cursor.map_or(last.object, |c| c.max(last.object));
            self.resync_cursor = Some(cursor);
        }
        if !done {
            return Some(None);
        }
        // Final chunk: the assembled state is consistent at (epoch, seq).
        self.role = ReplicaRole::Backup;
        self.epoch = epoch;
        self.applied_seq = seq;
        self.resyncing = false;
        self.resync_cursor = None;
        self.log.clear();
        self.acks.clear();
        self.pending = self.pending.split_off(&(seq + 1));
        self.drain_pending();
        Some(Some(self.applied_seq))
    }

    /// Whether a replica whose contiguous prefix ends at `have_seq` (at epoch
    /// `have_epoch`) can be caught up purely by replaying ops from the retained
    /// suffix — the delta resync path. An epoch mismatch always falls back to state
    /// transfer: sequence numbering is only comparable within an epoch's lineage.
    pub fn delta_covers(&self, have_epoch: u64, have_seq: u64) -> bool {
        if have_epoch != self.epoch {
            return false;
        }
        if have_seq >= self.applied_seq {
            return true;
        }
        let earliest =
            self.retained.front().map(|(s, _)| *s).or_else(|| self.log.front().map(|e| e.seq));
        earliest.map(|e| e <= have_seq + 1).unwrap_or(false)
    }

    /// The retained + unacked ops with sequence numbers strictly greater than
    /// `after`, in order — the payload of a delta resync.
    pub fn delta_ops(&self, after: u64) -> Vec<(u64, DirOp)> {
        self.retained
            .iter()
            .filter(|(s, _)| *s > after)
            .cloned()
            .chain(self.log.iter().filter(|e| e.seq > after).map(|e| (e.seq, e.op.clone())))
            .collect()
    }

    /// Replay one frame of a delta resync: ops extending the applied prefix are
    /// applied in order, duplicates are skipped. Returns the sequence number to ack
    /// when `done` and the frame was fresh; `None` for mid-stream frames and for a
    /// deposed source's stale-epoch stragglers (discarded without applying).
    pub fn apply_delta(&mut self, epoch: u64, ops: &[(u64, DirOp)], done: bool) -> Option<u64> {
        if epoch < self.epoch {
            return None;
        }
        self.epoch = epoch;
        for (seq, op) in ops {
            if *seq == self.applied_seq + 1 {
                self.apply_in_order(op);
            }
        }
        if !done {
            return None;
        }
        self.role = ReplicaRole::Backup;
        self.resyncing = false;
        self.resync_cursor = None;
        self.drain_pending();
        Some(self.applied_seq)
    }

    fn apply_in_order(&mut self, op: &DirOp) {
        let mut suppressed = Vec::new();
        apply_op(&mut self.shard, op, &mut suppressed);
        self.applied_seq += 1;
        self.push_retained(self.applied_seq, op.clone());
    }

    fn drain_pending(&mut self) {
        while let Some((epoch, op)) = self.pending.remove(&(self.applied_seq + 1)) {
            if epoch >= self.epoch {
                self.epoch = epoch;
                self.apply_in_order(&op);
            }
        }
        // Anything at or below the applied prefix is stale.
        self.pending = self.pending.split_off(&(self.applied_seq + 1));
    }

    /// The chunk-stream resume cursor, if a chunked resync is mid-flight. Included
    /// in a re-targeted `DirSnapshotRequest` after a source death so the new source
    /// resumes the stream instead of restarting it.
    pub fn resync_cursor(&self) -> Option<ObjectId> {
        self.resync_cursor
    }

    /// Run one bulk lease-expiry tick over the shard's timer wheel. Requery nudges
    /// to waiting receivers are emitted only on the primary; backups expire
    /// silently. Lease grants and expiries are local decisions on each replica (not
    /// replicated transitions), so replicas may transiently disagree about a lease —
    /// they reconverge within two ticks. Returns how many leases were reclaimed.
    pub fn expire_stale_leases(&mut self, out: &mut Vec<(NodeId, Message)>) -> u64 {
        if self.role == ReplicaRole::Primary {
            self.shard.expire_stale_leases(out)
        } else {
            let mut suppressed = Vec::new();
            self.shard.expire_stale_leases(&mut suppressed)
        }
    }

    /// Whether the shard's lease wheel might hold candidates (drives lazy re-arming
    /// of the expiry timer; may over-approximate).
    pub fn has_lease_candidates(&self) -> bool {
        self.shard.has_lease_candidates()
    }

    /// Drain the shard's count of inline payloads evicted by the cache budget.
    pub fn take_inline_evictions(&mut self) -> u64 {
        self.shard.take_inline_evictions()
    }

    /// Purge everything the shard knows about a failed node. Applied directly on
    /// every replica (the failure detector notifies all nodes, and the purge is
    /// deterministic), so it does not travel through the replication log.
    pub fn node_failed(&mut self, node: NodeId) {
        self.shard.node_failed(node);
    }

    /// Known locations of an object (introspection for failover assertions).
    pub fn locations(&self, object: ObjectId) -> Vec<(NodeId, ObjectStatus)> {
        self.shard.locations(object)
    }
}

/// Dispatch one op into a shard.
fn apply_op(shard: &mut DirectoryShard, op: &DirOp, out: &mut Vec<(NodeId, Message)>) {
    match op {
        DirOp::Register { object, holder, status, size } => {
            shard.register(*object, *holder, *status, *size, out)
        }
        DirOp::PutInline { object, holder, payload } => {
            shard.put_inline(*object, *holder, payload.clone(), out)
        }
        DirOp::Unregister { object, holder } => shard.unregister(*object, *holder),
        DirOp::Query { object, requester, query_id, exclude } => {
            shard.query(*object, *requester, *query_id, exclude.clone(), out)
        }
        DirOp::Subscribe { object, subscriber } => shard.subscribe(*object, *subscriber, out),
        DirOp::Unsubscribe { object, subscriber } => shard.unsubscribe(*object, *subscriber),
        DirOp::TransferDone { object, receiver, sender } => {
            shard.transfer_done(*object, *receiver, *sender)
        }
        DirOp::Delete { object } => shard.delete(*object, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HopliteConfig;
    use crate::protocol::QueryResult;

    fn obj(name: &str) -> ObjectId {
        ObjectId::from_name(name)
    }

    fn pair() -> (ShardReplica, ShardReplica) {
        let cfg = HopliteConfig::small_for_tests();
        (
            ShardReplica::new(DirectoryShard::new(0, cfg.clone()), ReplicaRole::Primary),
            ShardReplica::new(DirectoryShard::new(0, cfg), ReplicaRole::Backup),
        )
    }

    fn register(name: &str, holder: u32) -> DirOp {
        DirOp::Register {
            object: obj(name),
            holder: NodeId(holder),
            status: ObjectStatus::Complete,
            size: 100,
        }
    }

    /// Ship one op primary → backup and ack it back, asserting the happy path.
    fn replicate(primary: &mut ShardReplica, backup: &mut ShardReplica, op: &DirOp) {
        let mut replies = Vec::new();
        let seq = primary.apply_primary(op, None, &mut replies);
        match backup.apply_replicated(primary.epoch(), seq, op) {
            ReplayOutcome::Acked(acked) => {
                assert_eq!(acked, seq);
                primary.record_ack(NodeId(99), acked);
            }
            other => panic!("expected ack, got {other:?}"),
        }
    }

    #[test]
    fn backup_mirrors_the_primary_through_the_op_log() {
        let (mut primary, mut backup) = pair();
        primary.set_tracked_backups(&[NodeId(99)]);
        let ops = vec![
            register("a", 1),
            DirOp::Query { object: obj("a"), requester: NodeId(2), query_id: 7, exclude: vec![] },
            DirOp::Register {
                object: obj("a"),
                holder: NodeId(2),
                status: ObjectStatus::Partial,
                size: 100,
            },
            DirOp::Subscribe { object: obj("b"), subscriber: NodeId(3) },
        ];
        let mut replies = Vec::new();
        for op in &ops {
            let seq = primary.apply_primary(op, None, &mut replies);
            assert!(matches!(
                backup.apply_replicated(primary.epoch(), seq, op),
                ReplayOutcome::Acked(_)
            ));
        }
        // The primary answered the query; the backup replayed it silently but holds
        // the identical post-query state: same locations, same lease on node 1.
        assert!(replies.iter().any(|(to, m)| *to == NodeId(2)
            && matches!(
                m,
                Message::DirQueryReply {
                    result: QueryResult::Location { node: NodeId(1), .. },
                    ..
                }
            )));
        let sorted = |mut v: Vec<(NodeId, ObjectStatus)>| {
            v.sort_by_key(|(n, _)| n.0);
            v
        };
        assert_eq!(sorted(primary.locations(obj("a"))), sorted(backup.locations(obj("a"))));
        assert_eq!(backup.shard().subscriber_count(obj("b")), 1);
        assert_eq!(backup.applied_seq(), 4);
    }

    #[test]
    fn promotion_bumps_epoch_and_rejects_stragglers() {
        let (mut primary, mut backup) = pair();
        replicate(&mut primary, &mut backup, &register("x", 0));

        // The primary dies; the backup is promoted at the shard's failover epoch.
        backup.promote_to(1);
        assert_eq!(backup.role(), ReplicaRole::Primary);
        assert_eq!(backup.epoch(), 1);

        // A straggler shipped by the deposed primary (epoch 0) must be rejected.
        let stale = DirOp::Delete { object: obj("x") };
        assert_eq!(backup.apply_replicated(0, 2, &stale), ReplayOutcome::Rejected);
        assert_eq!(backup.locations(obj("x")).len(), 1, "stale delete was not applied");

        // Promotion is idempotent and never lowers an epoch.
        backup.promote_to(1);
        assert_eq!(backup.epoch(), 1);
    }

    #[test]
    fn failover_epochs_reject_a_short_lived_predecessors_stragglers() {
        // Replicas [A, B, C]. A dies; B promotes at epoch 1 and ships an op at epoch 1
        // that C never receives before B dies too. C promotes at epoch 2 (every node
        // counts both failures), so B's straggler is recognizably stale.
        let cfg = HopliteConfig::small_for_tests();
        let mut c = ShardReplica::new(DirectoryShard::new(0, cfg), ReplicaRole::Backup);
        assert!(matches!(c.apply_replicated(0, 1, &register("x", 3)), ReplayOutcome::Acked(1)));
        c.promote_to(2);
        assert_eq!(c.epoch(), 2);
        let straggler = DirOp::Delete { object: obj("x") };
        assert_eq!(c.apply_replicated(1, 2, &straggler), ReplayOutcome::Rejected);
        assert_eq!(c.locations(obj("x")).len(), 1);
    }

    #[test]
    fn promoted_backup_answers_parked_queries() {
        // A query parks on the primary, is replicated, the primary dies, and the
        // promoted backup answers it when a location finally registers: no metadata —
        // not even parked queries — is lost with the primary.
        let (mut primary, mut backup) = pair();
        let query =
            DirOp::Query { object: obj("w"), requester: NodeId(5), query_id: 3, exclude: vec![] };
        let mut out = Vec::new();
        let seq = primary.apply_primary(&query, None, &mut out);
        assert!(out.is_empty(), "no location yet; the query parks");
        assert!(matches!(
            backup.apply_replicated(primary.epoch(), seq, &query),
            ReplayOutcome::Acked(_)
        ));

        backup.promote_to(1);
        backup.node_failed(NodeId(0));
        let mut replies = Vec::new();
        backup.apply_primary(&register("w", 4), None, &mut replies);
        assert!(replies
            .iter()
            .any(|(to, m)| *to == NodeId(5)
                && matches!(m, Message::DirQueryReply { query_id: 3, .. })));
    }

    #[test]
    fn confirms_wait_for_every_tracked_backup() {
        let (mut primary, _) = pair();
        primary.set_tracked_backups(&[NodeId(1), NodeId(2)]);
        let confirm = (NodeId(7), Message::StoreRelease { object: obj("marker") });
        let mut out = Vec::new();
        let seq = primary.apply_primary(&register("x", 7), Some(confirm.clone()), &mut out);
        assert_eq!(primary.unacked_len(), 1);
        assert!(primary.record_ack(NodeId(1), seq).is_empty(), "one of two backups acked");
        let confirms = primary.record_ack(NodeId(2), seq);
        assert_eq!(confirms, vec![confirm]);
        assert_eq!(primary.unacked_len(), 0, "fully-acked prefix trimmed");
        // A repeated ack is idempotent.
        assert!(primary.record_ack(NodeId(2), seq).is_empty());
    }

    #[test]
    fn losing_the_last_laggard_backup_releases_confirms() {
        let (mut primary, _) = pair();
        primary.set_tracked_backups(&[NodeId(1), NodeId(2)]);
        let confirm = (NodeId(7), Message::StoreRelease { object: obj("m") });
        let mut out = Vec::new();
        let seq = primary.apply_primary(&register("y", 7), Some(confirm.clone()), &mut out);
        primary.record_ack(NodeId(1), seq);
        // Backup 2 dies before acking: re-tracking without it must release the entry.
        let confirms = primary.set_tracked_backups(&[NodeId(1)]);
        assert_eq!(confirms, vec![confirm]);
    }

    #[test]
    fn untracked_primary_confirms_immediately() {
        // Replication factor 1 (or every backup dead): the lone replica is trivially
        // durable and the client must not be left waiting for a confirm.
        let (mut primary, _) = pair();
        let confirm = (NodeId(7), Message::StoreRelease { object: obj("solo") });
        let mut out = Vec::new();
        primary.apply_primary(&register("z", 7), Some(confirm.clone()), &mut out);
        assert_eq!(primary.min_acked(), primary.applied_seq());
        let confirms = primary.take_durable_confirms();
        assert_eq!(confirms, vec![confirm]);
    }

    #[test]
    fn sequence_gap_triggers_resync_and_snapshot_catches_up() {
        let (mut primary, mut backup) = pair();
        replicate(&mut primary, &mut backup, &register("a", 1));
        // Ops 2 and 3 are applied at the primary but never reach the backup.
        let mut out = Vec::new();
        primary.apply_primary(&register("b", 2), None, &mut out);
        primary.apply_primary(&register("c", 3), None, &mut out);
        // Op 4 arrives at the backup: a gap it cannot bridge.
        let op4 = register("d", 4);
        let seq4 = primary.apply_primary(&op4, None, &mut out);
        assert_eq!(
            backup.apply_replicated(primary.epoch(), seq4, &op4),
            ReplayOutcome::NeedsResync
        );
        backup.begin_resync();
        // Op 5 ships while the snapshot is in flight: buffered.
        let op5 = register("e", 5);
        let seq5 = primary.apply_primary(&op5, None, &mut out);
        assert_eq!(backup.apply_replicated(primary.epoch(), seq5, &op5), ReplayOutcome::Buffered);
        // The snapshot was captured at seq 4 (after op4); installing it replays the
        // buffered op5 and the backup is fully caught up.
        let (epoch, seq, state) = primary.snapshot();
        assert_eq!(seq, 5, "snapshot captured after op5");
        let acked = backup.install_snapshot(epoch, seq, &state).expect("fresh snapshot");
        assert_eq!(acked, 5);
        for name in ["a", "b", "c", "d", "e"] {
            assert_eq!(backup.locations(obj(name)).len(), 1, "object {name} present");
        }
        assert!(!backup.is_resyncing());
    }

    #[test]
    fn deposed_primary_unacked_suffix_is_discarded_on_promotion_and_resync() {
        // P applies ops 1..=5; the backup B only ever receives 1..=3 and acks them.
        // P's unacked suffix is ops 4 and 5. P is deposed (declared failed), B
        // promotes on the acked prefix, and when P later rejoins via snapshot its
        // suffix is gone — exactly the contract: promotion and re-admission only
        // consider the acked prefix.
        let (mut p, mut b) = pair();
        p.set_tracked_backups(&[NodeId(1)]);
        let mut out = Vec::new();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            let op = register(name, 10 + i as u32);
            let seq = p.apply_primary(&op, None, &mut out);
            assert!(matches!(b.apply_replicated(p.epoch(), seq, &op), ReplayOutcome::Acked(_)));
            p.record_ack(NodeId(1), seq);
        }
        p.apply_primary(&register("d", 13), None, &mut out);
        p.apply_primary(&register("e", 14), None, &mut out);
        assert_eq!(p.unacked_len(), 2, "ops d and e are the unacked suffix");

        // B promotes; its prefix ends at seq 3.
        b.promote_to(1);
        assert_eq!(b.applied_seq(), 3);
        assert!(b.locations(obj("d")).is_empty());

        // P rejoins as a backup via state transfer from B: its old suffix is replaced
        // wholesale by B's acked prefix.
        b.apply_primary(&register("f", 15), None, &mut out); // seq 4 under the new primacy
        p.begin_resync();
        let (epoch, seq, state) = b.snapshot();
        let acked = p.install_snapshot(epoch, seq, &state).expect("snapshot installs");
        assert_eq!(acked, 4);
        assert_eq!(p.role(), ReplicaRole::Backup);
        assert!(p.locations(obj("d")).is_empty(), "unacked suffix discarded");
        assert!(p.locations(obj("e")).is_empty(), "unacked suffix discarded");
        assert_eq!(p.locations(obj("f")).len(), 1, "new primacy's op present");
    }

    #[test]
    fn reack_after_snapshot_catchup_is_idempotent() {
        let (mut primary, mut backup) = pair();
        let mut out = Vec::new();
        let ops: Vec<DirOp> = (0..4).map(|i| register(&format!("o{i}"), i)).collect();
        let mut seqs = Vec::new();
        for op in &ops {
            seqs.push(primary.apply_primary(op, None, &mut out));
        }
        backup.begin_resync();
        let (epoch, seq, state) = primary.snapshot();
        assert_eq!(backup.install_snapshot(epoch, seq, &state), Some(4));
        // Shipments delayed in flight from before the snapshot now arrive: each is a
        // duplicate of the installed prefix and re-acks the same watermark without
        // double-applying.
        for (op, s) in ops.iter().zip(&seqs) {
            assert_eq!(backup.apply_replicated(epoch, *s, op), ReplayOutcome::Acked(4));
        }
        for i in 0..4 {
            assert_eq!(backup.locations(obj(&format!("o{i}"))).len(), 1);
        }
    }

    #[test]
    fn unsubscribe_survives_a_resync() {
        // Subscriptions — and their removal — transfer through the snapshot: a
        // subscriber that unsubscribed before the snapshot stays unsubscribed on the
        // re-admitted replica, while live subscriptions survive.
        let (mut primary, mut backup) = pair();
        let mut out = Vec::new();
        primary.apply_primary(
            &DirOp::Subscribe { object: obj("keep"), subscriber: NodeId(5) },
            None,
            &mut out,
        );
        primary.apply_primary(
            &DirOp::Subscribe { object: obj("drop"), subscriber: NodeId(6) },
            None,
            &mut out,
        );
        primary.apply_primary(
            &DirOp::Unsubscribe { object: obj("drop"), subscriber: NodeId(6) },
            None,
            &mut out,
        );
        backup.begin_resync();
        let (epoch, seq, state) = primary.snapshot();
        backup.install_snapshot(epoch, seq, &state).expect("snapshot installs");
        assert_eq!(backup.shard().subscriber_count(obj("keep")), 1);
        assert_eq!(backup.shard().subscriber_count(obj("drop")), 0);
    }

    #[test]
    fn stale_snapshot_from_deposed_primary_is_rejected() {
        let (mut primary, mut backup) = pair();
        replicate(&mut primary, &mut backup, &register("x", 1));
        let (old_epoch, old_seq, old_state) = primary.snapshot();
        backup.promote_to(2);
        assert_eq!(backup.install_snapshot(old_epoch, old_seq, &old_state), None);
        assert_eq!(backup.role(), ReplicaRole::Primary, "stale snapshot cannot demote");
    }

    #[test]
    fn delta_resync_replays_retained_suffix_without_state_transfer() {
        let (mut primary, mut backup) = pair();
        primary.set_tracked_backups(&[NodeId(1)]);
        let mut out = Vec::new();
        // The backup receives op 1, then misses 2..=4 — which a sibling replica
        // acked, so the primary trimmed them into the retained ring.
        let op1 = register("a", 1);
        let s1 = primary.apply_primary(&op1, None, &mut out);
        assert!(matches!(
            backup.apply_replicated(primary.epoch(), s1, &op1),
            ReplayOutcome::Acked(1)
        ));
        for (i, name) in ["b", "c", "d"].iter().enumerate() {
            let seq = primary.apply_primary(&register(name, 2 + i as u32), None, &mut out);
            primary.record_ack(NodeId(1), seq);
        }
        assert_eq!(primary.unacked_len(), 0, "acked ops trimmed into the retained ring");
        // Op 5 arrives at the backup: a gap, but one the retained suffix bridges.
        let op5 = register("e", 5);
        let s5 = primary.apply_primary(&op5, None, &mut out);
        assert_eq!(backup.apply_replicated(primary.epoch(), s5, &op5), ReplayOutcome::NeedsResync);
        assert!(primary.delta_covers(backup.epoch(), backup.applied_seq()));
        backup.begin_resync();
        let ops = primary.delta_ops(backup.applied_seq());
        assert_eq!(ops.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![2, 3, 4, 5]);
        let acked = backup.apply_delta(primary.epoch(), &ops, true).expect("delta completes");
        assert_eq!(acked, 5);
        assert!(!backup.is_resyncing());
        for name in ["a", "b", "c", "d", "e"] {
            assert_eq!(backup.locations(obj(name)).len(), 1, "object {name} present");
        }
    }

    #[test]
    fn delta_coverage_is_bounded_by_the_retention_window() {
        let cfg = HopliteConfig { directory_log_retention: 2, ..HopliteConfig::small_for_tests() };
        let mut primary = ShardReplica::new(DirectoryShard::new(0, cfg), ReplicaRole::Primary);
        primary.set_tracked_backups(&[NodeId(1)]);
        let mut out = Vec::new();
        for i in 0..5u32 {
            let seq = primary.apply_primary(&register(&format!("o{i}"), i), None, &mut out);
            primary.record_ack(NodeId(1), seq);
        }
        // The ring holds seqs 4 and 5 only: a replica at seq 3 is coverable (needs
        // 4..), one at seq 2 is not (needs 3, already dropped).
        assert!(primary.delta_covers(0, 3));
        assert!(primary.delta_covers(0, 5));
        assert!(!primary.delta_covers(0, 2));
        assert!(!primary.delta_covers(1, 3), "epoch mismatch falls back to state transfer");
    }

    #[test]
    fn chunked_install_covers_the_shard_and_resumes_by_cursor() {
        let (mut primary, mut backup) = pair();
        let mut out = Vec::new();
        for i in 0..12u32 {
            primary.apply_primary(&register(&format!("obj-{i:02}"), i), None, &mut out);
        }
        backup.begin_resync();
        let (epoch, seq, _) = primary.snapshot();
        // Stream the shard in bounded chunks, feeding the receiver's cursor back
        // into each range request — the same loop the service runs over the wire.
        let budget = 200;
        let mut rounds = 0;
        loop {
            let (entries, done) = primary.shard().snapshot_range(backup.resync_cursor(), budget);
            assert!(entries.len() < 12, "bounded chunks, not one burst");
            rounds += 1;
            match backup.install_chunk(epoch, seq, &entries, done) {
                Some(Some(acked)) => {
                    assert_eq!(acked, seq);
                    break;
                }
                Some(None) => continue,
                None => panic!("fresh chunk rejected"),
            }
        }
        assert!(rounds > 1, "the stream took multiple chunks");
        assert!(!backup.is_resyncing());
        assert_eq!(backup.applied_seq(), seq);
        assert!(backup.resync_cursor().is_none(), "cursor cleared at completion");
        for i in 0..12 {
            assert_eq!(backup.locations(obj(&format!("obj-{i:02}"))).len(), 1);
        }
    }

    #[test]
    fn first_chunk_replaces_local_state_wholesale_and_stale_chunks_are_rejected() {
        let (mut primary, mut backup) = pair();
        let mut out = Vec::new();
        // Divergent histories: the backup applied an op the primary never had.
        assert!(matches!(
            backup.apply_replicated(0, 1, &register("only-mine", 9)),
            ReplayOutcome::Acked(1)
        ));
        primary.apply_primary(&register("live", 1), None, &mut out);

        // A deposed source's chunk (stale epoch) is discarded outright.
        backup.promote_to(2);
        assert_eq!(backup.install_chunk(1, 5, &[], true), None);
        assert_eq!(backup.locations(obj("only-mine")).len(), 1);

        // A fresh stream replaces local state wholesale, like install_snapshot.
        backup.begin_resync();
        let (entries, done) = primary.shard().snapshot_range(None, u64::MAX);
        assert!(done);
        assert_eq!(backup.install_chunk(3, 1, &entries, true), Some(Some(1)));
        assert_eq!(backup.role(), ReplicaRole::Backup);
        assert!(backup.locations(obj("only-mine")).is_empty(), "divergent state discarded");
        assert_eq!(backup.locations(obj("live")).len(), 1);
    }

    #[test]
    fn shipments_buffered_during_a_chunk_stream_replay_after_the_final_chunk() {
        let (mut primary, mut backup) = pair();
        let mut out = Vec::new();
        for i in 0..3u32 {
            primary.apply_primary(&register(&format!("pre{i}"), i), None, &mut out);
        }
        backup.begin_resync();
        let (epoch, seq, _) = primary.snapshot();
        let (first, done) = primary.shard().snapshot_range(None, 100);
        assert!(!done);
        assert_eq!(backup.install_chunk(epoch, seq, &first, false), Some(None));
        // A live op ships mid-stream: buffered (the replica is still resyncing).
        let mid = register("mid", 7);
        let s_mid = primary.apply_primary(&mid, None, &mut out);
        assert_eq!(backup.apply_replicated(epoch, s_mid, &mid), ReplayOutcome::Buffered);
        // Finish the stream; the buffered op extends the installed prefix past the
        // stream's consistency point.
        loop {
            let (entries, done) = primary.shard().snapshot_range(backup.resync_cursor(), 100);
            match backup.install_chunk(epoch, seq, &entries, done) {
                Some(Some(acked)) => {
                    assert_eq!(acked, s_mid, "buffered mid-stream op replayed");
                    break;
                }
                Some(None) => continue,
                None => panic!("fresh chunk rejected"),
            }
        }
        assert_eq!(backup.locations(obj("mid")).len(), 1);
    }
}
