//! Primary/backup replication of one directory shard (§3.5), with a sequenced,
//! acknowledged op log and snapshot-based state transfer.
//!
//! The paper keeps the object directory available across node failures by
//! replicating it; this module implements the per-replica half of that design as a
//! pure state machine layered on [`DirectoryShard`]:
//!
//! * the **primary** applies every client op, emits the replies, stamps the op with a
//!   contiguous per-shard **sequence number**, and log-ships it to its backups. It
//!   retains the *unacked suffix* of the log; once every tracked backup has
//!   cumulatively acked a sequence number, the prefix up to it is trimmed and the
//!   contained ops are **confirmed** back to their origins — which is what makes the
//!   replication guarantee independent of client re-drive;
//! * a **backup** replays shipped ops in sequence order against its mirror shard with
//!   replies suppressed, acking the contiguously-applied prefix. A gap in the sequence
//!   (ops lost while the replica was down or deposed) cannot be bridged from the log
//!   alone: the replica asks for a **snapshot** ([`DirectoryShard::snapshot`]) from
//!   the current primary, installs it, replays whatever shipped ops it buffered past
//!   the snapshot point, and re-enters the replica set;
//! * on promotion the new primary bumps its **epoch**; replicated ops stamped with a
//!   lower epoch (stragglers from a deposed primary) are rejected, and any buffered
//!   out-of-order suffix beyond the contiguously-applied prefix is discarded —
//!   promotion only ever builds on the acked prefix.
//!
//! Which replica *is* the primary is decided by the epoch-versioned placement in
//! [`super::service`]; this module only implements the mechanics.

use std::collections::{BTreeMap, VecDeque};

use crate::object::{NodeId, ObjectId, ObjectStatus};
use crate::protocol::{DirOp, Message, ShardSnapshot};

use super::shard::DirectoryShard;

/// The role a replica currently plays for its shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaRole {
    /// Applies client ops, sends replies, ships the sequenced op log to backups.
    Primary,
    /// Mirrors the primary by replaying its op log in order; replies are suppressed.
    Backup,
}

/// What a backup should do after replaying one shipped op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// The op was applied (or was an already-applied duplicate): acknowledge the
    /// contained contiguously-applied sequence number back to the shipper. Re-acking
    /// duplicates is what makes acks idempotent across a snapshot catch-up.
    Acked(u64),
    /// The op arrived while a snapshot is in flight and was buffered for replay after
    /// the snapshot installs. No ack yet.
    Buffered,
    /// The op exposes a sequence gap (or an epoch jump over lost state) that the log
    /// alone cannot bridge: the replica buffered it and must request a snapshot from
    /// the shipper.
    NeedsResync,
    /// A deposed primary's straggler (stale epoch): discarded.
    Rejected,
}

/// One retained log entry on the primary: the op at a sequence number, plus the
/// confirmation to emit once every tracked backup has acked past it. The op itself
/// is retained so a chain primary can re-ship the unacked suffix to a new chain
/// head after a re-splice (see [`ShardReplica::unacked_suffix`]).
#[derive(Clone, Debug)]
struct LogEntry {
    seq: u64,
    op: DirOp,
    confirm: Option<(NodeId, Message)>,
}

/// One replica of one directory shard: the shard state machine plus its replication
/// role, promotion epoch, and the sequenced/acked log machinery.
#[derive(Debug)]
pub struct ShardReplica {
    shard: DirectoryShard,
    role: ReplicaRole,
    epoch: u64,
    /// Highest contiguously-applied log sequence number (the acked prefix boundary on
    /// a backup; `next assigned - 1` on the primary).
    applied_seq: u64,
    /// Primary: entries not yet acked by every tracked backup (the unacked suffix).
    log: VecDeque<LogEntry>,
    /// Primary: cumulative ack per tracked backup. A tracked backup with no ack yet
    /// holds the trim watermark at 0, which keeps confirms conservative during a
    /// backup's catch-up.
    acks: BTreeMap<NodeId, u64>,
    /// Backup: out-of-order shipments buffered while a snapshot is in flight.
    pending: BTreeMap<u64, (u64, DirOp)>,
    /// Backup: a snapshot has been requested and not yet installed.
    resyncing: bool,
}

impl ShardReplica {
    /// Create an empty replica with the given starting role.
    pub fn new(shard: DirectoryShard, role: ReplicaRole) -> Self {
        ShardReplica {
            shard,
            role,
            epoch: 0,
            applied_seq: 0,
            log: VecDeque::new(),
            acks: BTreeMap::new(),
            pending: BTreeMap::new(),
            resyncing: false,
        }
    }

    /// Current role.
    pub fn role(&self) -> ReplicaRole {
        self.role
    }

    /// Current promotion epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Highest contiguously-applied log sequence number.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Number of retained (not fully acked) log entries — the unacked suffix.
    pub fn unacked_len(&self) -> usize {
        self.log.len()
    }

    /// Whether this replica is waiting for a snapshot.
    pub fn is_resyncing(&self) -> bool {
        self.resyncing
    }

    /// Read-only view of the underlying shard (introspection and tests).
    pub fn shard(&self) -> &DirectoryShard {
        &self.shard
    }

    /// Promote this replica to primary at `epoch` (the caller derives it from the
    /// shard's failover-epoch counter, which every node advances on the same
    /// failure/re-admission events — so it is strictly greater than anything a deposed
    /// predecessor shipped at). Never lowers an epoch already learned from the
    /// replication stream. Promotion builds only on the contiguously-applied (acked)
    /// prefix: any buffered out-of-order suffix is discarded, and sequence numbering
    /// continues from the applied prefix.
    pub fn promote_to(&mut self, epoch: u64) {
        if self.role == ReplicaRole::Backup {
            self.pending.clear();
            self.resyncing = false;
            self.log.clear();
            self.acks.clear();
        }
        self.role = ReplicaRole::Primary;
        self.epoch = self.epoch.max(epoch);
    }

    /// Enter resync: this replica detected (or was told) that its state is behind the
    /// log in a way catch-up cannot bridge. It demotes to backup and buffers shipments
    /// until a snapshot installs.
    pub fn begin_resync(&mut self) {
        self.role = ReplicaRole::Backup;
        self.resyncing = true;
        self.log.clear();
        self.acks.clear();
    }

    /// Abandon an in-flight resync with no surviving snapshot source (the whole
    /// replica set died): the replica stays a backup over whatever state it has.
    pub fn abort_resync(&mut self) {
        self.resyncing = false;
        self.pending.clear();
    }

    /// Declare the set of backups whose acks gate log trimming (live replica-set
    /// members, including ones still catching up). Present acks are kept; newly
    /// tracked backups start at 0; untracked ones are dropped. Returns confirms that
    /// became due because a laggard left the tracked set. Called on the per-op hot
    /// path, so an unchanged set (the overwhelmingly common case) is a no-op — the
    /// trim watermark cannot have moved without a membership change or an ack.
    pub fn set_tracked_backups(&mut self, backups: &[NodeId]) -> Vec<(NodeId, Message)> {
        if backups.len() == self.acks.len() && backups.iter().all(|b| self.acks.contains_key(b)) {
            return Vec::new();
        }
        self.acks.retain(|n, _| backups.contains(n));
        for &b in backups {
            self.acks.entry(b).or_insert(0);
        }
        self.collect_durable()
    }

    /// Apply a client op as the primary: mutate the shard, collect the replies it
    /// wants delivered, and assign the op its log sequence number (returned so the
    /// caller ships `DirReplicate { seq, .. }` to the backups). `confirm` is emitted
    /// to the op's origin once every tracked backup acks past this entry.
    ///
    /// Panics in debug builds if called on a backup — the service layer routes ops to
    /// the primary before applying.
    pub fn apply_primary(
        &mut self,
        op: &DirOp,
        confirm: Option<(NodeId, Message)>,
        out: &mut Vec<(NodeId, Message)>,
    ) -> u64 {
        debug_assert_eq!(self.role, ReplicaRole::Primary, "client ops apply on the primary");
        apply_op(&mut self.shard, op, out);
        self.applied_seq += 1;
        self.log.push_back(LogEntry { seq: self.applied_seq, op: op.clone(), confirm });
        self.applied_seq
    }

    /// The retained ops with sequence numbers strictly greater than `after`, in log
    /// order. A chain primary re-ships this suffix to the (possibly new) chain head
    /// after a membership change, so ops that were in flight through a dead or
    /// restarted chain member are not lost — the head's duplicate detection makes
    /// re-shipping idempotent.
    pub fn unacked_suffix(&self, after: u64) -> Vec<(u64, DirOp)> {
        self.log.iter().filter(|e| e.seq > after).map(|e| (e.seq, e.op.clone())).collect()
    }

    /// Record a backup's cumulative ack and return the confirms whose entries became
    /// fully acked. Acks from an older epoch (a backup that has not yet learned of a
    /// promotion) are still valid — sequence numbers only restart through a snapshot,
    /// which re-baselines the acker — but acks from untracked nodes are ignored.
    pub fn record_ack(&mut self, backup: NodeId, seq: u64) -> Vec<(NodeId, Message)> {
        if self.role != ReplicaRole::Primary {
            return Vec::new();
        }
        match self.acks.get_mut(&backup) {
            Some(acked) => *acked = (*acked).max(seq),
            None => return Vec::new(),
        }
        self.collect_durable()
    }

    /// The sequence number through which every tracked backup has acked (equals the
    /// applied prefix when no backups are tracked — a lone replica is trivially
    /// durable).
    pub fn min_acked(&self) -> u64 {
        self.acks.values().copied().min().unwrap_or(self.applied_seq)
    }

    /// Trim the fully-acked log prefix and return its confirms. The service calls
    /// this directly when a lone replica (no tracked backups) applies an op, which
    /// is durable immediately.
    pub fn take_durable_confirms(&mut self) -> Vec<(NodeId, Message)> {
        self.collect_durable()
    }

    fn collect_durable(&mut self) -> Vec<(NodeId, Message)> {
        let durable_through = self.min_acked();
        let mut confirms = Vec::new();
        while self.log.front().map(|e| e.seq <= durable_through).unwrap_or(false) {
            let entry = self.log.pop_front().expect("front checked");
            if let Some(confirm) = entry.confirm {
                confirms.push(confirm);
            }
        }
        confirms
    }

    /// Replay an op shipped by the shard's primary. See [`ReplayOutcome`] for what the
    /// caller must do with the result. Replies are discarded: only the primary talks
    /// to clients.
    pub fn apply_replicated(&mut self, epoch: u64, seq: u64, op: &DirOp) -> ReplayOutcome {
        if epoch < self.epoch {
            return ReplayOutcome::Rejected;
        }
        if self.resyncing {
            self.pending.insert(seq, (epoch, op.clone()));
            return ReplayOutcome::Buffered;
        }
        if seq <= self.applied_seq && epoch == self.epoch {
            // Duplicate of something already in the applied prefix: re-ack so the
            // primary's bookkeeping converges even if the original ack was lost.
            return ReplayOutcome::Acked(self.applied_seq);
        }
        if seq == self.applied_seq + 1 {
            // The happy path — including a seamless epoch handover, where the promoted
            // primary continues the sequence right where this replica's prefix ends.
            self.epoch = epoch;
            self.apply_in_order(op);
            self.drain_pending();
            return ReplayOutcome::Acked(self.applied_seq);
        }
        // A gap (same epoch: shipments lost while this node was isolated; higher
        // epoch: a promoted primary whose prefix diverges from ours). The log cannot
        // bridge it; buffer the op and ask for a snapshot.
        self.pending.insert(seq, (epoch, op.clone()));
        ReplayOutcome::NeedsResync
    }

    /// Capture this replica's state for transfer: `(epoch, applied_seq, state)`.
    pub fn snapshot(&self) -> (u64, u64, ShardSnapshot) {
        (self.epoch, self.applied_seq, self.shard.snapshot())
    }

    /// Install a snapshot captured by the current primary, discarding local state
    /// wholesale (including a deposed primary's unacked suffix), then replay whatever
    /// buffered shipments extend the snapshot contiguously. Returns the sequence
    /// number to ack, or `None` when the snapshot is itself a deposed primary's
    /// straggler (stale epoch) and was discarded.
    pub fn install_snapshot(&mut self, epoch: u64, seq: u64, state: &ShardSnapshot) -> Option<u64> {
        if epoch < self.epoch {
            return None;
        }
        self.shard.restore(state);
        self.role = ReplicaRole::Backup;
        self.epoch = epoch;
        self.applied_seq = seq;
        self.resyncing = false;
        self.log.clear();
        self.acks.clear();
        // Everything at or below the snapshot point is already included in it.
        self.pending = self.pending.split_off(&(seq + 1));
        self.drain_pending();
        Some(self.applied_seq)
    }

    fn apply_in_order(&mut self, op: &DirOp) {
        let mut suppressed = Vec::new();
        apply_op(&mut self.shard, op, &mut suppressed);
        self.applied_seq += 1;
    }

    fn drain_pending(&mut self) {
        while let Some((epoch, op)) = self.pending.remove(&(self.applied_seq + 1)) {
            if epoch >= self.epoch {
                self.epoch = epoch;
                self.apply_in_order(&op);
            }
        }
        // Anything at or below the applied prefix is stale.
        self.pending = self.pending.split_off(&(self.applied_seq + 1));
    }

    /// Purge everything the shard knows about a failed node. Applied directly on
    /// every replica (the failure detector notifies all nodes, and the purge is
    /// deterministic), so it does not travel through the replication log.
    pub fn node_failed(&mut self, node: NodeId) {
        self.shard.node_failed(node);
    }

    /// Known locations of an object (introspection for failover assertions).
    pub fn locations(&self, object: ObjectId) -> Vec<(NodeId, ObjectStatus)> {
        self.shard.locations(object)
    }
}

/// Dispatch one op into a shard.
fn apply_op(shard: &mut DirectoryShard, op: &DirOp, out: &mut Vec<(NodeId, Message)>) {
    match op {
        DirOp::Register { object, holder, status, size } => {
            shard.register(*object, *holder, *status, *size, out)
        }
        DirOp::PutInline { object, holder, payload } => {
            shard.put_inline(*object, *holder, payload.clone(), out)
        }
        DirOp::Unregister { object, holder } => shard.unregister(*object, *holder),
        DirOp::Query { object, requester, query_id, exclude } => {
            shard.query(*object, *requester, *query_id, exclude.clone(), out)
        }
        DirOp::Subscribe { object, subscriber } => shard.subscribe(*object, *subscriber, out),
        DirOp::Unsubscribe { object, subscriber } => shard.unsubscribe(*object, *subscriber),
        DirOp::TransferDone { object, receiver, sender } => {
            shard.transfer_done(*object, *receiver, *sender)
        }
        DirOp::Delete { object } => shard.delete(*object, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HopliteConfig;
    use crate::protocol::QueryResult;

    fn obj(name: &str) -> ObjectId {
        ObjectId::from_name(name)
    }

    fn pair() -> (ShardReplica, ShardReplica) {
        let cfg = HopliteConfig::small_for_tests();
        (
            ShardReplica::new(DirectoryShard::new(0, cfg.clone()), ReplicaRole::Primary),
            ShardReplica::new(DirectoryShard::new(0, cfg), ReplicaRole::Backup),
        )
    }

    fn register(name: &str, holder: u32) -> DirOp {
        DirOp::Register {
            object: obj(name),
            holder: NodeId(holder),
            status: ObjectStatus::Complete,
            size: 100,
        }
    }

    /// Ship one op primary → backup and ack it back, asserting the happy path.
    fn replicate(primary: &mut ShardReplica, backup: &mut ShardReplica, op: &DirOp) {
        let mut replies = Vec::new();
        let seq = primary.apply_primary(op, None, &mut replies);
        match backup.apply_replicated(primary.epoch(), seq, op) {
            ReplayOutcome::Acked(acked) => {
                assert_eq!(acked, seq);
                primary.record_ack(NodeId(99), acked);
            }
            other => panic!("expected ack, got {other:?}"),
        }
    }

    #[test]
    fn backup_mirrors_the_primary_through_the_op_log() {
        let (mut primary, mut backup) = pair();
        primary.set_tracked_backups(&[NodeId(99)]);
        let ops = vec![
            register("a", 1),
            DirOp::Query { object: obj("a"), requester: NodeId(2), query_id: 7, exclude: vec![] },
            DirOp::Register {
                object: obj("a"),
                holder: NodeId(2),
                status: ObjectStatus::Partial,
                size: 100,
            },
            DirOp::Subscribe { object: obj("b"), subscriber: NodeId(3) },
        ];
        let mut replies = Vec::new();
        for op in &ops {
            let seq = primary.apply_primary(op, None, &mut replies);
            assert!(matches!(
                backup.apply_replicated(primary.epoch(), seq, op),
                ReplayOutcome::Acked(_)
            ));
        }
        // The primary answered the query; the backup replayed it silently but holds
        // the identical post-query state: same locations, same lease on node 1.
        assert!(replies.iter().any(|(to, m)| *to == NodeId(2)
            && matches!(
                m,
                Message::DirQueryReply {
                    result: QueryResult::Location { node: NodeId(1), .. },
                    ..
                }
            )));
        let sorted = |mut v: Vec<(NodeId, ObjectStatus)>| {
            v.sort_by_key(|(n, _)| n.0);
            v
        };
        assert_eq!(sorted(primary.locations(obj("a"))), sorted(backup.locations(obj("a"))));
        assert_eq!(backup.shard().subscriber_count(obj("b")), 1);
        assert_eq!(backup.applied_seq(), 4);
    }

    #[test]
    fn promotion_bumps_epoch_and_rejects_stragglers() {
        let (mut primary, mut backup) = pair();
        replicate(&mut primary, &mut backup, &register("x", 0));

        // The primary dies; the backup is promoted at the shard's failover epoch.
        backup.promote_to(1);
        assert_eq!(backup.role(), ReplicaRole::Primary);
        assert_eq!(backup.epoch(), 1);

        // A straggler shipped by the deposed primary (epoch 0) must be rejected.
        let stale = DirOp::Delete { object: obj("x") };
        assert_eq!(backup.apply_replicated(0, 2, &stale), ReplayOutcome::Rejected);
        assert_eq!(backup.locations(obj("x")).len(), 1, "stale delete was not applied");

        // Promotion is idempotent and never lowers an epoch.
        backup.promote_to(1);
        assert_eq!(backup.epoch(), 1);
    }

    #[test]
    fn failover_epochs_reject_a_short_lived_predecessors_stragglers() {
        // Replicas [A, B, C]. A dies; B promotes at epoch 1 and ships an op at epoch 1
        // that C never receives before B dies too. C promotes at epoch 2 (every node
        // counts both failures), so B's straggler is recognizably stale.
        let cfg = HopliteConfig::small_for_tests();
        let mut c = ShardReplica::new(DirectoryShard::new(0, cfg), ReplicaRole::Backup);
        assert!(matches!(c.apply_replicated(0, 1, &register("x", 3)), ReplayOutcome::Acked(1)));
        c.promote_to(2);
        assert_eq!(c.epoch(), 2);
        let straggler = DirOp::Delete { object: obj("x") };
        assert_eq!(c.apply_replicated(1, 2, &straggler), ReplayOutcome::Rejected);
        assert_eq!(c.locations(obj("x")).len(), 1);
    }

    #[test]
    fn promoted_backup_answers_parked_queries() {
        // A query parks on the primary, is replicated, the primary dies, and the
        // promoted backup answers it when a location finally registers: no metadata —
        // not even parked queries — is lost with the primary.
        let (mut primary, mut backup) = pair();
        let query =
            DirOp::Query { object: obj("w"), requester: NodeId(5), query_id: 3, exclude: vec![] };
        let mut out = Vec::new();
        let seq = primary.apply_primary(&query, None, &mut out);
        assert!(out.is_empty(), "no location yet; the query parks");
        assert!(matches!(
            backup.apply_replicated(primary.epoch(), seq, &query),
            ReplayOutcome::Acked(_)
        ));

        backup.promote_to(1);
        backup.node_failed(NodeId(0));
        let mut replies = Vec::new();
        backup.apply_primary(&register("w", 4), None, &mut replies);
        assert!(replies
            .iter()
            .any(|(to, m)| *to == NodeId(5)
                && matches!(m, Message::DirQueryReply { query_id: 3, .. })));
    }

    #[test]
    fn confirms_wait_for_every_tracked_backup() {
        let (mut primary, _) = pair();
        primary.set_tracked_backups(&[NodeId(1), NodeId(2)]);
        let confirm = (NodeId(7), Message::StoreRelease { object: obj("marker") });
        let mut out = Vec::new();
        let seq = primary.apply_primary(&register("x", 7), Some(confirm.clone()), &mut out);
        assert_eq!(primary.unacked_len(), 1);
        assert!(primary.record_ack(NodeId(1), seq).is_empty(), "one of two backups acked");
        let confirms = primary.record_ack(NodeId(2), seq);
        assert_eq!(confirms, vec![confirm]);
        assert_eq!(primary.unacked_len(), 0, "fully-acked prefix trimmed");
        // A repeated ack is idempotent.
        assert!(primary.record_ack(NodeId(2), seq).is_empty());
    }

    #[test]
    fn losing_the_last_laggard_backup_releases_confirms() {
        let (mut primary, _) = pair();
        primary.set_tracked_backups(&[NodeId(1), NodeId(2)]);
        let confirm = (NodeId(7), Message::StoreRelease { object: obj("m") });
        let mut out = Vec::new();
        let seq = primary.apply_primary(&register("y", 7), Some(confirm.clone()), &mut out);
        primary.record_ack(NodeId(1), seq);
        // Backup 2 dies before acking: re-tracking without it must release the entry.
        let confirms = primary.set_tracked_backups(&[NodeId(1)]);
        assert_eq!(confirms, vec![confirm]);
    }

    #[test]
    fn untracked_primary_confirms_immediately() {
        // Replication factor 1 (or every backup dead): the lone replica is trivially
        // durable and the client must not be left waiting for a confirm.
        let (mut primary, _) = pair();
        let confirm = (NodeId(7), Message::StoreRelease { object: obj("solo") });
        let mut out = Vec::new();
        primary.apply_primary(&register("z", 7), Some(confirm.clone()), &mut out);
        assert_eq!(primary.min_acked(), primary.applied_seq());
        let confirms = primary.take_durable_confirms();
        assert_eq!(confirms, vec![confirm]);
    }

    #[test]
    fn sequence_gap_triggers_resync_and_snapshot_catches_up() {
        let (mut primary, mut backup) = pair();
        replicate(&mut primary, &mut backup, &register("a", 1));
        // Ops 2 and 3 are applied at the primary but never reach the backup.
        let mut out = Vec::new();
        primary.apply_primary(&register("b", 2), None, &mut out);
        primary.apply_primary(&register("c", 3), None, &mut out);
        // Op 4 arrives at the backup: a gap it cannot bridge.
        let op4 = register("d", 4);
        let seq4 = primary.apply_primary(&op4, None, &mut out);
        assert_eq!(
            backup.apply_replicated(primary.epoch(), seq4, &op4),
            ReplayOutcome::NeedsResync
        );
        backup.begin_resync();
        // Op 5 ships while the snapshot is in flight: buffered.
        let op5 = register("e", 5);
        let seq5 = primary.apply_primary(&op5, None, &mut out);
        assert_eq!(backup.apply_replicated(primary.epoch(), seq5, &op5), ReplayOutcome::Buffered);
        // The snapshot was captured at seq 4 (after op4); installing it replays the
        // buffered op5 and the backup is fully caught up.
        let (epoch, seq, state) = primary.snapshot();
        assert_eq!(seq, 5, "snapshot captured after op5");
        let acked = backup.install_snapshot(epoch, seq, &state).expect("fresh snapshot");
        assert_eq!(acked, 5);
        for name in ["a", "b", "c", "d", "e"] {
            assert_eq!(backup.locations(obj(name)).len(), 1, "object {name} present");
        }
        assert!(!backup.is_resyncing());
    }

    #[test]
    fn deposed_primary_unacked_suffix_is_discarded_on_promotion_and_resync() {
        // P applies ops 1..=5; the backup B only ever receives 1..=3 and acks them.
        // P's unacked suffix is ops 4 and 5. P is deposed (declared failed), B
        // promotes on the acked prefix, and when P later rejoins via snapshot its
        // suffix is gone — exactly the contract: promotion and re-admission only
        // consider the acked prefix.
        let (mut p, mut b) = pair();
        p.set_tracked_backups(&[NodeId(1)]);
        let mut out = Vec::new();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            let op = register(name, 10 + i as u32);
            let seq = p.apply_primary(&op, None, &mut out);
            assert!(matches!(b.apply_replicated(p.epoch(), seq, &op), ReplayOutcome::Acked(_)));
            p.record_ack(NodeId(1), seq);
        }
        p.apply_primary(&register("d", 13), None, &mut out);
        p.apply_primary(&register("e", 14), None, &mut out);
        assert_eq!(p.unacked_len(), 2, "ops d and e are the unacked suffix");

        // B promotes; its prefix ends at seq 3.
        b.promote_to(1);
        assert_eq!(b.applied_seq(), 3);
        assert!(b.locations(obj("d")).is_empty());

        // P rejoins as a backup via state transfer from B: its old suffix is replaced
        // wholesale by B's acked prefix.
        b.apply_primary(&register("f", 15), None, &mut out); // seq 4 under the new primacy
        p.begin_resync();
        let (epoch, seq, state) = b.snapshot();
        let acked = p.install_snapshot(epoch, seq, &state).expect("snapshot installs");
        assert_eq!(acked, 4);
        assert_eq!(p.role(), ReplicaRole::Backup);
        assert!(p.locations(obj("d")).is_empty(), "unacked suffix discarded");
        assert!(p.locations(obj("e")).is_empty(), "unacked suffix discarded");
        assert_eq!(p.locations(obj("f")).len(), 1, "new primacy's op present");
    }

    #[test]
    fn reack_after_snapshot_catchup_is_idempotent() {
        let (mut primary, mut backup) = pair();
        let mut out = Vec::new();
        let ops: Vec<DirOp> = (0..4).map(|i| register(&format!("o{i}"), i)).collect();
        let mut seqs = Vec::new();
        for op in &ops {
            seqs.push(primary.apply_primary(op, None, &mut out));
        }
        backup.begin_resync();
        let (epoch, seq, state) = primary.snapshot();
        assert_eq!(backup.install_snapshot(epoch, seq, &state), Some(4));
        // Shipments delayed in flight from before the snapshot now arrive: each is a
        // duplicate of the installed prefix and re-acks the same watermark without
        // double-applying.
        for (op, s) in ops.iter().zip(&seqs) {
            assert_eq!(backup.apply_replicated(epoch, *s, op), ReplayOutcome::Acked(4));
        }
        for i in 0..4 {
            assert_eq!(backup.locations(obj(&format!("o{i}"))).len(), 1);
        }
    }

    #[test]
    fn unsubscribe_survives_a_resync() {
        // Subscriptions — and their removal — transfer through the snapshot: a
        // subscriber that unsubscribed before the snapshot stays unsubscribed on the
        // re-admitted replica, while live subscriptions survive.
        let (mut primary, mut backup) = pair();
        let mut out = Vec::new();
        primary.apply_primary(
            &DirOp::Subscribe { object: obj("keep"), subscriber: NodeId(5) },
            None,
            &mut out,
        );
        primary.apply_primary(
            &DirOp::Subscribe { object: obj("drop"), subscriber: NodeId(6) },
            None,
            &mut out,
        );
        primary.apply_primary(
            &DirOp::Unsubscribe { object: obj("drop"), subscriber: NodeId(6) },
            None,
            &mut out,
        );
        backup.begin_resync();
        let (epoch, seq, state) = primary.snapshot();
        backup.install_snapshot(epoch, seq, &state).expect("snapshot installs");
        assert_eq!(backup.shard().subscriber_count(obj("keep")), 1);
        assert_eq!(backup.shard().subscriber_count(obj("drop")), 0);
    }

    #[test]
    fn stale_snapshot_from_deposed_primary_is_rejected() {
        let (mut primary, mut backup) = pair();
        replicate(&mut primary, &mut backup, &register("x", 1));
        let (old_epoch, old_seq, old_state) = primary.snapshot();
        backup.promote_to(2);
        assert_eq!(backup.install_snapshot(old_epoch, old_seq, &old_state), None);
        assert_eq!(backup.role(), ReplicaRole::Primary, "stale snapshot cannot demote");
    }
}
